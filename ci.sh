#!/usr/bin/env sh
# Full local CI: build, tests, model-integrity lint, and an end-to-end
# smoke of the resilient all_figures harness — including a negative check
# that an injected figure failure is isolated, recorded in the manifest,
# and turned into a nonzero exit.
#
# Usage: ./ci.sh
set -eu
cd "$(dirname "$0")"

echo "== ci: cargo build --release"
cargo build --release

echo "== ci: cargo test -q"
cargo test -q

echo "== ci: lint"
./lint.sh

BIN=target/release/all_figures
MANIFEST=target/figures/manifest.json

echo "== ci: all_figures smoke (tiny scale)"
"$BIN" --scale 256 --reps 1 >/dev/null
REGISTERED=$("$BIN" --list | wc -l)
OK=$(grep -c '"status": "ok"' "$MANIFEST")
if [ "$OK" -ne "$REGISTERED" ]; then
    echo "ci: FAIL — manifest has $OK ok jobs, expected all $REGISTERED" >&2
    exit 1
fi
if grep -q '"status": "failed"' "$MANIFEST" || grep -q '"status": "skipped"' "$MANIFEST"; then
    echo "ci: FAIL — clean run must have no failed/skipped manifest entries" >&2
    exit 1
fi

echo "== ci: all_figures negative check (injected failure)"
rm -f target/figures/fig05.json
if ALL_FIGURES_FAIL=fig07 "$BIN" --only fig05,fig07 --scale 256 --reps 1 >/dev/null 2>&1; then
    echo "ci: FAIL — injected figure failure must exit nonzero" >&2
    exit 1
fi
FAILED=$(grep -c '"status": "failed"' "$MANIFEST")
if [ "$FAILED" -ne 1 ]; then
    echo "ci: FAIL — expected exactly one failed manifest entry, got $FAILED" >&2
    exit 1
fi
if ! grep -q '"id": "fig07"' "$MANIFEST"; then
    echo "ci: FAIL — manifest must name the failed job" >&2
    exit 1
fi
if [ ! -f target/figures/fig05.json ]; then
    echo "ci: FAIL — figures before the failure must still be emitted" >&2
    exit 1
fi

echo "== ci: OK"
