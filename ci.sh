#!/usr/bin/env sh
# Full local CI: build, tests, model-integrity lint, and an end-to-end
# smoke of the resilient all_figures harness — including a negative check
# that an injected figure failure is isolated, recorded in the manifest,
# and turned into a nonzero exit.
#
# Usage: ./ci.sh
set -eu
cd "$(dirname "$0")"

echo "== ci: cargo build --release"
cargo build --release

echo "== ci: cargo test -q"
cargo test -q

echo "== ci: lint"
./lint.sh

echo "== ci: lint corpus self-check"
./lint.sh --score-corpus crates/sgx-lint/corpus >/dev/null

LINT=target/release/sgx-lint
LINT_TMP=$(mktemp -d)

echo "== ci: lint JSON baseline gate (two runs, byte-identical)"
"$LINT" --format json --baseline lint-baseline.json crates tests > "$LINT_TMP/run1.json"
"$LINT" --format json --baseline lint-baseline.json crates tests > "$LINT_TMP/run2.json"
if ! cmp -s "$LINT_TMP/run1.json" "$LINT_TMP/run2.json"; then
    echo "ci: FAIL — lint JSON report must be byte-identical across runs" >&2
    exit 1
fi
if ! grep -q '"total": 0.0' "$LINT_TMP/run1.json"; then
    echo "ci: FAIL — unbaselined lint findings present" >&2
    exit 1
fi

echo "== ci: lint negative self-check (injected violation)"
mkdir -p "$LINT_TMP/inject/src"
cat > "$LINT_TMP/inject/src/lib.rs" <<'EOF'
pub struct Counters {
    pub ghost: u64,
}
EOF
if "$LINT" --format json "$LINT_TMP/inject" > "$LINT_TMP/inject.json" 2>&1; then
    echo "ci: FAIL — injected violation must exit nonzero" >&2
    exit 1
fi
if ! grep -q '"rule": "counter-conservation"' "$LINT_TMP/inject.json"; then
    echo "ci: FAIL — injected violation must surface as counter-conservation" >&2
    exit 1
fi

echo "== ci: lint charge-escape negative check (injected choke-point bypass)"
# Copy the machine crate to scratch, verify the workspace+scratch scan is
# clean, then inject a `cycles +=` outside the `Core::commit` closure into
# the scratch copy: the dataflow rule must flag the bypass.
SIM_TMP=$(mktemp -d)
cp -r crates/sgx-sim "$SIM_TMP/sgx-sim"
if ! "$LINT" --baseline lint-baseline.json crates tests "$SIM_TMP/sgx-sim" >/dev/null 2>&1; then
    echo "ci: FAIL — pristine scratch copy of sgx-sim must lint clean alongside the workspace" >&2
    exit 1
fi
cat >> "$SIM_TMP/sgx-sim/src/machine/hierarchy.rs" <<'EOF'

impl<'m> Core<'m> {
    pub(super) fn turbo_bump(&mut self) {
        self.cycles += 7.0;
    }
}
EOF
if "$LINT" --format json --baseline lint-baseline.json crates tests "$SIM_TMP/sgx-sim" > "$LINT_TMP/bypass.json" 2>&1; then
    echo "ci: FAIL — injected commit bypass must exit nonzero" >&2
    exit 1
fi
if ! grep -q '"rule": "charge-escape"' "$LINT_TMP/bypass.json"; then
    echo "ci: FAIL — injected commit bypass must surface as charge-escape" >&2
    exit 1
fi
rm -rf "$SIM_TMP"

echo "== ci: lint stale-baseline self-check"
cat > "$LINT_TMP/stale.json" <<'EOF'
{"baseline": [{"path": "crates/does-not-exist.rs", "rule": "unsafe-code", "line": 1, "reason": "stale entry for the CI self-check"}]}
EOF
if "$LINT" --baseline "$LINT_TMP/stale.json" crates tests >/dev/null 2>&1; then
    echo "ci: FAIL — a stale baseline entry must exit nonzero" >&2
    exit 1
fi
rm -rf "$LINT_TMP"

RD_TMP=$(mktemp -d)
RD_FLOOR=95

echo "== ci: lint robustness RD gate (floor $RD_FLOOR, byte-identical across runs and --jobs)"
"$LINT" robustness --floor "$RD_FLOOR" --format json > "$RD_TMP/rd1.json"
"$LINT" robustness --floor "$RD_FLOOR" --format json > "$RD_TMP/rd2.json"
"$LINT" robustness --floor "$RD_FLOOR" --format json --jobs 4 > "$RD_TMP/rd4.json"
if ! cmp -s "$RD_TMP/rd1.json" "$RD_TMP/rd2.json"; then
    echo "ci: FAIL — robustness report must be byte-identical across runs" >&2
    exit 1
fi
if ! cmp -s "$RD_TMP/rd1.json" "$RD_TMP/rd4.json"; then
    echo "ci: FAIL — robustness report must be byte-identical across --jobs" >&2
    exit 1
fi
for rule in charge-escape des-invariant; do
    if ! grep -q "\"rule\": \"$rule\"" "$RD_TMP/rd1.json"; then
        echo "ci: FAIL — robustness report is missing the $rule row" >&2
        exit 1
    fi
done
for kind in alias dyncall xsplit; do
    if ! grep -q "\"kind\": \"$kind\"" "$RD_TMP/rd1.json"; then
        echo "ci: FAIL — robustness report is missing the $kind transform row" >&2
        exit 1
    fi
done

echo "== ci: lint robustness negative check (weakened rules must fail the floor)"
if "$LINT" robustness --floor "$RD_FLOOR" --weaken taint-indirection,taint-alias >/dev/null 2>&1; then
    echo "ci: FAIL — weakened rule set must drop RD below the floor" >&2
    exit 1
fi
if "$LINT" robustness --baseline lint-baseline.json >/dev/null 2>&1; then
    echo "ci: FAIL — robustness must reject --baseline" >&2
    exit 1
fi
rm -rf "$RD_TMP"

SC_TMP=$(mktemp -d)

echo "== ci: lint selfcheck (variant fuzz over pinned clean workspace files, byte-identical)"
"$LINT" selfcheck --format json > "$SC_TMP/sc1.json"
"$LINT" selfcheck --format json > "$SC_TMP/sc2.json"
if ! cmp -s "$SC_TMP/sc1.json" "$SC_TMP/sc2.json"; then
    echo "ci: FAIL — selfcheck report must be byte-identical across runs" >&2
    exit 1
fi
if ! grep -q '"false_positives": \[\]' "$SC_TMP/sc1.json"; then
    echo "ci: FAIL — variant of a clean workspace file produced a lint finding (rule false positive)" >&2
    exit 1
fi

echo "== ci: lint selfcheck negative check (dirty pin must be a usage error)"
cat > "$SC_TMP/dirty.rs" <<'EOF'
pub fn f(x: Option<u64>) -> u64 { x.unwrap() }
pub fn g() -> u64 { 1 }
EOF
SC_CODE=0
"$LINT" selfcheck "$SC_TMP/dirty.rs" >/dev/null 2>&1 || SC_CODE=$?
if [ "$SC_CODE" -ne 2 ]; then
    echo "ci: FAIL — selfcheck on a non-clean file must exit 2 (usage error), got $SC_CODE" >&2
    exit 1
fi
rm -rf "$SC_TMP"

BIN=target/release/all_figures
MANIFEST=target/figures/manifest.json

echo "== ci: all_figures smoke (tiny scale)"
"$BIN" --scale 256 --reps 1 >/dev/null
REGISTERED=$("$BIN" --list | wc -l)
OK=$(grep -c '"status": "ok"' "$MANIFEST")
if [ "$OK" -ne "$REGISTERED" ]; then
    echo "ci: FAIL — manifest has $OK ok jobs, expected all $REGISTERED" >&2
    exit 1
fi
if grep -q '"status": "failed"' "$MANIFEST" || grep -q '"status": "skipped"' "$MANIFEST"; then
    echo "ci: FAIL — clean run must have no failed/skipped manifest entries" >&2
    exit 1
fi

echo "== ci: layered facade size gate"
MACHINE_LINES=$(wc -l < crates/sgx-sim/src/machine.rs)
if [ "$MACHINE_LINES" -gt 400 ]; then
    echo "ci: FAIL — machine.rs facade is $MACHINE_LINES lines (gate: 400); grow the layer modules under crates/sgx-sim/src/machine/ instead" >&2
    exit 1
fi
echo "ci: machine.rs facade at $MACHINE_LINES lines (gate: 400)"

echo "== ci: parallel determinism (--jobs 1 vs --jobs 2, byte-identical outputs)"
FIG_TMP=$(mktemp -d)
T0=$(date +%s)
"$BIN" --scale 256 --reps 1 --jobs 1 >/dev/null
T1=$(date +%s)
mkdir -p "$FIG_TMP/jobs1"
cp target/figures/*.json target/figures/*.svg "$FIG_TMP/jobs1/"
"$BIN" --normalize-manifest "$MANIFEST" > "$FIG_TMP/jobs1.manifest.normalized.json"
T2=$(date +%s)
"$BIN" --scale 256 --reps 1 --jobs 2 >/dev/null
T3=$(date +%s)
"$BIN" --normalize-manifest "$MANIFEST" > "$FIG_TMP/jobs2.manifest.normalized.json"
echo "ci: timings — jobs=1: $((T1 - T0))s, jobs=2: $((T3 - T2))s (a 1-CPU container shows no speedup; multi-core hosts do)"
if ! cmp -s "$FIG_TMP/jobs1.manifest.normalized.json" "$FIG_TMP/jobs2.manifest.normalized.json"; then
    echo "ci: FAIL — normalized manifests differ between --jobs 1 and --jobs 2" >&2
    exit 1
fi
for f in "$FIG_TMP"/jobs1/*.json "$FIG_TMP"/jobs1/*.svg; do
    name=$(basename "$f")
    case "$name" in manifest*) continue ;; esac
    if ! cmp -s "$f" "target/figures/$name"; then
        echo "ci: FAIL — $name differs between --jobs 1 and --jobs 2" >&2
        exit 1
    fi
done
rm -rf "$FIG_TMP"

echo "== ci: profile determinism (--profile off by default, byte-identical across --jobs)"
PROF_TMP=$(mktemp -d)
rm -f target/figures/*.profile.json target/figures/*.profile.svg
"$BIN" --scale 256 --reps 1 --jobs 1 >/dev/null
if ls target/figures/*.profile.json >/dev/null 2>&1; then
    echo "ci: FAIL — profiles must not be emitted without --profile" >&2
    exit 1
fi
mkdir -p "$PROF_TMP/plain"
cp target/figures/*.json "$PROF_TMP/plain/"
"$BIN" --scale 256 --reps 1 --jobs 1 --profile >/dev/null
if ! ls target/figures/*.profile.json >/dev/null 2>&1; then
    echo "ci: FAIL — --profile must emit at least one profile.json" >&2
    exit 1
fi
mkdir -p "$PROF_TMP/jobs1"
cp target/figures/*.json target/figures/*.svg "$PROF_TMP/jobs1/"
for f in "$PROF_TMP"/plain/*.json; do
    name=$(basename "$f")
    case "$name" in manifest*) continue ;; esac
    if ! cmp -s "$f" "target/figures/$name"; then
        echo "ci: FAIL — --profile perturbed figure output $name" >&2
        exit 1
    fi
done
"$BIN" --scale 256 --reps 1 --jobs 2 --profile >/dev/null
for f in "$PROF_TMP"/jobs1/*.json "$PROF_TMP"/jobs1/*.svg; do
    name=$(basename "$f")
    case "$name" in manifest*) continue ;; esac
    if ! cmp -s "$f" "target/figures/$name"; then
        echo "ci: FAIL — $name differs between --profile --jobs 1 and --jobs 2" >&2
        exit 1
    fi
done
rm -rf "$PROF_TMP"
rm -f target/figures/*.profile.json target/figures/*.profile.svg

echo "== ci: all_figures negative check (injected failure)"
rm -f target/figures/fig05.json
if ALL_FIGURES_FAIL=fig07 "$BIN" --only fig05,fig07 --scale 256 --reps 1 >/dev/null 2>&1; then
    echo "ci: FAIL — injected figure failure must exit nonzero" >&2
    exit 1
fi
FAILED=$(grep -c '"status": "failed"' "$MANIFEST")
if [ "$FAILED" -ne 1 ]; then
    echo "ci: FAIL — expected exactly one failed manifest entry, got $FAILED" >&2
    exit 1
fi
if ! grep -q '"id": "fig07"' "$MANIFEST"; then
    echo "ci: FAIL — manifest must name the failed job" >&2
    exit 1
fi
if [ ! -f target/figures/fig05.json ]; then
    echo "ci: FAIL — figures before the failure must still be emitted" >&2
    exit 1
fi

echo "== ci: service tail smoke (byte-identical across two runs and --jobs 1 vs 2)"
SVC_TMP=$(mktemp -d)
"$BIN" --only ext_service_tail --scale 256 --reps 1 --jobs 1 >/dev/null
mkdir -p "$SVC_TMP/run1"
cp target/figures/ext_service_tail*.json "$SVC_TMP/run1/"
"$BIN" --only ext_service_tail --scale 256 --reps 1 --jobs 2 >/dev/null
for f in "$SVC_TMP"/run1/*.json; do
    name=$(basename "$f")
    if ! cmp -s "$f" "target/figures/$name"; then
        echo "ci: FAIL — $name differs across service-tail runs/--jobs" >&2
        exit 1
    fi
done

echo "== ci: service overload negative check (admission control must shed load)"
SB=target/release/service_bench
"$SB" --scale 256 --overload 8 --expect-shedding --json "$SVC_TMP/shed1.json" 2>/dev/null
"$SB" --scale 256 --overload 8 --expect-shedding --json "$SVC_TMP/shed2.json" 2>/dev/null
if ! cmp -s "$SVC_TMP/shed1.json" "$SVC_TMP/shed2.json"; then
    echo "ci: FAIL — service_bench report must be byte-identical across runs" >&2
    exit 1
fi
# A service with admission disabled cannot shed: the same check must fail.
if "$SB" --scale 256 --overload 8 --no-admission --expect-shedding >/dev/null 2>&1; then
    echo "ci: FAIL — --no-admission under overload must fail the shedding check (rejected=0)" >&2
    exit 1
fi
rm -rf "$SVC_TMP"

echo "== ci: storage path smoke (byte-identical across two runs and --jobs 1 vs 4)"
STO_TMP=$(mktemp -d)
"$BIN" --only ext_storage_path --scale 256 --reps 1 --jobs 1 >/dev/null
mkdir -p "$STO_TMP/run1"
cp target/figures/ext_storage_path*.json "$STO_TMP/run1/"
"$BIN" --only ext_storage_path --scale 256 --reps 1 --jobs 4 >/dev/null
for f in "$STO_TMP"/run1/*.json; do
    name=$(basename "$f")
    if ! cmp -s "$f" "target/figures/$name"; then
        echo "ci: FAIL — $name differs across storage-path runs/--jobs" >&2
        exit 1
    fi
done
rm -rf "$STO_TMP"

# Pick the two highest-numbered BENCH_pr<N>.json trajectory files in $1,
# oldest first, one per line. Extracts <N> by stripping the literal
# prefix/suffix and refuses to proceed if what remains is not a pure
# decimal number: the old `sort -t'r' -k2 -n` hack split on the letter
# 'r' (field 2 of BENCH_pr10.json is empty), silently falling back to
# lexical order, so pr9 sorted after pr10 and the gate compared the
# wrong PRs.
pick_trend_files() {
    _dir=$1
    _rows=""
    for _f in "$_dir"/BENCH_pr*.json; do
        [ -e "$_f" ] || return 0
        _base=$(basename "$_f")
        _n=${_base#BENCH_pr}
        _n=${_n%.json}
        case "$_n" in
            ''|*[!0-9]*)
                echo "ci: FAIL — unparseable trajectory name '$_base' (want BENCH_pr<number>.json)" >&2
                return 1
                ;;
        esac
        _rows="$_rows$_n $_base
"
    done
    printf '%s' "$_rows" | sort -n -k1,1 | tail -2 | while read -r _n _base; do
        echo "$_dir/$_base"
    done
}

echo "== ci: perf-trend file-picker checks (numeric order, malformed names fail)"
TREND_TMP=$(mktemp -d)
echo '{}' > "$TREND_TMP/BENCH_pr9.json"
echo '{}' > "$TREND_TMP/BENCH_pr10.json"
PICKED=$(pick_trend_files "$TREND_TMP")
WANT="$TREND_TMP/BENCH_pr9.json
$TREND_TMP/BENCH_pr10.json"
if [ "$PICKED" != "$WANT" ]; then
    echo "ci: FAIL — trend picker must order pr9 before pr10 (numeric, not lexical); got: $PICKED" >&2
    exit 1
fi
echo '{}' > "$TREND_TMP/BENCH_prX.json"
if pick_trend_files "$TREND_TMP" >/dev/null 2>&1; then
    echo "ci: FAIL — malformed BENCH_pr name must fail the trend picker" >&2
    exit 1
fi
rm -rf "$TREND_TMP"

echo "== ci: perf-trend gate (latest two BENCH_*.json, watched rows via sim_bench --trend)"
# Compare the two newest checked-in trajectory files on the watched rows
# (join-smoke, scan-smoke): a >30 % events/sec drop fails CI. Wall-clock
# throughput is only comparable on a multi-core host of the trajectory's
# class; on a 1-CPU container the gate still runs but demotes a trip to a
# loud warning (--warn-only) instead of a failure.
TREND_FILES=$(pick_trend_files .)
if [ "$(printf '%s\n' $TREND_FILES | wc -l)" -lt 2 ]; then
    echo "ci: perf-trend gate skipped — need at least two BENCH_pr*.json files"
else
    TREND_OLD=$(printf '%s\n' $TREND_FILES | head -1)
    TREND_NEW=$(printf '%s\n' $TREND_FILES | tail -1)
    TREND_FLAGS=""
    if [ "$(nproc 2>/dev/null || echo 1)" -le 1 ]; then
        TREND_FLAGS="--warn-only"
    fi
    target/release/sim_bench --trend "$TREND_OLD" "$TREND_NEW" $TREND_FLAGS
fi

echo "== ci: OK"
