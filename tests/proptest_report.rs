//! Property tests for the report/JSON layer: `Figure::from_json` must be
//! total — truncated, mutated, or garbage input returns `Err`, never
//! panics — and anything it accepts must satisfy the figure invariants
//! and re-serialize byte-identically.

use proptest::prelude::*;
use sgx_bench_core::json::Value;
use sgx_bench_core::{Figure, Stat};

/// A representative figure serialized by the deterministic printer. Kept
/// ASCII so any byte offset is a valid UTF-8 cut point.
fn reference_json() -> String {
    let mut f = Figure::new("figX", "storm demo", "rate", "relative").with_xs(["0", "20", "320"]);
    f.push_series(
        "join, native",
        vec![Some(Stat::exact(1.0)), Some(Stat { mean: 0.9, stddev: 0.01 }), None],
    );
    f.push_series("join, enclave", vec![Some(Stat::exact(1.0)), None, Some(Stat::exact(0.14))]);
    f.note("aex_events=123 ocall_retries=4");
    f.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every strict prefix of valid output is rejected, not panicked on.
    #[test]
    fn truncated_json_always_errs(frac in 0.0f64..1.0) {
        let full = reference_json();
        let cut = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        prop_assert!(Figure::from_json(&full[..cut]).is_err());
    }

    /// Single-byte mutations never panic; when they still parse, the
    /// result upholds the series-length invariant and round-trips.
    #[test]
    fn mutated_json_never_panics(frac in 0.0f64..1.0, byte in 0u8..=255) {
        let full = reference_json().into_bytes();
        let pos = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        let mut bytes = full;
        bytes[pos] = byte;
        // Non-UTF-8 mutations exercise the lossy path a caller would hit
        // reading a corrupted file.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(fig) = Figure::from_json(&text) {
            for s in &fig.series {
                prop_assert_eq!(s.points.len(), fig.xs.len());
            }
            let re = fig.to_json();
            let again = Figure::from_json(&re);
            prop_assert!(again.is_ok(), "accepted figure must re-parse");
            prop_assert_eq!(again.unwrap().to_json(), re, "re-serialization must be a fixpoint");
        }
    }

    /// Shortest-roundtrip property of the number printer: every finite
    /// f64 the writer emits must parse back to the exact same bit
    /// pattern. Random bit patterns cover subnormals, huge magnitudes,
    /// and 17-significant-digit values; the explicit unit test below
    /// pins the named edge cases.
    #[test]
    fn numbers_roundtrip_exactly(bits in 0u64..u64::MAX) {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            let text = Value::Num(x).pretty();
            match Value::parse(&text) {
                Ok(Value::Num(y)) => prop_assert_eq!(
                    y.to_bits(),
                    x.to_bits(),
                    "{} reprinted as {}",
                    x,
                    text
                ),
                other => prop_assert!(false, "{} did not re-parse: {:?}", text, other),
            }
        }
    }

    /// Arbitrary short garbage strings are rejected without panicking.
    /// (The vendored proptest has no string-regex strategies, so the
    /// garbage is derived from a seeded LCG over printable ASCII plus the
    /// JSON structural characters.)
    #[test]
    fn garbage_never_panics(seed in 0u64..u64::MAX, len in 0usize..64) {
        let mut x = seed | 1;
        let alphabet: &[u8] = b"{}[]\",:.0123456789eE+-truefalsnl \\\t\n";
        let s: String = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                alphabet[(x >> 33) as usize % alphabet.len()] as char
            })
            .collect();
        let _ = Figure::from_json(&s);
    }
}

/// Named number-printer edge cases: negative zero (the `as i64` cast used
/// to erase its sign and print "0.0"), subnormals, 1e300, a
/// 17-significant-digit value, and integers at the f64/i64 precision
/// boundary.
#[test]
fn number_edge_cases_roundtrip() {
    let cases = [
        -0.0,
        0.0,
        f64::MIN_POSITIVE,        // smallest normal
        5e-324,                   // smallest subnormal
        -5e-324,
        1e300,
        -1e300,
        0.1 + 0.2,                // 0.30000000000000004 — 17 sig digits
        1.7976931348623157e308,   // f64::MAX
        9.007199254740993e15,     // just past the 1e15 integer-path bound
        i64::MAX as f64,
        -(i64::MAX as f64),
    ];
    for x in cases {
        let text = Value::Num(x).pretty();
        let back = match Value::parse(&text) {
            Ok(Value::Num(y)) => y,
            other => panic!("{x:?} printed as {text:?} which parsed to {other:?}"),
        };
        assert_eq!(back.to_bits(), x.to_bits(), "{x:?} -> {text:?} -> {back:?}");
    }
    assert_eq!(Value::Num(-0.0).pretty(), "-0.0", "negative zero keeps its sign");
}

/// Deeply nested input must hit the parser's recursion bound, not the
/// process stack.
#[test]
fn pathological_nesting_is_rejected() {
    let bomb = "[".repeat(200_000);
    assert!(Figure::from_json(&bomb).is_err());
    let balanced = format!("{}{}", "[".repeat(4_000), "]".repeat(4_000));
    assert!(Figure::from_json(&balanced).is_err());
}
