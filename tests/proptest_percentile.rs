//! Property tests for `sgx_bench_core::percentile`: the histogram's
//! nearest-rank percentiles must agree exactly with the naive
//! sort-and-index oracle on arbitrary inputs, be insensitive to
//! insertion order, and compose under merge.

use proptest::collection::vec;
use proptest::prelude::*;
use sgx_bench_core::percentile::{percentile_sorted, Histogram};

/// The oracle spelled out from first principles (independent of the
/// exported `percentile_sorted` helper, which shares code with nothing
/// but is itself under test here).
fn naive(samples: &[u64], permille: u64) -> Option<u64> {
    if samples.is_empty() || permille == 0 || permille > 1000 {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // 1-based nearest rank: ceil(p/1000 * n).
    let n = sorted.len() as u64;
    let rank = (permille * n + 999) / 1000;
    Some(sorted[(rank - 1) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Histogram percentiles equal the sort-based oracle at every
    /// per-mille rank we care about (plus random ones).
    #[test]
    fn histogram_matches_sort_oracle(
        samples in vec(0u64..1_000_000, 0..200),
        p in 1u64..=1000,
    ) {
        let h: Histogram = samples.iter().copied().collect();
        prop_assert_eq!(h.percentile_permille(p), naive(&samples, p));
        for fixed in [500u64, 950, 990] {
            prop_assert_eq!(h.percentile_permille(fixed), naive(&samples, fixed));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(percentile_sorted(&sorted, p), naive(&samples, p));
    }

    /// Insertion order is irrelevant: reversed input builds an equal
    /// histogram with equal percentiles.
    #[test]
    fn insertion_order_is_irrelevant(samples in vec(0u64..10_000, 1..100)) {
        let fwd: Histogram = samples.iter().copied().collect();
        let rev: Histogram = samples.iter().rev().copied().collect();
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(fwd.p99(), rev.p99());
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in vec(0u64..10_000, 0..100),
        b in vec(0u64..10_000, 0..100),
        p in 1u64..=1000,
    ) {
        let mut ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        ha.merge(&hb);
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let flat: Histogram = all.iter().copied().collect();
        prop_assert_eq!(&ha, &flat);
        prop_assert_eq!(ha.percentile_permille(p), naive(&all, p));
        prop_assert_eq!(ha.len(), all.len() as u64);
    }

    /// The reported value is always one of the samples (never invented
    /// by interpolation), and min/max bound every percentile.
    #[test]
    fn percentile_is_always_a_sample(
        samples in vec(0u64..1_000_000, 1..150),
        p in 1u64..=1000,
    ) {
        let h: Histogram = samples.iter().copied().collect();
        let v = h.percentile_permille(p).expect("non-empty");
        prop_assert!(samples.contains(&v), "p{} returned {} not in input", p, v);
        prop_assert!(h.min().expect("non-empty") <= v);
        prop_assert!(v <= h.max().expect("non-empty"));
    }
}
