//! Integration tests for the TPC-H query engine across settings and
//! configurations.

use proptest::prelude::*;
use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;
use sgx_bench_core::sgx_tpch::{generate, reference_count};

fn tiny_hw() -> HwConfig {
    xeon_gold_6326().scaled(64)
}

#[test]
fn query_results_are_setting_and_config_independent() {
    let mut counts: Option<Vec<u64>> = None;
    for setting in Setting::all() {
        for optimized in [false, true] {
            let mut m = Machine::new(tiny_hw(), setting);
            let db = generate(&mut m, 0.004, 77);
            let cfg = QueryConfig::new(4).with_optimization(optimized);
            let these: Vec<u64> =
                Query::all().iter().map(|&q| run_query(&mut m, &db, q, &cfg).count).collect();
            match &counts {
                None => {
                    // Anchor against the uncharged reference.
                    let expected: Vec<u64> =
                        Query::all().iter().map(|&q| reference_count(&db, q)).collect();
                    assert_eq!(these, expected, "first run vs reference");
                    counts = Some(these);
                }
                Some(c) => assert_eq!(&these, c, "{setting:?} optimized={optimized}"),
            }
        }
    }
}

#[test]
fn enclave_queries_cost_more_but_not_wildly_more() {
    let total = |setting: Setting| {
        let mut m = Machine::new(tiny_hw(), setting);
        let db = generate(&mut m, 0.01, 42);
        m.reset_wall();
        let cfg = QueryConfig::new(8).with_optimization(true);
        Query::all()
            .iter()
            .map(|&q| run_query(&mut m, &db, q, &cfg).wall_cycles)
            .sum::<f64>()
    };
    let native = total(Setting::PlainCpu);
    let sgx = total(Setting::SgxDataInEnclave);
    let overhead = sgx / native - 1.0;
    assert!(overhead > 0.0, "enclave should cost something");
    assert!(
        overhead < 0.8,
        "optimized queries should be within tens of percent of native (paper: 15%); got {:.0}%",
        overhead * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for arbitrary (tiny) scale factors and seeds, the charged
    /// query pipelines agree with the uncharged reference counts.
    #[test]
    fn queries_match_reference_on_arbitrary_databases(
        sf_millis in 1u32..8,
        seed in 0u64..100,
        threads in 1usize..8,
    ) {
        let sf = sf_millis as f64 / 1000.0;
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let db = generate(&mut m, sf, seed);
        let cfg = QueryConfig::new(threads);
        for q in Query::all() {
            let got = run_query(&mut m, &db, q, &cfg).count;
            prop_assert_eq!(got, reference_count(&db, q), "{}", q.label());
        }
    }
}
