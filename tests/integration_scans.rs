//! Integration tests for the scan kernels across settings, plus property
//! tests on scan invariants.

use proptest::prelude::*;
use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_scans::reference_filter;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;

fn tiny_hw() -> HwConfig {
    xeon_gold_6326().scaled(64)
}

#[test]
fn scan_counts_are_setting_independent() {
    let mut reference = None;
    for setting in Setting::all() {
        let mut m = Machine::new(tiny_hw(), setting);
        let col = gen_column(&mut m, 100_000, 7);
        for output in [ScanOutput::BitVector, ScanOutput::Indexes] {
            let stats = column_scan(&mut m, &col, 40, 200, output, &ScanConfig::new(8));
            match reference {
                None => reference = Some(stats.matches),
                Some(r) => assert_eq!(stats.matches, r, "{setting:?} {output:?}"),
            }
        }
    }
    assert!(reference.unwrap() > 0);
}

#[test]
fn enclave_scan_stays_within_single_digit_overhead() {
    let run = |setting: Setting| {
        let mut m = Machine::new(tiny_hw(), setting);
        let col = gen_column(&mut m, 8 << 20, 3);
        column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(8)).cycles
    };
    let overhead = run(Setting::SgxDataInEnclave) / run(Setting::PlainCpu) - 1.0;
    assert!(
        (0.0..0.10).contains(&overhead),
        "paper §5: scans lose only a few percent; got {:.1}%",
        overhead * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: the vectorized scans agree with the scalar reference
    /// filter for arbitrary predicates and column sizes.
    #[test]
    fn scans_match_reference_filter(
        n in 1usize..50_000,
        lo in 0u8..=255,
        span in 0u8..=255,
        seed in 0u64..500,
        threads in 1usize..16,
    ) {
        let hi = lo.saturating_add(span);
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let col = gen_column(&mut m, n, seed);
        let expected = reference_filter(&col, lo, hi).len() as u64;
        let bv = column_scan(&mut m, &col, lo, hi, ScanOutput::BitVector, &ScanConfig::new(threads));
        prop_assert_eq!(bv.matches, expected);
        let ix = column_scan(&mut m, &col, lo, hi, ScanOutput::Indexes, &ScanConfig::new(threads));
        prop_assert_eq!(ix.matches, expected);
    }

    /// Property: selectivity only adds write cost — never reduces it —
    /// and full-range scans match everything.
    #[test]
    fn wider_predicates_cost_more_to_materialize(n in 10_000usize..60_000, seed in 0u64..100) {
        let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
        let col = gen_column(&mut m, n, seed);
        let narrow = column_scan(&mut m, &col, 0, 10, ScanOutput::Indexes, &ScanConfig::new(4));
        let full = column_scan(&mut m, &col, 0, 255, ScanOutput::Indexes, &ScanConfig::new(4));
        prop_assert_eq!(full.matches, n as u64);
        prop_assert!(full.cycles > narrow.cycles,
            "100% selectivity must write more: {} vs {}", full.cycles, narrow.cycles);
    }
}
