//! Property tests for the PR-10 operator zoo: the charged external merge
//! sort, the dictionary/RLE compression kernels, and the sealed storage
//! path must agree exactly with first-principles host oracles
//! (`sort_unstable`, direct decode, filter-and-count loops) on arbitrary
//! inputs. Every case builds its own deterministic `Machine`; the
//! vendored proptest is seeded, so failures replay bit-identically.

use proptest::collection::vec;
use proptest::prelude::*;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;
use sgx_bench_core::sgx_sim::{Machine, Setting};
use sgx_bench_core::sgx_tpch::{
    external_merge_sort, reference_storage_query, reference_unseal, seal_column,
    storage_path_query, DictColumn, RleColumn, SortRow, StorageFormat,
};

/// A 1/4096-scale enclave machine: the L3 is so small that a few hundred
/// records already overflow the run budget, forcing genuinely external
/// sorts (multiple spilled runs) on proptest-sized inputs.
fn tiny_enclave() -> Machine {
    Machine::new(xeon_gold_6326().scaled(4096), Setting::SgxDataInEnclave)
}

/// Derive (key, tag) pairs from raw 64-bit draws. `narrow` squeezes keys
/// into 0..64 so duplicate keys (and the tag tie-break) are exercised
/// hard; otherwise keys span the full 64-bit domain.
fn pairs_of(raw: &[u64], narrow: bool) -> Vec<(u64, u32)> {
    raw.iter()
        .map(|&r| {
            let key = if narrow { r % 64 } else { r };
            (key, (r.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u32)
        })
        .collect()
}

/// Fill a charged SimVec with the pairs.
fn sort_input(m: &mut Machine, pairs: &[(u64, u32)]) -> sgx_bench_core::sgx_sim::SimVec<SortRow> {
    let mut v = m.alloc::<SortRow>(pairs.len());
    for (i, &(key, tag)) in pairs.iter().enumerate() {
        v.poke(i, SortRow { key, tag });
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// External merge sort equals `sort_unstable` on (key, tag) pairs —
    /// including the run-spill path — across thread counts and both
    /// wide and duplicate-heavy key domains.
    #[test]
    fn external_sort_matches_sort_unstable(
        raw in vec(0u64..u64::MAX, 0..800),
        narrow in 0u32..2,
        threads in 1usize..=4,
    ) {
        let pairs = pairs_of(&raw, narrow == 1);
        let mut m = tiny_enclave();
        let v = sort_input(&mut m, &pairs);
        let mut expect = pairs.clone();
        expect.sort_unstable();
        let cores: Vec<usize> = (0..threads).collect();
        let (sorted, stats) = external_merge_sort(&mut m, &cores, &v, v.len());
        let got: Vec<(u64, u32)> =
            sorted.as_slice_untracked().iter().map(|r| (r.key, r.tag)).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(stats.spilled_bytes, pairs.len() * std::mem::size_of::<SortRow>());
    }

    /// A sorted prefix of arbitrary length equals the oracle sort of
    /// that prefix (the Q3 top-k path sorts prefixes, not whole arrays).
    #[test]
    fn external_sort_prefix_matches_oracle(
        raw in vec(0u64..u64::MAX, 1..400),
        cut in 0usize..400,
    ) {
        let pairs = pairs_of(&raw, false);
        let len = cut.min(pairs.len());
        let mut m = tiny_enclave();
        let v = sort_input(&mut m, &pairs);
        let mut expect = pairs[..len].to_vec();
        expect.sort_unstable();
        let (sorted, _) = external_merge_sort(&mut m, &[0], &v, len);
        prop_assert_eq!(sorted.len(), len);
        let got: Vec<(u64, u32)> =
            sorted.as_slice_untracked().iter().map(|r| (r.key, r.tag)).collect();
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Dictionary round-trip is the identity, and the charged scan
    /// visits every element of an arbitrary subrange with the decoded
    /// value the plain column would have yielded.
    #[test]
    fn dict_roundtrip_and_scan_equal_plain(
        values in vec(-50_000i32..50_000, 0..600),
        a in 0usize..601,
        b in 0usize..601,
    ) {
        let mut m = tiny_enclave();
        let col = DictColumn::encode(&mut m, &values);
        prop_assert!(col.dict_len() <= values.len().max(1));
        let decoded = col.decompress(&mut m);
        prop_assert_eq!(decoded.as_slice_untracked(), values.as_slice());
        let (lo, hi) = (a.min(values.len()), b.min(values.len()));
        let range = lo.min(hi)..lo.max(hi);
        let mut got: Vec<(usize, i32)> = Vec::new();
        m.run(|c| {
            col.scan(c, range.clone(), &mut |_c, i, x| got.push((i, x)));
        });
        let expect: Vec<(usize, i32)> =
            range.clone().map(|i| (i, values[i])).collect();
        prop_assert_eq!(got, expect);
    }

    /// RLE round-trip is the identity and run expansion reproduces the
    /// plain column exactly (order, lengths and values).
    #[test]
    fn rle_roundtrip_and_run_expansion_equal_plain(
        // Small value range so runs actually form; still exercises
        // degenerate all-distinct neighborhoods.
        values in vec(0i32..8, 0..600),
    ) {
        let mut m = tiny_enclave();
        let col = RleColumn::encode(&mut m, &values);
        prop_assert!(col.run_count() <= values.len());
        let decoded = col.decompress(&mut m);
        prop_assert_eq!(decoded.as_slice_untracked(), values.as_slice());
        let mut expanded: Vec<i32> = Vec::new();
        m.run(|c| {
            col.scan_runs(c, &mut |_c, v, l| {
                expanded.extend(std::iter::repeat(v).take(l as usize));
            });
        });
        prop_assert_eq!(expanded, values);
    }

    /// Seal → unseal is the identity for every storage format, and the
    /// full charged storage-path query (decrypt + filter + group-count)
    /// matches the uncharged host oracle bit for bit.
    #[test]
    fn sealed_storage_path_matches_oracle(
        values in vec(0i32..256, 0..400),
        fmt in 0usize..3,
        threshold in 0i32..256,
        groups_log2 in 3u32..7,
    ) {
        let format = [StorageFormat::Plain, StorageFormat::Dict, StorageFormat::Rle][fmt];
        let groups = 1usize << groups_log2;
        let mut m = tiny_enclave();
        let col = seal_column(&mut m, &values, format);
        prop_assert_eq!(reference_unseal(&col), values.clone());
        let stats = storage_path_query(&mut m, &[0, 1], &col, threshold, groups);
        let (matches, sum, grouped) = reference_storage_query(&values, threshold, groups);
        prop_assert_eq!(stats.matches, matches);
        prop_assert_eq!(stats.sum, sum);
        prop_assert_eq!(stats.groups, grouped);
        prop_assert_eq!(stats.rows, values.len());
    }
}
