//! Refactor-equivalence suite: proves the layered machine pipeline
//! (DESIGN.md §10) and the parallel figure scheduler changed *nothing*
//! about the model.
//!
//! `tests/goldens/figure_digests.json` was recorded by
//! `cargo run --release -p bench --bin record_goldens` on the
//! pre-refactor (monolithic `machine.rs`, sequential harness) tree under
//! `BenchProfile::golden()`. These tests re-run the full registry — once
//! sequentially and once on 4 worker threads, with per-job cycle
//! profiling on — and assert both runs reproduce every golden digest
//! exactly: every figure's JSON bytes, every job's counter report, and
//! every job's `<job>.profile.json` bytes (so a hot-path rewrite cannot
//! shift cycles between `CostCategory` bins unnoticed). A mismatch means
//! the cost model drifted; re-record goldens only for a *deliberate*
//! model change.

use sgx_bench_core::golden::{counters_digest, figure_digest, profile_digest, Goldens};
use sgx_bench_core::runner::{
    registry, run_registry, FigureJob, JobFilter, JobOutcome, JobStatus, Manifest, RunConfig,
};
use sgx_bench_core::sgx_sim::counters;
use sgx_bench_core::sgx_sim::{Counters, Machine};
use sgx_bench_core::BenchProfile;

const GOLDENS_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens/figure_digests.json");

fn load_goldens() -> Goldens {
    let text = std::fs::read_to_string(GOLDENS_PATH)
        .expect("tests/goldens/figure_digests.json must exist (see record_goldens)");
    Goldens::from_json(&text).expect("golden file must parse")
}

/// Assert one run's outcomes match the goldens job-for-job.
fn assert_matches_goldens(goldens: &Goldens, outcomes: &[JobOutcome], label: &str) {
    assert_eq!(goldens.jobs.len(), outcomes.len(), "{label}: registry size changed — re-record goldens deliberately");
    for (g, o) in goldens.jobs.iter().zip(outcomes) {
        assert_eq!(g.id, o.id, "{label}: registry order changed");
        assert_eq!(o.status, JobStatus::Ok, "{label}: job {} did not complete", o.id);
        assert_eq!(
            counters_digest(&o.counters),
            g.counters,
            "{label}: counter totals of job {} drifted from the pre-refactor model",
            o.id
        );
        let prof = o.profile.as_ref().expect("equivalence runs are profiled");
        assert_eq!(
            profile_digest(&o.id, prof),
            g.profile,
            "{label}: cycle attribution of job {} shifted between CostCategory bins",
            o.id
        );
        let got: Vec<(String, String)> =
            o.figures.iter().map(|f| (f.id.clone(), figure_digest(f))).collect();
        assert_eq!(
            got, g.figures,
            "{label}: figure bytes of job {} drifted from the pre-refactor model",
            o.id
        );
    }
}

#[test]
fn sequential_and_parallel_runs_reproduce_pre_refactor_goldens() {
    let goldens = load_goldens();
    assert_eq!(
        goldens.profile,
        BenchProfile::golden_tag(),
        "golden profile drift — goldens and BenchProfile::golden() must agree"
    );
    let reg = registry();
    let profile = BenchProfile::golden();
    let seq = run_registry(&reg, &profile, &RunConfig { jobs: 1, profile: true, ..RunConfig::default() });
    let par = run_registry(&reg, &profile, &RunConfig { jobs: 4, profile: true, ..RunConfig::default() });
    assert_matches_goldens(&goldens, &seq, "sequential");
    assert_matches_goldens(&goldens, &par, "parallel(4)");
    // Stronger than digest equality: the emitted figure and profile bytes
    // themselves must be identical between scheduling modes.
    for (a, b) in seq.iter().zip(&par) {
        let aj: Vec<String> = a.figures.iter().map(|f| f.to_json()).collect();
        let bj: Vec<String> = b.figures.iter().map(|f| f.to_json()).collect();
        assert_eq!(aj, bj, "figure JSON of job {} differs across --jobs", a.id);
        let ap = sgx_bench_core::report::profile_json(&a.id, a.profile.as_ref().unwrap());
        let bp = sgx_bench_core::report::profile_json(&b.id, b.profile.as_ref().unwrap());
        assert_eq!(ap, bp, "profile JSON of job {} differs across --jobs", a.id);
    }
    // And the normalized manifests are byte-identical (raw manifests may
    // differ only in wall seconds).
    assert_eq!(
        Manifest::from_outcomes(&seq).normalized().to_json(),
        Manifest::from_outcomes(&par).normalized().to_json(),
        "normalized manifests must be --jobs-invariant"
    );
}

#[test]
fn per_job_counters_merge_to_whole_run_totals() {
    // Conservation: the scheduler's per-job counter capture partitions
    // the stream of dropped machines; merging the parts must equal a
    // whole-run accumulation of the same jobs. Uses a fast job subset so
    // the property check stays cheap next to the golden sweep above.
    let reg = registry();
    let profile = BenchProfile::golden();
    let filter = JobFilter {
        only: vec!["fig07".into(), "fig12".into(), "ext_aggregation".into()],
        skip: vec![],
    };
    let cfg = RunConfig { jobs: 2, filter: filter.clone(), ..RunConfig::default() };
    let outcomes = run_registry(&reg, &profile, &cfg);
    let mut merged = Counters::default();
    for o in &outcomes {
        merged.merge(&o.counters);
    }
    // Whole-run reference: run the same jobs inline on this thread and
    // take the session accumulator once at the end.
    counters::session_take();
    for job in reg.iter().filter(|j| filter.selects(j.id)) {
        let run = job.run;
        let figures = run(&profile);
        drop(figures);
    }
    let whole = counters::session_take();
    assert_eq!(
        format!("{merged:?}"),
        format!("{whole:?}"),
        "merge of per-job counters must equal whole-run counters"
    );
    assert!(whole.accesses() > 0, "the conservation check must cover real work");
}

#[test]
fn machine_and_registry_are_send_clean() {
    // Compile-time proof behind the scheduler: jobs (and the machines
    // they build) may run on any worker thread.
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Machine>();
    assert_send::<Counters>();
    assert_send::<FigureJob>();
    assert_sync::<FigureJob>();
    assert_send::<BenchProfile>();
    assert_sync::<BenchProfile>();
}
