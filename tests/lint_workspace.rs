//! Tier-1 guard: the workspace's own sources must lint clean.
//!
//! Runs the analyzer over every `crates/*/src` tree plus the repo-root
//! `tests/` and fails on any unsuppressed finding. New model-integrity
//! violations — untracked `SimVec` access in operator hot paths,
//! nondeterministic inputs, counter truncation, library panics, unsafe
//! code — therefore break `cargo test` unless they carry a reasoned
//! `// sgx-lint: allow(<rule>) <reason>` marker.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    // CARGO_MANIFEST_DIR = <repo>/crates/sgx-lint, so the repo root is
    // two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("sgx-lint lives two levels below the repo root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "repo root not found at {}",
        root.display()
    );

    let reports = sgx_lint::analyze_paths(&[root.join("crates"), root.join("tests")]);

    let mut findings = Vec::new();
    for (_, report) in &reports {
        for f in &report.findings {
            findings.push(format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message));
        }
    }
    assert!(
        reports.len() > 50,
        "lint walk saw only {} files; wrong root?",
        reports.len()
    );
    assert!(
        findings.is_empty(),
        "sgx-lint found {} unsuppressed finding(s):\n{}",
        findings.len(),
        findings.join("\n")
    );
}
