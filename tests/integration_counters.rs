//! Counter-attribution tests: every `Counters` field the simulator charges
//! is surfaced and constrained here, so a counter cannot silently decouple
//! from the figures. This file is also the attribution witness for the
//! `counter-conservation` lint rule — each field read below proves the
//! charge is observable outside `sgx-sim`.

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;
use sgx_bench_core::sgx_sim::sync::SdkMutexQueue;
use sgx_bench_core::sgx_sim::FaultProfile;

fn tiny_hw() -> HwConfig {
    xeon_gold_6326().scaled(16)
}

/// A store-heavy random workload whose footprint spills every cache level.
fn churn(m: &mut Machine, n: usize, ops: usize) {
    let mut v = m.alloc::<u64>(n);
    m.run(|c| {
        let mut x = 9u64;
        for _ in 0..ops {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (x >> 33) as usize % n;
            if x & 1 == 0 {
                v.set(c, i, x);
            } else {
                let _ = v.get(c, i);
            }
        }
    });
}

/// Memory-hierarchy conservation: every charged access resolves in at most
/// one cache level, fill sub-categories never exceed total fills, and the
/// enclave working set really pays MEE fills.
#[test]
fn hierarchy_counters_conserve() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    churn(&mut m, 200_000, 120_000);
    let c = m.counters();
    assert_eq!(c.accesses(), c.loads + c.stores);
    assert!(c.loads > 0 && c.stores > 0);
    let resolved = c.l1_hits + c.l2_hits + c.l3_hits + c.dram_fills;
    assert!(resolved > 0, "accesses must resolve somewhere");
    assert!(resolved <= c.accesses(), "one resolution per access: {resolved} vs {}", c.accesses());
    assert!(c.l1_hits > 0 && c.l2_hits > 0 && c.l3_hits > 0, "footprint spans all levels");
    assert!(c.dram_fills > 0);
    assert!(c.epc_fills <= c.dram_fills, "MEE fills are a subset of DRAM fills");
    assert!(c.epc_fills > 0, "enclave-resident data must pay MEE fills");
    assert!(c.prefetched_fills <= c.dram_fills);
    assert!(c.remote_fills <= c.dram_fills);
    assert!(c.writebacks > 0, "dirty lines must eventually write back");
    assert!(c.writebacks <= c.stores, "a write-back needs at least one dirtying store");
    assert!(c.tlb_misses > 0, "200k-element footprint exceeds the TLB");
    assert!(c.tlb_misses <= c.accesses());
}

/// Compute counters are exact: `compute`/`vec_compute` attribute one op
/// per op, and issue groups are counted per enclave close.
#[test]
fn compute_and_group_counters_are_exact() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    let v = m.alloc::<u64>(1024);
    m.run(|c| {
        c.compute(123);
        c.vec_compute(45);
        for _ in 0..7 {
            c.group(|c| {
                let _ = v.get(c, 3);
                let _ = v.get(c, 700);
            });
        }
    });
    let c = m.counters();
    assert_eq!(c.alu_ops, 123);
    assert_eq!(c.vec_ops, 45);
    assert_eq!(c.enclave_groups, 7, "one count per closed enclave issue group");
}

/// Stream reads move whole cache lines: the `stream_lines` counter tracks
/// the streamed footprint, and sequential fills engage the prefetcher.
#[test]
fn stream_lines_cover_the_streamed_footprint() {
    let n = 64_000usize;
    let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
    let v = m.alloc::<u64>(n);
    m.run(|c| {
        v.read_stream(c, 0..n, |_, _, _| {});
    });
    let c = m.counters();
    let lines = (n * 8 / 64) as u64;
    assert!(c.stream_lines >= lines, "streamed {} of {lines} lines", c.stream_lines);
    assert!(c.stream_lines <= 2 * lines + 2, "streamed {} of {lines} lines", c.stream_lines);
    assert!(c.prefetched_fills > 0, "sequential streaming must engage the prefetcher");
    assert!(c.prefetched_fills <= c.dram_fills);
}

/// Transition accounting: an ECALL is an entry/exit pair, a fault-free
/// OCALL is exactly two crossings, and native mode never transitions.
#[test]
fn transition_counters_are_exact() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    m.ecall();
    assert_eq!(m.counters().transitions, 2);
    m.run(|c| {
        let retries = c.ocall();
        assert_eq!(retries, 0, "no fault engine, no retries");
    });
    let c = m.counters();
    assert_eq!(c.transitions, 4, "ECALL pair + OCALL pair");
    assert_eq!(c.ocall_retries, 0);

    let mut native = Machine::new(tiny_hw(), Setting::PlainCpu);
    native.ecall();
    churn(&mut native, 10_000, 5_000);
    assert_eq!(native.counters().transitions, 0, "native code never crosses");
    assert_eq!(native.counters().aex_events, 0);
}

/// SDK-mutex contention: every futex sleep in enclave mode is an OCALL
/// round trip, so `transitions >= 2 * futex_waits`.
#[test]
fn futex_waits_are_charged_under_contention() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    let v = m.alloc::<u64>(4096);
    let mut q = SdkMutexQueue::default();
    m.parallel_tasks(&[0, 1, 2, 3], &mut q, 400, |c, t| {
        let _ = v.get(c, (t * 13) % 4096);
    });
    let c = m.counters();
    assert!(c.futex_waits > 0, "4 workers on one mutex must contend");
    assert!(
        c.transitions >= 2 * c.futex_waits,
        "each enclave futex sleep is an OCALL out + transition back ({} vs {})",
        c.transitions,
        c.futex_waits
    );
}

/// EDMM: pages allocated after sealing are committed on first touch, one
/// count per page; pre-seal pages are free.
#[test]
fn edmm_pages_count_post_seal_touches() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    churn(&mut m, 8_192, 4_000);
    m.seal_enclave();
    assert_eq!(m.counters().edmm_pages, 0, "sealing alone commits nothing");
    let n = 16_384usize; // 128 KiB = 32 pages of u64s
    let mut v = m.alloc::<u64>(n);
    m.run(|c| {
        for i in 0..n {
            v.set(c, i, i as u64);
        }
    });
    let c = m.counters();
    let pages = (n * 8 / 4096) as u64;
    assert!(c.edmm_pages >= pages, "touched {pages} post-seal pages, counted {}", c.edmm_pages);
    assert!(c.edmm_pages <= pages + 2);
}

/// SGXv1 paging: a working set beyond the resident budget faults.
#[test]
fn epc_page_faults_fire_beyond_residency() {
    let hw = tiny_hw().sgxv1();
    let over_budget = (hw.paging.resident_bytes / 8) as usize * 2;
    let mut m = Machine::new(hw, Setting::SgxDataInEnclave);
    churn(&mut m, over_budget, 60_000);
    let c = m.counters();
    assert!(c.epc_page_faults > 0, "working set 2x the resident budget must page");
}

/// NUMA: data homed on the remote socket fills over UPI.
#[test]
fn remote_fills_cross_sockets() {
    let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
    let n = 100_000usize;
    let v = m.alloc_on_node::<u64>(n, 1);
    m.run_on(0, |c| {
        let mut x = 5u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let _ = v.get(c, (x >> 33) as usize % n);
        }
    });
    let c = m.counters();
    assert!(c.remote_fills > 0, "remote-homed data must fill over UPI");
    assert!(c.remote_fills <= c.dram_fills);
}

// ---------------------------------------------------------------------------
// Cycle-attribution profiler conservation suite: with `--profile` semantics
// (profiling enabled on the session), the per-phase counter deltas must
// partition the machine's counters *exactly*, and the phase × category
// cycle sums must reconcile with the total charged cycles.
// ---------------------------------------------------------------------------

use sgx_bench_core::sgx_sim::{counters, profile};

/// Run `work` under a fresh enabled profile + counter session; returns the
/// captured profile, the counter totals of every machine dropped inside,
/// and `work`'s result.
fn with_profile<R>(work: impl FnOnce() -> R) -> (profile::Profile, Counters, R) {
    profile::set_enabled(true);
    let _ = profile::session_take();
    let _ = counters::session_take();
    let r = work();
    profile::set_enabled(false);
    let p = profile::session_take();
    let c = counters::session_take();
    (p, c, r)
}

/// The two conservation invariants of `sgx_sim::profile`.
fn assert_conserves(p: &profile::Profile, c: &Counters, label: &str) {
    // u64 counters: the snapshot deltas telescope, so the partition is
    // exact — field for field.
    assert_eq!(
        format!("{:?}", p.total_counters()),
        format!("{c:?}"),
        "{label}: per-phase counter deltas must partition the machine counters"
    );
    // f64 cycles: binning regroups the same additions, so only float
    // re-association separates the two sums.
    let total = p.total_cycles();
    let charged = p.charged_cycles;
    let eps = charged.abs().max(1.0) * 1e-9;
    assert!(
        (total - charged).abs() <= eps,
        "{label}: phase x category cycles {total} drifted from charged {charged}"
    );
    assert!(charged > 0.0, "{label}: the workload must charge real cycles");
}

/// Join workload: every RHO phase appears, and the whole run conserves.
#[test]
fn profile_conserves_for_rho_join() {
    let (p, c, stats) = with_profile(|| {
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let r = gen_pk_relation(&mut m, 4000, 1);
        let s = gen_fk_relation(&mut m, 16_000, 4000, 2);
        sgx_bench_core::sgx_joins::rho::rho_join(
            &mut m,
            &r,
            &s,
            &JoinConfig::new(2).with_radix_bits(6),
        )
    });
    assert!(stats.matches > 0);
    assert_conserves(&p, &c, "rho_join");
    for phase in ["hist_r", "copy_r", "hist_s", "copy_s", "build", "probe"] {
        assert!(p.phases.contains_key(phase), "phase {phase} missing: {:?}", p.phases.keys());
    }
    // An enclave join must spend real cycles in the MEE bin somewhere.
    let mee: f64 = p.phases.values().map(|ph| ph.cycles.mee).sum();
    assert!(mee > 0.0, "enclave-resident join data must pay MEE cycles");
}

/// Scan workload: measured passes land in the "scan" scope, warm-up work
/// stays unscoped, and the run conserves.
#[test]
fn profile_conserves_for_column_scan() {
    let (p, c, stats) = with_profile(|| {
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let col = gen_column(&mut m, 1 << 20, 3);
        column_scan(
            &mut m,
            &col,
            32,
            96,
            ScanOutput::BitVector,
            &ScanConfig::new(2).with_warmup(1),
        )
    });
    assert!(stats.matches > 0);
    assert_conserves(&p, &c, "column_scan");
    let scan = p.phases.get("scan").expect("measured passes carry the scan scope");
    assert!(scan.cycles.total() > 0.0);
    assert!(
        p.phases.contains_key("(unscoped)"),
        "warm-up charges stay outside the scan scope: {:?}",
        p.phases.keys()
    );
}

/// Faulted run: AEX handler time lands in the fault bin, transitions in
/// the transition bin, and the storm still conserves exactly.
#[test]
fn profile_conserves_under_aex_storm() {
    let (p, c, ()) = with_profile(|| {
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        m.install_faults(FaultProfile::new(11).with_aex_storm(20_000.0));
        m.ecall();
        churn(&mut m, 50_000, 80_000);
    });
    assert!(c.aex_events > 0, "the storm must fire for this test to mean anything");
    assert_conserves(&p, &c, "aex_storm");
    let fault: f64 = p.phases.values().map(|ph| ph.cycles.fault).sum();
    assert!(fault > 0.0, "AEX handler time must land in the fault bin");
    let transition: f64 = p.phases.values().map(|ph| ph.cycles.transition).sum();
    assert!(transition > 0.0, "the ECALL must land in the transition bin");
}

/// Fig 6 cross-check: the profiler's "build" total equals the busy-cycle
/// delta the join's own phase breakdown measures (same commits, so only
/// float re-association separates them); "probe" is bounded by the
/// breakdown's probe figure, which additionally includes dequeue waits.
#[test]
fn profile_build_phase_matches_fig6_breakdown() {
    let (p, _c, stats) = with_profile(|| {
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let r = gen_pk_relation(&mut m, 4000, 1);
        let s = gen_fk_relation(&mut m, 16_000, 4000, 2);
        sgx_bench_core::sgx_joins::rho::rho_join(
            &mut m,
            &r,
            &s,
            &JoinConfig::new(1).with_radix_bits(4),
        )
    });
    let build_prof = p.phases["build"].cycles.total();
    let build_stat = stats.phase("build");
    assert!(build_stat > 0.0);
    let rel = (build_prof - build_stat).abs() / build_stat;
    assert!(rel < 1e-9, "profile build {build_prof} vs breakdown build {build_stat} (rel {rel})");
    let probe_prof = p.phases["probe"].cycles.total();
    let probe_stat = stats.phase("probe");
    assert!(probe_prof > 0.0);
    assert!(
        probe_prof <= probe_stat * (1.0 + 1e-9),
        "profile probe {probe_prof} must not exceed breakdown probe {probe_stat}"
    );
}

/// Fault engine: an AEX storm delivers interrupts, and every AEX is a
/// two-crossing enclave round trip.
#[test]
fn aex_events_attribute_their_transitions() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    m.install_faults(FaultProfile::new(11).with_aex_storm(20_000.0));
    churn(&mut m, 50_000, 80_000);
    let c = m.counters();
    assert!(c.aex_events > 0, "a storm over a long phase must fire");
    assert!(
        c.transitions >= 2 * c.aex_events,
        "each AEX exits and resumes ({} vs {})",
        c.transitions,
        c.aex_events
    );
}
