//! End-to-end figure regeneration at a tiny profile: every figure runs,
//! and the *qualitative shapes* the paper reports hold (who wins, bar
//! orderings, where crossovers fall). These are the reproduction's
//! headline assertions.

use sgx_bench_core::experiments as ex;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;
use sgx_bench_core::{BenchProfile, Figure};

fn tiny() -> BenchProfile {
    BenchProfile { hw: xeon_gold_6326().scaled(256), data_div: 256, reps: 1 }
}

/// Mean of series `s` at x-position `i`.
fn v(f: &Figure, s: &str, i: usize) -> f64 {
    f.series_by_label(s)
        .unwrap_or_else(|| panic!("series {s} in {}", f.id))
        .points[i]
        .expect("point measured")
        .mean
}

#[test]
fn fig01_shape_sgxv1_design_loses_optimization_recovers() {
    let f = ex::fig01_intro(&tiny());
    // x: [CrkJoin, RHO, RHO optimized, RHO native]
    let crk = v(&f, "throughput", 0);
    let rho = v(&f, "throughput", 1);
    let rho_opt = v(&f, "throughput", 2);
    let native = v(&f, "throughput", 3);
    assert!(crk < rho, "SGXv1-optimized join must lose to RHO: {crk} vs {rho}");
    assert!(rho < rho_opt, "optimization must help: {rho} vs {rho_opt}");
    assert!(rho_opt > 0.75 * native, "optimized RHO approaches native: {rho_opt} vs {native}");
}

#[test]
fn fig03_shape_crkjoin_slowest_hash_joins_hit_hardest() {
    let f = ex::fig03_overview(&tiny());
    // x: [CrkJoin, PHT, RHO, MWAY, INL]
    let sgx = |i| v(&f, "SGX (Data in Enclave)", i);
    let native = |i| v(&f, "Plain CPU", i);
    for i in 1..5 {
        assert!(sgx(i) > sgx(0), "CrkJoin must be the slowest enclave join (bar {i})");
    }
    assert!(sgx(2) > 4.0 * sgx(0), "RHO should be several times CrkJoin");
    // Hash joins (PHT, RHO) lose relatively more than MWAY/INL.
    let red = |i: usize| sgx(i) / native(i);
    assert!(red(1) < red(3) && red(1) < red(4), "PHT reduction largest");
    assert!(red(2) < red(3), "RHO reduction larger than MWAY");
}

#[test]
fn fig04_shape_random_access_grows_with_table_build_worst() {
    let (left, right) = ex::fig04_pht(&tiny());
    let rel = |i| v(&left, "SGX / plain CPU", i);
    // At 1/256 scale the 1 MB point is only partially cache-resident (the
    // L1 hits its clamp floor), so the parity bound is looser than the
    // paper's 95%; the full profile reproduces it (see EXPERIMENTS.md).
    assert!(rel(0) > 0.6, "smallest build closest to parity, got {}", rel(0));
    assert!(rel(3) < 0.7, "100 MB build well below native, got {}", rel(3));
    assert!(rel(3) < rel(0), "relative performance must fall with table size");
    let build_slow = v(&right, "SGX (Data in Enclave)", 0) / v(&right, "Plain CPU", 0);
    let probe_slow = v(&right, "SGX (Data in Enclave)", 1) / v(&right, "Plain CPU", 1);
    assert!(build_slow > probe_slow, "build suffers more: {build_slow:.2} vs {probe_slow:.2}");
}

#[test]
fn fig05_shape_cache_parity_then_reads_53_writes_worse() {
    let f = ex::fig05_random_access(&tiny());
    let reads = |i| v(&f, "random reads (pointer chase)", i);
    let writes = |i| v(&f, "random writes (LCG)", i);
    assert!(reads(0) > 0.9 && writes(0) > 0.9, "in-cache parity");
    let last = f.xs.len() - 1;
    assert!((0.4..0.7).contains(&reads(last)), "reads bottom near 53%, got {}", reads(last));
    assert!(writes(last) < 0.45, "writes below 40-45%, got {}", writes(last));
    assert!(writes(last) < reads(last), "writes hit harder than reads");
}

#[test]
fn fig06_shape_histogram_phases_dominate_and_unrolling_repairs() {
    let f = ex::fig06_rho_breakdown(&tiny());
    // Histogram phases blow up in the enclave …
    let hist_slow = v(&f, "SGX naive", 0) / v(&f, "Plain CPU", 0);
    assert!(hist_slow > 2.0, "naive histogram phase slowdown {hist_slow:.2}");
    // … and the optimization repairs hist and copy substantially.
    for i in 0..4 {
        let naive = v(&f, "SGX naive", i);
        let opt = v(&f, "SGX optimized", i);
        assert!(opt < naive, "phase {i} should improve with unrolling");
    }
}

#[test]
fn fig07_double_run_is_byte_identical() {
    // Determinism regression: the whole pipeline — data generation,
    // simulator event stream, statistics, JSON rendering — must be a pure
    // function of the profile. Two in-process runs have to serialize to
    // the exact same bytes; any drift (a stray `thread_rng`, a
    // RandomState map whose iteration order leaks into the output, a
    // float printed from an unordered reduction) fails here before it
    // poisons figure comparisons.
    let a = ex::fig07_histogram(&tiny()).to_json();
    let b = ex::fig07_histogram(&tiny()).to_json();
    assert_eq!(a, b, "repeated fig07 runs must serialize byte-identically");
}

#[test]
fn fig07_shape_225_percent_then_20_percent() {
    let f = ex::fig07_histogram(&tiny());
    for i in 0..f.xs.len() {
        let native = v(&f, "Plain CPU", i);
        let inside = v(&f, "SGX Data in Enclave", i);
        let outside = v(&f, "SGX Data outside Enclave", i);
        let unrolled = v(&f, "SGX unrolled x8", i);
        let simd = v(&f, "SGX SIMD x32", i);
        assert!(inside > 2.0 * native, "bin {i}: naive collapse");
        let loc = inside / outside;
        assert!((0.8..1.25).contains(&loc), "bin {i}: data location irrelevant, got {loc:.2}");
        assert!(unrolled < 1.45 * native, "bin {i}: unrolled within tens of %");
        assert!(simd <= unrolled * 1.05, "bin {i}: SIMD at least as good");
    }
}

#[test]
fn fig08_shape_optimization_helps_both_rho_ahead() {
    let f = ex::fig08_optimized(&tiny());
    for i in 0..2 {
        assert!(v(&f, "SGX optimized", i) > v(&f, "SGX naive", i), "bar {i} improves");
    }
    let rho_opt_rel = v(&f, "SGX optimized", 0) / v(&f, "Plain CPU", 0);
    let pht_opt_rel = v(&f, "SGX optimized", 1) / v(&f, "Plain CPU", 1);
    assert!(rho_opt_rel > 0.7, "optimized RHO near native, got {rho_opt_rel:.2}");
    assert!(rho_opt_rel > pht_opt_rel, "PHT stays random-access-bound");
    assert!(
        v(&f, "SGX optimized", 0) > v(&f, "SGX optimized", 1),
        "RHO ahead of PHT inside the enclave"
    );
}

#[test]
fn fig09_shape_numa_misplacement_wastes_cores() {
    let f = ex::fig09_numa_join(&tiny());
    let t = |i| v(&f, "throughput", i);
    // x: [single node, fully remote, half local, native NUMA local]
    assert!(t(1) < 0.92 * t(0), "fully remote clearly slower than single-node");
    // Paper: adding the remote socket's 16 cores does not help at all (the
    // data socket's bandwidth binds). Our scaled model is core-bound, so a
    // partial gain remains — but far below the 2x the cores would suggest.
    assert!(t(2) < 1.7 * t(0), "half the added cores are wasted");
    assert!(t(3) > 1.6 * t(0), "NUMA-local optimum near 2x");
    assert!(t(1) < 0.5 * t(3) && t(2) < 0.7 * t(3), "both extremes far from optimal");
}

#[test]
fn fig10_shape_mutex_collapse_only_in_enclave() {
    let f = ex::fig10_queues(&tiny());
    // x: [lock-free, SDK mutex]
    let native_gap = v(&f, "Plain CPU", 1) / v(&f, "Plain CPU", 0);
    let sgx_gap = v(&f, "SGX (Data in Enclave)", 1) / v(&f, "SGX (Data in Enclave)", 0);
    assert!(native_gap > 0.8, "outside the enclave the queue barely matters, got {native_gap:.2}");
    assert!(sgx_gap < 0.5, "inside, the SDK mutex collapses throughput, got {sgx_gap:.2}");
}

#[test]
fn fig11_shape_edmm_decimates_throughput() {
    let f = ex::fig11_edmm(&tiny());
    let stat = v(&f, "SGX (Data in Enclave)", 0);
    let dynamic = v(&f, "SGX (Data in Enclave)", 1);
    let rel = dynamic / stat;
    assert!(rel < 0.25, "dynamic enclave growth should lose ~95% (paper 4.5%), got {rel:.2}");
}

#[test]
fn fig12_shape_scans_near_native_everywhere() {
    let f = ex::fig12_scan_single(&tiny());
    let last = f.xs.len() - 1;
    // In cache: all three settings equal and faster than DRAM.
    for s in ["SGX (Data in Enclave)", "SGX (Data outside Enclave)"] {
        let rel0 = v(&f, s, 0) / v(&f, "Plain CPU", 0);
        assert!(rel0 > 0.97, "{s} in-cache parity, got {rel0:.3}");
        let rel_dram = v(&f, s, last) / v(&f, "Plain CPU", last);
        assert!(rel_dram > 0.9, "{s} out-of-cache within ~3-10%, got {rel_dram:.3}");
    }
    assert!(v(&f, "Plain CPU", 0) > v(&f, "Plain CPU", last), "cache faster than DRAM");
}

#[test]
fn fig13_shape_scaling_identical_and_saturating() {
    let f = ex::fig13_scan_scaling(&tiny());
    let last = f.xs.len() - 1;
    let native = |i| v(&f, "Plain CPU", i);
    let sgx = |i| v(&f, "SGX (Data in Enclave)", i);
    assert!(native(2) > 3.0 * native(0), "early scaling near-linear");
    assert!(native(last) < 16.0 * native(0) * 0.9, "saturates at the BW cap");
    for i in 0..=last {
        let rel = sgx(i) / native(i);
        assert!(rel > 0.9, "thread point {i}: enclave scaling equal, got {rel:.3}");
    }
}

#[test]
fn fig14_shape_write_rate_hits_both_settings_equally() {
    let f = ex::fig14_selectivity(&tiny());
    let last = f.xs.len() - 1;
    let native = |i| v(&f, "Plain CPU", i);
    let sgx = |i| v(&f, "SGX (Data in Enclave)", i);
    assert!(native(last) < native(0), "write volume lowers read throughput");
    let gap0 = sgx(0) / native(0);
    let gap_last = sgx(last) / native(last);
    assert!(
        gap_last > gap0 - 0.05,
        "the enclave gap must not widen with write rate: {gap0:.3} -> {gap_last:.3}"
    );
}

#[test]
fn fig15_shape_single_digit_overheads_reads_worst() {
    let f = ex::fig15_linear(&tiny());
    let last = f.xs.len() - 1;
    for s in ["64-bit read", "512-bit read", "64-bit write", "512-bit write"] {
        let rel = v(&f, s, last);
        assert!(rel > 0.90, "{s}: overhead stays single-digit, got {rel:.3}");
        let in_cache = v(&f, s, 0);
        assert!(in_cache > 0.97, "{s}: in-cache parity, got {in_cache:.3}");
    }
    assert!(
        v(&f, "64-bit read", last) <= v(&f, "512-bit write", last),
        "narrow reads suffer most"
    );
}

#[test]
fn fig16_shape_uce_gap_shrinks_as_upi_saturates() {
    let f = ex::fig16_numa_scan(&tiny());
    let last = f.xs.len() - 1;
    let local = |i| v(&f, "local, plain CPU", i);
    let cross = |i| v(&f, "cross-NUMA, plain CPU", i);
    let sgx = |i| v(&f, "cross-NUMA, SGX", i);
    assert!(cross(last) < local(last), "UPI slower than local DRAM");
    let gap1 = sgx(0) / cross(0);
    let gap16 = sgx(last) / cross(last);
    assert!(gap1 < 0.9, "single-thread UCE tax visible, got {gap1:.2}");
    assert!(gap16 > 0.93, "UCE hidden at saturation, got {gap16:.2}");
    assert!(gap16 > gap1, "relative performance improves with threads");
}

#[test]
fn fig17_shape_optimization_closes_most_of_the_query_gap() {
    let f = ex::fig17_tpch(&tiny());
    let mut native_total = 0.0;
    let mut naive_total = 0.0;
    let mut opt_total = 0.0;
    for i in 0..f.xs.len() {
        let native = v(&f, "Plain CPU", i);
        let naive = v(&f, "SGX naive", i);
        let opt = v(&f, "SGX optimized", i);
        assert!(naive > native, "query {i}: enclave costs more");
        assert!(opt <= naive, "query {i}: optimization never hurts");
        native_total += native;
        naive_total += naive;
        opt_total += opt;
    }
    let gap_naive = naive_total / native_total - 1.0;
    let gap_opt = opt_total / native_total - 1.0;
    assert!(gap_opt < gap_naive, "optimization reduces the average gap");
    assert!(gap_opt < 0.5, "optimized queries near native (paper: 15%), got {gap_opt:.2}");
}

#[test]
fn ablation_sgxv1_ordering_flips() {
    let f = ex::sgxv1_ablation(&tiny());
    // x: [RHO, CrkJoin]
    let v2_rho = v(&f, "SGXv2 EPC (large)", 0);
    let v2_crk = v(&f, "SGXv2 EPC (large)", 1);
    let v1_rho = v(&f, "SGXv1 EPC (small, paging)", 0);
    let v1_crk = v(&f, "SGXv1 EPC (small, paging)", 1);
    assert!(v2_rho > v2_crk, "on SGXv2, RHO wins");
    assert!(v1_crk > v1_rho, "on SGXv1, CrkJoin wins");
}

#[test]
fn ext_skew_shape_two_competing_effects() {
    let f = ex::ext_skew(&tiny());
    let last = f.xs.len() - 1;
    // Moderate skew (theta <= 0.75) is harmless in both modes: hot keys
    // concentrate probes on cached buckets.
    for s in ["Plain CPU", "SGX (Data in Enclave)"] {
        for i in 0..last {
            assert!(
                v(&f, s, i) >= 0.93 * v(&f, s, 0),
                "{s}: moderate skew should degrade gracefully at point {i}"
            );
        }
    }
    // At heavy skew the two effects resolve differently per mode: native
    // nets a win (hot build tuples stay cached), while in the enclave the
    // partition imbalance is amplified by MEE-priced writes on the
    // overloaded thread — a bounded loss, not a collapse.
    let native = |i: usize| v(&f, "Plain CPU", i);
    let sgx = |i: usize| v(&f, "SGX (Data in Enclave)", i);
    assert!(native(last) >= native(0), "native: hot-key caching should net a win at heavy skew");
    assert!(sgx(last) >= 0.80 * sgx(0), "SGX: heavy-skew imbalance should cost at most ~20%");
    assert!(sgx(last) < sgx(0), "SGX: MEE-amplified imbalance should show at heavy skew");
}

#[test]
fn ext_aggregation_shape_section_4_2_applies_to_group_by() {
    let f = ex::ext_aggregation(&tiny());
    for i in 0..f.xs.len() {
        let native = v(&f, "Plain CPU", i);
        let naive = v(&f, "SGX naive", i);
        let opt = v(&f, "SGX optimized", i);
        assert!(naive < 0.5 * native, "groups {i}: naive group-by collapses in enclave");
        assert!(opt > 1.5 * naive, "groups {i}: unrolling recovers group-by");
    }
}

#[test]
fn ext_dual_socket_shape_striping_doubles_bandwidth() {
    let f = ex::ext_dual_socket_scan(&tiny());
    let single = v(&f, "throughput", 0);
    let striped = v(&f, "throughput", 1);
    let lopsided = v(&f, "throughput", 2);
    assert!(striped > 1.7 * single, "striped EPC should approach 2x: {striped} vs {single}");
    assert!(lopsided < striped, "misplaced allocations lose to NUMA-aware striping");
}

#[test]
fn ext_packed_shape_narrow_widths_scan_more_values() {
    let f = ex::ext_packed_scan(&tiny());
    // x: [4, 8, 12, 16, 32] bits
    let native = |i| v(&f, "Plain CPU", i);
    let sgx = |i| v(&f, "SGX (Data in Enclave)", i);
    assert!(native(0) > 1.5 * native(4), "4-bit packing far ahead of 32-bit");
    for i in 0..f.xs.len() {
        let rel = sgx(i) / native(i);
        assert!(rel > 0.85, "width {i}: enclave packed scans near parity, got {rel:.3}");
    }
}

#[test]
fn table1_emits() {
    let f = ex::table1(&tiny());
    assert!(!f.xs.is_empty());
    assert!(f.render().contains("Sockets"));
}

#[test]
fn ext_aex_storm_is_deterministic_across_runs() {
    // The fault engine is part of the determinism contract: two
    // in-process runs with the same profile must replay the same AEX
    // schedule, OCALL failures, and EPC balloon, down to the serialized
    // bytes of the figure.
    let a = ex::ext_aex_storm(&tiny()).to_json();
    let b = ex::ext_aex_storm(&tiny()).to_json();
    assert_eq!(a, b, "repeated storm runs must serialize byte-identically");
}

#[test]
fn ext_aex_storm_shape_enclave_collapses_first() {
    let f = ex::ext_aex_storm(&tiny());
    // x: [0, 20, 80, 320] interrupts per Mcycle, all series normalized to
    // their own calm baseline.
    let last = f.xs.len() - 1;
    for w in ["join", "scan"] {
        let native = |i| v(&f, &format!("{w}, Plain CPU"), i);
        let sgx = |i| v(&f, &format!("{w}, SGX (Data in Enclave)"), i);
        assert!((native(0) - 1.0).abs() < 1e-9, "{w}: calm baseline normalizes to 1.0");
        assert!((sgx(0) - 1.0).abs() < 1e-9, "{w}: calm baseline normalizes to 1.0");
        for i in 1..=last {
            assert!(sgx(i) < native(i), "{w}@{i}: storm must hurt the enclave more");
            assert!(sgx(i) <= sgx(i - 1) + 1e-9, "{w}: enclave decline must be monotone");
        }
        assert!(
            sgx(last) < 0.5,
            "{w}: enclave must collapse under the top storm rate, kept {:.3}",
            sgx(last)
        );
        assert!(native(last) > sgx(last) * 2.0, "{w}: native degrades far more gracefully");
    }
    // The fault counters must surface in the figure JSON so downstream
    // tooling can attribute the slowdown without rerunning.
    let json = f.to_json();
    assert!(json.contains("aex_events="), "figure JSON must carry aex_events");
    assert!(json.contains("ocall_retries="), "figure JSON must carry ocall_retries");
    assert!(json.contains("transitions="), "figure JSON must carry the transitions attribution");
}
