//! Cross-crate integration tests: every join algorithm agrees with the
//! reference join on the same inputs, in every execution setting, and
//! property-based inputs cannot break them.

use proptest::prelude::*;
use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::{
    crkjoin::crk_join, inl::inl_join, mway::mway_join, pht::pht_join, rho::rho_join,
};
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;

fn tiny_hw() -> HwConfig {
    xeon_gold_6326().scaled(64)
}

/// Run all five joins on the same data and return (matches, checksum)
/// per algorithm.
fn all_joins(setting: Setting, nr: usize, ns: usize, seed: u64) -> Vec<(String, u64, u64)> {
    let mut out = Vec::new();
    for algo in ["rho", "pht", "mway", "inl", "crk"] {
        let mut m = Machine::new(tiny_hw(), setting);
        let mut r = gen_pk_relation(&mut m, nr, seed);
        let mut s = gen_fk_relation(&mut m, ns, nr, seed + 1);
        let cfg = JoinConfig::new(4).with_radix_bits(5);
        let stats = match algo {
            "rho" => rho_join(&mut m, &r, &s, &cfg),
            "pht" => pht_join(&mut m, &r, &s, &cfg),
            "mway" => mway_join(&mut m, &r, &s, &cfg),
            "inl" => inl_join(&mut m, &r, &s, &cfg),
            _ => crk_join(&mut m, &mut r, &mut s, &cfg),
        };
        out.push((algo.to_string(), stats.matches, stats.checksum));
    }
    out
}

#[test]
fn all_joins_agree_in_all_settings() {
    for setting in Setting::all() {
        let mut m = Machine::new(tiny_hw(), setting);
        let r = gen_pk_relation(&mut m, 3000, 5);
        let s = gen_fk_relation(&mut m, 12_000, 3000, 6);
        let (m_ref, c_ref) = reference_join(&r, &s);
        for (algo, matches, checksum) in all_joins(setting, 3000, 12_000, 5) {
            assert_eq!(matches, m_ref, "{algo} matches in {setting:?}");
            assert_eq!(checksum, c_ref, "{algo} checksum in {setting:?}");
        }
    }
}

#[test]
fn settings_do_not_change_answers_only_time() {
    let native = all_joins(Setting::PlainCpu, 2000, 8000, 9);
    let enclave = all_joins(Setting::SgxDataInEnclave, 2000, 8000, 9);
    assert_eq!(native, enclave, "results must be setting-independent");
}

#[test]
fn optimization_and_queues_preserve_results() {
    let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
    let r = gen_pk_relation(&mut m, 4000, 1);
    let s = gen_fk_relation(&mut m, 16_000, 4000, 2);
    let (m_ref, c_ref) = reference_join(&r, &s);
    for optimized in [false, true] {
        for queue in [QueueKind::LockFree, QueueKind::SdkMutex, QueueKind::SpinLock] {
            for materialize in [false, true] {
                let cfg = JoinConfig::new(6)
                    .with_radix_bits(7)
                    .with_optimization(optimized)
                    .with_queue(queue)
                    .with_materialization(materialize);
                let stats = rho_join(&mut m, &r, &s, &cfg);
                assert_eq!(stats.matches, m_ref);
                assert_eq!(stats.checksum, c_ref);
                if materialize {
                    let total: usize = stats.output_runs.iter().map(|r| r.len()).sum();
                    assert_eq!(total as u64, m_ref, "runs must cover all matches");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for arbitrary relation sizes and seeds, every join
    /// algorithm produces exactly the reference matches and checksum.
    #[test]
    fn joins_match_reference_on_arbitrary_inputs(
        nr in 1usize..2000,
        s_factor in 1usize..6,
        seed in 0u64..1000,
        threads in 1usize..8,
        bits in 2u32..9,
    ) {
        let ns = nr * s_factor;
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let mut r = gen_pk_relation(&mut m, nr, seed);
        let mut s = gen_fk_relation(&mut m, ns, nr, seed + 1);
        let (m_ref, c_ref) = reference_join(&r, &s);
        let cfg = JoinConfig::new(threads).with_radix_bits(bits);
        let results = [
            rho_join(&mut m, &r, &s, &cfg),
            pht_join(&mut m, &r, &s, &cfg),
            mway_join(&mut m, &r, &s, &cfg),
            inl_join(&mut m, &r, &s, &cfg),
            crk_join(&mut m, &mut r, &mut s, &cfg),
        ];
        for st in results {
            prop_assert_eq!(st.matches, m_ref);
            prop_assert_eq!(st.checksum, c_ref);
        }
    }

    /// Property: join wall time is positive and monotonic in probe size
    /// (more input cannot be free).
    #[test]
    fn join_cost_grows_with_input(nr in 200usize..800, seed in 0u64..100) {
        let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, seed);
        let s1 = gen_fk_relation(&mut m, nr, nr, seed + 1);
        let s4 = gen_fk_relation(&mut m, 8 * nr, nr, seed + 2);
        let cfg = JoinConfig::new(2).with_radix_bits(4);
        let t1 = rho_join(&mut m, &r, &s1, &cfg).wall_cycles;
        let t4 = rho_join(&mut m, &r, &s4, &cfg).wall_cycles;
        prop_assert!(t1 > 0.0);
        prop_assert!(t4 > t1, "8x probe rows must cost more: {} vs {}", t4, t1);
    }
}
