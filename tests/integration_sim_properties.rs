//! Property tests on the simulator itself: determinism, monotonicity, and
//! conservation laws that every experiment implicitly relies on.

use proptest::prelude::*;
use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_sim::config::xeon_gold_6326;

fn tiny_hw() -> HwConfig {
    xeon_gold_6326().scaled(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism: identical programs produce bit-identical cycle counts.
    #[test]
    fn identical_runs_are_bit_identical(
        n in 1usize..20_000,
        ops in 1usize..5000,
        seed in 0u64..1000,
        setting_ix in 0usize..3,
    ) {
        let setting = Setting::all()[setting_ix];
        let run = || {
            let mut m = Machine::new(tiny_hw(), setting);
            let mut v = m.alloc::<u64>(n);
            m.run(|c| {
                let mut x = seed | 1;
                for _ in 0..ops {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (x >> 33) as usize % n;
                    if x & 1 == 0 {
                        v.rmw(c, i, |e| *e += 1);
                    } else {
                        let _ = v.get(c, i);
                    }
                }
            });
            m.wall_cycles()
        };
        prop_assert_eq!(run().to_bits(), run().to_bits());
    }

    /// Cycles are strictly positive and grow monotonically with the amount
    /// of charged work.
    #[test]
    fn more_work_costs_more(n in 64usize..10_000, seed in 0u64..100) {
        let mut m = Machine::new(tiny_hw(), Setting::SgxDataInEnclave);
        let v = m.alloc::<u64>(n);
        // Warm the caches so all measured passes start from the same
        // state (a cold first pass can legitimately cost more than a
        // longer warm one).
        m.run(|c| {
            for i in 0..n {
                let _ = v.get(c, i);
            }
        });
        let mut costs = Vec::new();
        for reps in [1usize, 2, 4] {
            let before = m.wall_cycles();
            m.run(|c| {
                let mut x = seed | 1;
                for _ in 0..reps * n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let _ = v.get(c, (x >> 33) as usize % n);
                }
            });
            costs.push(m.wall_cycles() - before);
        }
        prop_assert!(costs[0] > 0.0);
        // Warm caches make later passes cheaper per access, but doubling
        // the access count can never reduce the total.
        prop_assert!(costs[1] > costs[0] * 0.99);
        prop_assert!(costs[2] > costs[1] * 0.99);
    }

    /// Load/store counters conserve: every charged accessor bumps exactly
    /// the accesses it performs.
    #[test]
    fn counters_account_every_access(
        loads in 0usize..2000,
        stores in 0usize..2000,
        rmws in 0usize..2000,
    ) {
        let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
        let mut v = m.alloc::<u64>(4096);
        m.run(|c| {
            for i in 0..loads {
                let _ = v.get(c, i % 4096);
            }
            for i in 0..stores {
                v.set(c, i % 4096, i as u64);
            }
            for i in 0..rmws {
                v.rmw(c, i % 4096, |e| *e += 1);
            }
        });
        prop_assert_eq!(m.counters().loads, (loads + rmws) as u64);
        prop_assert_eq!(m.counters().stores, (stores + rmws) as u64);
    }

    /// The enclave never makes anything *faster*: for any mixed workload,
    /// SGX-data-in-enclave wall time ≥ plain-CPU wall time.
    #[test]
    fn enclave_never_faster(
        n in 64usize..30_000,
        ops in 100usize..4000,
        seed in 0u64..300,
    ) {
        let run = |setting: Setting| {
            let mut m = Machine::new(tiny_hw(), setting);
            let mut v = m.alloc::<u64>(n);
            let data = m.alloc::<u64>(n);
            m.run(|c| {
                data.read_stream(c, 0..n.min(ops), |c, i, x| {
                    let idx = (x as usize).wrapping_add(i) % n;
                    v.rmw(c, idx, |e| *e += 1);
                });
                let mut x = seed | 1;
                for _ in 0..ops {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let _ = v.get(c, (x >> 33) as usize % n);
                }
            });
            m.wall_cycles()
        };
        let native = run(Setting::PlainCpu);
        let enclave = run(Setting::SgxDataInEnclave);
        prop_assert!(enclave >= native * 0.999,
            "enclave {} must not beat native {}", enclave, native);
    }

    /// Stream reads deliver every element exactly once, in order.
    #[test]
    fn stream_reads_are_complete_and_ordered(
        n in 1usize..20_000,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
        let mut v = m.alloc::<u64>(n);
        for i in 0..n {
            v.poke(i, i as u64 * 3);
        }
        let start = ((n as f64 * start_frac) as usize).min(n);
        let len = ((n - start) as f64 * len_frac) as usize;
        let range = start..start + len;
        let mut seen = Vec::with_capacity(len);
        m.run(|c| {
            v.read_stream(c, range.clone(), |_, i, x| seen.push((i, x)));
        });
        prop_assert_eq!(seen.len(), len);
        for (k, &(i, x)) in seen.iter().enumerate() {
            prop_assert_eq!(i, start + k);
            prop_assert_eq!(x, (start + k) as u64 * 3);
        }
    }

    /// Parallel phases: wall time equals the max worker when no shared
    /// resource binds, and never exceeds the sum.
    #[test]
    fn phase_wall_between_max_and_sum(workers in 1usize..16, per in 1usize..500) {
        let mut m = Machine::new(tiny_hw(), Setting::PlainCpu);
        let v = m.alloc::<u64>(4096);
        let cores: Vec<usize> = (0..workers).collect();
        let stats = m.parallel(&cores, |c| {
            for i in 0..per * (c.worker() + 1) {
                let _ = v.get(c, (i * 37) % 4096);
            }
        });
        let max = stats.core_cycles.iter().cloned().fold(0.0, f64::max);
        let sum: f64 = stats.core_cycles.iter().sum();
        prop_assert!(stats.wall_cycles >= max * 0.999);
        prop_assert!(stats.wall_cycles <= sum + 1.0);
    }
}
