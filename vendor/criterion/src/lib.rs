//! Offline vendored stand-in for the `criterion` crate.
//!
//! The workspace's benches (`crates/bench/benches/*.rs`, `harness = false`)
//! only need the registration surface: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, throughput,
//! bench_function, finish}`, and `Bencher::iter`. This stub runs each bench
//! closure exactly once and prints a smoke-run line — the simulator's cycle
//! model, not wall-clock timing, is this repo's measurement instrument, so
//! statistical timing fidelity is deliberately out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Top-level bench registry handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: std::marker::PhantomData }
    }
}

/// Declared throughput of a benchmark, for reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; recorded nowhere.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run `f` once with a [`Bencher`], printing a smoke-run line.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { _priv: () };
        f(&mut b);
        println!("bench {}/{}: ok (single smoke iteration)", self.name, id);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    _priv: (),
}

impl Bencher {
    /// Run the routine once and black-box its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let out = routine();
        let _ = std::hint::black_box(out);
    }
}

/// Opaque value barrier, re-exported like upstream criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10).throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_function(format!("fmt-{}", 1), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert_eq!(ran, 1, "Bencher::iter must run the routine exactly once");
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn group_runs_each_closure_once() {
        smoke_group();
    }
}
