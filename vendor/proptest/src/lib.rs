//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest! { #![proptest_config(...)] #[test] fn name(x in strategy) }`
//! macro form, `prop_assert!`/`prop_assert_eq!`, integer/float range
//! strategies, and `proptest::collection::vec`. Case generation is fully
//! deterministic (seeded from the test name and case index), so failures
//! reproduce on every run — no shrinking, no persisted failure files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runner configuration: number of generated cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases the runner generates.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the property named `name`. The stream
    /// depends only on these two values.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)) }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s whose elements come from `elem` and whose
    /// length is drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: elements from `elem`, length uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro form needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Fail the current property case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Define deterministic property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// plain `#[test]` that samples the strategies `cases` times and runs the
/// body; `prop_assert!` failures abort the case with a panic that names
/// the case index (cases are reproducible by construction).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $p = $crate::Strategy::sample(&($s), &mut prop_rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_values_respect_ranges(
            n in 1usize..100,
            x in 0u64..1000,
            f in 0.0f64..1.0,
            v in collection::vec(0u32..50, 0..20),
        ) {
            prop_assert!(n >= 1 && n < 100);
            prop_assert!(x < 1000, "x was {}", x);
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 50));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }

    proptest! {
        #[test]
        fn question_mark_propagates(mut k in 1usize..10) {
            k += 1;
            let r: Result<usize, TestCaseError> = (|| {
                prop_assert!(k >= 2);
                Ok(k)
            })();
            let got = r?;
            prop_assert_eq!(got, k);
        }
    }
}
