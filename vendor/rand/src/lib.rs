//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the exact API surface it consumes: a seedable
//! deterministic generator (`rngs::StdRng`), the [`SeedableRng`] seeding
//! entry point, and the [`RngExt`] sampling methods (`random`,
//! `random_range`). The implementation is a xoshiro256** core seeded via
//! SplitMix64 — high-quality, allocation-free, and bit-for-bit
//! reproducible across platforms, which is exactly what the simulator's
//! determinism contract (DESIGN.md §1) requires. There is deliberately
//! no `thread_rng`/OS entropy path: every generator must be seeded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform value of `T`'s full domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Not the upstream `rand::rngs::StdRng` algorithm (ChaCha12), but the
    /// same contract this workspace relies on: identical seeds produce
    /// identical streams, forever, on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(1u32..=7);
            assert!((1..=7).contains(&y));
            let z = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u8_inclusive_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.random_range(0u8..=255) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
