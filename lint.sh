#!/usr/bin/env sh
# Run the sgx-lint model-integrity pass over the workspace.
#
#   ./lint.sh                  # lint crates/ and tests/ against the baseline
#   ./lint.sh --format json    # machine-readable deterministic report
#   ./lint.sh crates/sgx-sim   # lint a subtree (no baseline)
#   ./lint.sh --score-corpus crates/sgx-lint/corpus   # rule self-check
#   ./lint.sh --robustness [flags]   # RD-score corpus + variants (floor 95)
#
# Exit codes: 0 clean, 1 findings (or stale baseline entries, or RD below
# the floor), 2 usage error.
set -eu
cd "$(dirname "$0")"
if [ "$#" -eq 0 ]; then
    set -- --baseline lint-baseline.json crates tests
elif [ "$1" = "--robustness" ]; then
    # Robustness scoring never reads the workspace baseline; extra flags
    # (--seed, --weaken, --format json, …) pass straight through.
    shift
    set -- robustness --floor 95 "$@"
fi
exec cargo run --release -q -p sgx-lint -- "$@"
