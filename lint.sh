#!/usr/bin/env sh
# Run the sgx-lint model-integrity pass over the workspace.
#
#   ./lint.sh                  # lint crates/ and tests/ against the baseline
#   ./lint.sh --format json    # machine-readable deterministic report
#   ./lint.sh crates/sgx-sim   # lint a subtree (no baseline)
#   ./lint.sh --score-corpus crates/sgx-lint/corpus   # rule self-check
#
# Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage error.
set -eu
cd "$(dirname "$0")"
if [ "$#" -eq 0 ]; then
    set -- --baseline lint-baseline.json crates tests
fi
exec cargo run --release -q -p sgx-lint -- "$@"
