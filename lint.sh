#!/usr/bin/env sh
# Run the sgx-lint model-integrity pass over the workspace.
#
#   ./lint.sh                  # lint crates/ and tests/ (text output)
#   ./lint.sh --json           # machine-readable findings
#   ./lint.sh crates/sgx-sim   # lint a subtree
#   ./lint.sh --score-corpus crates/sgx-lint/corpus   # rule self-check
#
# Exit codes: 0 clean, 1 findings, 2 usage error.
set -eu
cd "$(dirname "$0")"
if [ "$#" -eq 0 ]; then
    set -- crates tests
fi
exec cargo run --release -q -p sgx-lint -- "$@"
