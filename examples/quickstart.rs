//! Quickstart: simulate an SGXv2 enclave, run one optimized radix join and
//! one AVX-512 column scan, and compare against native execution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::rho::rho_join;

fn main() {
    // The paper's dual-socket Xeon Gold 6326 at 1/16 scale (all cache/data
    // proportions preserved) — swap in `config::xeon_gold_6326()` for the
    // full-size machine.
    let hw = config::scaled_profile();
    println!("machine: {}\n", hw.name);

    // --- A 100 MB ⋈ 400 MB equi-join (paper §4), native vs enclave -----
    let (nr, ns) = (819_200, 3_276_800); // 6.25 MB and 25 MB of 8-byte tuples
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let mut machine = Machine::new(hw.clone(), setting);
        let r = gen_pk_relation(&mut machine, nr, 1);
        let s = gen_fk_relation(&mut machine, ns, nr, 2);
        let cfg = JoinConfig::new(16)
            .with_radix_bits(JoinConfig::auto_radix_bits(r.size_bytes(), hw.l2.size))
            .with_optimization(true);
        let stats = rho_join(&mut machine, &r, &s, &cfg);
        assert_eq!(stats.matches, ns as u64);
        println!(
            "optimized RHO join  | {:<25} {:>8.1} M rows/s  ({} matches)",
            setting.label(),
            stats.mrows_per_sec(nr, ns, hw.freq_ghz),
            stats.matches,
        );
    }

    // --- A multi-threaded SIMD column scan (paper §5) -------------------
    println!();
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let mut machine = Machine::new(hw.clone(), setting);
        let col = gen_column(&mut machine, 64 << 20, 3);
        let stats =
            column_scan(&mut machine, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(16));
        println!(
            "AVX-512 column scan | {:<25} {:>8.1} GB/s     ({} matches)",
            setting.label(),
            stats.gb_per_sec(hw.freq_ghz),
            stats.matches,
        );
    }

    println!("\nThe headline result of the paper, in two numbers: scans are nearly");
    println!("free inside SGXv2, and optimized joins come close to native speed.");
}
