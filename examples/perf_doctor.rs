//! Perf doctor: diagnose *why* a workload slows down inside the enclave.
//!
//! The paper's method in miniature — run the same operator natively and in
//! the enclave, compare wall time and hardware counters, and point at the
//! responsible mechanism (MEE fills, serialized loads, transitions, EDMM).
//!
//! ```sh
//! cargo run --release --example perf_doctor
//! ```

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::pht::pht_join;
use sgx_bench_core::sgx_sim::Counters;

fn diagnose(name: &str, native_cycles: f64, sgx_cycles: f64, c: &Counters) {
    let slowdown = sgx_cycles / native_cycles;
    println!("── {name}: {slowdown:.2}x slower in the enclave");
    print!("{}", c.report());
    let dram = c.dram_fills.max(1);
    if c.epc_fills > dram / 2 && c.prefetch_ratio() < 0.5 {
        println!("   diagnosis: random EPC fills — the MEE decrypt latency is on the");
        println!("   critical path (§4.1). Partition the working set to cache size.");
    } else if c.enclave_groups == 0 && slowdown > 1.5 {
        println!("   diagnosis: serialized irregular loads with no issue groups —");
        println!("   apply the unroll-and-reorder optimization (§4.2).");
    } else if c.prefetch_ratio() > 0.8 {
        println!("   diagnosis: sequential traffic; the MEE tax is only a few percent.");
    }
    println!();
}

fn main() {
    let hw = config::scaled_profile();
    println!("machine: {}\n", hw.name);

    // Patient 1: a hash join with a DRAM-sized table (random-access bound).
    let (nr, ns) = (400_000, 1_600_000);
    let run = |setting: Setting, optimized: bool| {
        let mut m = Machine::new(hw.clone(), setting);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let cfg = JoinConfig::new(8).with_optimization(optimized);
        let stats = pht_join(&mut m, &r, &s, &cfg);
        (stats.wall_cycles, m.counters().clone())
    };
    let (native, _) = run(Setting::PlainCpu, false);
    let (sgx, counters) = run(Setting::SgxDataInEnclave, false);
    diagnose("PHT join, naive", native, sgx, &counters);
    let (sgx_opt, counters) = run(Setting::SgxDataInEnclave, true);
    diagnose("PHT join, unroll-optimized", native, sgx_opt, &counters);

    // Patient 2: a sequential scan (should be healthy).
    let scan = |setting: Setting| {
        let mut m = Machine::new(hw.clone(), setting);
        let col = gen_column(&mut m, 32 << 20, 3);
        let stats =
            column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(8));
        (stats.cycles, m.counters().clone())
    };
    let (native, _) = scan(Setting::PlainCpu);
    let (sgx, counters) = scan(Setting::SgxDataInEnclave);
    diagnose("AVX-512 column scan", native, sgx, &counters);
}
