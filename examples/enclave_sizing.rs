//! Enclave capacity planning: how should a cloud DBMS size its enclave?
//!
//! §4.4 of the paper shows two software decisions that can silently cost an
//! order of magnitude inside SGXv2: relying on EDMM to grow the enclave
//! during query execution (Fig 11), and synchronizing threads with the SDK
//! mutex (Fig 10). This example quantifies both for a materializing join
//! so an operator can see exactly what static pre-allocation and lock-free
//! task distribution buy.
//!
//! ```sh
//! cargo run --release --example enclave_sizing
//! ```

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::rho::rho_join;

fn materializing_join(hw: &HwConfig, seal_before_query: bool) -> (f64, u64) {
    let mut machine = Machine::new(hw.clone(), Setting::SgxDataInEnclave);
    let (nr, ns) = (819_200, 3_276_800);
    let r = gen_pk_relation(&mut machine, nr, 21);
    let s = gen_fk_relation(&mut machine, ns, nr, 22);
    if seal_before_query {
        // Enclave sized for the inputs only: every page the query
        // allocates afterwards is EAUG'd on first touch.
        machine.seal_enclave();
    }
    let cfg = JoinConfig::new(16)
        .with_radix_bits(JoinConfig::auto_radix_bits(r.size_bytes(), hw.l2.size))
        .with_optimization(true)
        .with_materialization(true);
    let stats = rho_join(&mut machine, &r, &s, &cfg);
    (stats.mrows_per_sec(nr, ns, hw.freq_ghz), machine.counters().edmm_pages)
}

fn queue_choice(hw: &HwConfig, queue: QueueKind) -> f64 {
    let mut machine = Machine::new(hw.clone(), Setting::SgxDataInEnclave);
    let (nr, ns) = (819_200, 3_276_800);
    let r = gen_pk_relation(&mut machine, nr, 23);
    let s = gen_fk_relation(&mut machine, ns, nr, 24);
    // Deep partitioning = tiny tasks = queue contention.
    let bits = (JoinConfig::auto_radix_bits(r.size_bytes(), hw.l2.size) + 5).min(16);
    let cfg = JoinConfig::new(16).with_radix_bits(bits).with_queue(queue);
    rho_join(&mut machine, &r, &s, &cfg).mrows_per_sec(nr, ns, hw.freq_ghz)
}

fn main() {
    let hw = config::scaled_profile();
    println!("machine: {}\n", hw.name);

    println!("decision 1 — enclave sizing for a materializing 100 MB ⋈ 400 MB join:");
    let (static_tput, _) = materializing_join(&hw, false);
    let (dyn_tput, pages) = materializing_join(&hw, true);
    println!("  statically pre-allocated enclave : {static_tput:>8.1} M rows/s");
    println!(
        "  grown on demand via EDMM         : {dyn_tput:>8.1} M rows/s  ({pages} pages EAUG'd)"
    );
    println!(
        "  → dynamic growth retains {:.1}% of the static throughput; size the\n    enclave for query working sets up front (paper Fig 11: ~4.5%).\n",
        dyn_tput / static_tput * 100.0
    );

    println!("decision 2 — task-queue synchronization under contention:");
    let lockfree = queue_choice(&hw, QueueKind::LockFree);
    let spin = queue_choice(&hw, QueueKind::SpinLock);
    let mutex = queue_choice(&hw, QueueKind::SdkMutex);
    println!("  lock-free queue : {lockfree:>8.1} M rows/s");
    println!("  spinlock queue  : {spin:>8.1} M rows/s");
    println!("  SDK mutex queue : {mutex:>8.1} M rows/s");
    println!(
        "  → the SDK mutex sleeps threads outside the enclave (2 transitions per\n    contended acquire) and keeps only {:.0}% of the lock-free throughput\n    (paper Fig 10: a 75% drop).",
        mutex / lockfree * 100.0
    );
}
