//! Secure-join advisor: the paper's §4 findings as a practical tool.
//!
//! Given a join workload (table sizes, thread budget), this example runs
//! all five join algorithms inside the simulated enclave — with and
//! without the §4.2 unroll-and-reorder optimization — and recommends the
//! configuration a secure OLAP engine should deploy, quantifying how much
//! of native performance it retains.
//!
//! ```sh
//! cargo run --release --example secure_join_advisor
//! ```

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::{
    cht::cht_join, crkjoin::crk_join, inl::inl_join, mway::mway_join, pht::pht_join,
    rho::rho_join,
};

/// The workload under consideration: a fact-to-dimension FK join.
struct Workload {
    name: &'static str,
    build_rows: usize,
    probe_rows: usize,
    threads: usize,
}

fn run(
    hw: &HwConfig,
    setting: Setting,
    algo: &str,
    w: &Workload,
    optimized: bool,
) -> f64 {
    let mut machine = Machine::new(hw.clone(), setting);
    let mut r = gen_pk_relation(&mut machine, w.build_rows, 11);
    let mut s = gen_fk_relation(&mut machine, w.probe_rows, w.build_rows, 12);
    let bits = JoinConfig::auto_radix_bits(r.size_bytes(), hw.l2.size);
    let cfg = JoinConfig::new(w.threads)
        .with_radix_bits(if algo == "CrkJoin" { (bits + 4).min(16) } else { bits })
        .with_optimization(optimized);
    let stats = match algo {
        "RHO" => rho_join(&mut machine, &r, &s, &cfg),
        "PHT" => pht_join(&mut machine, &r, &s, &cfg),
        "CHT" => cht_join(&mut machine, &r, &s, &cfg),
        "MWAY" => mway_join(&mut machine, &r, &s, &cfg),
        "INL" => inl_join(&mut machine, &r, &s, &cfg),
        "CrkJoin" => crk_join(&mut machine, &mut r, &mut s, &cfg),
        _ => unreachable!(),
    };
    assert_eq!(stats.matches, w.probe_rows as u64);
    stats.mrows_per_sec(w.build_rows, w.probe_rows, hw.freq_ghz)
}

fn main() {
    let hw = config::scaled_profile();
    let workloads = [
        Workload { name: "dimension⋈fact (1:4)", build_rows: 819_200, probe_rows: 3_276_800, threads: 16 },
        Workload { name: "small dim (cache-resident)", build_rows: 16_384, probe_rows: 3_276_800, threads: 16 },
    ];

    for w in &workloads {
        println!("workload: {} ({} ⋈ {} rows, {} threads)", w.name, w.build_rows, w.probe_rows, w.threads);
        println!("{:<10} {:>14} {:>14} {:>14} {:>10}", "join", "native M/s", "SGX M/s", "SGX+opt M/s", "retained");
        let mut best: Option<(&str, f64)> = None;
        for algo in ["RHO", "PHT", "CHT", "MWAY", "INL", "CrkJoin"] {
            let native = run(&hw, Setting::PlainCpu, algo, w, false);
            let sgx = run(&hw, Setting::SgxDataInEnclave, algo, w, false);
            let sgx_opt = run(&hw, Setting::SgxDataInEnclave, algo, w, true);
            let retained = sgx_opt / native;
            println!(
                "{algo:<10} {native:>14.1} {sgx:>14.1} {sgx_opt:>14.1} {:>9.0}%",
                retained * 100.0
            );
            if best.is_none_or(|(_, b)| sgx_opt > b) {
                best = Some((algo, sgx_opt));
            }
        }
        let (algo, tput) = best.expect("at least one algorithm ran");
        println!(
            "→ recommendation: {algo} with the unroll-and-reorder optimization \
             ({tput:.0} M rows/s inside the enclave)\n"
        );
    }
    println!("(Matches the paper's conclusion: cache-optimized radix joins plus the");
    println!(" §4.2 optimization; SGXv1-era designs like CrkJoin no longer pay off.)");
}
