//! TPC-H analytics inside the enclave: run the paper's four simplified
//! queries (Q3, Q10, Q12, Q19) in all three execution settings and report
//! runtimes, per-operator breakdowns, and the cost of confidentiality.
//!
//! ```sh
//! cargo run --release --example tpch_analytics [-- <scale factor>]
//! ```

use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_tpch::generate;

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
    let hw = config::scaled_profile();
    println!("machine: {} | TPC-H scale factor {sf}\n", hw.name);

    let mut rows = Vec::new();
    for q in Query::all() {
        let mut per_setting = Vec::new();
        for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
            for optimized in [false, true] {
                if setting == Setting::PlainCpu && optimized {
                    continue;
                }
                let mut machine = Machine::new(hw.clone(), setting);
                let db = generate(&mut machine, sf, 42);
                machine.reset_wall();
                let cfg = QueryConfig::new(16).with_optimization(optimized);
                let stats = run_query(&mut machine, &db, q, &cfg);
                per_setting.push((setting, optimized, stats));
            }
        }
        rows.push((q, per_setting));
    }

    println!(
        "{:<5} {:>10} {:>12} {:>12} {:>14} {:>9}",
        "query", "count(*)", "native ms", "SGX ms", "SGX+opt ms", "overhead"
    );
    for (q, runs) in &rows {
        let ms = |i: usize| hw.cycles_to_secs(runs[i].2.wall_cycles) * 1e3;
        let overhead = (ms(2) / ms(0) - 1.0) * 100.0;
        println!(
            "{:<5} {:>10} {:>12.2} {:>12.2} {:>14.2} {:>8.0}%",
            q.label(),
            runs[0].2.count,
            ms(0),
            ms(1),
            ms(2),
            overhead
        );
        assert_eq!(runs[0].2.count, runs[2].2.count, "results must agree across settings");
    }

    // Operator breakdown of the most join-heavy query (Q10), optimized, in
    // the enclave.
    let (q, runs) = &rows[1];
    let stats = &runs[2].2;
    println!("\noperator breakdown of {} (SGX, optimized):", q.label());
    for (name, cycles) in &stats.ops {
        println!("  {:<14} {:>10.3} ms", name, hw.cycles_to_secs(*cycles) * 1e3);
    }
    println!("\n(Per the paper's Fig 17: scans cost the same everywhere; the residual");
    println!(" enclave overhead comes from the joins' random memory accesses.)");
}
