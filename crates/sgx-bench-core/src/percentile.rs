//! Exact latency percentiles over integer cycle counts.
//!
//! The service experiments report tail latency (p50/p95/p99), and tails
//! are exactly where interpolation lies: averaging the two samples that
//! straddle a rank invents a latency no query ever saw, and makes the
//! reported number depend on float rounding. This module implements the
//! *nearest-rank* definition instead — the percentile is always one of
//! the recorded values — over a [`BTreeMap`] histogram, so results are
//! exact, deterministic, and independent of insertion order.
//!
//! Nearest-rank: for `n` samples sorted ascending, the `p`-th percentile
//! (`0 < p <= 100`) is the sample at 1-based rank `ceil(p/100 * n)`.
//! The rank arithmetic is done in integers (`ceil(p*n/100)` with `p`
//! scaled to per-mille precision) so no float comparison can flip a rank
//! on any platform.

use std::collections::BTreeMap;

/// An exact integer-valued latency histogram.
///
/// Values are `u64` (simulated cycles); counts are unbounded. Recording
/// is O(log distinct-values); percentile queries walk the sorted map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &n) in &other.counts {
            self.record_n(v, n);
        }
    }

    /// Exact nearest-rank percentile at per-mille precision: `permille`
    /// in `1..=1000` (so p95 is `950`). Returns `None` on an empty
    /// histogram or an out-of-range argument. The result is always one
    /// of the recorded values — never interpolated.
    pub fn percentile_permille(&self, permille: u64) -> Option<u64> {
        if self.total == 0 || permille == 0 || permille > 1000 {
            return None;
        }
        // 1-based rank = ceil(permille/1000 * total), in pure integers.
        let rank = (permille * self.total).div_ceil(1000);
        let mut seen = 0u64;
        for (&v, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(v);
            }
        }
        // Unreachable: rank <= total and the counts sum to total.
        None
    }

    /// Median (nearest-rank p50).
    pub fn p50(&self) -> Option<u64> {
        self.percentile_permille(500)
    }

    /// Nearest-rank p95.
    pub fn p95(&self) -> Option<u64> {
        self.percentile_permille(950)
    }

    /// Nearest-rank p99.
    pub fn p99(&self) -> Option<u64> {
        self.percentile_permille(990)
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

/// The naive oracle: sort and index. Exported so property tests (and any
/// future report code that already holds a sorted vector) can share the
/// single definition of nearest-rank.
pub fn percentile_sorted(sorted: &[u64], permille: u64) -> Option<u64> {
    if sorted.is_empty() || permille == 0 || permille > 1000 {
        return None;
    }
    let rank = (permille * sorted.len() as u64).div_ceil(1000);
    sorted.get(rank as usize - 1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_out_of_range_are_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        let h: Histogram = [5u64].into_iter().collect();
        assert_eq!(h.percentile_permille(0), None);
        assert_eq!(h.percentile_permille(1001), None);
        assert_eq!(h.percentile_permille(1000), Some(5));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h: Histogram = [42u64].into_iter().collect();
        for p in [1, 500, 950, 990, 1000] {
            assert_eq!(h.percentile_permille(p), Some(42));
        }
    }

    #[test]
    fn nearest_rank_on_a_known_decade() {
        // The canonical worked example: 10 samples 10,20,...,100.
        let h: Histogram = (1..=10u64).map(|i| i * 10).collect();
        assert_eq!(h.p50(), Some(50), "rank ceil(0.5*10)=5");
        assert_eq!(h.p95(), Some(100), "rank ceil(0.95*10)=10");
        assert_eq!(h.p99(), Some(100));
        assert_eq!(h.percentile_permille(100), Some(10), "p10 -> rank 1");
        assert_eq!(h.percentile_permille(110), Some(20), "p11 -> rank 2");
    }

    #[test]
    fn duplicates_and_merge_agree_with_flat_recording() {
        let mut a = Histogram::new();
        a.record_n(7, 3);
        a.record(1);
        let mut b = Histogram::new();
        b.record_n(7, 2);
        b.record_n(9, 5);
        let mut merged = a.clone();
        merged.merge(&b);
        let flat: Histogram =
            [7u64, 7, 7, 1, 7, 7, 9, 9, 9, 9, 9].into_iter().collect();
        assert_eq!(merged, flat);
        assert_eq!(merged.len(), 11);
        assert_eq!(merged.min(), Some(1));
        assert_eq!(merged.max(), Some(9));
    }

    #[test]
    fn percentiles_are_recorded_values_and_monotone() {
        let h: Histogram = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5].into_iter().collect();
        let mut last = 0u64;
        for p in 1..=1000u64 {
            let v = h.percentile_permille(p).expect("non-empty");
            assert!(h.counts.contains_key(&v), "p{p}: {v} must be a recorded value");
            assert!(v >= last, "percentiles must be monotone in p");
            last = v;
        }
        assert_eq!(h.percentile_permille(1000), h.max());
    }
}
