//! # sgx-bench-core — benchmark framework and public facade
//!
//! Reproduction of *"Benchmarking Analytical Query Processing in Intel
//! SGXv2"* (EDBT 2025). This crate ties the substrate crates together:
//!
//! * [`sgx_sim`] — the deterministic SGXv2 platform simulator,
//! * [`sgx_joins`] — PHT, RHO, MWAY, INL and CrkJoin,
//! * [`sgx_scans`] — AVX-512-style column scans and linear kernels,
//! * [`sgx_microbench`] — pointer chase, random writes, histograms,
//! * [`sgx_index`] — the B+-tree behind the INL join,
//! * [`sgx_tpch`] — the TPC-H subset and queries Q3/Q10/Q12/Q19,
//!
//! and adds the experiment plumbing: benchmark [`profiles`] (paper-exact
//! vs proportionally scaled), repetition statistics, and the
//! [`report::Figure`] data model each `bench/src/bin/figNN` harness emits.
//!
//! ## Quickstart
//!
//! ```
//! use sgx_bench_core::prelude::*;
//!
//! // A machine in the paper's "SGX (Data in Enclave)" setting.
//! let profile = BenchProfile::tiny();
//! let mut machine = Machine::new(profile.hw.clone(), Setting::SgxDataInEnclave);
//!
//! // TEEBench-style inputs and an optimized RHO join.
//! let r = gen_pk_relation(&mut machine, 10_000, 1);
//! let s = gen_fk_relation(&mut machine, 40_000, 10_000, 2);
//! let cfg = JoinConfig::new(4).with_radix_bits(6).with_optimization(true);
//! let stats = sgx_joins::rho::rho_join(&mut machine, &r, &s, &cfg);
//! assert_eq!(stats.matches, 40_000);
//! println!("throughput: {:.1} M rows/s", stats.mrows_per_sec(r.len(), s.len(), 2.9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod golden;
pub mod json;
pub mod percentile;
pub mod profiles;
pub mod report;
pub mod runner;
pub mod simbench;

pub use percentile::Histogram;
pub use profiles::{BenchProfile, RunOpts};
pub use report::{Figure, Series, Stat};

// Re-export the substrate crates as a single facade.
pub use sgx_index;
pub use sgx_joins;
pub use sgx_microbench;
pub use sgx_scans;
pub use sgx_serve;
pub use sgx_sim;
pub use sgx_tpch;

/// Everything a benchmark or example typically needs.
pub mod prelude {
    pub use crate::profiles::{BenchProfile, RunOpts};
    pub use crate::report::{Figure, Series, Stat};
    pub use sgx_joins::{
        gen_fk_relation, gen_pk_relation, reference_join, JoinConfig, JoinStats, QueueKind, Row,
    };
    pub use sgx_microbench::{histogram_bench, pointer_chase, random_write, HistKernel};
    pub use sgx_scans::{column_scan, gen_column, ScanConfig, ScanOutput};
    pub use sgx_sim::{config, Core, Counters, ExecMode, HwConfig, Machine, Region, Setting, SimVec};
    pub use sgx_tpch::{run_query, Query, QueryConfig};
}

/// Run `f` `reps` times with distinct seeds and aggregate the returned
/// metric (the paper reports arithmetic mean and standard deviation over
/// 10 runs).
pub fn repeat(reps: usize, mut f: impl FnMut(u64) -> f64) -> Stat {
    let runs: Vec<f64> = (0..reps.max(1)).map(|r| f(0xC0FFEE + r as u64)).collect();
    Stat::from_runs(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_aggregates_with_distinct_seeds() {
        let mut seeds = Vec::new();
        let s = repeat(3, |seed| {
            seeds.push(seed);
            seed as f64
        });
        assert_eq!(seeds.len(), 3);
        assert!(seeds.windows(2).all(|w| w[0] != w[1]));
        assert!(s.stddev > 0.0);
        let one = repeat(0, |_| 7.0);
        assert_eq!(one.mean, 7.0);
    }
}
