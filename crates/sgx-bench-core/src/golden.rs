//! Golden digests for refactor-equivalence proofs.
//!
//! The layered-machine refactor (DESIGN.md §10) must not change the cost
//! model by a single bit. To prove that, the harness records one digest
//! per figure job from the *pre-refactor* tree — over the exact JSON
//! bytes of every emitted figure, the job's counter report, and the
//! job's cycle-attribution profile (`<job>.profile.json` bytes) — into
//! `tests/goldens/`, and `tests/integration_equivalence.rs` asserts that
//! post-refactor runs (sequential and parallel alike) reproduce them
//! exactly. The profile digest is the strictest of the three: it pins
//! the per-phase split of cycles across the nine `CostCategory` bins,
//! so a hot-path rewrite cannot silently move cost between bins.
//!
//! Digests are 64-bit FNV-1a (dependency-free, deterministic, and plenty
//! for drift *detection* — this is a regression tripwire, not a security
//! boundary), rendered as `fnv:<16 hex digits>` so a mismatch in a diff
//! is self-describing.

use crate::json::Value;
use crate::report::{profile_json, Figure};
use sgx_sim::{Counters, Profile};

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render a digest as the `fnv:<hex>` form used in golden files.
pub fn digest_str(bytes: &[u8]) -> String {
    format!("fnv:{:016x}", fnv1a64(bytes))
}

/// Digest of one emitted figure: over its deterministic JSON bytes, which
/// cover id, title, axes, x values and every series value.
pub fn figure_digest(figure: &Figure) -> String {
    digest_str(figure.to_json().as_bytes())
}

/// Digest of a job's counter totals: over the `Counters::report()` text,
/// which lists every nonzero counter.
pub fn counters_digest(counters: &Counters) -> String {
    digest_str(counters.report().as_bytes())
}

/// Digest of a job's cycle-attribution profile: over the exact
/// `<job>.profile.json` bytes ([`profile_json`]), which cover every
/// phase's nine-bin cycle split and per-phase counters. Pins *where*
/// cycles land, not just their total — a hot-path rewrite that leaks
/// cycles from one `CostCategory` bin into another trips this digest
/// even when figures and counter totals stay intact.
pub fn profile_digest(job_id: &str, profile: &Profile) -> String {
    digest_str(profile_json(job_id, profile).as_bytes())
}

/// Golden record for one figure job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenJob {
    /// Job id from the registry.
    pub id: String,
    /// [`counters_digest`] of the job's per-job counter totals.
    pub counters: String,
    /// [`profile_digest`] of the job's cycle-attribution profile
    /// (recorded with `RunConfig::profile` on).
    pub profile: String,
    /// `(figure id, [`figure_digest`])` for every figure the job emitted,
    /// in emission order.
    pub figures: Vec<(String, String)>,
}

/// A full golden file: every registry job's digests under one profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Goldens {
    /// Human-readable description of the profile the digests were
    /// recorded under (must match the profile the equivalence test runs).
    pub profile: String,
    /// Per-job digests in registry order.
    pub jobs: Vec<GoldenJob>,
}

impl Goldens {
    /// Serialize to deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        let job = |j: &GoldenJob| {
            Value::Obj(vec![
                ("id".into(), Value::Str(j.id.clone())),
                ("counters".into(), Value::Str(j.counters.clone())),
                ("profile".into(), Value::Str(j.profile.clone())),
                (
                    "figures".into(),
                    Value::Arr(
                        j.figures
                            .iter()
                            .map(|(id, d)| {
                                Value::Obj(vec![
                                    ("id".into(), Value::Str(id.clone())),
                                    ("digest".into(), Value::Str(d.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        Value::Obj(vec![
            ("schema".into(), Value::Str("sgx-bench-goldens/2".into())),
            ("profile".into(), Value::Str(self.profile.clone())),
            ("jobs".into(), Value::Arr(self.jobs.iter().map(job).collect())),
        ])
        .pretty()
    }

    /// Parse a golden file written by [`Goldens::to_json`].
    pub fn from_json(text: &str) -> Result<Goldens, String> {
        let v = Value::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "goldens missing \"schema\"".to_string())?;
        if schema != "sgx-bench-goldens/2" {
            return Err(format!("unsupported goldens schema {schema:?}"));
        }
        let profile = v
            .get("profile")
            .and_then(Value::as_str)
            .ok_or_else(|| "goldens missing \"profile\"".to_string())?
            .to_string();
        let jobs = v
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| "goldens missing \"jobs\" array".to_string())?
            .iter()
            .map(|j| {
                let field = |key: &str| {
                    j.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("golden job missing string field {key:?}"))
                };
                let figures = j
                    .get("figures")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "golden job missing \"figures\"".to_string())?
                    .iter()
                    .map(|f| {
                        let id = f
                            .get("id")
                            .and_then(Value::as_str)
                            .ok_or_else(|| "golden figure missing \"id\"".to_string())?;
                        let digest = f
                            .get("digest")
                            .and_then(Value::as_str)
                            .ok_or_else(|| "golden figure missing \"digest\"".to_string())?;
                        Ok((id.to_string(), digest.to_string()))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(GoldenJob {
                    id: field("id")?,
                    counters: field("counters")?,
                    profile: field("profile")?,
                    figures,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Goldens { profile, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(digest_str(b"foobar"), "fnv:85944171f73967e8");
    }

    #[test]
    fn profile_digest_covers_exact_profile_json_bytes() {
        let p = Profile::default();
        assert_eq!(
            profile_digest("jobx", &p),
            digest_str(profile_json("jobx", &p).as_bytes()),
            "profile digest must be over the emitted artifact bytes"
        );
        // Job id participates (artifacts are per-job files).
        assert_ne!(profile_digest("jobx", &p), profile_digest("joby", &p));
    }

    #[test]
    fn goldens_roundtrip_byte_identically() {
        let g = Goldens {
            profile: "scale=512 reps=1".into(),
            jobs: vec![
                GoldenJob {
                    id: "fig04".into(),
                    counters: "fnv:0123456789abcdef".into(),
                    profile: "fnv:00000000000000cc".into(),
                    figures: vec![
                        ("fig04a".into(), "fnv:00000000000000aa".into()),
                        ("fig04b".into(), "fnv:00000000000000bb".into()),
                    ],
                },
                GoldenJob {
                    id: "fig07".into(),
                    counters: "fnv:ffffffffffffffff".into(),
                    profile: "fnv:00000000000000dd".into(),
                    figures: vec![],
                },
            ],
        };
        let j = g.to_json();
        let back = Goldens::from_json(&j).expect("roundtrip");
        assert_eq!(back, g);
        assert_eq!(back.to_json(), j, "goldens serialization must be byte-stable");
    }

    #[test]
    fn from_json_rejects_malformed_goldens() {
        assert!(Goldens::from_json("{}").is_err());
        assert!(Goldens::from_json("{\"schema\": \"other/1\", \"profile\": \"p\", \"jobs\": []}").is_err());
        // Schema 1 files (no per-job profile digest) must be re-recorded,
        // not silently half-parsed.
        assert!(Goldens::from_json("{\"schema\": \"sgx-bench-goldens/1\", \"profile\": \"p\", \"jobs\": []}").is_err());
        assert!(Goldens::from_json(
            "{\"schema\": \"sgx-bench-goldens/2\", \"profile\": \"p\", \"jobs\": [{\"id\": \"x\"}]}"
        )
        .is_err());
    }
}
