//! Shared measurement harness for the host-side throughput benches
//! (`bench_events`, `sim_bench`).
//!
//! Three pieces:
//!
//! * [`sample`] — warmup + median-of-N repetition sampling with real
//!   min/max spread (every checked-in `BENCH_*.json` row used to be a
//!   single shot with a `"± 0"` range; this is the fix);
//! * [`document`] — the `BENCHMARK_DATA`-style JSON document builder
//!   (github-action-benchmark `data.js` schema, minus the `window.`
//!   wrapper) that the trajectory files are written in;
//! * [`load_rows`] / [`compare_trend`] — the parsing half: read the rows
//!   back out of checked-in trajectory files and compare the latest two,
//!   which is what `ci.sh`'s perf-trend gate runs.
//!
//! Wall-clock measurement is inherently host-dependent; everything here
//! reports how fast the *host* grinds through simulated work, never a
//! simulated result, so determinism gates do not apply to it.

use crate::json::Value;

/// Median-of-N measurement of one benchmark metric.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Median across the measured repetitions (lower middle for even N).
    pub median: f64,
    /// Smallest observed repetition value.
    pub min: f64,
    /// Largest observed repetition value.
    pub max: f64,
}

impl Sample {
    /// The `"± x"` range string for the trajectory document: half the
    /// min–max spread, the honest symmetric bound on the median.
    pub fn range(&self) -> String {
        format!("± {:.1}", (self.max - self.min) / 2.0)
    }
}

/// Run `f` `warmup` times untimed-for-the-record, then `reps` more times
/// and fold the returned metric values into a [`Sample`]. `reps` is
/// clamped to at least 1; N ≥ 5 is the convention for checked-in rows.
pub fn sample(warmup: usize, reps: usize, mut f: impl FnMut() -> f64) -> Sample {
    for _ in 0..warmup {
        f();
    }
    let mut vals: Vec<f64> = (0..reps.max(1)).map(|_| f()).collect();
    vals.sort_by(f64::total_cmp);
    let median = vals[(vals.len() - 1) / 2];
    Sample { median, min: vals[0], max: vals[vals.len() - 1] }
}

/// One row of a trajectory document.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Stable row name (`join-smoke`, `scan-smoke`, …) — the trend gate
    /// matches rows across PRs by this.
    pub name: String,
    /// Metric value (unit in `unit`).
    pub value: f64,
    /// Spread annotation, e.g. `"± 3.1"`.
    pub range: String,
    /// Metric unit, e.g. `"events/sec"`.
    pub unit: String,
}

/// Assemble the `BENCHMARK_DATA`-style document for a set of rows.
pub fn document(commit: &str, message: &str, rows: &[BenchRow]) -> Value {
    let benches: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("name".into(), Value::Str(r.name.clone())),
                ("value".into(), Value::Num((r.value * 10.0).round() / 10.0)),
                ("range".into(), Value::Str(r.range.clone())),
                ("unit".into(), Value::Str(r.unit.clone())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("repoUrl".into(), Value::Str("https://example.invalid/sgxv2-olap-bench".into())),
        (
            "entries".into(),
            Value::Obj(vec![(
                "Rust Benchmark".into(),
                Value::Arr(vec![Value::Obj(vec![
                    (
                        "commit".into(),
                        Value::Obj(vec![
                            ("id".into(), Value::Str(commit.into())),
                            ("message".into(), Value::Str(message.into())),
                        ]),
                    ),
                    ("tool".into(), Value::Str("cargo".into())),
                    ("benches".into(), Value::Arr(benches)),
                ])]),
            )]),
        ),
    ])
}

/// Parse the rows back out of a trajectory document's JSON text.
pub fn load_rows(text: &str) -> Result<Vec<BenchRow>, String> {
    let doc = Value::parse(text)?;
    let benches = doc
        .get("entries")
        .and_then(|e| e.get("Rust Benchmark"))
        .and_then(|v| v.as_arr())
        .and_then(|entries| entries.first())
        .and_then(|e| e.get("benches"))
        .and_then(|b| b.as_arr())
        .ok_or("no entries[\"Rust Benchmark\"][0].benches array")?;
    benches
        .iter()
        .map(|b| {
            Ok(BenchRow {
                name: b
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("bench row without name")?
                    .to_string(),
                value: b.get("value").and_then(Value::as_f64).ok_or("bench row without value")?,
                range: b.get("range").and_then(Value::as_str).unwrap_or("± 0").to_string(),
                unit: b.get("unit").and_then(Value::as_str).unwrap_or("").to_string(),
            })
        })
        .collect()
}

/// Compare two trajectory row sets on the watched rows; returns one
/// human-readable message per row whose throughput regressed by more
/// than `allowed_drop` (a fraction, e.g. 0.30). Rows missing from either
/// side are skipped — renames should keep the trajectory comparable, not
/// brick CI.
pub fn compare_trend(
    old: &[BenchRow],
    new: &[BenchRow],
    watched: &[&str],
    allowed_drop: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for name in watched {
        let (Some(o), Some(n)) =
            (old.iter().find(|r| r.name == *name), new.iter().find(|r| r.name == *name))
        else {
            continue;
        };
        if n.value < o.value * (1.0 - allowed_drop) {
            problems.push(format!(
                "{name}: {:.1} -> {:.1} {} ({:+.1}% vs allowed -{:.0}%)",
                o.value,
                n.value,
                n.unit,
                (n.value / o.value - 1.0) * 100.0,
                allowed_drop * 100.0
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_takes_median_and_real_spread() {
        let mut vals = [5.0, 1.0, 9.0, 3.0, 7.0].into_iter();
        // sgx-lint: allow(panic-in-library) test iterator sized to the rep count
        let s = sample(0, 5, || vals.next().expect("enough reps"));
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.range(), "± 4.0");
    }

    #[test]
    fn sample_runs_warmup_untimed() {
        let mut calls = 0;
        let s = sample(2, 5, || {
            calls += 1;
            calls as f64
        });
        assert_eq!(calls, 7);
        // Warmup values (1, 2) are discarded; reps are 3..=7.
        assert_eq!(s.min, 3.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn document_roundtrips_through_load_rows() {
        let rows = vec![
            BenchRow {
                name: "join-smoke".into(),
                value: 1234.56,
                range: "± 10.0".into(),
                unit: "events/sec".into(),
            },
            BenchRow {
                name: "scan-smoke".into(),
                value: 99.9,
                range: "± 0.5".into(),
                unit: "events/sec".into(),
            },
        ];
        let doc = document("abc123", "test doc", &rows);
        let parsed = load_rows(&doc.pretty()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "join-smoke");
        assert_eq!(parsed[0].value, 1234.6); // one decimal, like the writer
        assert_eq!(parsed[1].range, "± 0.5");
    }

    #[test]
    fn trend_flags_only_large_regressions() {
        let row = |name: &str, value: f64| BenchRow {
            name: name.into(),
            value,
            range: "± 0".into(),
            unit: "events/sec".into(),
        };
        let old = vec![row("join-smoke", 100.0), row("scan-smoke", 100.0), row("other", 100.0)];
        // 25% drop on join: fine; 50% drop on scan: flagged; "other" is
        // not watched and may tank freely.
        let new = vec![row("join-smoke", 75.0), row("scan-smoke", 50.0), row("other", 1.0)];
        let p = compare_trend(&old, &new, &["join-smoke", "scan-smoke"], 0.30);
        assert_eq!(p.len(), 1);
        assert!(p[0].starts_with("scan-smoke:"), "{p:?}");
    }

    #[test]
    fn trend_skips_missing_rows() {
        let old = vec![BenchRow {
            name: "join-smoke".into(),
            value: 100.0,
            range: "± 0".into(),
            unit: "events/sec".into(),
        }];
        let p = compare_trend(&old, &[], &["join-smoke", "scan-smoke"], 0.30);
        assert!(p.is_empty());
    }
}
