//! SVG rendering for [`Figure`]s: grouped bar charts with error bars,
//! matching the paper's presentation. Pure-std string generation — no
//! plotting dependency — so `cargo run -p bench --bin figNN` drops a
//! ready-to-view `.svg` next to the `.json`.

use crate::report::Figure;
use sgx_sim::profile::CostCategory;
use std::fmt::Write as _;

/// Canvas geometry (pixels).
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 96.0;

/// Colorblind-safe categorical palette (Okabe-Ito).
const PALETTE: [&str; 7] =
    ["#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442"];

/// Distinct palette for the profiler's nine cost categories (kept separate
/// from [`PALETTE`] so figure SVGs never change when categories do).
const PROFILE_PALETTE: [&str; 9] = [
    "#0072B2", "#56B4E9", "#E69F00", "#D55E00", "#CC79A7", "#009E73", "#F0E442", "#999999",
    "#000000",
];

/// Round a value up to a "nice" axis maximum (1/2/5 × 10^k). Non-finite
/// input (an all-NaN or overflowed series) degrades to the 1.0 default so
/// the axis math downstream never divides by NaN/Inf.
fn nice_ceil(v: f64) -> f64 {
    if !(v > 0.0) || !v.is_finite() {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    for m in [1.0, 2.0, 5.0, 10.0] {
        if v <= m * mag {
            return m * mag;
        }
    }
    10.0 * mag
}

/// Escape XML-special characters in labels.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

impl Figure {
    /// Render the figure as a grouped bar chart in SVG.
    pub fn to_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let n_x = self.xs.len().max(1) as f64;
        let n_s = self.series.len().max(1) as f64;

        let y_max = nice_ceil(
            self.series
                .iter()
                .flat_map(|s| s.points.iter().flatten())
                .map(|st| st.mean + st.stddev)
                .filter(|v| v.is_finite())
                .fold(0.0, f64::max),
        );
        let y = |v: f64| MARGIN_TOP + plot_h * (1.0 - (v / y_max).clamp(0.0, 1.0));

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        // Title.
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="15" font-weight="bold">{} — {}</text>"#,
            MARGIN_LEFT,
            esc(&self.id),
            esc(&self.title)
        );

        // Horizontal gridlines + y tick labels.
        for tick in 0..=5 {
            let v = y_max * tick as f64 / 5.0;
            let yy = y(v);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{yy}" x2="{}" y2="{yy}" stroke="#ddd"/>"##,
                MARGIN_LEFT,
                WIDTH - MARGIN_RIGHT
            );
            let label = if y_max >= 100.0 { format!("{v:.0}") } else { format!("{v:.2}") };
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{label}</text>"#,
                MARGIN_LEFT - 6.0,
                yy + 4.0
            );
        }
        // Unit label on the y axis.
        let _ = write!(
            svg,
            r#"<text x="14" y="{}" font-size="12" transform="rotate(-90 14 {})" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.unit)
        );

        // Bars.
        let group_w = plot_w / n_x;
        let bar_w = (group_w * 0.8) / n_s;
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (xi, point) in series.points.iter().enumerate() {
                let Some(st) = point else { continue };
                // A NaN/Inf mean would render as literal "NaN" coordinates
                // and corrupt the SVG; drop the bar instead.
                if !st.mean.is_finite() {
                    continue;
                }
                let x0 = MARGIN_LEFT
                    + group_w * xi as f64
                    + group_w * 0.1
                    + bar_w * si as f64;
                let y0 = y(st.mean);
                let h = (MARGIN_TOP + plot_h - y0).max(0.5);
                let _ = write!(
                    svg,
                    r#"<rect x="{x0:.1}" y="{y0:.1}" width="{:.1}" height="{h:.1}" fill="{color}"><title>{}: {:.3}</title></rect>"#,
                    bar_w.max(1.0) - 1.0,
                    esc(&series.label),
                    st.mean
                );
                if st.stddev > 0.0 && st.stddev.is_finite() {
                    let xc = x0 + bar_w / 2.0;
                    let (ylo, yhi) = (y(st.mean - st.stddev), y(st.mean + st.stddev));
                    let _ = write!(
                        svg,
                        r#"<line x1="{xc:.1}" y1="{ylo:.1}" x2="{xc:.1}" y2="{yhi:.1}" stroke="black" stroke-width="1"/>"#
                    );
                }
            }
        }

        // X tick labels (rotated when long).
        for (xi, label) in self.xs.iter().enumerate() {
            let xc = MARGIN_LEFT + group_w * (xi as f64 + 0.5);
            let yy = MARGIN_TOP + plot_h + 14.0;
            let rotate = label.len() > 8;
            if rotate {
                let _ = write!(
                    svg,
                    r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="end" transform="rotate(-30 {xc:.1} {yy:.1})">{}</text>"#,
                    esc(label)
                );
            } else {
                let _ = write!(
                    svg,
                    r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="middle">{}</text>"#,
                    esc(label)
                );
            }
        }

        // Legend (bottom row).
        let mut lx = MARGIN_LEFT;
        let ly = HEIGHT - 14.0;
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let _ = write!(svg, r#"<rect x="{lx:.1}" y="{:.1}" width="11" height="11" fill="{color}"/>"#, ly - 10.0);
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{ly:.1}" font-size="11">{}</text>"#,
                lx + 15.0,
                esc(&series.label)
            );
            lx += 22.0 + 7.0 * series.label.len() as f64;
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Render a job's cycle-attribution profile as a stacked bar chart: one
/// bar per phase (sorted path order, as produced by
/// [`crate::report::profile_phase_rows`]), one colored segment per cost
/// category, stacked bottom-up in [`CostCategory::ALL`] order. Non-finite
/// or non-positive segments are skipped, so a degenerate profile still
/// yields a well-formed SVG.
pub fn profile_svg(job_id: &str, rows: &[(String, [f64; 9])]) -> String {
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let n_x = rows.len().max(1) as f64;
    let y_max = nice_ceil(
        rows.iter()
            .map(|(_, bins)| bins.iter().filter(|v| v.is_finite()).sum::<f64>())
            .filter(|v| v.is_finite())
            .fold(0.0, f64::max),
    );
    let y = |v: f64| MARGIN_TOP + plot_h * (1.0 - (v / y_max).clamp(0.0, 1.0));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-size="15" font-weight="bold">{} — cycle attribution by phase</text>"#,
        MARGIN_LEFT,
        esc(job_id)
    );

    // Horizontal gridlines + y tick labels.
    for tick in 0..=5 {
        let v = y_max * tick as f64 / 5.0;
        let yy = y(v);
        let _ = write!(
            svg,
            r##"<line x1="{}" y1="{yy}" x2="{}" y2="{yy}" stroke="#ddd"/>"##,
            MARGIN_LEFT,
            WIDTH - MARGIN_RIGHT
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{v:.0}</text>"#,
            MARGIN_LEFT - 6.0,
            yy + 4.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="14" y="{}" font-size="12" transform="rotate(-90 14 {})" text-anchor="middle">cycles</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0
    );

    // Stacked bars.
    let group_w = plot_w / n_x;
    let bar_w = group_w * 0.6;
    for (xi, (path, bins)) in rows.iter().enumerate() {
        let x0 = MARGIN_LEFT + group_w * (xi as f64 + 0.2);
        let mut acc = 0.0;
        for cat in CostCategory::ALL {
            let v = bins[cat.index()];
            if !v.is_finite() || v <= 0.0 {
                continue;
            }
            let y1 = y(acc);
            let y0 = y(acc + v);
            acc += v;
            let _ = write!(
                svg,
                r#"<rect x="{x0:.1}" y="{y0:.1}" width="{:.1}" height="{:.1}" fill="{}"><title>{path} / {}: {v:.1}</title></rect>"#,
                bar_w.max(1.0),
                (y1 - y0).max(0.5),
                PROFILE_PALETTE[cat.index()],
                cat.label()
            );
        }
        // X tick label (phase path, rotated when long).
        let xc = MARGIN_LEFT + group_w * (xi as f64 + 0.5);
        let yy = MARGIN_TOP + plot_h + 14.0;
        if path.len() > 8 {
            let _ = write!(
                svg,
                r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="end" transform="rotate(-30 {xc:.1} {yy:.1})">{}</text>"#,
                esc(path)
            );
        } else {
            let _ = write!(
                svg,
                r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="middle">{}</text>"#,
                esc(path)
            );
        }
    }

    // Legend: all nine categories, fixed order.
    let mut lx = MARGIN_LEFT;
    let ly = HEIGHT - 14.0;
    for cat in CostCategory::ALL {
        let _ = write!(
            svg,
            r#"<rect x="{lx:.1}" y="{:.1}" width="11" height="11" fill="{}"/>"#,
            ly - 10.0,
            PROFILE_PALETTE[cat.index()]
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{ly:.1}" font-size="11">{}</text>"#,
            lx + 15.0,
            cat.label()
        );
        lx += 24.0 + 6.5 * cat.label().len() as f64;
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Stat;

    fn demo() -> Figure {
        let mut f = Figure::new("figX", "demo <chart>", "size", "GB/s").with_xs(["1 MB", "1 GB"]);
        f.push_series("native", vec![Some(Stat::exact(10.0)), Some(Stat::exact(5.0))]);
        f.push_series(
            "SGX & co",
            vec![Some(Stat { mean: 9.0, stddev: 0.4 }), None],
        );
        f
    }

    #[test]
    fn svg_has_bars_legend_and_escaping() {
        let svg = demo().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Three bars drawn (one point is None) + legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 3 + 2, "background + bars + legend");
        assert!(svg.contains("SGX &amp; co"), "labels are XML-escaped");
        assert!(svg.contains("demo &lt;chart&gt;"));
        // Error bar for the stddev point.
        assert!(svg.contains(r#"stroke="black""#));
    }

    #[test]
    fn nice_ceil_picks_round_maxima() {
        assert_eq!(nice_ceil(0.0), 1.0);
        assert_eq!(nice_ceil(3.2), 5.0);
        assert_eq!(nice_ceil(51.0), 100.0);
        assert_eq!(nice_ceil(100.0), 100.0);
        assert_eq!(nice_ceil(0.07), 0.1);
    }

    #[test]
    fn empty_figure_renders_without_panicking() {
        let f = Figure::new("empty", "nothing", "x", "u");
        let svg = f.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn non_finite_points_never_leak_nan_into_the_svg() {
        // A NaN mean used to poison the y-axis fold *and* render literal
        // "NaN" coordinates for its own bar; an Inf mean survived the fold
        // and then produced inf/inf = NaN bar geometry.
        let mut f = Figure::new("fig_degen", "degenerate", "x", "u").with_xs(["a", "b", "c"]);
        f.push_series(
            "bad",
            vec![
                Some(Stat { mean: f64::NAN, stddev: 0.0 }),
                Some(Stat { mean: f64::INFINITY, stddev: f64::NAN }),
                Some(Stat::exact(4.0)),
            ],
        );
        let svg = f.to_svg();
        assert!(!svg.contains("NaN"), "no NaN coordinates: {svg}");
        assert!(!svg.contains("inf"), "no Inf coordinates");
        // Only the finite point draws a bar: background + 1 bar + 1 legend.
        assert_eq!(svg.matches("<rect").count(), 1 + 1 + 1);
    }

    #[test]
    fn all_equal_and_single_point_series_render_finite_axes() {
        // All-equal values: axis range is [0, nice_ceil(v)] — fine — but a
        // single all-zero series must not divide by a zero y_max.
        let mut flat = Figure::new("figFlat", "flat", "x", "u").with_xs(["a", "b"]);
        flat.push_series("z", vec![Some(Stat::exact(0.0)), Some(Stat::exact(0.0))]);
        let svg = flat.to_svg();
        assert!(!svg.contains("NaN") && svg.contains("</svg>"));

        let mut single = Figure::new("figOne", "one", "x", "u").with_xs(["only"]);
        single.push_series("s", vec![Some(Stat::exact(7.5))]);
        let svg = single.to_svg();
        assert!(!svg.contains("NaN"));
        assert_eq!(svg.matches("<rect").count(), 1 + 1 + 1);
    }

    #[test]
    fn profile_svg_stacks_categories_and_survives_degenerate_rows() {
        use sgx_sim::profile::CostCategory;
        let rows = vec![
            ("build".to_string(), {
                let mut b = [0.0; 9];
                b[CostCategory::Compute.index()] = 30.0;
                b[CostCategory::Mee.index()] = 70.0;
                b
            }),
            ("probe".to_string(), {
                let mut b = [0.0; 9];
                b[CostCategory::Dram.index()] = f64::NAN;
                b[CostCategory::Cache.index()] = 10.0;
                b
            }),
        ];
        let svg = profile_svg("fig06", &rows);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(!svg.contains("NaN"), "NaN segments are skipped: {svg}");
        // background + 3 finite segments + 9 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 3 + 9);
        assert!(svg.contains("build / mee: 70.0"));
        // Empty profile still renders.
        let empty = profile_svg("none", &[]);
        assert!(empty.contains("</svg>") && !empty.contains("NaN"));
    }

    #[test]
    fn bars_scale_with_value() {
        let svg = demo().to_svg();
        // The first series' two bars (10.0 then 5.0) share the palette's
        // first color; the taller value must produce the taller rect.
        let heights: Vec<f64> = svg
            .split("<rect ")
            .filter(|frag| frag.contains(PALETTE[0]))
            .map(|frag| {
                let h = frag.split("height=\"").nth(1).expect("rect has height");
                h.split('"').next().unwrap().parse::<f64>().expect("numeric height")
            })
            .collect();
        assert_eq!(heights.len(), 2 + 1, "two bars + one legend swatch");
        assert!(heights[0] > heights[1], "10.0 bar taller than 5.0 bar: {heights:?}");
    }
}
