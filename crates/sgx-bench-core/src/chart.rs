//! SVG rendering for [`Figure`]s: grouped bar charts with error bars,
//! matching the paper's presentation. Pure-std string generation — no
//! plotting dependency — so `cargo run -p bench --bin figNN` drops a
//! ready-to-view `.svg` next to the `.json`.

use crate::report::Figure;
use std::fmt::Write as _;

/// Canvas geometry (pixels).
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 96.0;

/// Colorblind-safe categorical palette (Okabe-Ito).
const PALETTE: [&str; 7] =
    ["#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442"];

/// Round a value up to a "nice" axis maximum (1/2/5 × 10^k).
fn nice_ceil(v: f64) -> f64 {
    if v <= 0.0 {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    for m in [1.0, 2.0, 5.0, 10.0] {
        if v <= m * mag {
            return m * mag;
        }
    }
    10.0 * mag
}

/// Escape XML-special characters in labels.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

impl Figure {
    /// Render the figure as a grouped bar chart in SVG.
    pub fn to_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let n_x = self.xs.len().max(1) as f64;
        let n_s = self.series.len().max(1) as f64;

        let y_max = nice_ceil(
            self.series
                .iter()
                .flat_map(|s| s.points.iter().flatten())
                .map(|st| st.mean + st.stddev)
                .fold(0.0, f64::max),
        );
        let y = |v: f64| MARGIN_TOP + plot_h * (1.0 - (v / y_max).clamp(0.0, 1.0));

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        // Title.
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="15" font-weight="bold">{} — {}</text>"#,
            MARGIN_LEFT,
            esc(&self.id),
            esc(&self.title)
        );

        // Horizontal gridlines + y tick labels.
        for tick in 0..=5 {
            let v = y_max * tick as f64 / 5.0;
            let yy = y(v);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{yy}" x2="{}" y2="{yy}" stroke="#ddd"/>"##,
                MARGIN_LEFT,
                WIDTH - MARGIN_RIGHT
            );
            let label = if y_max >= 100.0 { format!("{v:.0}") } else { format!("{v:.2}") };
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{label}</text>"#,
                MARGIN_LEFT - 6.0,
                yy + 4.0
            );
        }
        // Unit label on the y axis.
        let _ = write!(
            svg,
            r#"<text x="14" y="{}" font-size="12" transform="rotate(-90 14 {})" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.unit)
        );

        // Bars.
        let group_w = plot_w / n_x;
        let bar_w = (group_w * 0.8) / n_s;
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            for (xi, point) in series.points.iter().enumerate() {
                let Some(st) = point else { continue };
                let x0 = MARGIN_LEFT
                    + group_w * xi as f64
                    + group_w * 0.1
                    + bar_w * si as f64;
                let y0 = y(st.mean);
                let h = (MARGIN_TOP + plot_h - y0).max(0.5);
                let _ = write!(
                    svg,
                    r#"<rect x="{x0:.1}" y="{y0:.1}" width="{:.1}" height="{h:.1}" fill="{color}"><title>{}: {:.3}</title></rect>"#,
                    bar_w.max(1.0) - 1.0,
                    esc(&series.label),
                    st.mean
                );
                if st.stddev > 0.0 {
                    let xc = x0 + bar_w / 2.0;
                    let (ylo, yhi) = (y(st.mean - st.stddev), y(st.mean + st.stddev));
                    let _ = write!(
                        svg,
                        r#"<line x1="{xc:.1}" y1="{ylo:.1}" x2="{xc:.1}" y2="{yhi:.1}" stroke="black" stroke-width="1"/>"#
                    );
                }
            }
        }

        // X tick labels (rotated when long).
        for (xi, label) in self.xs.iter().enumerate() {
            let xc = MARGIN_LEFT + group_w * (xi as f64 + 0.5);
            let yy = MARGIN_TOP + plot_h + 14.0;
            let rotate = label.len() > 8;
            if rotate {
                let _ = write!(
                    svg,
                    r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="end" transform="rotate(-30 {xc:.1} {yy:.1})">{}</text>"#,
                    esc(label)
                );
            } else {
                let _ = write!(
                    svg,
                    r#"<text x="{xc:.1}" y="{yy:.1}" font-size="11" text-anchor="middle">{}</text>"#,
                    esc(label)
                );
            }
        }

        // Legend (bottom row).
        let mut lx = MARGIN_LEFT;
        let ly = HEIGHT - 14.0;
        for (si, series) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let _ = write!(svg, r#"<rect x="{lx:.1}" y="{:.1}" width="11" height="11" fill="{color}"/>"#, ly - 10.0);
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{ly:.1}" font-size="11">{}</text>"#,
                lx + 15.0,
                esc(&series.label)
            );
            lx += 22.0 + 7.0 * series.label.len() as f64;
        }
        svg.push_str("</svg>");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Stat;

    fn demo() -> Figure {
        let mut f = Figure::new("figX", "demo <chart>", "size", "GB/s").with_xs(["1 MB", "1 GB"]);
        f.push_series("native", vec![Some(Stat::exact(10.0)), Some(Stat::exact(5.0))]);
        f.push_series(
            "SGX & co",
            vec![Some(Stat { mean: 9.0, stddev: 0.4 }), None],
        );
        f
    }

    #[test]
    fn svg_has_bars_legend_and_escaping() {
        let svg = demo().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Three bars drawn (one point is None) + legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 3 + 2, "background + bars + legend");
        assert!(svg.contains("SGX &amp; co"), "labels are XML-escaped");
        assert!(svg.contains("demo &lt;chart&gt;"));
        // Error bar for the stddev point.
        assert!(svg.contains(r#"stroke="black""#));
    }

    #[test]
    fn nice_ceil_picks_round_maxima() {
        assert_eq!(nice_ceil(0.0), 1.0);
        assert_eq!(nice_ceil(3.2), 5.0);
        assert_eq!(nice_ceil(51.0), 100.0);
        assert_eq!(nice_ceil(100.0), 100.0);
        assert_eq!(nice_ceil(0.07), 0.1);
    }

    #[test]
    fn empty_figure_renders_without_panicking() {
        let f = Figure::new("empty", "nothing", "x", "u");
        let svg = f.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn bars_scale_with_value() {
        let svg = demo().to_svg();
        // The first series' two bars (10.0 then 5.0) share the palette's
        // first color; the taller value must produce the taller rect.
        let heights: Vec<f64> = svg
            .split("<rect ")
            .filter(|frag| frag.contains(PALETTE[0]))
            .map(|frag| {
                let h = frag.split("height=\"").nth(1).expect("rect has height");
                h.split('"').next().unwrap().parse::<f64>().expect("numeric height")
            })
            .collect();
        assert_eq!(heights.len(), 2 + 1, "two bars + one legend swatch");
        assert!(heights[0] > heights[1], "10.0 bar taller than 5.0 bar: {heights:?}");
    }
}
