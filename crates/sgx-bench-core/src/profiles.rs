//! Benchmark profiles and harness options.
//!
//! The default profile shrinks the Table 1 machine and all paper data
//! sizes by the same factor (16), preserving every cache-vs-data-size
//! relationship while keeping the whole suite runnable in minutes.
//! `--full` selects paper-exact sizes on the unscaled machine.

use sgx_sim::config::{scaled_profile, xeon_gold_6326};
use sgx_sim::HwConfig;

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Run paper-exact sizes on the unscaled machine (slow).
    pub full: bool,
    /// Repetitions per data point (the paper uses 10).
    pub reps: usize,
    /// Machine/data scale divisor for the scaled profile.
    pub scale: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { full: false, reps: 3, scale: 16 }
    }
}

impl RunOpts {
    /// Parse `--full`, `--reps N`, `--scale N` from an argument iterator.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> RunOpts {
        let mut opts = RunOpts::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => opts.full = true,
                "--reps" => {
                    opts.reps = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("error: --reps needs an integer");
                        std::process::exit(2);
                    });
                }
                "--scale" => {
                    opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("error: --scale needs an integer");
                        std::process::exit(2);
                    });
                }
                "--help" | "-h" => {
                    eprintln!("options: --full | --reps N | --scale N");
                }
                other => eprintln!("ignoring unknown option {other}"),
            }
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn parse() -> RunOpts {
        RunOpts::parse_from(std::env::args().skip(1))
    }

    /// Resolve to a benchmark profile.
    pub fn profile(&self) -> BenchProfile {
        if self.full {
            BenchProfile { hw: xeon_gold_6326(), data_div: 1, reps: self.reps.max(1) }
        } else if self.scale == 16 {
            BenchProfile { hw: scaled_profile(), data_div: 16, reps: self.reps.max(1) }
        } else {
            BenchProfile {
                hw: xeon_gold_6326().scaled(self.scale.max(1)),
                data_div: self.scale.max(1),
                reps: self.reps.max(1),
            }
        }
    }
}

/// A resolved benchmark profile: machine + data scaling + repetitions.
#[derive(Debug, Clone)]
pub struct BenchProfile {
    /// The simulated machine.
    pub hw: HwConfig,
    /// Paper data sizes are divided by this.
    pub data_div: usize,
    /// Repetitions per data point.
    pub reps: usize,
}

impl BenchProfile {
    /// The paper machine at 1/16 scale with 3 repetitions (test default).
    pub fn quick() -> BenchProfile {
        BenchProfile { hw: scaled_profile(), data_div: 16, reps: 1 }
    }

    /// A tiny profile for integration tests (1/64 machine and data).
    pub fn tiny() -> BenchProfile {
        BenchProfile { hw: xeon_gold_6326().scaled(64), data_div: 64, reps: 1 }
    }

    /// The refactor-equivalence profile (1/512 machine and data): the
    /// smallest scale at which every registered figure job passes its
    /// shape assertions, so the equivalence suite can afford to run the
    /// full registry. `record_goldens`, `tests/integration_equivalence.rs`
    /// and the goldens in `tests/goldens/` must all agree on this
    /// profile; [`BenchProfile::golden_tag`] is embedded in the golden
    /// file to catch accidental drift.
    pub fn golden() -> BenchProfile {
        BenchProfile { hw: xeon_gold_6326().scaled(512), data_div: 512, reps: 1 }
    }

    /// Identity string for [`BenchProfile::golden`], recorded in and
    /// checked against the golden file.
    pub fn golden_tag() -> &'static str {
        "xeon_gold_6326/512 data_div=512 reps=1"
    }

    /// Scale a paper size in megabytes to bytes under this profile.
    pub fn mb(&self, paper_mb: usize) -> usize {
        (paper_mb << 20) / self.data_div
    }

    /// Scale a paper row count under this profile.
    pub fn rows(&self, paper_rows: usize) -> usize {
        (paper_rows / self.data_div).max(64)
    }

    /// Rows of an 8-byte-tuple relation that the paper sizes as
    /// `paper_mb` megabytes.
    pub fn rel_rows(&self, paper_mb: usize) -> usize {
        (self.mb(paper_mb) / 8).max(64)
    }

    /// TPC-H scale factor equivalent to the paper's SF under this profile.
    pub fn tpch_sf(&self, paper_sf: f64) -> f64 {
        paper_sf / self.data_div as f64
    }

    /// Core ids `0..n` on socket 0.
    pub fn socket0(&self, n: usize) -> Vec<usize> {
        assert!(n <= self.hw.cores_per_socket);
        (0..n).collect()
    }

    /// Core ids `0..n` on socket 1.
    pub fn socket1(&self, n: usize) -> Vec<usize> {
        assert!(n <= self.hw.cores_per_socket);
        (self.hw.cores_per_socket..self.hw.cores_per_socket + n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> RunOpts {
        RunOpts::parse_from(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_flags() {
        let o = args(&["--full", "--reps", "7"]);
        assert!(o.full);
        assert_eq!(o.reps, 7);
        let o = args(&["--scale", "32"]);
        assert!(!o.full);
        assert_eq!(o.scale, 32);
    }

    #[test]
    fn profiles_scale_consistently() {
        let p = args(&[]).profile();
        assert_eq!(p.mb(100), 100 << 20 >> 4);
        assert_eq!(p.rel_rows(100), (100 << 20) / 16 / 8);
        assert_eq!(p.hw.l3.size, 24 * 1024 * 1024 / 16);
        let f = args(&["--full"]).profile();
        assert_eq!(f.mb(100), 100 << 20);
        assert_eq!(f.data_div, 1);
    }

    #[test]
    fn socket_helpers_pin_correctly() {
        let p = BenchProfile::quick();
        assert_eq!(p.socket0(3), vec![0, 1, 2]);
        assert_eq!(p.socket1(2), vec![16, 17]);
    }

    #[test]
    fn tpch_sf_scales() {
        let p = BenchProfile::quick();
        assert!((p.tpch_sf(10.0) - 0.625).abs() < 1e-12);
    }
}
