//! Experiment registry and run-manifest model for the resilient
//! `all_figures` harness.
//!
//! The harness binary owns process-level concerns (panic isolation via
//! `catch_unwind`, wall-clock timing, exit codes); this module owns the
//! deterministic parts: the ordered registry of every figure job, the
//! `--only`/`--skip` selection logic, and the `manifest.json` data model —
//! serialized through [`crate::json`] so equal run outcomes always produce
//! byte-identical manifests.

use crate::json::Value;
use crate::profiles::BenchProfile;
use crate::report::Figure;
use crate::experiments as ex;

/// One registered figure job: an id (usually the figure id; `fig04`
/// produces two figures) and the experiment function behind it.
pub struct FigureJob {
    /// Stable job identifier used by `--only`/`--skip` and the manifest.
    pub id: &'static str,
    /// Runs the experiment(s) and returns the figure(s) to emit.
    pub run: fn(&BenchProfile) -> Vec<Figure>,
}

/// Every table/figure the suite can produce, in the paper's order.
pub fn registry() -> Vec<FigureJob> {
    fn one(f: Figure) -> Vec<Figure> {
        vec![f]
    }
    vec![
        FigureJob { id: "table1", run: |p| one(ex::table1(p)) },
        FigureJob { id: "fig01", run: |p| one(ex::fig01_intro(p)) },
        FigureJob { id: "fig03", run: |p| one(ex::fig03_overview(p)) },
        FigureJob {
            id: "fig04",
            run: |p| {
                let (a, b) = ex::fig04_pht(p);
                vec![a, b]
            },
        },
        FigureJob { id: "fig05", run: |p| one(ex::fig05_random_access(p)) },
        FigureJob { id: "fig06", run: |p| one(ex::fig06_rho_breakdown(p)) },
        FigureJob { id: "fig07", run: |p| one(ex::fig07_histogram(p)) },
        FigureJob { id: "fig08", run: |p| one(ex::fig08_optimized(p)) },
        FigureJob { id: "fig09", run: |p| one(ex::fig09_numa_join(p)) },
        FigureJob { id: "fig10", run: |p| one(ex::fig10_queues(p)) },
        FigureJob { id: "fig11", run: |p| one(ex::fig11_edmm(p)) },
        FigureJob { id: "fig12", run: |p| one(ex::fig12_scan_single(p)) },
        FigureJob { id: "fig13", run: |p| one(ex::fig13_scan_scaling(p)) },
        FigureJob { id: "fig14", run: |p| one(ex::fig14_selectivity(p)) },
        FigureJob { id: "fig15", run: |p| one(ex::fig15_linear(p)) },
        FigureJob { id: "fig16", run: |p| one(ex::fig16_numa_scan(p)) },
        FigureJob { id: "fig17", run: |p| one(ex::fig17_tpch(p)) },
        FigureJob { id: "ablation_sgxv1", run: |p| one(ex::sgxv1_ablation(p)) },
        FigureJob { id: "ext_skew", run: |p| one(ex::ext_skew(p)) },
        FigureJob { id: "ext_aggregation", run: |p| one(ex::ext_aggregation(p)) },
        FigureJob { id: "ext_dual_socket", run: |p| one(ex::ext_dual_socket_scan(p)) },
        FigureJob { id: "ext_packed", run: |p| one(ex::ext_packed_scan(p)) },
        FigureJob { id: "ablation_swwcb", run: |p| one(ex::ablation_swwcb(p)) },
        FigureJob { id: "ablation_radix_bits", run: |p| one(ex::ablation_radix_bits(p)) },
        FigureJob { id: "ext_aex_storm", run: |p| one(ex::ext_aex_storm(p)) },
    ]
}

/// Outcome of one figure job in a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran to completion and its figures were emitted.
    Ok,
    /// The job panicked; the harness isolated it and moved on.
    Failed,
    /// The job was excluded by `--only`/`--skip`.
    Skipped,
}

impl JobStatus {
    /// Manifest string form.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Skipped => "skipped",
        }
    }

    fn parse(s: &str) -> Result<JobStatus, String> {
        match s {
            "ok" => Ok(JobStatus::Ok),
            "failed" => Ok(JobStatus::Failed),
            "skipped" => Ok(JobStatus::Skipped),
            other => Err(format!("unknown job status {other:?}")),
        }
    }
}

/// Per-job record in the manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Job id from the [`registry`].
    pub id: String,
    /// What happened.
    pub status: JobStatus,
    /// Wall-clock duration in seconds (0 for skipped jobs), rounded to
    /// milliseconds so the serialization is stable.
    pub seconds: f64,
    /// Panic message for failed jobs.
    pub error: Option<String>,
    /// Ids of the figures the job emitted (e.g. `fig04` → `fig04a`,
    /// `fig04b`).
    pub outputs: Vec<String>,
}

/// The harness run record written to `target/figures/manifest.json`: one
/// entry per registered job, in registry order, so a later invocation can
/// resume with `--only` over the failed ids.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Per-job outcomes in registry order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Number of entries with the given status.
    pub fn count(&self, status: JobStatus) -> usize {
        self.entries.iter().filter(|e| e.status == status).count()
    }

    /// Ids of the failed entries (the `--retry-failed` work list).
    pub fn failed_ids(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.status == JobStatus::Failed)
            .map(|e| e.id.clone())
            .collect()
    }

    /// Serialize to deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        let entry = |e: &ManifestEntry| {
            Value::Obj(vec![
                ("id".into(), Value::Str(e.id.clone())),
                ("status".into(), Value::Str(e.status.as_str().into())),
                ("seconds".into(), Value::Num((e.seconds * 1000.0).round() / 1000.0)),
                (
                    "error".into(),
                    e.error.as_ref().map_or(Value::Null, |m| Value::Str(m.clone())),
                ),
                (
                    "outputs".into(),
                    Value::Arr(e.outputs.iter().map(|o| Value::Str(o.clone())).collect()),
                ),
            ])
        };
        Value::Obj(vec![
            ("schema".into(), Value::Str("sgx-bench-manifest/1".into())),
            ("jobs".into(), Value::Arr(self.entries.iter().map(entry).collect())),
            ("n_ok".into(), Value::Num(self.count(JobStatus::Ok) as f64)),
            ("n_failed".into(), Value::Num(self.count(JobStatus::Failed) as f64)),
            ("n_skipped".into(), Value::Num(self.count(JobStatus::Skipped) as f64)),
        ])
        .pretty()
    }

    /// Parse a manifest previously written by [`Manifest::to_json`].
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = Value::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "manifest missing \"schema\"".to_string())?;
        if schema != "sgx-bench-manifest/1" {
            return Err(format!("unsupported manifest schema {schema:?}"));
        }
        let jobs = v
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| "manifest missing \"jobs\" array".to_string())?;
        let entries = jobs
            .iter()
            .map(|j| {
                let field = |key: &str| {
                    j.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("manifest job missing string field {key:?}"))
                };
                let outputs = j
                    .get("outputs")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "manifest job missing \"outputs\"".to_string())?
                    .iter()
                    .map(|o| {
                        o.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string output id".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ManifestEntry {
                    id: field("id")?,
                    status: JobStatus::parse(&field("status")?)?,
                    seconds: j
                        .get("seconds")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "manifest job missing \"seconds\"".to_string())?,
                    error: match j.get("error") {
                        Some(Value::Str(m)) => Some(m.clone()),
                        Some(Value::Null) | None => None,
                        Some(_) => return Err("manifest \"error\" must be string or null".into()),
                    },
                    outputs,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Manifest { entries })
    }
}

/// `--only`/`--skip` selection. `only` empty means "everything"; `skip`
/// always wins over `only`.
#[derive(Debug, Clone, Default)]
pub struct JobFilter {
    /// Job ids to run exclusively (empty = all).
    pub only: Vec<String>,
    /// Job ids to exclude.
    pub skip: Vec<String>,
}

impl JobFilter {
    /// Should the job with this id run?
    pub fn selects(&self, id: &str) -> bool {
        if self.skip.iter().any(|s| s == id) {
            return false;
        }
        self.only.is_empty() || self.only.iter().any(|o| o == id)
    }

    /// Ids in `only`/`skip` that match no registered job — surfaced as a
    /// usage error so a typo'd `--only fig7` cannot silently run nothing.
    pub fn unknown_ids(&self, registry: &[FigureJob]) -> Vec<String> {
        self.only
            .iter()
            .chain(self.skip.iter())
            .filter(|id| !registry.iter().any(|j| j.id == id.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let jobs = registry();
        assert_eq!(jobs.len(), 25);
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate job id");
            }
        }
        assert!(jobs.iter().any(|j| j.id == "ext_aex_storm"));
    }

    #[test]
    fn manifest_roundtrips_byte_identically() {
        let m = Manifest {
            entries: vec![
                ManifestEntry {
                    id: "fig04".into(),
                    status: JobStatus::Ok,
                    seconds: 1.23456,
                    error: None,
                    outputs: vec!["fig04a".into(), "fig04b".into()],
                },
                ManifestEntry {
                    id: "fig07".into(),
                    status: JobStatus::Failed,
                    seconds: 0.5,
                    error: Some("panicked: shape assertion".into()),
                    outputs: vec![],
                },
                ManifestEntry {
                    id: "fig08".into(),
                    status: JobStatus::Skipped,
                    seconds: 0.0,
                    error: None,
                    outputs: vec![],
                },
            ],
        };
        let j = m.to_json();
        let back = Manifest::from_json(&j).expect("roundtrip");
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.count(JobStatus::Ok), 1);
        assert_eq!(back.count(JobStatus::Failed), 1);
        assert_eq!(back.failed_ids(), vec!["fig07".to_string()]);
        assert_eq!(back.entries[1].error.as_deref(), Some("panicked: shape assertion"));
        // Seconds rounded to ms on write.
        assert!((back.entries[0].seconds - 1.235).abs() < 1e-9);
        assert_eq!(back.to_json(), j, "manifest serialization must be byte-stable");
    }

    #[test]
    fn from_json_rejects_malformed_manifests() {
        assert!(Manifest::from_json("{}").is_err());
        assert!(Manifest::from_json("{\"schema\": \"other/9\", \"jobs\": []}").is_err());
        let bad_status = r#"{"schema": "sgx-bench-manifest/1", "jobs": [
            {"id": "x", "status": "meh", "seconds": 0.0, "error": null, "outputs": []}
        ]}"#;
        assert!(Manifest::from_json(bad_status).is_err());
    }

    #[test]
    fn filter_semantics() {
        let jobs = registry();
        let all = JobFilter::default();
        assert!(all.selects("fig05"));
        assert!(all.unknown_ids(&jobs).is_empty());
        let only = JobFilter { only: vec!["fig05".into(), "fig07".into()], skip: vec![] };
        assert!(only.selects("fig05"));
        assert!(!only.selects("fig06"));
        let skip = JobFilter { only: vec![], skip: vec!["fig05".into()] };
        assert!(!skip.selects("fig05"));
        assert!(skip.selects("fig06"));
        // skip beats only; unknown ids are reported.
        let both = JobFilter { only: vec!["fig05".into()], skip: vec!["fig05".into()] };
        assert!(!both.selects("fig05"));
        let typo = JobFilter { only: vec!["fig7".into()], skip: vec![] };
        assert_eq!(typo.unknown_ids(&jobs), vec!["fig7".to_string()]);
    }
}
