//! Experiment registry, work-stealing-lite scheduler and run-manifest
//! model for the resilient `all_figures` harness.
//!
//! The harness binary owns process-level concerns (argument parsing,
//! figure emission, exit codes); this module owns the deterministic
//! parts: the ordered registry of every figure job, the `--only`/`--skip`
//! selection logic, the parallel job scheduler ([`run_registry`]), and
//! the `manifest.json` data model — serialized through [`crate::json`] so
//! equal run outcomes always produce byte-identical manifests.
//!
//! ## Parallel determinism
//!
//! [`run_registry`] runs the selected jobs on `jobs` worker threads that
//! pull indices from one shared atomic cursor (work-stealing-lite: no
//! per-thread deques, just a strictly increasing claim counter). Each job
//! builds its own [`sgx_sim::Machine`]s, whose cost model is a pure
//! function of (profile, experiment) — no global mutable state — so
//! *which* thread runs a job affects neither its figures nor its
//! counters. Results are committed back in registry order, and the
//! per-job counter totals are captured from the thread-local session
//! accumulator (`sgx_sim::counters::session_take`), which works because
//! one job runs wholly on one worker thread. The manifest's `seconds`
//! field is the only legitimately nondeterministic output; determinism
//! comparisons use [`Manifest::normalized`] which zeroes it.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
// Wall-clock timing feeds the manifest's `seconds` diagnostics only,
// never a simulated measurement; the alias keeps the nondeterministic
// type visibly quarantined at this one import.
// sgx-lint: allow(nondeterminism) harness-only wall-clock for manifest timings
use std::time::Instant as WallClock;

use crate::json::Value;
use crate::profiles::BenchProfile;
use crate::report::Figure;
use crate::experiments as ex;
use sgx_sim::Counters;

/// One registered figure job: an id (usually the figure id; `fig04`
/// produces two figures) and the experiment function behind it.
pub struct FigureJob {
    /// Stable job identifier used by `--only`/`--skip` and the manifest.
    pub id: &'static str,
    /// Runs the experiment(s) and returns the figure(s) to emit.
    pub run: fn(&BenchProfile) -> Vec<Figure>,
}

/// Every table/figure the suite can produce, in the paper's order.
pub fn registry() -> Vec<FigureJob> {
    fn one(f: Figure) -> Vec<Figure> {
        vec![f]
    }
    vec![
        FigureJob { id: "table1", run: |p| one(ex::table1(p)) },
        FigureJob { id: "fig01", run: |p| one(ex::fig01_intro(p)) },
        FigureJob { id: "fig03", run: |p| one(ex::fig03_overview(p)) },
        FigureJob {
            id: "fig04",
            run: |p| {
                let (a, b) = ex::fig04_pht(p);
                vec![a, b]
            },
        },
        FigureJob { id: "fig05", run: |p| one(ex::fig05_random_access(p)) },
        FigureJob { id: "fig06", run: |p| one(ex::fig06_rho_breakdown(p)) },
        FigureJob { id: "fig07", run: |p| one(ex::fig07_histogram(p)) },
        FigureJob { id: "fig08", run: |p| one(ex::fig08_optimized(p)) },
        FigureJob { id: "fig09", run: |p| one(ex::fig09_numa_join(p)) },
        FigureJob { id: "fig10", run: |p| one(ex::fig10_queues(p)) },
        FigureJob { id: "fig11", run: |p| one(ex::fig11_edmm(p)) },
        FigureJob { id: "fig12", run: |p| one(ex::fig12_scan_single(p)) },
        FigureJob { id: "fig13", run: |p| one(ex::fig13_scan_scaling(p)) },
        FigureJob { id: "fig14", run: |p| one(ex::fig14_selectivity(p)) },
        FigureJob { id: "fig15", run: |p| one(ex::fig15_linear(p)) },
        FigureJob { id: "fig16", run: |p| one(ex::fig16_numa_scan(p)) },
        FigureJob { id: "fig17", run: |p| one(ex::fig17_tpch(p)) },
        FigureJob { id: "ablation_sgxv1", run: |p| one(ex::sgxv1_ablation(p)) },
        FigureJob { id: "ext_skew", run: |p| one(ex::ext_skew(p)) },
        FigureJob { id: "ext_aggregation", run: |p| one(ex::ext_aggregation(p)) },
        FigureJob { id: "ext_dual_socket", run: |p| one(ex::ext_dual_socket_scan(p)) },
        FigureJob { id: "ext_packed", run: |p| one(ex::ext_packed_scan(p)) },
        FigureJob { id: "ablation_swwcb", run: |p| one(ex::ablation_swwcb(p)) },
        FigureJob { id: "ablation_radix_bits", run: |p| one(ex::ablation_radix_bits(p)) },
        FigureJob { id: "ext_aex_storm", run: |p| one(ex::ext_aex_storm(p)) },
        FigureJob { id: "ext_service_tail", run: ex::ext_service_tail },
        FigureJob { id: "ext_storage_path", run: |p| one(ex::ext_storage_path(p)) },
    ]
}

/// Everything one finished job hands back to the harness: status and
/// diagnostics for the manifest, the figures to emit (in emission
/// order), and the job's counter totals for the aggregate table.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job id from the [`registry`].
    pub id: String,
    /// What happened.
    pub status: JobStatus,
    /// Wall-clock seconds the job took (0 for skipped jobs).
    pub seconds: f64,
    /// Panic message for failed jobs.
    pub error: Option<String>,
    /// Figures produced by the job (empty for failed/skipped jobs).
    pub figures: Vec<Figure>,
    /// Counter totals of every `Machine` the job created.
    pub counters: Counters,
    /// Cycle-attribution profile of the job (`Some` only when
    /// [`RunConfig::profile`] was set; `None` for skipped jobs).
    pub profile: Option<sgx_sim::Profile>,
}

impl JobOutcome {
    fn skipped(id: &str) -> JobOutcome {
        JobOutcome {
            id: id.to_string(),
            status: JobStatus::Skipped,
            seconds: 0.0,
            error: None,
            figures: Vec::new(),
            counters: Counters::default(),
            profile: None,
        }
    }
}

/// Scheduler configuration for [`run_registry`].
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Worker threads (clamped to at least 1). 1 = sequential on the
    /// calling thread, exactly like the pre-parallel harness.
    pub jobs: usize,
    /// `--only`/`--skip` selection.
    pub filter: JobFilter,
    /// Deterministic failure hook: the job with this id panics before its
    /// experiment runs (the CI negative test sets `ALL_FIGURES_FAIL`).
    pub fail_injection: Option<String>,
    /// Collect a per-job cycle-attribution profile (see
    /// [`sgx_sim::profile`]). Off by default; the figures themselves are
    /// byte-identical either way.
    pub profile: bool,
}

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run every selected registry job on `cfg.jobs` worker threads and
/// return one [`JobOutcome`] per registered job, in registry order.
///
/// Jobs are claimed from a shared atomic cursor, so thread assignment is
/// timing-dependent — but each job owns its own deterministic `Machine`s,
/// so its figures and counters are identical whatever thread ran it (the
/// equivalence suite proves this byte-for-byte). A panicking job is
/// isolated with `catch_unwind` and recorded as [`JobStatus::Failed`].
///
/// The calling thread participates as a worker (and is the only worker
/// for `jobs <= 1`). The caller's own thread-local measurement state —
/// counter session, profile session, and profiling flag — is saved on
/// entry and restored on exit, so an open outer measurement session
/// survives a registry run intact.
pub fn run_registry(registry: &[FigureJob], profile: &BenchProfile, cfg: &RunConfig) -> Vec<JobOutcome> {
    let saved_counters = sgx_sim::counters::session_take();
    let saved_profile = sgx_sim::profile::session_take();
    let saved_enabled = sgx_sim::profile::enabled();
    let selected: Vec<usize> =
        (0..registry.len()).filter(|&i| cfg.filter.selects(registry[i].id)).collect();
    let workers = cfg.jobs.max(1).min(selected.len().max(1));
    let cursor = AtomicUsize::new(0);
    let drain = || {
        let mut mine: Vec<(usize, JobOutcome)> = Vec::new();
        loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&idx) = selected.get(k) else { break };
            mine.push((idx, run_one(&registry[idx], profile, cfg)));
        }
        mine
    };
    let mut done: Vec<Option<JobOutcome>> = Vec::new();
    done.resize_with(registry.len(), || None);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 1..workers {
            // Generous stacks: experiments were sized for the main thread.
            let spawned = std::thread::Builder::new()
                .stack_size(16 << 20)
                .spawn_scoped(s, || drain());
            match spawned {
                Ok(h) => handles.push(h),
                // The calling thread still drains the whole queue below,
                // so a failed spawn only costs parallelism.
                Err(e) => eprintln!("warning: could not spawn harness worker: {e}"),
            }
        }
        for (idx, outcome) in drain() {
            done[idx] = Some(outcome);
        }
        for h in handles {
            let part = h.join().unwrap_or_else(|p| panic::resume_unwind(p));
            for (idx, outcome) in part {
                done[idx] = Some(outcome);
            }
        }
    });
    // Restore the caller's measurement state: every job drained the
    // session of the thread it ran on (including this one), so absorbing
    // the saved sessions back reinstates them exactly.
    sgx_sim::profile::set_enabled(saved_enabled);
    sgx_sim::profile::session_absorb(&saved_profile);
    sgx_sim::counters::session_absorb(&saved_counters);
    registry
        .iter()
        .zip(done.iter_mut())
        .map(|(job, slot)| slot.take().unwrap_or_else(|| JobOutcome::skipped(job.id)))
        .collect()
}

/// Run one job on the current thread with panic isolation and per-job
/// counter capture.
fn run_one(job: &FigureJob, profile: &BenchProfile, cfg: &RunConfig) -> JobOutcome {
    eprintln!("[{}] running...", job.id);
    let started = WallClock::now();
    // Reset the session accumulators so earlier machines dropped on this
    // thread are not attributed to this job, and arm (or disarm) cycle
    // attribution for the machines this job builds.
    sgx_sim::counters::session_take();
    sgx_sim::profile::session_take();
    sgx_sim::profile::set_enabled(cfg.profile);
    let run = job.run;
    let inject = cfg.fail_injection.as_deref() == Some(job.id);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        if inject {
            // sgx-lint: allow(panic-in-library) fault-injection hook, caught by this catch_unwind
            panic!("injected failure via ALL_FIGURES_FAIL={}", job.id);
        }
        run(profile)
    }));
    // Machines are dropped during the job (or during unwind), so the
    // sessions now hold exactly this job's totals.
    let counters = sgx_sim::counters::session_take();
    let prof = cfg.profile.then(sgx_sim::profile::session_take);
    sgx_sim::profile::set_enabled(false);
    let seconds = started.elapsed().as_secs_f64();
    match outcome {
        Ok(figures) => {
            eprintln!("[{}] ok ({seconds:.2}s)", job.id);
            JobOutcome {
                id: job.id.to_string(),
                status: JobStatus::Ok,
                seconds,
                error: None,
                figures,
                counters,
                profile: prof,
            }
        }
        Err(cause) => {
            let message = if let Some(s) = cause.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = cause.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            eprintln!("[{}] FAILED ({seconds:.2}s): {message}", job.id);
            JobOutcome {
                id: job.id.to_string(),
                status: JobStatus::Failed,
                seconds,
                error: Some(message),
                figures: Vec::new(),
                counters,
                profile: prof,
            }
        }
    }
}

/// Outcome of one figure job in a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran to completion and its figures were emitted.
    Ok,
    /// The job panicked; the harness isolated it and moved on.
    Failed,
    /// The job was excluded by `--only`/`--skip`.
    Skipped,
}

impl JobStatus {
    /// Manifest string form.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Skipped => "skipped",
        }
    }

    fn parse(s: &str) -> Result<JobStatus, String> {
        match s {
            "ok" => Ok(JobStatus::Ok),
            "failed" => Ok(JobStatus::Failed),
            "skipped" => Ok(JobStatus::Skipped),
            other => Err(format!("unknown job status {other:?}")),
        }
    }
}

/// Per-job record in the manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Job id from the [`registry`].
    pub id: String,
    /// What happened.
    pub status: JobStatus,
    /// Wall-clock duration in seconds (0 for skipped jobs), rounded to
    /// milliseconds so the serialization is stable.
    pub seconds: f64,
    /// Panic message for failed jobs.
    pub error: Option<String>,
    /// Ids of the figures the job emitted (e.g. `fig04` → `fig04a`,
    /// `fig04b`).
    pub outputs: Vec<String>,
}

/// The harness run record written to `target/figures/manifest.json`: one
/// entry per registered job, in registry order, so a later invocation can
/// resume with `--only` over the failed ids.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Per-job outcomes in registry order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Build the manifest for a [`run_registry`] result (one entry per
    /// registered job, in registry order).
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Manifest {
        Manifest {
            entries: outcomes
                .iter()
                .map(|o| ManifestEntry {
                    id: o.id.clone(),
                    status: o.status,
                    seconds: o.seconds,
                    error: o.error.clone(),
                    outputs: o.figures.iter().map(|f| f.id.clone()).collect(),
                })
                .collect(),
        }
    }

    /// Copy with every `seconds` zeroed. Wall seconds legitimately vary
    /// between runs (and across `--jobs` values); determinism byte-diffs
    /// compare normalized manifests so timing noise cannot poison them,
    /// while the written manifest still records the real timings.
    pub fn normalized(&self) -> Manifest {
        let mut m = self.clone();
        for e in &mut m.entries {
            e.seconds = 0.0;
        }
        m
    }

    /// Number of entries with the given status.
    pub fn count(&self, status: JobStatus) -> usize {
        self.entries.iter().filter(|e| e.status == status).count()
    }

    /// Ids of the failed entries (the `--retry-failed` work list).
    pub fn failed_ids(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.status == JobStatus::Failed)
            .map(|e| e.id.clone())
            .collect()
    }

    /// Serialize to deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        let entry = |e: &ManifestEntry| {
            Value::Obj(vec![
                ("id".into(), Value::Str(e.id.clone())),
                ("status".into(), Value::Str(e.status.as_str().into())),
                ("seconds".into(), Value::Num((e.seconds * 1000.0).round() / 1000.0)),
                (
                    "error".into(),
                    e.error.as_ref().map_or(Value::Null, |m| Value::Str(m.clone())),
                ),
                (
                    "outputs".into(),
                    Value::Arr(e.outputs.iter().map(|o| Value::Str(o.clone())).collect()),
                ),
            ])
        };
        Value::Obj(vec![
            ("schema".into(), Value::Str("sgx-bench-manifest/1".into())),
            ("jobs".into(), Value::Arr(self.entries.iter().map(entry).collect())),
            ("n_ok".into(), Value::Num(self.count(JobStatus::Ok) as f64)),
            ("n_failed".into(), Value::Num(self.count(JobStatus::Failed) as f64)),
            ("n_skipped".into(), Value::Num(self.count(JobStatus::Skipped) as f64)),
        ])
        .pretty()
    }

    /// Parse a manifest previously written by [`Manifest::to_json`].
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = Value::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "manifest missing \"schema\"".to_string())?;
        if schema != "sgx-bench-manifest/1" {
            return Err(format!("unsupported manifest schema {schema:?}"));
        }
        let jobs = v
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| "manifest missing \"jobs\" array".to_string())?;
        let entries = jobs
            .iter()
            .map(|j| {
                let field = |key: &str| {
                    j.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("manifest job missing string field {key:?}"))
                };
                let outputs = j
                    .get("outputs")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "manifest job missing \"outputs\"".to_string())?
                    .iter()
                    .map(|o| {
                        o.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string output id".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ManifestEntry {
                    id: field("id")?,
                    status: JobStatus::parse(&field("status")?)?,
                    seconds: j
                        .get("seconds")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "manifest job missing \"seconds\"".to_string())?,
                    error: match j.get("error") {
                        Some(Value::Str(m)) => Some(m.clone()),
                        Some(Value::Null) | None => None,
                        Some(_) => return Err("manifest \"error\" must be string or null".into()),
                    },
                    outputs,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Manifest { entries })
    }
}

/// `--only`/`--skip` selection. `only` empty means "everything"; `skip`
/// always wins over `only`.
#[derive(Debug, Clone, Default)]
pub struct JobFilter {
    /// Job ids to run exclusively (empty = all).
    pub only: Vec<String>,
    /// Job ids to exclude.
    pub skip: Vec<String>,
}

impl JobFilter {
    /// Should the job with this id run?
    pub fn selects(&self, id: &str) -> bool {
        if self.skip.iter().any(|s| s == id) {
            return false;
        }
        self.only.is_empty() || self.only.iter().any(|o| o == id)
    }

    /// Ids in `only`/`skip` that match no registered job — surfaced as a
    /// usage error so a typo'd `--only fig7` cannot silently run nothing.
    pub fn unknown_ids(&self, registry: &[FigureJob]) -> Vec<String> {
        self.only
            .iter()
            .chain(self.skip.iter())
            .filter(|id| !registry.iter().any(|j| j.id == id.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::{Machine, Setting};

    /// A cheap machine-touching job: charges work so the scheduler's
    /// per-job counter capture has something real to capture.
    fn probe_job(profile: &BenchProfile) -> Vec<Figure> {
        let mut m = Machine::new(profile.hw.clone(), Setting::SgxDataInEnclave);
        let ops = m.run(|c| {
            c.compute(1000);
            42.0
        });
        let mut f = Figure::new("probe", "scheduler probe", "x", "ops");
        f.xs.push(format!("{ops}"));
        f.notes.push(format!("wall={:.1}", m.wall_cycles()));
        vec![f]
    }

    fn boom_job(_profile: &BenchProfile) -> Vec<Figure> {
        panic!("synthetic failure for scheduler tests");
    }

    fn test_registry() -> Vec<FigureJob> {
        vec![
            FigureJob { id: "alpha", run: probe_job },
            FigureJob { id: "boom", run: boom_job },
            FigureJob { id: "omega", run: probe_job },
        ]
    }

    fn outcome_fingerprint(outcomes: &[JobOutcome]) -> Vec<String> {
        outcomes
            .iter()
            .map(|o| {
                let figs: Vec<String> = o.figures.iter().map(|f| f.to_json()).collect();
                format!("{}|{}|{}|{}", o.id, o.status.as_str(), figs.join(";"), o.counters.report())
            })
            .collect()
    }

    #[test]
    fn scheduler_commits_in_registry_order_with_isolation() {
        let reg = test_registry();
        let cfg = RunConfig { jobs: 2, ..RunConfig::default() };
        let out = run_registry(&reg, &BenchProfile::tiny(), &cfg);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, "alpha");
        assert_eq!(out[1].id, "boom");
        assert_eq!(out[2].id, "omega");
        assert_eq!(out[0].status, JobStatus::Ok);
        assert_eq!(out[1].status, JobStatus::Failed);
        assert!(out[1].error.as_deref().is_some_and(|e| e.contains("synthetic failure")));
        assert_eq!(out[2].status, JobStatus::Ok);
        // Per-job counters come from the job's own machines.
        assert_eq!(out[0].counters.alu_ops, 1000);
        assert_eq!(out[2].counters.alu_ops, 1000);
    }

    #[test]
    fn scheduler_results_are_jobs_invariant() {
        let reg = test_registry();
        let profile = BenchProfile::tiny();
        let runs: Vec<Vec<String>> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| {
                let cfg = RunConfig { jobs, ..RunConfig::default() };
                outcome_fingerprint(&run_registry(&reg, &profile, &cfg))
            })
            .collect();
        assert_eq!(runs[0], runs[1], "--jobs 2 must reproduce sequential results");
        assert_eq!(runs[0], runs[2], "--jobs 8 must reproduce sequential results");
    }

    #[test]
    fn scheduler_honors_filter_and_fail_injection() {
        let reg = test_registry();
        let profile = BenchProfile::tiny();
        let cfg = RunConfig {
            jobs: 4,
            filter: JobFilter { only: vec!["alpha".into(), "omega".into()], skip: vec![] },
            fail_injection: Some("omega".into()),
            profile: false,
        };
        let out = run_registry(&reg, &profile, &cfg);
        assert_eq!(out[0].status, JobStatus::Ok);
        assert_eq!(out[1].status, JobStatus::Skipped);
        assert_eq!(out[1].seconds, 0.0);
        assert_eq!(out[2].status, JobStatus::Failed);
        assert!(out[2].error.as_deref().is_some_and(|e| e.contains("ALL_FIGURES_FAIL")));
        let m = Manifest::from_outcomes(&out);
        assert_eq!(m.count(JobStatus::Ok), 1);
        assert_eq!(m.count(JobStatus::Skipped), 1);
        assert_eq!(m.failed_ids(), vec!["omega".to_string()]);
    }

    #[test]
    fn run_registry_preserves_callers_open_sessions() {
        // Regression test: run_registry used to drain the calling thread's
        // session accumulators (every job resets them), silently losing an
        // outer measurement in progress.
        let _ = sgx_sim::counters::session_take();
        sgx_sim::profile::set_enabled(true);
        let _ = sgx_sim::profile::session_take();
        {
            let mut m = Machine::new(BenchProfile::tiny().hw.clone(), Setting::SgxDataInEnclave);
            let _scope = m.phase("outer");
            m.run(|c| c.compute(7));
        }
        let reg = test_registry();
        let cfg = RunConfig {
            jobs: 2,
            filter: JobFilter { only: vec!["alpha".into()], skip: vec![] },
            ..RunConfig::default()
        };
        let out = run_registry(&reg, &BenchProfile::tiny(), &cfg);
        assert_eq!(out[0].counters.alu_ops, 1000, "the job still measures its own work");
        assert!(sgx_sim::profile::enabled(), "caller's profiling flag must be restored");
        sgx_sim::profile::set_enabled(false);
        let outer = sgx_sim::counters::session_take();
        assert_eq!(outer.alu_ops, 7, "caller's counter session must survive run_registry");
        let outer_prof = sgx_sim::profile::session_take();
        assert_eq!(outer_prof.total_counters().alu_ops, 7);
        assert!(outer_prof.phases.contains_key("outer"));
    }

    #[test]
    fn scheduler_collects_profiles_only_when_asked() {
        let reg = test_registry();
        let profile = BenchProfile::tiny();
        let off = run_registry(&reg, &profile, &RunConfig { jobs: 1, ..RunConfig::default() });
        assert!(off.iter().all(|o| o.profile.is_none()));
        let cfg = RunConfig { jobs: 1, profile: true, ..RunConfig::default() };
        let on = run_registry(&reg, &profile, &cfg);
        let p = on[0].profile.as_ref().expect("profiled job carries a profile");
        assert_eq!(p.total_counters().alu_ops, on[0].counters.alu_ops);
        assert!(!sgx_sim::profile::enabled(), "profiling flag must not leak out");
        // Profiles are jobs-invariant like everything else.
        let cfg2 = RunConfig { jobs: 8, profile: true, ..RunConfig::default() };
        let on2 = run_registry(&reg, &profile, &cfg2);
        assert_eq!(
            format!("{:?}", on[0].profile),
            format!("{:?}", on2[0].profile),
            "profiles must be identical across --jobs values"
        );
    }

    #[test]
    fn normalized_manifests_are_timing_invariant() {
        let mk = |secs: f64| Manifest {
            entries: vec![ManifestEntry {
                id: "fig01".into(),
                status: JobStatus::Ok,
                seconds: secs,
                error: None,
                outputs: vec!["fig01".into()],
            }],
        };
        let a = mk(1.25);
        let b = mk(9.75);
        assert_ne!(a.to_json(), b.to_json(), "raw manifests must record real seconds");
        assert_eq!(a.normalized().to_json(), b.normalized().to_json());
        assert!(a.normalized().to_json().contains("\"seconds\": 0.0"));
    }

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let jobs = registry();
        assert_eq!(jobs.len(), 27);
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate job id");
            }
        }
        assert!(jobs.iter().any(|j| j.id == "ext_aex_storm"));
        assert!(jobs.iter().any(|j| j.id == "ext_service_tail"));
        assert!(jobs.iter().any(|j| j.id == "ext_storage_path"));
    }

    #[test]
    fn manifest_roundtrips_byte_identically() {
        let m = Manifest {
            entries: vec![
                ManifestEntry {
                    id: "fig04".into(),
                    status: JobStatus::Ok,
                    seconds: 1.23456,
                    error: None,
                    outputs: vec!["fig04a".into(), "fig04b".into()],
                },
                ManifestEntry {
                    id: "fig07".into(),
                    status: JobStatus::Failed,
                    seconds: 0.5,
                    error: Some("panicked: shape assertion".into()),
                    outputs: vec![],
                },
                ManifestEntry {
                    id: "fig08".into(),
                    status: JobStatus::Skipped,
                    seconds: 0.0,
                    error: None,
                    outputs: vec![],
                },
            ],
        };
        let j = m.to_json();
        let back = Manifest::from_json(&j).expect("roundtrip");
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.count(JobStatus::Ok), 1);
        assert_eq!(back.count(JobStatus::Failed), 1);
        assert_eq!(back.failed_ids(), vec!["fig07".to_string()]);
        assert_eq!(back.entries[1].error.as_deref(), Some("panicked: shape assertion"));
        // Seconds rounded to ms on write.
        assert!((back.entries[0].seconds - 1.235).abs() < 1e-9);
        assert_eq!(back.to_json(), j, "manifest serialization must be byte-stable");
    }

    #[test]
    fn from_json_rejects_malformed_manifests() {
        assert!(Manifest::from_json("{}").is_err());
        assert!(Manifest::from_json("{\"schema\": \"other/9\", \"jobs\": []}").is_err());
        let bad_status = r#"{"schema": "sgx-bench-manifest/1", "jobs": [
            {"id": "x", "status": "meh", "seconds": 0.0, "error": null, "outputs": []}
        ]}"#;
        assert!(Manifest::from_json(bad_status).is_err());
    }

    #[test]
    fn filter_semantics() {
        let jobs = registry();
        let all = JobFilter::default();
        assert!(all.selects("fig05"));
        assert!(all.unknown_ids(&jobs).is_empty());
        let only = JobFilter { only: vec!["fig05".into(), "fig07".into()], skip: vec![] };
        assert!(only.selects("fig05"));
        assert!(!only.selects("fig06"));
        let skip = JobFilter { only: vec![], skip: vec!["fig05".into()] };
        assert!(!skip.selects("fig05"));
        assert!(skip.selects("fig06"));
        // skip beats only; unknown ids are reported.
        let both = JobFilter { only: vec!["fig05".into()], skip: vec!["fig05".into()] };
        assert!(!both.selects("fig05"));
        let typo = JobFilter { only: vec!["fig7".into()], skip: vec![] };
        assert_eq!(typo.unknown_ids(&jobs), vec!["fig7".to_string()]);
    }
}
