//! Minimal hand-rolled JSON tree, pretty printer, and parser.
//!
//! The build environment is offline, so instead of depending on
//! `serde`/`serde_json` the figure reports serialize through this module.
//! The printer is deterministic by construction: object keys print in
//! insertion order, floats format via a fixed shortest-roundtrip rule, and
//! there is no HashMap anywhere — byte-identical input produces
//! byte-identical output, which the determinism regression test relies on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (always stored as f64; integers print without `.0`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys keep insertion order (deliberately not a map type).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation (serde_json "pretty" style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a message with byte offset on error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Maximum container nesting the recursive-descent parser accepts. Figure
/// documents are 4 levels deep; without a bound, adversarial input like
/// `[[[[…` overflows the stack — an abort no caller can catch.
const MAX_DEPTH: usize = 128;

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; figures never produce them, but stay total.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // The `as i64` cast drops the sign of -0.0; restore it so the
        // printed text parses back to the same bit pattern.
        if n == 0.0 && n.is_sign_negative() {
            out.push_str("-0.0");
        } else {
            let _ = write!(out, "{}.0", n.trunc() as i64);
        }
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        self.depth += 1;
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        };
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one slice push.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Figures only emit BMP text; surrogate pairs
                            // are out of scope and map to the replacement
                            // character rather than an error.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_expected_layout() {
        let v = Value::Obj(vec![
            ("id".into(), Value::Str("fig1".into())),
            ("n".into(), Value::Num(1.5)),
            ("k".into(), Value::Num(3.0)),
            ("flags".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let expected = "{\n  \"id\": \"fig1\",\n  \"n\": 1.5,\n  \"k\": 3.0,\n  \"flags\": [\n    true,\n    null\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let v = Value::Obj(vec![
            ("s".into(), Value::Str("a \"quoted\"\nline\ttab \\ done".into())),
            ("neg".into(), Value::Num(-0.125)),
            ("big".into(), Value::Num(123456789.0)),
            (
                "nested".into(),
                Value::Arr(vec![Value::Obj(vec![("x".into(), Value::Num(2.5))])]),
            ),
        ]);
        let text = v.pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        // Printing the parse result reproduces the exact bytes.
        assert_eq!(back.pretty(), text);
    }

    #[test]
    fn parser_accepts_foreign_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Value::parse("{\"a\": }").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("true false").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("nope").is_err());
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        // Unclosed and balanced deep nesting both return Err instead of
        // recursing to a stack overflow.
        assert!(Value::parse(&"[".repeat(100_000)).is_err());
        let balanced = format!("{}1.0{}", "[".repeat(300), "]".repeat(300));
        assert!(Value::parse(&balanced).is_err());
        let shallow = format!("{}1.0{}", "[".repeat(64), "]".repeat(64));
        assert!(Value::parse(&shallow).is_ok());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Value::parse("{\"x\": 1.0}").unwrap();
        assert!(v.get("x").is_some());
        assert!(v.get("y").is_none());
        assert_eq!(v.get("x").unwrap().as_str(), None);
        assert_eq!(v.as_f64(), None);
    }
}
