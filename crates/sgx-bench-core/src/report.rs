//! Figure/table data model and rendering.
//!
//! Every experiment harness produces a [`Figure`]: a set of labelled
//! series over a common x-axis, mirroring the plots in the paper. Figures
//! render as aligned text tables on stdout and serialize to JSON for
//! downstream tooling (EXPERIMENTS.md is assembled from these).

use crate::json::Value;
use sgx_sim::profile::{CategoryCycles, Profile};
use sgx_sim::Counters;
use std::fmt::Write as _;

/// One measured point: mean and standard deviation over repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Stat {
    /// Arithmetic mean (the paper reports means over 10 runs).
    pub mean: f64,
    /// Standard deviation across repetitions.
    pub stddev: f64,
}

impl Stat {
    /// Aggregate repetitions into a `Stat`.
    pub fn from_runs(runs: &[f64]) -> Stat {
        let n = runs.len().max(1) as f64;
        let mean = runs.iter().sum::<f64>() / n;
        let var = runs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Stat { mean, stddev: var.sqrt() }
    }

    /// A single deterministic observation.
    pub fn exact(v: f64) -> Stat {
        Stat { mean: v, stddev: 0.0 }
    }
}

/// One labelled series (a bar group or plot line).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "SGX (Data in Enclave)").
    pub label: String,
    /// One value per x-axis entry; `None` when not measured.
    pub points: Vec<Option<Stat>>,
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier matching the paper ("fig05", "table1", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// Unit of the y values ("M rows/s", "GB/s", "relative", …).
    pub unit: String,
    /// x-axis tick labels.
    pub xs: Vec<String>,
    /// The measured series.
    pub series: Vec<Series>,
    /// Free-form notes (model caveats, paper reference values).
    pub notes: Vec<String>,
}

impl Figure {
    /// Start an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, unit: &str) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            unit: unit.to_string(),
            xs: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set the x-axis tick labels.
    pub fn with_xs<S: ToString>(mut self, xs: impl IntoIterator<Item = S>) -> Figure {
        self.xs = xs.into_iter().map(|x| x.to_string()).collect();
        self
    }

    /// Append a series; its length must match the x-axis.
    pub fn push_series(&mut self, label: &str, points: Vec<Option<Stat>>) {
        assert_eq!(points.len(), self.xs.len(), "series length must match x axis");
        self.series.push(Series { label: label.to_string(), points });
    }

    /// Append a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} [{}]", self.id, self.title, self.unit);
        let xw = self
            .xs
            .iter()
            .map(|x| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(4);
        let cols: Vec<usize> =
            self.series.iter().map(|s| s.label.len().max(12)).collect();
        let _ = write!(out, "{:<xw$}", self.x_label);
        for (s, w) in self.series.iter().zip(&cols) {
            let _ = write!(out, "  {:>w$}", s.label);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:<xw$}");
            for (s, w) in self.series.iter().zip(&cols) {
                match s.points[i] {
                    Some(st) if st.stddev > 0.0 => {
                        let cell = format!("{:.3}±{:.3}", st.mean, st.stddev);
                        let _ = write!(out, "  {cell:>w$}");
                    }
                    Some(st) => {
                        let cell = format!("{:.3}", st.mean);
                        let _ = write!(out, "  {cell:>w$}");
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "   note: {n}");
        }
        out
    }

    /// Serialize to pretty JSON via the deterministic hand-rolled printer
    /// (`crate::json`): fixed key order, fixed float formatting, so equal
    /// figures always produce byte-identical reports.
    pub fn to_json(&self) -> String {
        let stat = |s: &Stat| {
            Value::Obj(vec![
                ("mean".into(), Value::Num(s.mean)),
                ("stddev".into(), Value::Num(s.stddev)),
            ])
        };
        let series = |s: &Series| {
            Value::Obj(vec![
                ("label".into(), Value::Str(s.label.clone())),
                (
                    "points".into(),
                    Value::Arr(
                        s.points.iter().map(|p| p.as_ref().map_or(Value::Null, stat)).collect(),
                    ),
                ),
            ])
        };
        let strs = |v: &[String]| Value::Arr(v.iter().map(|s| Value::Str(s.clone())).collect());
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("x_label".into(), Value::Str(self.x_label.clone())),
            ("unit".into(), Value::Str(self.unit.clone())),
            ("xs".into(), strs(&self.xs)),
            ("series".into(), Value::Arr(self.series.iter().map(series).collect())),
            ("notes".into(), strs(&self.notes)),
        ])
        .pretty()
    }

    /// Parse a figure previously written by [`Figure::to_json`].
    pub fn from_json(text: &str) -> Result<Figure, String> {
        let v = Value::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("figure JSON missing string field {key:?}"))
        };
        let str_list = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("figure JSON missing array field {key:?}"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in {key:?}"))
                })
                .collect()
        };
        let num = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("stat missing numeric field {key:?}"))
        };
        let series = v
            .get("series")
            .and_then(Value::as_arr)
            .ok_or_else(|| "figure JSON missing array field \"series\"".to_string())?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "series missing \"label\"".to_string())?
                    .to_string();
                let points = s
                    .get("points")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "series missing \"points\"".to_string())?
                    .iter()
                    .map(|p| match p {
                        Value::Null => Ok(None),
                        p => Ok(Some(Stat { mean: num(p, "mean")?, stddev: num(p, "stddev")? })),
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Series { label, points })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let xs = str_list("xs")?;
        // Enforce the push_series invariant on the parse path too: a
        // series shorter than the x-axis would otherwise index out of
        // bounds later, in render().
        for s in &series {
            if s.points.len() != xs.len() {
                return Err(format!(
                    "series {:?} has {} points for {} x ticks",
                    s.label,
                    s.points.len(),
                    xs.len()
                ));
            }
        }
        Ok(Figure {
            id: str_field("id")?,
            title: str_field("title")?,
            x_label: str_field("x_label")?,
            unit: str_field("unit")?,
            xs,
            series,
            notes: str_list("notes")?,
        })
    }

    /// Print the text table and write both the JSON and an SVG chart under
    /// `target/figures/`.
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = std::path::Path::new("target/figures");
        if std::fs::create_dir_all(dir).is_ok() {
            for (ext, content) in [("json", self.to_json()), ("svg", self.to_svg())] {
                let path = dir.join(format!("{}.{ext}", self.id));
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    eprintln!("   {ext}: {}", path.display());
                }
            }
        }
    }

    /// Look up a series by label (test helper).
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// The nine cycle bins of one phase as a JSON object, every
/// `CategoryCycles` field read by name — this function (with
/// [`profile_phase_rows`]) is the cross-crate read the workspace lint's
/// counter-conservation rule demands for the profiler's bins.
fn category_cycles_json(c: &CategoryCycles) -> Value {
    Value::Obj(vec![
        ("compute".into(), Value::Num(c.compute)),
        ("cache".into(), Value::Num(c.cache)),
        ("dram".into(), Value::Num(c.dram)),
        ("mee".into(), Value::Num(c.mee)),
        ("epc_paging".into(), Value::Num(c.epc_paging)),
        ("edmm".into(), Value::Num(c.edmm)),
        ("transition".into(), Value::Num(c.transition)),
        ("upi".into(), Value::Num(c.upi)),
        ("fault".into(), Value::Num(c.fault)),
    ])
}

/// All 21 counters as a JSON object (u64 counts are exact in f64 far
/// beyond any simulated run; the JSON printer writes integral values as
/// `N.0`).
fn counters_json(c: &Counters) -> Value {
    Value::Obj(vec![
        ("loads".into(), Value::Num(c.loads as f64)),
        ("stores".into(), Value::Num(c.stores as f64)),
        ("l1_hits".into(), Value::Num(c.l1_hits as f64)),
        ("l2_hits".into(), Value::Num(c.l2_hits as f64)),
        ("l3_hits".into(), Value::Num(c.l3_hits as f64)),
        ("dram_fills".into(), Value::Num(c.dram_fills as f64)),
        ("prefetched_fills".into(), Value::Num(c.prefetched_fills as f64)),
        ("epc_fills".into(), Value::Num(c.epc_fills as f64)),
        ("remote_fills".into(), Value::Num(c.remote_fills as f64)),
        ("writebacks".into(), Value::Num(c.writebacks as f64)),
        ("stream_lines".into(), Value::Num(c.stream_lines as f64)),
        ("transitions".into(), Value::Num(c.transitions as f64)),
        ("futex_waits".into(), Value::Num(c.futex_waits as f64)),
        ("edmm_pages".into(), Value::Num(c.edmm_pages as f64)),
        ("epc_page_faults".into(), Value::Num(c.epc_page_faults as f64)),
        ("enclave_groups".into(), Value::Num(c.enclave_groups as f64)),
        ("tlb_misses".into(), Value::Num(c.tlb_misses as f64)),
        ("alu_ops".into(), Value::Num(c.alu_ops as f64)),
        ("vec_ops".into(), Value::Num(c.vec_ops as f64)),
        ("aex_events".into(), Value::Num(c.aex_events as f64)),
        ("ocall_retries".into(), Value::Num(c.ocall_retries as f64)),
    ])
}

/// Serialize one job's cycle-attribution profile to deterministic pretty
/// JSON: phases in sorted-path order, categories in fixed order, the same
/// number printer as the figures — equal profiles always produce
/// byte-identical artifacts (the CI `--jobs` byte-diff relies on this).
pub fn profile_json(job_id: &str, p: &Profile) -> String {
    let phases = p
        .phases
        .iter()
        .map(|(path, ph)| {
            Value::Obj(vec![
                ("phase".into(), Value::Str(path.clone())),
                ("total_cycles".into(), Value::Num(ph.cycles.total())),
                ("cycles".into(), category_cycles_json(&ph.cycles)),
                ("counters".into(), counters_json(&ph.counters)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("sgx-bench-profile/1".into())),
        ("job".into(), Value::Str(job_id.to_string())),
        ("charged_cycles".into(), Value::Num(p.charged_cycles)),
        ("total_cycles".into(), Value::Num(p.total_cycles())),
        ("phases".into(), Value::Arr(phases)),
        ("counter_totals".into(), counters_json(&p.total_counters())),
    ])
    .pretty()
}

/// Chart-ready rows for a profile's stacked-bar SVG: one `(phase path,
/// nine cycle bins)` row per phase, in sorted-path order.
pub fn profile_phase_rows(p: &Profile) -> Vec<(String, [f64; 9])> {
    p.phases
        .iter()
        .map(|(path, ph)| {
            let c = &ph.cycles;
            let bins = [
                c.compute,
                c.cache,
                c.dram,
                c.mee,
                c.epc_paging,
                c.edmm,
                c.transition,
                c.upi,
                c.fault,
            ];
            (path.clone(), bins)
        })
        .collect()
}

/// Write one job's profile artifacts (`<job>.profile.json` and
/// `<job>.profile.svg`) under `target/figures/`, mirroring
/// [`Figure::emit`]'s warning-not-panicking IO policy.
pub fn emit_profile(job_id: &str, p: &Profile) {
    let dir = std::path::Path::new("target/figures");
    if std::fs::create_dir_all(dir).is_ok() {
        let svg = crate::chart::profile_svg(job_id, &profile_phase_rows(p));
        for (ext, content) in [("profile.json", profile_json(job_id, p)), ("profile.svg", svg)] {
            let path = dir.join(format!("{job_id}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("   {ext}: {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_from_runs() {
        let s = Stat::from_runs(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let e = Stat::exact(5.0);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.stddev, 0.0);
    }

    #[test]
    fn figure_renders_all_cells() {
        let mut f = Figure::new("figX", "demo", "size", "GB/s").with_xs(["1 MB", "1 GB"]);
        f.push_series("native", vec![Some(Stat::exact(10.0)), Some(Stat::exact(5.0))]);
        f.push_series("sgx", vec![Some(Stat::from_runs(&[9.0, 9.2])), None]);
        f.note("model note");
        let r = f.render();
        assert!(r.contains("figX"));
        assert!(r.contains("native"));
        assert!(r.contains("10.000"));
        assert!(r.contains("±"));
        assert!(r.contains("model note"));
        assert!(r.contains('-'));
    }

    #[test]
    fn json_roundtrip() {
        let mut f = Figure::new("fig1", "t", "x", "u").with_xs(["a"]);
        f.push_series("s", vec![Some(Stat::exact(1.5))]);
        f.push_series("gap", vec![None]);
        f.note("a note");
        let j = f.to_json();
        let back = Figure::from_json(&j).unwrap();
        assert_eq!(back.id, "fig1");
        assert_eq!(back.series[0].points[0].unwrap().mean, 1.5);
        assert!(back.series[1].points[0].is_none());
        assert_eq!(back.notes, vec!["a note".to_string()]);
        // Re-serializing the parse result reproduces the exact bytes.
        assert_eq!(back.to_json(), j);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_rejected() {
        let mut f = Figure::new("f", "t", "x", "u").with_xs(["a", "b"]);
        f.push_series("s", vec![Some(Stat::exact(1.0))]);
    }

    #[test]
    fn from_json_rejects_series_shorter_than_axis() {
        // Regression: this used to parse fine and then panic in render().
        let text = r#"{"id":"f","title":"t","x_label":"x","unit":"u","xs":["a","b"],"series":[{"label":"s","points":[null]}],"notes":[]}"#;
        let err = Figure::from_json(text).unwrap_err();
        assert!(err.contains("1 points for 2 x ticks"), "got: {err}");
    }
}
