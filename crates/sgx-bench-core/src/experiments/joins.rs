//! Join experiments: Figs 1, 3, 4, 6, 8, 9, 10, 11 and the SGXv1
//! ablation extension.

use crate::profiles::BenchProfile;
use crate::report::{Figure, Stat};
use crate::repeat;
use sgx_joins::crkjoin::crk_join;
use sgx_joins::inl::inl_join;
use sgx_joins::mway::mway_join;
use sgx_joins::pht::pht_join;
use sgx_joins::rho::rho_join;
use sgx_joins::{gen_fk_relation, gen_pk_relation, JoinConfig, JoinStats, QueueKind};
use sgx_sim::{Machine, Setting};

/// The five join algorithms of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Parallel hash table join.
    Pht,
    /// Radix hash optimized join.
    Rho,
    /// Multi-way sort merge join.
    Mway,
    /// Index nested loop join.
    Inl,
    /// SGXv1-optimized cracking join.
    Crk,
}

impl JoinAlgo {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            JoinAlgo::Pht => "PHT",
            JoinAlgo::Rho => "RHO",
            JoinAlgo::Mway => "MWAY",
            JoinAlgo::Inl => "INL",
            JoinAlgo::Crk => "CrkJoin",
        }
    }
}

/// Radix bits that size RHO's final partitions to half the L2 (the classic
/// rule); CrkJoin cracks four bits deeper (L1-sized working sets, its
/// design point).
fn auto_bits(p: &BenchProfile, r_rows: usize, algo: JoinAlgo) -> u32 {
    let base = JoinConfig::auto_radix_bits(r_rows * 8, p.hw.l2.size);
    match algo {
        JoinAlgo::Crk => (base + 4).min(16),
        _ => base,
    }
}

/// Run one join in one setting and return `(stats, |R|, |S|)`.
#[allow(clippy::too_many_arguments)]
pub fn run_join(
    p: &BenchProfile,
    setting: Setting,
    algo: JoinAlgo,
    r_mb: usize,
    s_mb: usize,
    threads: usize,
    tune: impl FnOnce(JoinConfig) -> JoinConfig,
    seed: u64,
) -> (JoinStats, usize, usize) {
    let mut machine = Machine::new(p.hw.clone(), setting);
    let (nr, ns) = (p.rel_rows(r_mb), p.rel_rows(s_mb));
    let cfg = tune(
        JoinConfig::new(threads.min(p.hw.cores_per_socket))
            .with_radix_bits(auto_bits(p, nr, algo)),
    );
    let mut r = gen_pk_relation(&mut machine, nr, seed);
    let mut s = gen_fk_relation(&mut machine, ns, nr, seed + 1);
    machine.ecall();
    let stats = match algo {
        JoinAlgo::Pht => pht_join(&mut machine, &r, &s, &cfg),
        JoinAlgo::Rho => rho_join(&mut machine, &r, &s, &cfg),
        JoinAlgo::Mway => mway_join(&mut machine, &r, &s, &cfg),
        JoinAlgo::Inl => inl_join(&mut machine, &r, &s, &cfg),
        JoinAlgo::Crk => crk_join(&mut machine, &mut r, &mut s, &cfg),
    };
    assert_eq!(stats.matches, ns as u64, "FK join must match every probe row");
    (stats, nr, ns)
}

/// Throughput in M rows/s (the paper's join metric).
fn mrows(p: &BenchProfile, stats: &JoinStats, nr: usize, ns: usize) -> f64 {
    stats.mrows_per_sec(nr, ns, p.hw.freq_ghz)
}

/// Fig 1: the introduction's motivating comparison — an SGXv1-optimized
/// join vs a state-of-the-art radix join, inside the enclave, against the
/// native radix join (100 MB ⋈ 400 MB, 16 threads).
pub fn fig01_intro(p: &BenchProfile) -> Figure {
    let mut fig = Figure::new(
        "fig01",
        "Join of 100 MB ⋈ 400 MB inside SGXv2 (16 threads)",
        "join",
        "M rows/s",
    )
    .with_xs(["SGXv1-optimized (CrkJoin)", "Radix join (RHO)", "SGXv2-optimized RHO", "RHO outside enclave"]);
    let mut points = Vec::new();
    for (setting, algo, opt) in [
        (Setting::SgxDataInEnclave, JoinAlgo::Crk, false),
        (Setting::SgxDataInEnclave, JoinAlgo::Rho, false),
        (Setting::SgxDataInEnclave, JoinAlgo::Rho, true),
        (Setting::PlainCpu, JoinAlgo::Rho, true),
    ] {
        let stat = repeat(p.reps, |seed| {
            let (s, nr, ns) =
                run_join(p, setting, algo, 100, 400, 16, |c| c.with_optimization(opt), seed);
            mrows(p, &s, nr, ns)
        });
        points.push(Some(stat));
    }
    fig.push_series("throughput", points);
    fig.note("paper: CrkJoin slowest; optimized RHO approaches native (Fig 1)");
    fig
}

/// Fig 3: throughput of all five joins, plain CPU vs SGX-data-in-enclave.
pub fn fig03_overview(p: &BenchProfile) -> Figure {
    let algos = [JoinAlgo::Crk, JoinAlgo::Pht, JoinAlgo::Rho, JoinAlgo::Mway, JoinAlgo::Inl];
    let mut fig = Figure::new(
        "fig03",
        "Join overview, 100 MB ⋈ 400 MB, 16 threads",
        "join",
        "M rows/s",
    )
    .with_xs(algos.iter().map(|a| a.label()));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = algos
            .iter()
            .map(|&algo| {
                Some(repeat(p.reps, |seed| {
                    let (s, nr, ns) = run_join(p, setting, algo, 100, 400, 16, |c| c, seed);
                    mrows(p, &s, nr, ns)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("paper: CrkJoin slowest; hash joins suffer the largest enclave reduction");
    fig
}

/// Fig 4: single-threaded PHT — relative in-enclave throughput vs build
/// size (left) and the phase breakdown at the largest size (right).
pub fn fig04_pht(p: &BenchProfile) -> (Figure, Figure) {
    let sizes_mb = [1usize, 8, 50, 100];
    let mut left = Figure::new(
        "fig04a",
        "PHT single-thread: SGX throughput relative to plain CPU",
        "build size",
        "relative",
    )
    .with_xs(sizes_mb.iter().map(|m| format!("{m} MB")));
    let mut points = Vec::new();
    let mut last: Option<(JoinStats, JoinStats)> = None;
    for &mb in &sizes_mb {
        let stat = repeat(p.reps, |seed| {
            let (native, nr, ns) =
                run_join(p, Setting::PlainCpu, JoinAlgo::Pht, mb, 400, 1, |c| c, seed);
            let (sgx, ..) =
                run_join(p, Setting::SgxDataInEnclave, JoinAlgo::Pht, mb, 400, 1, |c| c, seed);
            let rel = mrows(p, &sgx, nr, ns) / mrows(p, &native, nr, ns);
            last = Some((native, sgx));
            rel
        });
        points.push(Some(stat));
    }
    left.push_series("SGX / plain CPU", points);
    left.note("paper: ~95% at cache-resident sizes, ~51% at 100 MB");

    // sgx-lint: allow(panic-in-library) the size list above is a non-empty constant, so `last` is always set
    let (native, sgx) = last.expect("at least one size measured");
    let mut right = Figure::new(
        "fig04b",
        "PHT phase run times at 100 MB build size (single thread)",
        "phase",
        "cycles",
    )
    .with_xs(["build", "probe"]);
    right.push_series(
        "Plain CPU",
        vec![Some(Stat::exact(native.phase("build"))), Some(Stat::exact(native.phase("probe")))],
    );
    right.push_series(
        "SGX (Data in Enclave)",
        vec![Some(Stat::exact(sgx.phase("build"))), Some(Stat::exact(sgx.phase("probe")))],
    );
    right.note("paper: the build phase suffers far more than the probe phase (writes vs reads)");
    (left, right)
}

/// Fig 6: single-threaded RHO phase breakdown, naive vs unroll-optimized.
pub fn fig06_rho_breakdown(p: &BenchProfile) -> Figure {
    let phases = ["hist_r", "copy_r", "hist_s", "copy_s", "build", "probe"];
    let mut fig = Figure::new(
        "fig06",
        "RHO phase breakdown, 100 MB ⋈ 400 MB, single thread",
        "phase",
        "cycles",
    )
    .with_xs(phases);
    for (label, setting, opt) in [
        ("Plain CPU", Setting::PlainCpu, false),
        ("SGX naive", Setting::SgxDataInEnclave, false),
        ("SGX optimized", Setting::SgxDataInEnclave, true),
    ] {
        let (stats, ..) =
            run_join(p, setting, JoinAlgo::Rho, 100, 400, 1, |c| c.with_optimization(opt), 7);
        fig.push_series(
            label,
            phases.iter().map(|ph| Some(Stat::exact(stats.phase(ph)))).collect(),
        );
    }
    fig.note("paper: histogram up to 4x slower naive; unrolling repairs hist/copy/build");
    fig
}

/// Fig 8: RHO and PHT with 16 threads, before/after the §4.2 optimization.
pub fn fig08_optimized(p: &BenchProfile) -> Figure {
    let mut fig = Figure::new(
        "fig08",
        "Optimization effect, 100 MB ⋈ 400 MB, 16 threads",
        "join",
        "M rows/s",
    )
    .with_xs(["RHO", "PHT"]);
    for (label, setting, opt) in [
        ("Plain CPU", Setting::PlainCpu, false),
        ("SGX naive", Setting::SgxDataInEnclave, false),
        ("SGX optimized", Setting::SgxDataInEnclave, true),
    ] {
        let points = [JoinAlgo::Rho, JoinAlgo::Pht]
            .iter()
            .map(|&algo| {
                Some(repeat(p.reps, |seed| {
                    let (s, nr, ns) =
                        run_join(p, setting, algo, 100, 400, 16, |c| c.with_optimization(opt), seed);
                    mrows(p, &s, nr, ns)
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("paper: optimized RHO reaches 83% of native; PHT improves 94% but stays random-access-bound");
    fig
}

/// Fig 9: NUMA extremes for an RHO join (§4.3).
pub fn fig09_numa_join(p: &BenchProfile) -> Figure {
    let t = p.hw.cores_per_socket;
    let (nr, ns) = (p.rel_rows(100), p.rel_rows(400));
    let bits = auto_bits(p, nr, JoinAlgo::Rho);

    let run = |setting: Setting, cores: Vec<usize>, data_node: u8, seed: u64| -> f64 {
        let mut machine = Machine::new(p.hw.clone(), setting);
        let region = setting.data_region(data_node);
        let r = sgx_joins::data::gen_pk_relation_on(&mut machine, nr, seed, region);
        let s = sgx_joins::data::gen_fk_relation_on(&mut machine, ns, nr, seed + 1, region);
        let cfg = JoinConfig::new(1).on_cores(cores).with_radix_bits(bits);
        let stats = rho_join(&mut machine, &r, &s, &cfg);
        stats.mrows_per_sec(nr, ns, p.hw.freq_ghz)
    };

    let mut fig = Figure::new("fig09", "RHO join on a NUMA system", "setup", "M rows/s")
        .with_xs([
            "SGX Join Single Node",
            "SGX Join Fully Remote",
            "SGX Join Half Local",
            "Native Join NUMA local",
        ]);
    let single = repeat(p.reps, |seed| {
        run(Setting::SgxDataInEnclave, (0..t).collect(), 0, seed)
    });
    let remote = repeat(p.reps, |seed| {
        run(Setting::SgxDataInEnclave, (t..2 * t).collect(), 0, seed)
    });
    let half = repeat(p.reps, |seed| {
        run(Setting::SgxDataInEnclave, (0..2 * t).collect(), 0, seed)
    });
    // Optimal baseline: both tables pre-partitioned per node, one join per
    // socket running concurrently — aggregate throughput is the sum of two
    // NUMA-local halves.
    let local2 = repeat(p.reps, |seed| {
        let a = run(Setting::PlainCpu, (0..t).collect(), 0, seed);
        let b = run(Setting::PlainCpu, (t..2 * t).collect(), 1, seed + 100);
        a + b
    });
    fig.push_series(
        "throughput",
        vec![Some(single), Some(remote), Some(half), Some(local2)],
    );
    fig.note("paper: fully remote loses ~25%; adding the second socket's cores does not help; both < 50% of the NUMA-local optimum");
    fig
}

/// Fig 10: task-queue contention — lock-free vs SDK mutex (§4.4), with
/// tiny partitions to force contention.
pub fn fig10_queues(p: &BenchProfile) -> Figure {
    // Deep radix partitioning makes tasks very small (~128 rows each, the
    // paper's "very small partitions"), independent of the profile scale;
    // the floor of 9 bits forces the two-pass path so both the second
    // partitioning pass and the join pull tasks from the contended queue.
    let nr = p.rel_rows(100);
    let bits = (usize::BITS - (nr / 128).max(4).leading_zeros()).clamp(9, 16);
    let mut fig = Figure::new(
        "fig10",
        "RHO with forced task-queue contention (16 threads, tiny partitions)",
        "queue",
        "M rows/s",
    )
    .with_xs(["lock-free queue", "SDK mutex queue"]);
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = [QueueKind::LockFree, QueueKind::SdkMutex]
            .iter()
            .map(|&queue| {
                Some(repeat(p.reps, |seed| {
                    let (s, nr, ns) = run_join(
                        p,
                        setting,
                        JoinAlgo::Rho,
                        100,
                        400,
                        16,
                        |c| c.with_radix_bits(bits).with_queue(queue),
                        seed,
                    );
                    mrows(p, &s, nr, ns)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("paper: outside the enclave the queue choice is noise; inside, the mutex costs ~75%");
    fig
}

/// Fig 11: statically sized enclave vs dynamic EDMM growth during a
/// materializing join (§4.4).
pub fn fig11_edmm(p: &BenchProfile) -> Figure {
    let (nr, ns) = (p.rel_rows(100), p.rel_rows(400));
    let bits = auto_bits(p, nr, JoinAlgo::Rho);
    let run = |dynamic: bool, seed: u64| -> f64 {
        let mut machine = Machine::new(p.hw.clone(), Setting::SgxDataInEnclave);
        let r = gen_pk_relation(&mut machine, nr, seed);
        let s = gen_fk_relation(&mut machine, ns, nr, seed + 1);
        if dynamic {
            // Everything the join allocates from here on (partition
            // copies, result table) must be EAUG'd page by page.
            machine.seal_enclave();
        }
        let cfg = JoinConfig::new(16.min(p.hw.cores_per_socket))
            .with_radix_bits(bits)
            .with_optimization(true)
            .with_materialization(true);
        let stats = rho_join(&mut machine, &r, &s, &cfg);
        stats.mrows_per_sec(nr, ns, p.hw.freq_ghz)
    };
    let mut fig = Figure::new(
        "fig11",
        "Materializing RHO join: static vs dynamically grown enclave",
        "enclave sizing",
        "M rows/s",
    )
    .with_xs(["statically sized", "dynamic (EDMM)"]);
    let static_ = repeat(p.reps, |seed| run(false, seed));
    let dynamic = repeat(p.reps, |seed| run(true, seed));
    fig.push_series("SGX (Data in Enclave)", vec![Some(static_), Some(dynamic)]);
    fig.note("paper: the dynamically growing enclave reaches only ~4.5% of the static one");
    fig
}

/// Reproduction extension (not a paper figure): the same CrkJoin-vs-RHO
/// comparison on an SGXv1-style EPC (small, paging) shows the ordering the
/// TEEBench/CrkJoin papers reported — and why SGXv1 designs became
/// obsolete on SGXv2.
pub fn sgxv1_ablation(p: &BenchProfile) -> Figure {
    let hw_v1 = p.hw.clone().sgxv1();
    // The regime in which SGXv1 designs paid off: the inputs fit the
    // resident EPC, but out-of-place partitioning (2x the data plus the
    // result) does not. In-place cracking stays within the EPC after its
    // top-level sweeps; RHO's partition copies page on every pass.
    let budget_rows = hw_v1.paging.resident_bytes * 8 / 10 / 8;
    let nr = (budget_rows / 5).max(64);
    let ns = 4 * nr;
    let run = |hw: sgx_sim::HwConfig, algo: JoinAlgo, seed: u64| -> f64 {
        let mut machine = Machine::new(hw, Setting::SgxDataInEnclave);
        let mut r = gen_pk_relation(&mut machine, nr, seed);
        let mut s = gen_fk_relation(&mut machine, ns, nr, seed + 1);
        let bits = JoinConfig::auto_radix_bits(nr * 8, p.hw.l2.size)
            + if algo == JoinAlgo::Crk { 4 } else { 0 };
        let bits = bits.min(16);
        let cfg = JoinConfig::new(16.min(p.hw.cores_per_socket)).with_radix_bits(bits);
        let stats = match algo {
            JoinAlgo::Rho => rho_join(&mut machine, &r, &s, &cfg),
            JoinAlgo::Crk => crk_join(&mut machine, &mut r, &mut s, &cfg),
            _ => unreachable!("ablation compares RHO and CrkJoin"),
        };
        stats.mrows_per_sec(nr, ns, p.hw.freq_ghz)
    };
    let mut fig = Figure::new(
        "ablation_sgxv1",
        "CrkJoin vs RHO under SGXv1 and SGXv2 EPC models (extension)",
        "join",
        "M rows/s",
    )
    .with_xs(["RHO", "CrkJoin"]);
    fig.push_series(
        "SGXv2 EPC (large)",
        vec![
            Some(repeat(p.reps, |s| run(p.hw.clone(), JoinAlgo::Rho, s))),
            Some(repeat(p.reps, |s| run(p.hw.clone(), JoinAlgo::Crk, s))),
        ],
    );
    fig.push_series(
        "SGXv1 EPC (small, paging)",
        vec![
            Some(repeat(p.reps, |s| run(hw_v1.clone(), JoinAlgo::Rho, s))),
            Some(repeat(p.reps, |s| run(hw_v1.clone(), JoinAlgo::Crk, s))),
        ],
    );
    fig.note("capacity-pressure regime (inputs ~80% of resident EPC): the ordering flips because RHO's out-of-place copies overflow the SGXv1 EPC while in-place cracking fits");
    fig
}
