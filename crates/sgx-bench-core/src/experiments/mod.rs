//! One function per paper table/figure, each returning a renderable
//! [`Figure`](crate::report::Figure).
//!
//! Every function is parameterized by a [`BenchProfile`](crate::profiles::BenchProfile), so the same code
//! runs the paper-exact sizes (`--full`) and the proportionally scaled
//! default. The `bench` crate's `src/bin/figNN_*.rs` binaries are thin
//! wrappers; the workspace integration tests run these functions on a tiny
//! profile and assert the qualitative shapes (who wins, orderings,
//! crossovers) hold.

pub mod extensions;
pub mod faults;
pub mod joins;
pub mod micro;
pub mod scans;
pub mod service;
pub mod storage;
pub mod table1;
pub mod tpch;

pub use extensions::{
    ablation_radix_bits, ablation_swwcb, ext_aggregation, ext_dual_socket_scan,
    ext_packed_scan, ext_skew,
};
pub use faults::ext_aex_storm;
pub use joins::{
    fig01_intro, fig03_overview, fig04_pht, fig06_rho_breakdown, fig08_optimized,
    fig09_numa_join, fig10_queues, fig11_edmm, sgxv1_ablation,
};
pub use micro::{fig05_random_access, fig07_histogram};
pub use scans::{
    fig12_scan_single, fig13_scan_scaling, fig14_selectivity, fig15_linear, fig16_numa_scan,
};
pub use service::ext_service_tail;
pub use storage::ext_storage_path;
pub use table1::table1;
pub use tpch::fig17_tpch;
