//! Scan experiments: Figs 12–16.

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::Figure;
use sgx_scans::linear::{linear_read, linear_write, LinearConfig, Width};
use sgx_scans::{column_scan, gen_column, ScanConfig, ScanOutput};
use sgx_sim::{Machine, Setting};

/// Fig 12: single-threaded AVX-512 scan throughput across data sizes and
/// the three settings.
pub fn fig12_scan_single(p: &BenchProfile) -> Figure {
    let l2 = p.hw.l2.size;
    let l3 = p.hw.l3.size;
    let sizes = [("L2/2", l2 / 2), ("L3/2", l3 / 2), ("4xL3", 4 * l3), ("32xL3", 32 * l3)];
    let mut fig = Figure::new(
        "fig12",
        "Single-threaded column scan read throughput",
        "column size",
        "GB/s",
    )
    .with_xs(sizes.iter().map(|(l, _)| *l));
    for setting in Setting::all() {
        let points = sizes
            .iter()
            .map(|&(_, bytes)| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let col = gen_column(&mut m, bytes, seed);
                    // The paper warms up 10x and measures 1000 scans; a
                    // handful of measured passes give identical means in
                    // the deterministic simulator.
                    let cfg = ScanConfig::new(1).with_warmup(2).with_repeats(4);
                    column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &cfg)
                        .gb_per_sec(p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("paper: in-cache parity; ~3% slowdown for EPC data beyond L3");
    fig
}

/// Fig 13: scan throughput scaling with threads, in and out of the
/// enclave.
pub fn fig13_scan_scaling(p: &BenchProfile) -> Figure {
    let threads = [1usize, 2, 4, 8, 16];
    let bytes = p.mb(2048);
    let mut fig =
        Figure::new("fig13", "Column scan thread scaling", "threads", "GB/s")
            .with_xs(threads.iter().map(|t| t.to_string()));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = threads
            .iter()
            .map(|&t| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let col = gen_column(&mut m, bytes, seed);
                    let cfg = ScanConfig::new(t.min(p.hw.cores_per_socket));
                    column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &cfg)
                        .gb_per_sec(p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("paper: identical scaling; both saturate the memory bandwidth at 16 threads");
    fig
}

/// Fig 14: index-materializing scan under increasing selectivity (write
/// rate up to 800%), 16 threads.
pub fn fig14_selectivity(p: &BenchProfile) -> Figure {
    let sels = [(1u8, "1%"), (25, "10%"), (127, "50%"), (191, "75%"), (255, "100%")];
    let bytes = p.mb(4096);
    let mut fig = Figure::new(
        "fig14",
        "Index-returning scan with varying selectivity (write rate)",
        "selectivity",
        "GB/s read",
    )
    .with_xs(sels.iter().map(|(_, l)| *l));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = sels
            .iter()
            .map(|&(hi, _)| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let col = gen_column(&mut m, bytes, seed);
                    let cfg = ScanConfig::new(16.min(p.hw.cores_per_socket));
                    column_scan(&mut m, &col, 0, hi, ScanOutput::Indexes, &cfg)
                        .gb_per_sec(p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("paper: throughput falls with write volume, but equally inside and outside the enclave");
    fig
}

/// Fig 15: pmbw-style linear read/write kernels, 64-bit vs 512-bit,
/// enclave relative to plain CPU.
pub fn fig15_linear(p: &BenchProfile) -> Figure {
    let l2 = p.hw.l2.size / 8;
    let l3 = p.hw.l3.size / 8;
    let sizes = [("L2/2", l2 / 2), ("L3/2", l3 / 2), ("4xL3", 4 * l3), ("32xL3", 32 * l3)];
    let threads = 8.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "fig15",
        "Linear reads/writes in SGX relative to plain CPU",
        "array size",
        "relative",
    )
    .with_xs(sizes.iter().map(|(l, _)| *l));
    for (label, read, width) in [
        ("64-bit read", true, Width::Bits64),
        ("512-bit read", true, Width::Bits512),
        ("64-bit write", false, Width::Bits64),
        ("512-bit write", false, Width::Bits512),
    ] {
        let points = sizes
            .iter()
            .map(|&(_, elems)| {
                Some(repeat(p.reps, |_seed| {
                    let run = |setting: Setting| {
                        let mut m = Machine::new(p.hw.clone(), setting);
                        let mut v = m.alloc::<u64>(elems.max(64));
                        let cfg = LinearConfig::new(threads).with_warmup(1);
                        if read {
                            linear_read(&mut m, &v, width, &cfg)
                        } else {
                            linear_write(&mut m, &mut v, width, &cfg)
                        }
                    };
                    run(Setting::PlainCpu) / run(Setting::SgxDataInEnclave)
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("paper: worst case 5.5% for 64-bit reads, ~2% for linear writes");
    fig
}

/// Fig 16: cross-NUMA scans — local native vs cross-NUMA native vs
/// cross-NUMA SGX, over thread counts.
pub fn fig16_numa_scan(p: &BenchProfile) -> Figure {
    let threads = [1usize, 2, 4, 8, 16];
    let bytes = p.mb(2048);
    let socket1: Vec<usize> =
        (p.hw.cores_per_socket..2 * p.hw.cores_per_socket).collect();
    let mut fig =
        Figure::new("fig16", "Cross-NUMA column scan throughput", "threads", "GB/s")
            .with_xs(threads.iter().map(|t| t.to_string()));
    for (label, setting, remote) in [
        ("local, plain CPU", Setting::PlainCpu, false),
        ("cross-NUMA, plain CPU", Setting::PlainCpu, true),
        ("cross-NUMA, SGX", Setting::SgxDataInEnclave, true),
    ] {
        let points = threads
            .iter()
            .map(|&t| {
                let t = t.min(p.hw.cores_per_socket);
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    // Data always lives on node 0; remote runs pin the scan
                    // threads to socket 1, crossing the UPI.
                    let col = gen_column(&mut m, bytes, seed);
                    let cores: Vec<usize> = if remote {
                        socket1[..t].to_vec()
                    } else {
                        (0..t).collect()
                    };
                    let cfg = ScanConfig::new(t).on_cores(cores);
                    column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &cfg)
                        .gb_per_sec(p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("paper: UCE costs 23% at 1 thread, shrinking to 4% at 16 threads where the UPI itself is the bound (67.2 GB/s)");
    fig
}
