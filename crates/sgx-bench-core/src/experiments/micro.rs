//! Micro-benchmark experiments: Figs 5 and 7.

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::Figure;
use sgx_microbench::{histogram_bench, pointer_chase, random_write, HistKernel};
use sgx_sim::Setting;

/// Array sizes for Fig 5, expressed relative to the profile's caches so
/// the cache-residency transitions land in the same places as the paper's
/// 256 KB … 16 GB sweep.
fn fig05_sizes(p: &BenchProfile) -> Vec<(String, usize)> {
    let l2 = p.hw.l2.size;
    let l3 = p.hw.l3.size;
    vec![
        ("L2/2".to_string(), l2 / 2),
        ("L3/2".to_string(), l3 / 2),
        ("2xL3".to_string(), 2 * l3),
        ("8xL3".to_string(), 8 * l3),
        ("32xL3".to_string(), 32 * l3),
        ("128xL3".to_string(), 128 * l3),
    ]
}

/// Fig 5: random read (pointer chasing) and random write performance in
/// the enclave relative to the plain CPU, across array sizes.
pub fn fig05_random_access(p: &BenchProfile) -> Figure {
    let sizes = fig05_sizes(p);
    let mut fig = Figure::new(
        "fig05",
        "Random memory access in SGX relative to plain CPU",
        "array size",
        "relative",
    )
    .with_xs(sizes.iter().map(|(l, _)| l.clone()));

    let steps = 150_000u64;
    let reads = sizes
        .iter()
        .map(|&(_, bytes)| {
            Some(repeat(p.reps, |seed| {
                let native = pointer_chase(p.hw.clone(), Setting::PlainCpu, bytes, steps, seed);
                let sgx =
                    pointer_chase(p.hw.clone(), Setting::SgxDataInEnclave, bytes, steps, seed);
                native.cycles / sgx.cycles
            }))
        })
        .collect();
    fig.push_series("random reads (pointer chase)", reads);

    let writes = sizes
        .iter()
        .map(|&(_, bytes)| {
            Some(repeat(p.reps, |seed| {
                let native =
                    random_write(p.hw.clone(), Setting::PlainCpu, bytes, 1_000_000, seed);
                let sgx =
                    random_write(p.hw.clone(), Setting::SgxDataInEnclave, bytes, 1_000_000, seed);
                native.cycles / sgx.cycles
            }))
        })
        .collect();
    fig.push_series("random writes (LCG)", writes);
    fig.note("paper: in-cache parity; reads bottom out near 53%, writes below 40%");
    fig
}

/// Fig 7: the radix-histogram micro-benchmark over typical bin counts,
/// comparing the three settings and the unrolled kernels (§4.2).
pub fn fig07_histogram(p: &BenchProfile) -> Figure {
    // "Typical numbers of histogram bins" must stay cache-resident like
    // the paper's: cap the sweep so the largest histogram fits the L2.
    let max_bins = (p.hw.l2.size / 8).next_power_of_two() / 2;
    let bins: Vec<usize> =
        [1 << 6, 1 << 9, 1 << 12, 1 << 15].iter().map(|&b: &usize| b.min(max_bins)).collect();
    let n_keys = p.rel_rows(100).min(4_000_000);
    let mut fig = Figure::new(
        "fig07",
        "Histogram creation time over bin counts",
        "bins",
        "cycles / key",
    )
    .with_xs(bins.iter().map(|b| b.to_string()));
    for (label, setting, kernel) in [
        ("Plain CPU", Setting::PlainCpu, HistKernel::Naive),
        ("SGX Data in Enclave", Setting::SgxDataInEnclave, HistKernel::Naive),
        ("SGX Data outside Enclave", Setting::SgxDataOutside, HistKernel::Naive),
        ("SGX unrolled x8", Setting::SgxDataInEnclave, HistKernel::Unrolled8),
        ("SGX SIMD x32", Setting::SgxDataInEnclave, HistKernel::Simd32),
    ] {
        let points = bins
            .iter()
            .map(|&b| {
                Some(repeat(p.reps, |seed| {
                    let r = histogram_bench(p.hw.clone(), setting, n_keys, b, kernel, seed);
                    r.cycles / r.keys as f64
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("paper: naive 225% slower in enclave mode regardless of data location; unrolling brings it to ~20%");
    fig
}
