//! Service-tail extension: the robustness question behind the paper.
//!
//! The paper measures batch kernels on a quiet machine; a production
//! enclave engine (the DuckDB-SGX2 / Polars-in-SGX2 endgame of the
//! related work) is a *service* — thousands of concurrent client
//! sessions multiplexed over a bounded worker pool, where AEX storms and
//! EPC pressure surface as tail latency and shed load, not just
//! throughput loss. `ext_service_tail` makes that measurable:
//!
//! 1. **Calibrate.** For each stress point (AEX interrupt rate or EPC
//!    pressure level) and each setting (native / enclave), run the four
//!    §6 TPC-H plans as resumable [`ServiceJob`]s on a real
//!    [`Machine`] with that fault profile installed, recording exact
//!    per-operator cycles — every cost the service model uses was
//!    charged through the simulator's `Core::commit(Charge)` choke
//!    point and is covered by its conservation tests.
//! 2. **Serve.** Feed those [`CostTable`]s to the deterministic
//!    discrete-event service in `sgx-serve`: one fixed multi-tenant
//!    workload (open- and closed-loop sessions, per-tenant query mixes,
//!    deadlines) replayed identically at every stress point, with
//!    admission control, bounded-backoff retries for injected transient
//!    step faults, and EPC-triggered plan degradation.
//! 3. **Report.** Exact (nearest-rank) p50/p95/p99 latency and
//!    goodput/shed/timeout fractions vs stress — the degradation curves
//!    an operator would use to pick an admission threshold.

use crate::percentile::Histogram;
use crate::profiles::BenchProfile;
use crate::report::{Figure, Stat};
use sgx_serve::{
    run_service, AdmissionPolicy, Arrival, CostTable, DegradePolicy, PlanCost, PlanVariant,
    ServiceConfig, ServiceOutcome, TenantSpec,
};
use sgx_sim::{FaultProfile, Machine, OcallFaults, Setting};
use sgx_tpch::{cost_estimate, generate, Query, QueryConfig, ServiceJob, TpchDb};
use std::collections::BTreeMap;

/// AEX interrupt rates swept, per million cycles (0 = calm baseline).
const AEX_RATES: [f64; 3] = [0.0, 80.0, 320.0];
/// EPC pressure levels swept: fraction of the database's footprint the
/// balloon steals once inflated (0 = no balloon).
const EPC_LEVELS: [f64; 3] = [0.0, 0.4, 0.7];
/// Paper-scale TPC-H factor the service plans run at.
const PAPER_SF: f64 = 4.0;
/// One fixed seed: the workload replays identically at every stress
/// point, so the curves isolate the fault response.
const SEED: u64 = 0x5E12_71CE;

/// Transient step-fault parameters injected into the service: per-step
/// kill probability, bounded retries, base backoff as a fraction of the
/// calm mean plan cost.
const STEP_FAILURE_PROB: f64 = 0.15;
const STEP_MAX_RETRIES: u32 = 4;
const BACKOFF_FRACTION_OF_MEAN: f64 = 0.02;

/// One stress point of the sweep (public so `service_bench` can drive
/// the same calibration + service pipeline from the command line).
#[derive(Debug, Clone, Copy)]
pub struct StressPoint {
    /// AEX interrupts per million cycles (0 = calm).
    pub aex_per_mcycle: f64,
    /// Fraction of the calm pass's allocation high-water mark the EPC
    /// balloon steals (0 = off).
    pub epc_level: f64,
}

/// Exact byte footprint of the generated columns (the EPC balloon is
/// sized relative to this so pressure levels mean the same thing at any
/// benchmark scale).
fn db_bytes(db: &TpchDb) -> usize {
    let cust = db.customer.custkey.len();
    let ord = db.orders.orderkey.len();
    let li = db.lineitem_len();
    let part = db.part.partkey.len();
    4 * (3 * cust + 3 * ord + 11 * li + 4 * part + 25)
}

/// Run one plan stepwise and return its exact per-operator cycle costs.
fn measure_steps(m: &mut Machine, db: &TpchDb, q: Query, threads: usize, optimized: bool) -> Vec<u64> {
    let cfg = QueryConfig::new(threads).with_optimization(optimized);
    let mut job = ServiceJob::new(q, cfg);
    let mut steps = Vec::with_capacity(ServiceJob::steps_total(q));
    loop {
        let r = job.step(m, db);
        steps.push((r.cycles.max(0.0) as u64).max(1));
        if r.done {
            break;
        }
    }
    steps
}

/// Calibrate a [`CostTable`] for one (setting, stress point): real plans,
/// real machine, the stress point's fault profile installed. The
/// admission estimate comes from [`cost_estimate`]'s cardinality model,
/// scaled into cycles with one table-wide factor — deliberately coarser
/// than the measured steps, like a planner's estimate would be.
///
/// Native calibrations ignore `stress.epc_level`: the pressure balloon
/// pages through the SGXv1-style pager, which only exists in enclave
/// mode, so a native table at any EPC level equals the calm one.
pub fn calibrate(p: &BenchProfile, setting: Setting, stress: StressPoint) -> Calibration {
    // The EPC balloon must be sized against the calm pass's allocation
    // high-water mark, not the table footprint: the simulator's bump
    // allocator never frees, so the pager prices pages of everything
    // the eight plan runs ever allocate (intermediates included). A
    // balloon below the table size alone would thrash at any level.
    let resident = (stress.epc_level > 0.0).then(|| {
        let dry = measure_all(p, setting, None);
        ((dry.high_water as f64 * (1.0 - stress.epc_level)) as usize).max(4096)
    });
    let mut fp = FaultProfile::new(0xFA17_5E12 ^ SEED);
    if stress.aex_per_mcycle > 0.0 {
        fp = fp.with_aex_storm(1.0e6 / stress.aex_per_mcycle);
    }
    if let Some(r) = resident {
        fp = fp.with_epc_pressure(0.0, r);
    }
    let run = measure_all(p, setting, Some(fp));

    // One cycles-per-estimate-unit factor across classes.
    let total_cycles: u64 = run.steps.values().map(|(n, _)| n.iter().sum::<u64>()).sum();
    let total_units: f64 = run.estimate_units.values().sum();
    let k = total_cycles as f64 / total_units.max(1.0);
    let mut table = CostTable::new();
    for (q, (normal, degraded)) in run.steps {
        let estimate = (run.estimate_units[&q] * k) as u64;
        table.insert(q, PlanCost { normal_steps: normal, degraded_steps: degraded, estimate });
    }
    Calibration { costs: table, db_bytes: run.db_bytes, high_water: run.high_water }
}

/// One full measurement pass: fresh machine, fresh database, all four
/// plans in both variants.
struct MeasuredPass {
    steps: BTreeMap<Query, (Vec<u64>, Vec<u64>)>,
    estimate_units: BTreeMap<Query, f64>,
    db_bytes: usize,
    high_water: u64,
}

fn measure_all(p: &BenchProfile, setting: Setting, fp: Option<FaultProfile>) -> MeasuredPass {
    let threads = 16.min(p.hw.cores_per_socket);
    let mut m = Machine::new(p.hw.clone(), setting);
    let db = generate(&mut m, p.tpch_sf(PAPER_SF), SEED);
    if let Some(fp) = fp {
        m.install_faults(fp);
    }
    let mut steps = BTreeMap::new();
    let mut estimate_units = BTreeMap::new();
    for &q in Query::all().iter() {
        let normal = measure_steps(&mut m, &db, q, threads, false);
        let degraded = measure_steps(&mut m, &db, q, threads, true);
        steps.insert(q, (normal, degraded));
        estimate_units.insert(q, cost_estimate(&db, q, false));
    }
    MeasuredPass { steps, estimate_units, db_bytes: db_bytes(&db), high_water: m.allocated_bytes() }
}

/// A calibrated cost table plus the table footprint it was measured
/// against (what EPC pressure levels are relative to).
pub struct Calibration {
    /// Per-class measured step costs.
    pub costs: CostTable,
    /// Exact byte footprint of the generated columns.
    pub db_bytes: usize,
    /// Allocation high-water mark of the measurement pass (what EPC
    /// pressure levels shrink the balloon relative to).
    pub high_water: u64,
}

/// The fixed multi-tenant workload, sized relative to the calm enclave
/// mean plan cost `m` so offered load is ~75% of the 8-worker capacity:
/// a closed-loop interactive tenant and an open-loop analytics tenant.
pub fn tenants(m: f64) -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "interactive".into(),
            sessions: 800,
            arrival: Arrival::Closed { think_cycles: (333.0 * m) as u64 },
            mix: vec![(Query::Q12, 3), (Query::Q19, 1)],
            // Tight SLO: feasible for the degraded plan under heavy EPC
            // pressure, infeasible for the normal one — the point where
            // degrade-to-admit visibly rescues a tenant.
            deadline_cycles: (40.0 * m) as u64,
        },
        TenantSpec {
            name: "analytics".into(),
            sessions: 400,
            arrival: Arrival::Open { mean_gap_cycles: (111.0 * m) as u64 },
            mix: vec![(Query::Q3, 2), (Query::Q10, 2), (Query::Q19, 1)],
            // Loose SLO: survives moderate stress; under collapse the
            // admission slack check sheds what cannot finish in time.
            deadline_cycles: (300.0 * m) as u64,
        },
    ]
}

/// Service configuration at one stress point (`m` = calm enclave mean
/// plan cost, shared by both settings so the comparison is like for
/// like).
pub fn service_config(m: f64, epc_level: f64, degrade_on: bool) -> ServiceConfig {
    ServiceConfig {
        seed: SEED,
        sockets: 2,
        workers_per_socket: 4,
        horizon_cycles: (600.0 * m) as u64,
        admission: AdmissionPolicy { enabled: true, queue_cap: 32 },
        degrade: DegradePolicy { enabled: degrade_on, epc_threshold: 0.35, queue_watermark: 24 },
        faults: Some(OcallFaults {
            failure_prob: STEP_FAILURE_PROB,
            max_retries: STEP_MAX_RETRIES,
            backoff_cycles: BACKOFF_FRACTION_OF_MEAN * m,
        }),
        epc_pressure_level: epc_level,
    }
}

/// One stress point, one setting: the drained outcome plus exact latency
/// histograms.
pub struct PointResult {
    /// The drained service outcome (counters reconciled).
    pub out: ServiceOutcome,
    /// All classes merged.
    pub hist: Histogram,
    /// Per-class latency histograms.
    pub per_class: BTreeMap<Query, Histogram>,
}

/// Serve the fixed workload against one calibrated cost table.
pub fn run_point(costs: &CostTable, m: f64, epc_level: f64, degrade_on: bool) -> PointResult {
    let cfg = service_config(m, epc_level, degrade_on);
    let out = run_service(&cfg, &tenants(m), costs);
    let reconciled = out.reconcile();
    assert!(reconciled.is_ok(), "service point failed to reconcile: {reconciled:?}");
    let mut hist = Histogram::new();
    let mut per_class = BTreeMap::new();
    for (&q, lats) in &out.latencies {
        let h: Histogram = lats.iter().copied().collect();
        hist.merge(&h);
        per_class.insert(q, h);
    }
    PointResult { out, hist, per_class }
}

/// Exact percentile in milliseconds (0 when no sample completed).
fn pct_ms(p: &BenchProfile, h: &Histogram, permille: u64) -> f64 {
    h.percentile_permille(permille).map_or(0.0, |c| p.hw.cycles_to_secs(c as f64) * 1e3)
}

fn stat(v: f64) -> Option<Stat> {
    Some(Stat { mean: v, stddev: 0.0 })
}

/// Fraction of submitted queries, guarded against empty runs.
fn frac(n: u64, d: u64) -> f64 {
    if d == 0 { 0.0 } else { n as f64 / d as f64 }
}

/// Push the six p50/p95/p99 × setting latency series for one sweep.
fn push_latency_series(fig: &mut Figure, p: &BenchProfile, results: &[(Setting, Vec<PointResult>)]) {
    for (setting, points) in results {
        for (pm, label) in [(500u64, "p50"), (950, "p95"), (990, "p99")] {
            let series: Vec<Option<Stat>> =
                points.iter().map(|r| stat(pct_ms(p, &r.hist, pm))).collect();
            fig.push_series(&format!("{label}, {}", setting.label()), series);
        }
    }
}

/// Push goodput/rejected/timed-out/degraded fraction series for one sweep.
fn push_goodput_series(fig: &mut Figure, results: &[(Setting, Vec<PointResult>)]) {
    for (setting, points) in results {
        let s = setting.label();
        let g: Vec<Option<Stat>> = points
            .iter()
            .map(|r| stat(frac(r.out.total.completed, r.out.total.submitted)))
            .collect();
        fig.push_series(&format!("goodput, {s}"), g);
        for (name, pick) in [
            ("rejected", (|c: &sgx_serve::ServiceCounters| c.rejected) as fn(&_) -> u64),
            ("timed out", |c| c.timed_out),
            ("degraded", |c| c.degraded),
        ] {
            let series: Vec<Option<Stat>> = points
                .iter()
                .map(|r| stat(frac(pick(&r.out.total), r.out.total.submitted)))
                .collect();
            fig.push_series(&format!("{name}, {s}"), series);
        }
    }
}

fn p99(p: &BenchProfile, r: &PointResult) -> f64 {
    pct_ms(p, &r.hist, 990)
}

/// Tentpole experiment: multi-tenant service degradation curves — tail
/// latency and goodput vs AEX-storm rate and EPC-pressure level, native
/// vs enclave, with admission control, bounded-backoff retries, and
/// EPC-triggered plan degradation active.
pub fn ext_service_tail(p: &BenchProfile) -> Vec<Figure> {
    // Calm calibrations anchor the workload sizing and serve as the
    // first point of both sweeps. A native table is EPC-invariant (the
    // pager only exists in enclave mode), so the native EPC sweep reuses
    // the calm native table and only the policy response differs.
    let calm = StressPoint { aex_per_mcycle: 0.0, epc_level: 0.0 };
    let calm_enc = calibrate(p, Setting::SgxDataInEnclave, calm);
    let calm_nat = calibrate(p, Setting::PlainCpu, calm);
    let m = calm_enc.costs.mean_total(PlanVariant::Normal);
    assert!(m > 0.0, "calm calibration must produce nonzero plan costs");

    let aex_tables = |setting: Setting, calm_table: &CostTable| -> Vec<CostTable> {
        AEX_RATES
            .iter()
            .map(|&r| {
                if r == 0.0 {
                    calm_table.clone()
                } else {
                    calibrate(p, setting, StressPoint { aex_per_mcycle: r, epc_level: 0.0 }).costs
                }
            })
            .collect()
    };
    let epc_tables_enc: Vec<CostTable> = EPC_LEVELS
        .iter()
        .map(|&l| {
            if l == 0.0 {
                calm_enc.costs.clone()
            } else {
                calibrate(
                    p,
                    Setting::SgxDataInEnclave,
                    StressPoint { aex_per_mcycle: 0.0, epc_level: l },
                )
                .costs
            }
        })
        .collect();

    let settings = [Setting::PlainCpu, Setting::SgxDataInEnclave];
    let aex_results: Vec<(Setting, Vec<PointResult>)> = settings
        .iter()
        .map(|&s| {
            let base = if s == Setting::PlainCpu { &calm_nat.costs } else { &calm_enc.costs };
            let pts =
                aex_tables(s, base).iter().map(|t| run_point(t, m, 0.0, true)).collect();
            (s, pts)
        })
        .collect();
    let epc_results: Vec<(Setting, Vec<PointResult>)> = settings
        .iter()
        .map(|&s| {
            let pts = EPC_LEVELS
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    let t = if s == Setting::PlainCpu { &calm_nat.costs } else { &epc_tables_enc[i] };
                    run_point(t, m, l, true)
                })
                .collect();
            (s, pts)
        })
        .collect();

    // ---- figures -------------------------------------------------------
    let mut fig_aex = Figure::new(
        "ext_service_tail_aex",
        "Service tail latency vs AEX interrupt storm (multi-tenant, admission + retries on)",
        "interrupts per Mcycle",
        "latency (ms)",
    )
    .with_xs(AEX_RATES.iter().map(|r| format!("{r:.0}")));
    push_latency_series(&mut fig_aex, p, &aex_results);

    let mut fig_aex_good = Figure::new(
        "ext_service_tail_aex_goodput",
        "Service goodput and shed load vs AEX interrupt storm",
        "interrupts per Mcycle",
        "fraction of submitted",
    )
    .with_xs(AEX_RATES.iter().map(|r| format!("{r:.0}")));
    push_goodput_series(&mut fig_aex_good, &aex_results);

    let mut fig_epc = Figure::new(
        "ext_service_tail_epc",
        "Service tail latency vs EPC pressure (balloon steals a fraction of the working set)",
        "EPC pressure level",
        "latency (ms)",
    )
    .with_xs(EPC_LEVELS.iter().map(|l| format!("{l:.1}")));
    push_latency_series(&mut fig_epc, p, &epc_results);

    let mut fig_epc_good = Figure::new(
        "ext_service_tail_epc_goodput",
        "Service goodput, shed load, and plan degradation vs EPC pressure",
        "EPC pressure level",
        "fraction of submitted",
    )
    .with_xs(EPC_LEVELS.iter().map(|l| format!("{l:.1}")));
    push_goodput_series(&mut fig_epc_good, &epc_results);

    // Per-class percentiles, calm vs top storm, in the enclave.
    let enclave_aex = &aex_results[1].1;
    let mut fig_classes = Figure::new(
        "ext_service_tail_classes",
        "Per-query-class latency percentiles in the enclave (calm vs top AEX storm)",
        "query",
        "latency (ms)",
    )
    .with_xs(Query::all().iter().map(|q| q.label()));
    for (point, tag) in [(0usize, "calm"), (AEX_RATES.len() - 1, "storm")] {
        for (pm, label) in [(500u64, "p50"), (950, "p95"), (990, "p99")] {
            let series: Vec<Option<Stat>> = Query::all()
                .iter()
                .map(|q| {
                    enclave_aex[point]
                        .per_class
                        .get(q)
                        .map(|h| stat(pct_ms(p, h, pm)))
                        .unwrap_or(stat(0.0))
                })
                .collect();
            fig_classes.push_series(&format!("{label} {tag}"), series);
        }
    }

    // ---- shape assertions ---------------------------------------------
    for (setting, points) in aex_results.iter().chain(epc_results.iter()) {
        for r in points {
            let (a, b, c) =
                (pct_ms(p, &r.hist, 500), pct_ms(p, &r.hist, 950), pct_ms(p, &r.hist, 990));
            assert!(a <= b && b <= c, "{}: percentiles must be ordered", setting.label());
            assert!(r.out.total.completed > 0, "{}: every point must complete work", setting.label());
            assert!(r.out.total.retries > 0, "{}: injected step faults must force retries", setting.label());
        }
    }
    let (native_aex, enclave_aexp) = (&aex_results[0].1, &aex_results[1].1);
    let last = AEX_RATES.len() - 1;
    for i in 1..=last {
        assert!(
            p99(p, &enclave_aexp[i]) >= p99(p, &enclave_aexp[i - 1]),
            "enclave p99 must not improve as the storm intensifies"
        );
    }
    assert!(
        p99(p, &enclave_aexp[last]) > p99(p, &native_aex[last]),
        "the same storm must hurt the enclave's tail more than native's"
    );
    assert!(
        enclave_aexp[last].out.total.rejected > 0,
        "the top storm must overload the enclave service into shedding load"
    );
    let (native_epc, enclave_epc) = (&epc_results[0].1, &epc_results[1].1);
    let top = EPC_LEVELS.len() - 1;
    let native_growth = p99(p, &native_epc[top]) / p99(p, &native_epc[0]).max(1e-12);
    let enclave_growth = p99(p, &enclave_epc[top]) / p99(p, &enclave_epc[0]).max(1e-12);
    assert!(
        enclave_growth > native_growth,
        "EPC pressure must stretch the enclave tail more than native \
         (enclave x{enclave_growth:.2} vs native x{native_growth:.2})"
    );
    for (i, &l) in EPC_LEVELS.iter().enumerate() {
        let c = &enclave_epc[i].out.total;
        if l >= 0.35 {
            assert_eq!(c.degraded, c.admitted, "ambient pressure {l} must degrade every admitted query");
        } else {
            assert!(c.degraded < c.admitted, "calm points must mostly run the normal plan");
        }
    }

    // Degradation-policy ablation at the mid EPC point (where plenty of
    // queries still complete, so the comparison is not event-ordering
    // noise): turning the policy off must not complete more work within
    // deadline, since the degraded plan is strictly cheaper.
    let mid = 1;
    let off = run_point(&epc_tables_enc[mid], m, EPC_LEVELS[mid], false);
    let on = &enclave_epc[mid].out;
    assert_eq!(off.out.total.degraded, 0, "disabled policy must never degrade");
    assert!(
        on.total.completed >= off.out.total.completed,
        "plan degradation must not lose goodput under pressure ({} vs {})",
        on.total.completed,
        off.out.total.completed
    );

    // ---- notes ---------------------------------------------------------
    let calm_r = &enclave_aexp[0];
    let storm_r = &enclave_aexp[last];
    fig_aex.note(format!(
        "workload: 800 closed-loop + 400 open-loop sessions over 2 sockets x 4 workers; \
         step faults p={STEP_FAILURE_PROB} (max {STEP_MAX_RETRIES} retries, capped exponential \
         backoff); admission queue cap 32; deadlines 40x/300x the calm mean plan cost"
    ));
    fig_aex.note(format!(
        "counters reconcile exactly (submitted = admitted + rejected; admitted = completed + \
         timed_out): calm enclave {:?}; top-storm enclave {:?}",
        calm_r.out.total, storm_r.out.total
    ));
    fig_aex_good.note(format!(
        "goodput = completed-within-deadline / submitted; top-storm enclave sheds {} of {} \
         submissions and times out {}",
        storm_r.out.total.rejected, storm_r.out.total.submitted, storm_r.out.total.timed_out
    ));
    fig_epc.note(format!(
        "EPC level L shrinks the balloon residency to (1-L) of the calm pass's {}-byte \
         allocation high-water mark ({}-byte table footprint); the degradation policy \
         (threshold 0.35) downgrades every query to the SS4.2-optimized plan above it — \
         result-identical, proven in sgx-tpch",
        calm_enc.high_water, calm_enc.db_bytes
    ));
    fig_epc_good.note(format!(
        "ablation at L={}: policy off completes {} vs {} with degradation on (never more)",
        EPC_LEVELS[mid],
        off.out.total.completed,
        on.total.completed
    ));
    fig_classes.note(
        "exact nearest-rank percentiles over integer cycle latencies; every value is a \
         latency the service actually recorded (no interpolation)",
    );

    vec![fig_aex, fig_aex_good, fig_epc, fig_epc_good, fig_classes]
}
