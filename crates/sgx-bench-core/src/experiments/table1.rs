//! Table 1: the benchmark hardware description.

use crate::profiles::BenchProfile;
use crate::report::{Figure, Stat};

/// Table 1: print the simulated machine's parameters (the paper's server,
/// possibly scaled). Values are numeric (bytes, counts, GHz); the figure
/// notes carry the units per row.
pub fn table1(p: &BenchProfile) -> Figure {
    let hw = &p.hw;
    let rows: Vec<(&str, f64)> = vec![
        ("Sockets", hw.sockets as f64),
        ("Cores per socket", hw.cores_per_socket as f64),
        ("Base frequency (GHz)", hw.freq_ghz),
        ("L1d per core (KB)", hw.l1d.size as f64 / 1024.0),
        ("L2 per core (KB)", hw.l2.size as f64 / 1024.0),
        ("L3 per socket (MB)", hw.l3.size as f64 / (1024.0 * 1024.0)),
        ("EPC per socket (GB)", hw.epc_per_socket as f64 / (1024.0 * 1024.0 * 1024.0)),
        ("DRAM random latency (cycles)", hw.mem.dram_latency),
        ("MEE fill latency (cycles)", hw.mem.mee_fill_latency),
        ("Socket bandwidth (GB/s)", hw.freq_ghz / hw.mem.socket_bw_cycles_per_byte),
        ("UPI bandwidth (GB/s)", hw.freq_ghz / hw.upi.upi_bw_cycles_per_byte),
        ("Enclave transition (cycles)", hw.transitions.transition_cycles),
    ];
    let mut fig = Figure::new(
        "table1",
        format!("Simulated hardware: {}", hw.name).as_str(),
        "parameter",
        "value",
    )
    .with_xs(rows.iter().map(|(n, _)| *n));
    fig.push_series("value", rows.iter().map(|&(_, v)| Some(Stat::exact(v))).collect());
    fig.note("paper Table 1: dual-socket Xeon Gold 6326, 16 cores/socket @ 2.9 GHz, 64 GB EPC/socket");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_full_profile_matches_paper() {
        let p = BenchProfile {
            hw: sgx_sim::config::xeon_gold_6326(),
            data_div: 1,
            reps: 1,
        };
        let f = table1(&p);
        let v = f.series_by_label("value").unwrap();
        let get = |name: &str| {
            let i = f.xs.iter().position(|x| x == name).unwrap();
            v.points[i].unwrap().mean
        };
        assert_eq!(get("Sockets"), 2.0);
        assert_eq!(get("Cores per socket"), 16.0);
        assert_eq!(get("L1d per core (KB)"), 48.0);
        assert_eq!(get("L3 per socket (MB)"), 24.0);
        assert_eq!(get("EPC per socket (GB)"), 64.0);
        assert!((get("UPI bandwidth (GB/s)") - 67.2).abs() < 0.01);
    }
}
