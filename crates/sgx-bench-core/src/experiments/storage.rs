//! Secure storage data path extension (ROADMAP item 3): sealed blocks
//! decrypted, filtered and aggregated inside the enclave.
//!
//! The paper benchmarks operators over data already resident in plain
//! EPC memory; a protected analytical engine additionally pays to move
//! data through *sealed storage* — AES-GCM-decrypting 4 KiB blocks as
//! they stream in, then scanning the decoded column. This experiment
//! measures that full path (unseal → filter → grouped aggregate) for
//! three on-disk layouts — plain i32, dictionary-coded, RLE-coded —
//! native vs enclave. Compression earns its keep twice inside the
//! enclave: fewer sealed bytes to decrypt *and* fewer EPC lines to
//! stream during the scan.

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::Figure;
use sgx_sim::{Machine, Setting};
use sgx_tpch::storage::{clustered_column, seal_column, storage_path_query, StorageFormat};

/// Paper-scale column sizes in MB (scaled by the profile's divisor).
const PAPER_MB: [usize; 3] = [4, 16, 64];
/// Filter threshold: values are 0..256, so 128 keeps ~half the rows.
const THRESHOLD: i32 = 128;
/// Group-count fan-out for the aggregation stage.
const GROUPS: usize = 64;

/// Storage-path runtime for one (setting, format, size, seed).
fn run_once(p: &BenchProfile, setting: Setting, format: StorageFormat, elems: usize, seed: u64) -> f64 {
    let threads = 8.min(p.hw.cores_per_socket);
    let cores: Vec<usize> = (0..threads).collect();
    let mut m = Machine::new(p.hw.clone(), setting);
    let values = clustered_column(elems, seed);
    let col = seal_column(&mut m, &values, format);
    m.reset_wall();
    let stats = storage_path_query(&mut m, &cores, &col, THRESHOLD, GROUPS);
    p.hw.cycles_to_secs(stats.total_cycles) * 1e3
}

/// Extension figure: sealed-storage query path runtime by column format,
/// native vs enclave, across column sizes.
pub fn ext_storage_path(p: &BenchProfile) -> Figure {
    let mut fig = Figure::new(
        "ext_storage_path",
        "Sealed storage data path: unseal + filter + group-count by column format",
        "column size (MB, paper scale)",
        "ms",
    )
    .with_xs(PAPER_MB.iter().map(|mb| format!("{mb}")));

    let formats = [StorageFormat::Plain, StorageFormat::Dict, StorageFormat::Rle];
    let settings = [Setting::PlainCpu, Setting::SgxDataInEnclave];
    // means[si][fi][xi] backs the shape assertions below.
    let mut means = vec![vec![vec![0.0f64; PAPER_MB.len()]; formats.len()]; settings.len()];
    for (si, &setting) in settings.iter().enumerate() {
        for (fi, &format) in formats.iter().enumerate() {
            let points: Vec<_> = PAPER_MB
                .iter()
                .enumerate()
                .map(|(xi, &mb)| {
                    let elems = (p.mb(mb) / 4).max(64);
                    let s = repeat(p.reps, |seed| run_once(p, setting, format, elems, seed));
                    means[si][fi][xi] = s.mean;
                    Some(s)
                })
                .collect();
            fig.push_series(&format!("{}, {}", format.label(), setting.label()), points);
        }
    }

    // Shape assertions at the largest size: the enclave pays for the
    // path, and compression pays for itself inside the enclave.
    let top = PAPER_MB.len() - 1;
    for fi in 0..formats.len() {
        assert!(
            means[1][fi][top] > means[0][fi][top],
            "{}: enclave must cost more than native",
            formats[fi].label()
        );
    }
    // Dict halves the sealed bytes (u16 codes) and keeps the parallel
    // scan, so it must win in the enclave at every profile scale. RLE
    // compresses harder but scans its runs serially, so its wall-cycle
    // win only materializes once columns dwarf the worker count — the
    // figure shows the crossover rather than asserting it.
    assert!(
        means[1][1][top] < means[1][0][top],
        "dictionary layout must beat plain inside the enclave (fewer sealed bytes and EPC lines)"
    );
    let overhead = |fi: usize| means[1][fi][top] / means[0][fi][top].max(1e-12);
    fig.note(format!(
        "enclave/native overhead at {} MB: plain x{:.2}, dict x{:.2}, rle x{:.2}",
        PAPER_MB[top],
        overhead(0),
        overhead(1),
        overhead(2)
    ));
    fig.note(
        "sealing model: AES-GCM charged per 4 KiB block (setup) plus per cache line \
         (throughput) from the calibration constants in sgx-sim's config; every decrypt, \
         scan and aggregate cycle flows through the simulator's charge choke point",
    );
    fig.note(format!(
        "filter keeps values >= {THRESHOLD} of 0..256 (~50% selectivity), then group-counts \
         matches into {GROUPS} buckets; results are verified against uncharged oracles in \
         sgx-tpch's storage tests"
    ));
    fig
}
