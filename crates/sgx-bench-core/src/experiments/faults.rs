//! Fault-injection extension: the §4.4 adverse events made measurable.
//!
//! `ext_aex_storm` sweeps a deterministic AEX interrupt storm
//! (Stress-SGX-style perturbation) over a join and a scan, in and out of
//! the enclave, with transient OCALL failures layered on top. The paper
//! measures enclaves on a quiet, frequency-pinned machine; this extension
//! asks the follow-up question operators actually face: what happens to
//! those curves when the host is noisy? The shape the fault model
//! predicts — and the assertions pin — is that enclave throughput
//! collapses super-linearly with the interrupt rate while native mode
//! shrugs, because every AEX costs a full enclave round trip (the
//! `transitions` counter) plus the L1/TLB refill on resume.

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::{Figure, Stat};
use sgx_joins::rho::rho_join;
use sgx_joins::{gen_fk_relation, gen_pk_relation, JoinConfig};
use sgx_scans::{column_scan, ScanConfig, ScanOutput};
use sgx_sim::{Counters, FaultProfile, Machine, Setting};

/// Interrupt rates swept by the storm, in events per million cycles of
/// core time (0 = the calm baseline each series is normalized to).
const RATES_PER_MCYCLE: [f64; 4] = [0.0, 20.0, 80.0, 320.0];

/// Transient-OCALL fault parameters layered onto every run: 20 % failure
/// probability per attempt, at most 4 retries, 5k-cycle base backoff.
const OCALL_FAILURE_PROB: f64 = 0.2;
const OCALL_MAX_RETRIES: u32 = 4;
const OCALL_BACKOFF_CYCLES: f64 = 5_000.0;
/// Result-delivery OCALLs issued after each measured phase.
const OCALLS_PER_RUN: usize = 8;

/// The storm profile for one repetition: schedule seeded from the rep
/// seed, AEX at the given rate, OCALL faults always on.
fn storm_profile(seed: u64, rate_per_mcycle: f64) -> FaultProfile {
    let mut fp = FaultProfile::new(0xFA17_0000 ^ seed);
    if rate_per_mcycle > 0.0 {
        fp = fp.with_aex_storm(1.0e6 / rate_per_mcycle);
    }
    fp.with_ocall_faults(OCALL_FAILURE_PROB, OCALL_MAX_RETRIES, OCALL_BACKOFF_CYCLES)
}

/// One RHO-join run under the storm: measured wall cycles (ECALL + join +
/// result OCALLs) and the machine's final counters.
fn join_run(p: &BenchProfile, setting: Setting, rate: f64, seed: u64) -> (f64, Counters) {
    let (nr, ns) = (p.rel_rows(100), p.rel_rows(400));
    let threads = 16.min(p.hw.cores_per_socket);
    let bits = JoinConfig::auto_radix_bits(nr * 8, p.hw.l2.size);
    let mut m = Machine::new(p.hw.clone(), setting);
    m.install_faults(storm_profile(seed, rate));
    let r = gen_pk_relation(&mut m, nr, seed);
    let s = gen_fk_relation(&mut m, ns, nr, seed + 1);
    let before = m.wall_cycles();
    m.ecall();
    let cfg = JoinConfig::new(threads).with_radix_bits(bits);
    let stats = rho_join(&mut m, &r, &s, &cfg);
    assert_eq!(stats.matches, ns as u64);
    for _ in 0..OCALLS_PER_RUN {
        m.ocall();
    }
    (m.wall_cycles() - before, m.counters().clone())
}

/// One column-scan run under the storm: measured wall cycles and counters.
fn scan_run(p: &BenchProfile, setting: Setting, rate: f64, seed: u64) -> (f64, Counters) {
    let bytes = p.mb(1024);
    let threads = 16.min(p.hw.cores_per_socket);
    let mut m = Machine::new(p.hw.clone(), setting);
    m.install_faults(storm_profile(seed, rate));
    let mut col = m.alloc::<u8>(bytes);
    let mut x = seed | 1;
    for i in 0..col.len() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        col.poke(i, (x >> 33) as u8);
    }
    let before = m.wall_cycles();
    m.ecall();
    column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(threads));
    for _ in 0..OCALLS_PER_RUN {
        m.ocall();
    }
    (m.wall_cycles() - before, m.counters().clone())
}

/// Tentpole experiment: join + scan throughput vs AEX interrupt rate,
/// native vs enclave, normalized per series to its calm (rate-0) mean.
pub fn ext_aex_storm(p: &BenchProfile) -> Figure {
    let mut fig = Figure::new(
        "ext_aex_storm",
        "Throughput under AEX interrupt storms + transient OCALL failures (fault injection)",
        "interrupts per Mcycle",
        "relative throughput",
    )
    .with_xs(RATES_PER_MCYCLE.iter().map(|r| format!("{r:.0}")));
    type Runner = fn(&BenchProfile, Setting, f64, u64) -> (f64, Counters);
    let workloads: [(&str, Runner); 2] = [("join", join_run), ("scan", scan_run)];
    for (wname, runner) in workloads {
        for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
            let raw: Vec<Stat> = RATES_PER_MCYCLE
                .iter()
                .map(|&rate| repeat(p.reps, |seed| 1.0 / runner(p, setting, rate, seed).0))
                .collect();
            // Normalize to the calm baseline so the two workloads share an
            // axis and the figure reads as "fraction of calm throughput".
            let base = raw[0].mean;
            let points = raw
                .iter()
                .map(|s| Some(Stat { mean: s.mean / base, stddev: s.stddev / base }))
                .collect();
            fig.push_series(&format!("{wname}, {}", setting.label()), points);
        }
    }

    // Shape assertions: the enclave collapses first, and super-linearly.
    let last = RATES_PER_MCYCLE.len() - 1;
    let val = |fig: &Figure, label: &str, i: usize| -> f64 {
        fig.series_by_label(label).and_then(|s| s.points[i]).map_or(f64::NAN, |st| st.mean)
    };
    for wname in ["join", "scan"] {
        let native = format!("{wname}, {}", Setting::PlainCpu.label());
        let enclave = format!("{wname}, {}", Setting::SgxDataInEnclave.label());
        for i in 1..=last {
            assert!(
                val(&fig, &enclave, i) <= val(&fig, &enclave, i - 1) + 1e-9,
                "{wname}: enclave throughput must fall as the storm intensifies"
            );
            assert!(
                val(&fig, &enclave, i) < val(&fig, &native, i),
                "{wname}: the same interrupt rate must hurt the enclave more"
            );
        }
        let native_loss = 1.0 - val(&fig, &native, last);
        let enclave_loss = 1.0 - val(&fig, &enclave, last);
        assert!(
            enclave_loss > 2.0 * native_loss,
            "{wname}: enclave degradation must be super-linear vs native \
             (enclave lost {enclave_loss:.2}, native lost {native_loss:.2})"
        );
    }

    // Attribution: re-run the enclave join calm and stormed with one fixed
    // seed and show the wall-time delta is carried by the transitions
    // counter (each AEX = 2 crossings; refill and backoff come on top).
    let seed = 0xC0FFEE;
    let threads = 16.min(p.hw.cores_per_socket) as f64;
    let (calm_cycles, calm) = join_run(p, Setting::SgxDataInEnclave, 0.0, seed);
    let (storm_cycles, storm) =
        join_run(p, Setting::SgxDataInEnclave, RATES_PER_MCYCLE[last], seed);
    let aex = storm.aex_events - calm.aex_events;
    assert!(aex > 0, "the top storm rate must deliver AEX events");
    assert!(
        storm.transitions >= calm.transitions + 2 * aex,
        "each AEX must charge a full enclave round trip into `transitions`"
    );
    let attributed = aex as f64 * 2.0 * p.hw.transitions.transition_cycles;
    assert!(
        storm_cycles - calm_cycles >= 0.5 * attributed / threads,
        "the slowdown must be attributable to transition charges: delta {:.3e} vs {:.3e}",
        storm_cycles - calm_cycles,
        attributed / threads
    );
    fig.note(format!(
        "fault model: each AEX charges a full enclave round trip (2 transitions) and flushes the \
         core's L1/TLB/stream state; a native interrupt costs {:.0} cycles; OCALLs fail \
         transiently with p={OCALL_FAILURE_PROB} (max {OCALL_MAX_RETRIES} retries, {:.0}-cycle \
         base backoff, doubling)",
        p.hw.interrupts.native_interrupt_cycles, OCALL_BACKOFF_CYCLES
    ));
    fig.note(format!(
        "attribution (enclave join at {:.0}/Mcycle, one seed): aex_events={}, ocall_retries={}, \
         transitions={} (calm: {}) — the wall-time delta is carried by the transitions counter",
        RATES_PER_MCYCLE[last], storm.aex_events, storm.ocall_retries, storm.transitions,
        calm.transitions
    ));
    fig
}
