//! Full-query experiment: Fig 17 (TPC-H Q3, Q10, Q12, Q19 at SF 10).

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::Figure;
use sgx_sim::{Machine, Setting};
use sgx_tpch::{generate, run_query, Query, QueryConfig};

/// Fig 17: runtimes of the four simplified TPC-H queries using the RHO
/// join — outside the enclave, inside naive, and inside with the §4.2
/// optimization.
pub fn fig17_tpch(p: &BenchProfile) -> Figure {
    let sf = p.tpch_sf(10.0);
    let threads = 16.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "fig17",
        format!("TPC-H queries at SF {sf:.3} ({threads} threads, RHO join)").as_str(),
        "query",
        "ms",
    )
    .with_xs(Query::all().iter().map(|q| q.label()));
    for (label, setting, optimized) in [
        ("Plain CPU", Setting::PlainCpu, false),
        ("SGX naive", Setting::SgxDataInEnclave, false),
        ("SGX optimized", Setting::SgxDataInEnclave, true),
    ] {
        let points = Query::all()
            .iter()
            .map(|&q| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let db = generate(&mut m, sf, seed);
                    m.reset_wall();
                    let cfg = QueryConfig::new(threads).with_optimization(optimized);
                    let stats = run_query(&mut m, &db, q, &cfg);
                    p.hw.cycles_to_secs(stats.wall_cycles) * 1e3
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("paper: optimization cuts query time by 7-30%; average enclave overhead falls from 42% to 15%");
    fig
}
