//! Reproduction extensions beyond the paper's figures: skewed join keys,
//! grouped aggregation (the operator §6 elides), and dual-socket EPC
//! scans (the capacity/parallelism opportunity §5.5 mentions but does not
//! measure).

use crate::profiles::BenchProfile;
use crate::repeat;
use crate::report::Figure;
use sgx_joins::rho::{rho_join, seq_scatter_direct};
use sgx_joins::{gen_fk_relation, gen_fk_zipf, gen_pk_relation, JoinConfig, Row};
use sgx_scans::{column_scan, packed_scan_count, PackedColumn, ScanConfig, ScanOutput};
use sgx_sim::{Machine, Region, Setting, SimVec};
use sgx_tpch::group_count;

/// Extension: RHO and PHT join throughput under Zipf-skewed foreign keys
/// (TEEBench evaluates skew; the paper's §4 uses uniform keys only).
pub fn ext_skew(p: &BenchProfile) -> Figure {
    let thetas = [0.0f64, 0.5, 0.75, 1.0];
    let (nr, ns) = (p.rel_rows(100), p.rel_rows(400));
    let bits = JoinConfig::auto_radix_bits(nr * 8, p.hw.l2.size);
    let threads = 16.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "ext_skew",
        "RHO join under Zipf-skewed probe keys (extension)",
        "zipf theta",
        "M rows/s",
    )
    .with_xs(thetas.iter().map(|t| format!("{t:.2}")));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = thetas
            .iter()
            .map(|&theta| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let r = gen_pk_relation(&mut m, nr, seed);
                    let s = gen_fk_zipf(&mut m, ns, nr, theta, seed + 1);
                    let cfg = JoinConfig::new(threads).with_radix_bits(bits);
                    let stats = rho_join(&mut m, &r, &s, &cfg);
                    assert_eq!(stats.matches, ns as u64);
                    stats.mrows_per_sec(nr, ns, p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("two competing effects: hot keys concentrate probes on cached buckets (a native win at heavy skew), while the dominant partition overloads one thread — a penalty the MEE amplifies, so the enclave curve dips at theta=1");
    fig
}

/// Extension: grouped aggregation (count per group) — the §4.2 histogram
/// effect applies verbatim to group-by counters.
pub fn ext_aggregation(p: &BenchProfile) -> Figure {
    let group_domains = [16usize, 256, 4096];
    let n = p.rel_rows(400);
    let threads = 16.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "ext_aggregation",
        "Grouped count(*) over a Row table (extension)",
        "groups",
        "M rows/s",
    )
    .with_xs(group_domains.iter().map(|g| g.to_string()));
    for (label, setting, optimized) in [
        ("Plain CPU", Setting::PlainCpu, false),
        ("SGX naive", Setting::SgxDataInEnclave, false),
        ("SGX optimized", Setting::SgxDataInEnclave, true),
    ] {
        let points = group_domains
            .iter()
            .map(|&groups| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let mut rows: SimVec<Row> = m.alloc(n);
                    for i in 0..n {
                        rows.poke(
                            i,
                            Row {
                                key: (i as u32).wrapping_mul(2654435761).wrapping_add(seed as u32),
                                payload: i as u32,
                            },
                        );
                    }
                    let g = group_count(&mut m, &(0..threads).collect::<Vec<_>>(), &rows, groups, optimized);
                    assert_eq!(g.counts.iter().sum::<u64>(), n as u64);
                    n as f64 / g.cycles * p.hw.freq_ghz * 1e3
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("the enclave penalty and the unroll repair of Fig 7 carry over to aggregation");
    fig
}

/// Design-choice ablation: software write-combining buffers vs direct
/// scatter in radix partitioning. The swwcb turns the fan-out's random
/// stores into full-line streaming stores — inside the enclave that also
/// sidesteps the MEE write penalty.
pub fn ablation_swwcb(p: &BenchProfile) -> Figure {
    let n = p.rel_rows(400);
    let threads = 16.min(p.hw.cores_per_socket);
    // Sweep the fan-out: small fan-outs keep every partition cursor line
    // cache-resident (direct scatter is fine); large fan-outs overflow the
    // L2 and direct stores degenerate to random misses — the regime
    // write-combining buffers exist for.
    let bits_choices = [6u32, 10, 13];
    let mut fig = Figure::new(
        "ablation_swwcb",
        "Radix scatter strategy across fan-outs",
        "fan-out (radix bits)",
        "M rows/s",
    )
    .with_xs(bits_choices.iter().map(|b| b.to_string()));
    for (label, wcb, setting) in [
        ("direct, native", false, Setting::PlainCpu),
        ("swwcb, native", true, Setting::PlainCpu),
        ("direct, SGX", false, Setting::SgxDataInEnclave),
        ("swwcb, SGX", true, Setting::SgxDataInEnclave),
    ] {
        let points = bits_choices
            .iter()
            .map(|&bits| {
                Some(repeat(p.reps, |seed| {
                    let fanout = 1usize << bits;
                    let mask = fanout as u32 - 1;
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let src = gen_pk_relation(&mut m, n, seed);
                    let mut dst: SimVec<Row> = m.alloc(n);
                    // Exact per-partition cursors (uncharged metadata).
                    let mut counts = vec![0usize; fanout];
                    for row in src.as_slice_untracked() {
                        counts[(row.key & mask) as usize] += 1;
                    }
                    let mut starts = vec![0usize; fanout + 1];
                    for g in 0..fanout {
                        starts[g + 1] = starts[g] + counts[g];
                    }
                    let per = n.div_ceil(threads);
                    let mut worker_offsets: Vec<Vec<usize>> = Vec::with_capacity(threads);
                    let mut running = starts[..fanout].to_vec();
                    for w in 0..threads {
                        worker_offsets.push(running.clone());
                        for i in (w * per).min(n)..((w + 1) * per).min(n) {
                            running[(src.peek(i).key & mask) as usize] += 1;
                        }
                    }
                    let cores: Vec<usize> = (0..threads).collect();
                    let mut wcb_counts: Vec<SimVec<u32>> =
                        (0..threads).map(|_| m.alloc(fanout)).collect();
                    let mut wcb_bufs: Vec<SimVec<Row>> =
                        (0..threads).map(|_| m.alloc(fanout * 8)).collect();
                    // The direct variant keeps its partition cursors in a
                    // charged array of the same shape.
                    let mut cursor_vecs: Vec<SimVec<u32>> =
                        (0..threads).map(|_| m.alloc(fanout)).collect();
                    for (w, cv) in cursor_vecs.iter_mut().enumerate() {
                        for g in 0..fanout {
                            cv.poke(g, worker_offsets[w][g] as u32);
                        }
                    }
                    let before = m.wall_cycles();
                    m.parallel(&cores, |c| {
                        let w = c.worker();
                        let range = (w * per).min(n)..((w + 1) * per).min(n);
                        if wcb {
                            sgx_joins::rho::seq_scatter(
                                c,
                                &src,
                                range,
                                &mut dst,
                                &mut worker_offsets[w],
                                &mut wcb_counts[w],
                                &mut wcb_bufs[w],
                                0,
                                mask,
                                false,
                            );
                        } else {
                            seq_scatter_direct(
                                c,
                                &src,
                                range,
                                &mut dst,
                                &mut cursor_vecs[w],
                                0,
                                mask,
                            );
                        }
                    });
                    let cycles = m.wall_cycles() - before;
                    n as f64 / cycles * p.hw.freq_ghz * 1e3
                }))
            })
            .collect();
        fig.push_series(label, points);
    }
    fig.note("with cursor maintenance charged fairly, the buffers win across fan-outs: full-line non-temporal flushes skip the RFO fill and the TLB walks that per-tuple scatter stores pay — the margin is largest inside the enclave");
    fig
}

/// Design-choice ablation: total radix bits (final partition size vs
/// cache) for the RHO join — the cache-residency cliff behind the
/// paper's "aggressive partitioning" lesson (§4.1).
pub fn ablation_radix_bits(p: &BenchProfile) -> Figure {
    let auto = JoinConfig::auto_radix_bits(p.rel_rows(100) * 8, p.hw.l2.size);
    let choices: Vec<u32> = [auto.saturating_sub(4).max(2), auto.saturating_sub(2).max(2), auto, (auto + 2).min(16)]
        .into_iter()
        .collect();
    let (nr, ns) = (p.rel_rows(100), p.rel_rows(400));
    let threads = 16.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "ablation_radix_bits",
        "RHO total radix bits (final partition size vs cache)",
        "radix bits",
        "M rows/s",
    )
    .with_xs(choices.iter().map(|b| b.to_string()));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = choices
            .iter()
            .map(|&bits| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let r = gen_pk_relation(&mut m, nr, seed);
                    let s = gen_fk_relation(&mut m, ns, nr, seed + 1);
                    let cfg = JoinConfig::new(threads).with_radix_bits(bits);
                    rho_join(&mut m, &r, &s, &cfg).mrows_per_sec(nr, ns, p.hw.freq_ghz)
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("too few bits leave partitions bigger than cache (random-access-bound build); the cliff is steeper inside the enclave (§4.1 lesson)");
    fig
}

/// Extension: bit-packed column scans (Willhalm et al. \[38\], the paper's
/// scan-algorithm citation): throughput per *value* rises as the packing
/// narrows, because fewer bytes cross the MEE.
pub fn ext_packed_scan(p: &BenchProfile) -> Figure {
    let widths = [4u32, 8, 12, 16, 32];
    let n = p.mb(2048); // values; physical size shrinks with the width
    let threads = 16.min(p.hw.cores_per_socket);
    let mut fig = Figure::new(
        "ext_packed",
        "Bit-packed column scan (Willhalm-style), billion values/s",
        "bits per value",
        "G values/s",
    )
    .with_xs(widths.iter().map(|b| b.to_string()));
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let points = widths
            .iter()
            .map(|&bits| {
                Some(repeat(p.reps, |seed| {
                    let mut m = Machine::new(p.hw.clone(), setting);
                    let mut x = seed | 1;
                    let vals: Vec<u32> = (0..n)
                        .map(|_| {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            ((x >> 33) as u32) & ((1u32 << bits.min(31)) - 1)
                        })
                        .collect();
                    let col = PackedColumn::pack(&mut m, &vals, bits);
                    let cores: Vec<usize> = (0..threads).collect();
                    let (_, cycles) = packed_scan_count(&mut m, &col, 1, 100, &cores);
                    n as f64 / (cycles / (p.hw.freq_ghz * 1e9)) / 1e9
                }))
            })
            .collect();
        fig.push_series(setting.label(), points);
    }
    fig.note("narrower packing = fewer MEE-decrypted lines per value; the enclave gap stays a few percent at every width");
    fig
}

/// Extension: scanning data striped across both sockets' EPC with local
/// threads on each — the aggregated-EPC deployment §5.5 raises.
pub fn ext_dual_socket_scan(p: &BenchProfile) -> Figure {
    let bytes = p.mb(2048);
    let t = p.hw.cores_per_socket;
    let mut fig = Figure::new(
        "ext_dual_socket",
        "Aggregate EPC scan across sockets (extension)",
        "deployment",
        "GB/s",
    )
    .with_xs(["1 socket, local EPC", "2 sockets, striped EPC (NUMA-aware)", "2 sockets, all EPC on node 0"]);
    let run = |regions_cores: Vec<(Region, Vec<usize>)>, seed: u64| -> f64 {
        let mut m = Machine::new(p.hw.clone(), Setting::SgxDataInEnclave);
        let mut total_bytes = 0usize;
        let mut cycles = 0.0;
        // Each (region, cores) pair scans its own column; deployments run
        // their parts concurrently, so the wall is the max part time.
        let mut parts = Vec::new();
        for (region, cores) in regions_cores {
            let mut col = m.alloc_on::<u8>(bytes / 2, region);
            let mut x = seed | 1;
            for i in 0..col.len() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                col.poke(i, (x >> 33) as u8);
            }
            let before = m.wall_cycles();
            let cfg = ScanConfig::new(cores.len()).on_cores(cores);
            column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &cfg);
            parts.push(m.wall_cycles() - before);
            total_bytes += bytes / 2;
        }
        cycles += parts.iter().cloned().fold(0.0, f64::max);
        total_bytes as f64 / (cycles / (p.hw.freq_ghz * 1e9)) / 1e9
    };
    let single = repeat(p.reps, |seed| {
        // One socket scans both halves locally (sequentially).
        let mut m = Machine::new(p.hw.clone(), Setting::SgxDataInEnclave);
        let mut col = m.alloc_on::<u8>(bytes, Region::Epc(0));
        let mut x = seed | 1;
        for i in 0..col.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            col.poke(i, (x >> 33) as u8);
        }
        let cfg = ScanConfig::new(t);
        let stats = column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &cfg);
        stats.gb_per_sec(p.hw.freq_ghz)
    });
    let striped = repeat(p.reps, |seed| {
        run(
            vec![
                (Region::Epc(0), (0..t).collect()),
                (Region::Epc(1), (t..2 * t).collect()),
            ],
            seed,
        )
    });
    let lopsided = repeat(p.reps, |seed| {
        run(
            vec![
                (Region::Epc(0), (0..t).collect()),
                (Region::Epc(0), (t..2 * t).collect()),
            ],
            seed,
        )
    });
    fig.push_series("throughput", vec![Some(single), Some(striped), Some(lopsided)]);
    fig.note("NUMA-aware striping doubles aggregate scan bandwidth; when allocations land on one node (the §4.3 placement problem) the remote half pays the UPI/UCE path and drags the aggregate down");
    fig
}
