//! Calibration of the SGXv2 simulator against the paper's own
//! micro-benchmark measurements.
//!
//! These tests are the load-bearing evidence for the whole reproduction:
//! every higher-level figure (joins, scans, TPC-H) is a *prediction* of the
//! model these bands pin down. Each test names the paper measurement it
//! encodes. Bands are deliberately generous (the paper's numbers carry
//! hardware noise and our substrate is a model), but tight enough that the
//! qualitative claims cannot silently invert.
//!
//! All tests run on the full Table 1 profile (real cache sizes); array
//! sizes are capped at 1 GB instead of the paper's 16 GB, which is already
//! deep in the asymptotic DRAM regime (≫ 24 MB L3).

use sgx_microbench::{
    histogram_bench, increment_bench, pointer_chase, random_write, HistKernel,
};
use sgx_sim::config::xeon_gold_6326;
use sgx_sim::Setting;

const MB: usize = 1 << 20;

/// §4.1 / Fig 5 (left): dependent random reads over a DRAM-sized array
/// reach ≈53 % of native throughput ("At 16 GB array size, we measured 53%
/// read throughput").
#[test]
fn random_read_relative_performance_matches_fig5() {
    let native = pointer_chase(xeon_gold_6326(), Setting::PlainCpu, 1024 * MB, 200_000, 11);
    let sgx = pointer_chase(xeon_gold_6326(), Setting::SgxDataInEnclave, 1024 * MB, 200_000, 11);
    let rel = native.cycles / sgx.cycles;
    assert!(
        (0.45..=0.65).contains(&rel),
        "paper: ~53% relative read throughput at large sizes; model: {:.1}%",
        rel * 100.0
    );
}

/// §4.1 / Fig 5 (right): independent random writes fall below 40 % of
/// native ("nearly 3 times higher write latencies for the 8 GB array
/// size").
#[test]
fn random_write_relative_performance_matches_fig5() {
    let native = random_write(xeon_gold_6326(), Setting::PlainCpu, 1024 * MB, 1_000_000, 13);
    let sgx = random_write(xeon_gold_6326(), Setting::SgxDataInEnclave, 1024 * MB, 1_000_000, 13);
    let slowdown = sgx.cycles / native.cycles;
    assert!(
        (2.3..=3.8).contains(&slowdown),
        "paper: ~3x slower random writes; model: {slowdown:.2}x"
    );
    assert!(
        native.cycles / sgx.cycles < 0.45,
        "paper: relative write performance below 40-45%"
    );
}

/// §4.1 / Fig 5: cache-resident random access has no penalty in either
/// direction ("In-cache, random access performance is equal").
#[test]
fn in_cache_random_access_is_at_parity() {
    // 512 KB sits comfortably in the 1.25 MB L2.
    let nr = pointer_chase(xeon_gold_6326(), Setting::PlainCpu, 512 << 10, 200_000, 17);
    let sr = pointer_chase(xeon_gold_6326(), Setting::SgxDataInEnclave, 512 << 10, 200_000, 17);
    let read_rel = nr.cycles / sr.cycles;
    assert!(read_rel > 0.9, "in-cache reads should be ≥90% native, got {:.2}", read_rel);

    let nw = random_write(xeon_gold_6326(), Setting::PlainCpu, 512 << 10, 500_000, 17);
    let sw = random_write(xeon_gold_6326(), Setting::SgxDataInEnclave, 512 << 10, 500_000, 17);
    let write_rel = nw.cycles / sw.cycles;
    assert!(write_rel > 0.9, "in-cache writes should be ≥90% native, got {:.2}", write_rel);
}

/// §4.2 / Fig 7: the naive histogram loop is 225 % slower in enclave mode
/// (i.e. ≈3.25× the native run time), for typical radix-bin counts.
#[test]
fn naive_histogram_slowdown_matches_fig7() {
    for bins in [256usize, 4096, 32768] {
        let native =
            histogram_bench(xeon_gold_6326(), Setting::PlainCpu, 2_000_000, bins, HistKernel::Naive, 5);
        let sgx = histogram_bench(
            xeon_gold_6326(),
            Setting::SgxDataInEnclave,
            2_000_000,
            bins,
            HistKernel::Naive,
            5,
        );
        let slowdown = sgx.cycles / native.cycles;
        assert!(
            (2.4..=4.2).contains(&slowdown),
            "paper: ~3.25x naive histogram slowdown at {bins} bins; model: {slowdown:.2}x"
        );
    }
}

/// §4.2 / Fig 7: the slowdown is independent of data location — it is an
/// execution-mode effect, not a memory-encryption effect ("Histogram
/// creation is 225 % slower when the CPU is in enclave mode, independent of
/// data location").
#[test]
fn histogram_slowdown_is_execution_mode_not_encryption() {
    let inside = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataInEnclave,
        2_000_000,
        4096,
        HistKernel::Naive,
        5,
    );
    let outside = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataOutside,
        2_000_000,
        4096,
        HistKernel::Naive,
        5,
    );
    let ratio = inside.cycles / outside.cycles;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "both SGX settings should suffer alike; inside/outside = {ratio:.2}"
    );
}

/// §4.2 / Fig 7: manual 8× unrolling with reordered increments brings the
/// enclave histogram to within ~20 % of native; SIMD-width unrolling
/// improves it further.
#[test]
fn unrolled_histogram_recovers_matches_fig7() {
    let native =
        histogram_bench(xeon_gold_6326(), Setting::PlainCpu, 2_000_000, 4096, HistKernel::Naive, 5);
    let unrolled = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataInEnclave,
        2_000_000,
        4096,
        HistKernel::Unrolled8,
        5,
    );
    let simd = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataInEnclave,
        2_000_000,
        4096,
        HistKernel::Simd32,
        5,
    );
    let unrolled_over = unrolled.cycles / native.cycles;
    assert!(
        (1.0..=1.40).contains(&unrolled_over),
        "paper: ~20% residual slowdown after unrolling; model: {:.1}%",
        (unrolled_over - 1.0) * 100.0
    );
    assert!(
        simd.cycles < unrolled.cycles,
        "paper: SIMD unrolling decreased the difference further"
    );
}

/// §4.2: "incrementing the values inside a cache-resident histogram alone
/// is not the cause of the slowdown" — the increment-only loop runs at
/// native speed inside the enclave.
#[test]
fn increment_only_loop_is_not_the_culprit() {
    let native = increment_bench(xeon_gold_6326(), Setting::PlainCpu, 4096, 2_000_000, 23);
    let sgx = increment_bench(xeon_gold_6326(), Setting::SgxDataInEnclave, 4096, 2_000_000, 23);
    let slowdown = sgx / native;
    assert!(
        slowdown < 1.2,
        "increment-only loop must be near parity (paper §4.2); model: {slowdown:.2}x"
    );
}

/// GCC's unrolling pragma interleaves index computation and increments, so
/// it does *not* recover the performance (§4.2). In the model this
/// corresponds to a naive loop — assert that unrolling only pays off when
/// the increments are actually batched behind the index computations.
#[test]
fn grouping_is_what_matters_not_iteration_count() {
    let naive = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataInEnclave,
        2_000_000,
        4096,
        HistKernel::Naive,
        5,
    );
    let unrolled = histogram_bench(
        xeon_gold_6326(),
        Setting::SgxDataInEnclave,
        2_000_000,
        4096,
        HistKernel::Unrolled8,
        5,
    );
    assert!(
        naive.cycles > 2.0 * unrolled.cycles,
        "batched increments must be >2x faster in-enclave: naive {} vs unrolled {}",
        naive.cycles,
        unrolled.cycles
    );
    assert_eq!(naive.histogram, unrolled.histogram, "same answer either way");
}
