//! # sgx-microbench — the paper's micro-benchmarks
//!
//! Reusable implementations of the micro-benchmarks the paper uses to
//! isolate SGXv2 overheads:
//!
//! * [`pointer_chase`] — dependent random reads (pmbw pointer chasing,
//!   §4.1, Fig 5 left),
//! * [`random_write`] — independent random 8-byte stores driven by an LCG
//!   (§4.1, Fig 5 right),
//! * [`histogram_bench`] — the radix-histogram kernel in naive, manually
//!   unrolled, and SIMD-unrolled forms (§4.2, Fig 7, Listings 1/2),
//! * [`increment_bench`] — the cache-resident increment loop the paper
//!   used to rule out the increments themselves as the §4.2 culprit.
//!
//! The crate-level calibration tests (`tests/calibration.rs`) assert that
//! the simulator reproduces the paper's measured ratios, which is the
//! load-bearing evidence for every higher-level experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod pointer_chase;
pub mod random_write;

pub use histogram::{histogram_bench, histogram_kernel, HistKernel, HistResult};
pub use pointer_chase::{build_cycle, pointer_chase, ChaseResult};
pub use random_write::{lcg_next, random_write, WriteResult};

use sgx_sim::{HwConfig, Machine, Setting};

/// Measured cost of enclave boundary crossings (the ECALL/OCALL round
/// trips behind §4.4's mutex and memory-allocation findings): issue `n`
/// OCALL round trips from a worker and return the average cycles per
/// round trip (0 in native mode — there is no boundary to cross).
pub fn transition_bench(cfg: HwConfig, setting: Setting, n: u64) -> f64 {
    let mut machine = Machine::new(cfg, setting);
    machine.run(|c| {
        for _ in 0..n {
            c.transition(); // OCALL out
            c.transition(); // EENTER back
        }
    });
    machine.wall_cycles() / n as f64
}

/// The isolating check from §4.2: increment random slots of one
/// cache-resident array, with ALU-generated indexes. The paper observed no
/// enclave slowdown here, pinning the histogram regression on the
/// interleaving of table loads and histogram updates.
pub fn increment_bench(cfg: HwConfig, setting: Setting, bins: usize, n: u64, seed: u64) -> f64 {
    let mut machine = Machine::new(cfg, setting);
    let mut hist = machine.alloc::<u32>(bins);
    machine.run(|c| {
        let mut x = seed | 1;
        for _ in 0..n {
            x = lcg_next(x);
            c.compute(3);
            hist.rmw(c, (x >> 33) as usize % bins, |e| *e += 1);
        }
    });
    machine.wall_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;

    #[test]
    fn transitions_cost_tens_of_thousands_of_cycles_only_in_enclave() {
        let native = transition_bench(scaled_profile(), Setting::PlainCpu, 100);
        assert_eq!(native, 0.0, "no boundary to cross natively");
        let sgx = transition_bench(scaled_profile(), Setting::SgxDataInEnclave, 100);
        // TEEBench/sgx-perf report ~8k-14k cycles per one-way crossing.
        assert!((15_000.0..30_000.0).contains(&sgx), "round trip {sgx}");
    }

    #[test]
    fn increment_bench_near_parity_in_enclave() {
        let native = increment_bench(scaled_profile(), Setting::PlainCpu, 1024, 100_000, 3);
        let enclave = increment_bench(scaled_profile(), Setting::SgxDataInEnclave, 1024, 100_000, 3);
        let rel = enclave / native;
        assert!(rel < 1.25, "increment-only loop should be near-native, got {rel:.2}");
    }
}
