//! Radix-histogram micro-benchmark (§4.2, Fig 7 and Listings 1/2).
//!
//! The kernel scans a table of keys and counts how many fall into each
//! radix bin — the first phase of every radix join. The paper found this
//! loop 225 % slower inside an enclave *regardless of data location*, and
//! repaired it with manual 8× unrolling that computes all indexes before
//! issuing the increments (plus an AVX variant unrolling 32×).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sgx_sim::{Core, HwConfig, Machine, Setting, SimVec};

/// Which histogram kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKernel {
    /// Listing 1: index and increment interleaved per element.
    Naive,
    /// Listing 2: 8 indexes computed, then 8 increments issued.
    Unrolled8,
    /// AVX-512 variant: 32 indexes gathered into vector registers, then 32
    /// increments issued.
    Simd32,
}

impl HistKernel {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            HistKernel::Naive => "naive",
            HistKernel::Unrolled8 => "unrolled x8",
            HistKernel::Simd32 => "SIMD x32",
        }
    }
}

/// Result of one histogram run.
#[derive(Debug, Clone)]
pub struct HistResult {
    /// Total simulated cycles.
    pub cycles: f64,
    /// Keys processed.
    pub keys: u64,
    /// The computed histogram (for correctness checks).
    pub histogram: Vec<u32>,
}

/// Build the histogram of `(key & mask) >> shift` over `keys` into `hist`,
/// charging the chosen kernel's cost shape. Reused by the radix joins.
pub fn histogram_kernel(
    core: &mut Core<'_>,
    keys: &SimVec<u64>,
    range: std::ops::Range<usize>,
    hist: &mut SimVec<u32>,
    mask: u64,
    shift: u32,
    kernel: HistKernel,
) {
    match kernel {
        HistKernel::Naive => {
            keys.read_stream(core, range, |c, _, k| {
                // Mask, shift, and the increment's address arithmetic.
                c.compute(3);
                let idx = ((k & mask) >> shift) as usize;
                hist.rmw(c, idx, |e| *e += 1);
            });
        }
        HistKernel::Unrolled8 => {
            let mut batch = [0usize; 8];
            let mut fill = 0usize;
            keys.read_stream(core, range, |c, _, k| {
                c.compute(3);
                batch[fill] = ((k & mask) >> shift) as usize;
                fill += 1;
                if fill == 8 {
                    c.group(|c| {
                        for &idx in &batch {
                            hist.rmw(c, idx, |e| *e += 1);
                        }
                    });
                    fill = 0;
                }
            });
            // Remainder loop of Listing 2.
            core.group(|c| {
                for &idx in &batch[..fill] {
                    hist.rmw(c, idx, |e| *e += 1);
                }
            });
        }
        HistKernel::Simd32 => {
            let mut batch = [0usize; 32];
            let mut fill = 0usize;
            keys.read_stream_vec(core, range, |c, _, vals| {
                // One AND + one shift vector op per 8 keys.
                c.vec_compute(2);
                for &k in vals {
                    batch[fill] = ((k & mask) >> shift) as usize;
                    fill += 1;
                    if fill == 32 {
                        c.group(|c| {
                            for &idx in &batch {
                                hist.rmw(c, idx, |e| *e += 1);
                            }
                        });
                        fill = 0;
                    }
                }
            });
            core.group(|c| {
                for &idx in &batch[..fill] {
                    hist.rmw(c, idx, |e| *e += 1);
                }
            });
        }
    }
}

/// Run the histogram micro-benchmark: `n_keys` random keys, `bins`
/// power-of-two bins, chosen kernel, one of the paper's three settings.
pub fn histogram_bench(
    cfg: HwConfig,
    setting: Setting,
    n_keys: usize,
    bins: usize,
    kernel: HistKernel,
    seed: u64,
) -> HistResult {
    assert!(bins.is_power_of_two(), "radix bins must be a power of two");
    let mut machine = Machine::new(cfg, setting);
    let mut keys = machine.alloc::<u64>(n_keys);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n_keys {
        keys.poke(i, rng.random::<u64>());
    }
    let mut hist = machine.alloc::<u32>(bins);
    let mask = (bins - 1) as u64;
    machine.run(|c| {
        histogram_kernel(c, &keys, 0..n_keys, &mut hist, mask, 0, kernel);
    });
    HistResult {
        cycles: machine.wall_cycles(),
        keys: n_keys as u64,
        // sgx-lint: allow(untracked-access) result extraction after the timed region closed
        histogram: hist.as_slice_untracked().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;

    #[test]
    fn all_kernels_compute_the_same_histogram() {
        let naive = histogram_bench(scaled_profile(), Setting::PlainCpu, 10_000, 256, HistKernel::Naive, 9);
        let unrolled =
            histogram_bench(scaled_profile(), Setting::PlainCpu, 10_000, 256, HistKernel::Unrolled8, 9);
        let simd =
            histogram_bench(scaled_profile(), Setting::PlainCpu, 10_000, 256, HistKernel::Simd32, 9);
        assert_eq!(naive.histogram, unrolled.histogram);
        assert_eq!(naive.histogram, simd.histogram);
        assert_eq!(naive.histogram.iter().map(|&c| c as u64).sum::<u64>(), 10_000);
    }

    #[test]
    fn naive_kernel_suffers_in_enclave_unrolled_recovers() {
        let run = |setting, kernel| {
            histogram_bench(scaled_profile(), setting, 100_000, 1024, kernel, 5).cycles
        };
        let native = run(Setting::PlainCpu, HistKernel::Naive);
        let enclave_naive = run(Setting::SgxDataInEnclave, HistKernel::Naive);
        let enclave_unrolled = run(Setting::SgxDataInEnclave, HistKernel::Unrolled8);
        let enclave_simd = run(Setting::SgxDataInEnclave, HistKernel::Simd32);
        assert!(enclave_naive > 2.0 * native, "naive should collapse in enclave");
        assert!(enclave_unrolled < 0.6 * enclave_naive, "unrolling should recover");
        assert!(enclave_simd <= enclave_unrolled * 1.05, "SIMD at least as good");
    }

    #[test]
    fn unrolling_is_noise_natively() {
        let naive =
            histogram_bench(scaled_profile(), Setting::PlainCpu, 100_000, 1024, HistKernel::Naive, 5);
        let unrolled = histogram_bench(
            scaled_profile(),
            Setting::PlainCpu,
            100_000,
            1024,
            HistKernel::Unrolled8,
            5,
        );
        let rel = unrolled.cycles / naive.cycles;
        assert!((0.9..1.1).contains(&rel), "native unroll effect should be small, got {rel:.2}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_bins() {
        histogram_bench(scaled_profile(), Setting::PlainCpu, 10, 3, HistKernel::Naive, 1);
    }
}
