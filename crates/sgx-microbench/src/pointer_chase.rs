//! Pointer-chasing micro-benchmark (pmbw's `PermutationWalk64`), used by
//! the paper to measure worst-case random *read* latency (§4.1, Fig 5).
//!
//! An array of pointers forms one random cycle, so every load depends on
//! the previous one — out-of-order execution cannot overlap the misses.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sgx_sim::{HwConfig, Machine, Setting, SimVec};

/// Result of one pointer-chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseResult {
    /// Total simulated cycles.
    pub cycles: f64,
    /// Chase steps executed.
    pub steps: u64,
}

impl ChaseResult {
    /// Average latency per dependent load.
    pub fn cycles_per_step(&self) -> f64 {
        self.cycles / self.steps as f64
    }
}

/// Fill `v` with a single random cycle over all its slots (Sattolo's
/// algorithm), so a chase visits every element exactly once per lap.
pub fn build_cycle(v: &mut SimVec<u64>, seed: u64) {
    let n = v.len();
    let mut perm: Vec<u64> = (0..n as u64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Sattolo: single-cycle permutation.
    for i in (1..n).rev() {
        let j = rng.random_range(0..i);
        perm.swap(i, j);
    }
    for i in 0..n {
        v.poke(i, perm[i]);
    }
}

/// Run a pointer chase of `steps` dependent loads over an array of
/// `array_bytes` in the given setting.
pub fn pointer_chase(
    cfg: HwConfig,
    setting: Setting,
    array_bytes: usize,
    steps: u64,
    seed: u64,
) -> ChaseResult {
    let n = (array_bytes / 8).max(2);
    let mut machine = Machine::new(cfg, setting);
    let mut v = machine.alloc::<u64>(n);
    build_cycle(&mut v, seed);
    // Warm-up lap (untimed), as pmbw's repeated runs do: the measurement
    // should reflect the steady state, not first-touch fills. For arrays
    // far beyond cache capacity a bounded prefix suffices (every timed
    // access misses regardless).
    let warmup = n.min(2_000_000);
    let start = machine.run(|c| {
        c.dependent(|c| {
            let mut idx = 0usize;
            for _ in 0..warmup {
                idx = v.get(c, idx) as usize;
            }
            idx
        })
    });
    machine.reset_wall();
    machine.run(|c| {
        c.dependent(|c| {
            let mut idx = start;
            for _ in 0..steps {
                idx = v.get(c, idx) as usize;
            }
            // The chain result must be used, like pmbw's assembly does.
            c.compute(1);
            assert!(idx < v.len());
        });
    });
    ChaseResult { cycles: machine.wall_cycles(), steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;

    #[test]
    fn cycle_is_a_single_cycle() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut v = m.alloc::<u64>(1024);
        build_cycle(&mut v, 42);
        let mut seen = vec![false; 1024];
        let mut idx = 0usize;
        for _ in 0..1024 {
            assert!(!seen[idx], "cycle revisited {idx} early");
            seen[idx] = true;
            idx = v.peek(idx) as usize;
        }
        assert_eq!(idx, 0, "walk must return to the start");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn in_cache_chase_has_no_sgx_penalty() {
        // 16 KB fits every cache level of the scaled profile's L2.
        let native = pointer_chase(scaled_profile(), Setting::PlainCpu, 16 << 10, 50_000, 1);
        let sgx = pointer_chase(scaled_profile(), Setting::SgxDataInEnclave, 16 << 10, 50_000, 1);
        let rel = native.cycles / sgx.cycles;
        assert!(rel > 0.9, "in-cache chase should be near parity, got {rel:.2}");
    }

    #[test]
    fn dram_chase_is_much_slower_in_enclave() {
        // 8 MB >> scaled L3 (1.5 MB).
        let native = pointer_chase(scaled_profile(), Setting::PlainCpu, 8 << 20, 50_000, 1);
        let sgx = pointer_chase(scaled_profile(), Setting::SgxDataInEnclave, 8 << 20, 50_000, 1);
        let rel = sgx.cycles / native.cycles;
        assert!(rel > 1.4, "MEE fill latency should show, got {rel:.2}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = pointer_chase(scaled_profile(), Setting::SgxDataInEnclave, 1 << 20, 10_000, 7);
        let b = pointer_chase(scaled_profile(), Setting::SgxDataInEnclave, 1 << 20, 10_000, 7);
        assert_eq!(a.cycles, b.cycles);
    }
}
