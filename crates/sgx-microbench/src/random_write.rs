//! Independent random-write micro-benchmark (§4.1, Fig 5).
//!
//! The paper: "we designed a benchmark that writes 8 byte integers to
//! random positions inside an array. The positions are determined using a
//! linear congruential generator." The writes are independent of one
//! another, so the store buffer and miss-handling overlap them — unlike
//! the pointer chase — which is why the enclave penalty tops out near 3×
//! instead of scaling with the full MEE latency.

use sgx_sim::{HwConfig, Machine, Setting};

/// Result of one random-write run.
#[derive(Debug, Clone, Copy)]
pub struct WriteResult {
    /// Total simulated cycles.
    pub cycles: f64,
    /// Writes performed.
    pub writes: u64,
}

impl WriteResult {
    /// Average cycles per 8-byte write.
    pub fn cycles_per_write(&self) -> f64 {
        self.cycles / self.writes as f64
    }
}

/// LCG used to generate write positions (same multiplier family as the
/// paper's C implementation).
#[inline]
pub fn lcg_next(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Issue `writes` independent 8-byte stores to random slots of an array of
/// `array_bytes`.
pub fn random_write(
    cfg: HwConfig,
    setting: Setting,
    array_bytes: usize,
    writes: u64,
    seed: u64,
) -> WriteResult {
    let n = (array_bytes / 8).max(1);
    let mut machine = Machine::new(cfg, setting);
    let mut v = machine.alloc::<u64>(n);
    // Untimed warm-up pass (pmbw measures repeated runs): first-touch
    // fills should not dominate the steady-state measurement. A bounded
    // prefix suffices for arrays far beyond cache capacity.
    let warmup = n.min(2_000_000);
    machine.run(|c| {
        let mut x = seed | 3;
        for w in 0..warmup as u64 {
            x = lcg_next(x);
            v.set(c, (x >> 16) as usize % n, w);
        }
    });
    machine.reset_wall();
    machine.run(|c| {
        let mut x = seed | 1;
        for w in 0..writes {
            x = lcg_next(x);
            // Address computation: multiply-shift plus the loop counter.
            c.compute(3);
            v.set(c, (x >> 16) as usize % n, w);
        }
    });
    WriteResult { cycles: machine.wall_cycles(), writes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;

    #[test]
    fn in_cache_writes_at_parity() {
        let native = random_write(scaled_profile(), Setting::PlainCpu, 16 << 10, 100_000, 3);
        let sgx = random_write(scaled_profile(), Setting::SgxDataInEnclave, 16 << 10, 100_000, 3);
        let rel = sgx.cycles / native.cycles;
        assert!(rel < 1.15, "in-cache writes should be near parity, got {rel:.2}");
    }

    #[test]
    fn dram_writes_much_slower_in_enclave() {
        let native = random_write(scaled_profile(), Setting::PlainCpu, 16 << 20, 100_000, 3);
        let sgx = random_write(scaled_profile(), Setting::SgxDataInEnclave, 16 << 20, 100_000, 3);
        let rel = sgx.cycles / native.cycles;
        assert!(rel > 1.8, "random EPC writes should be ≥2x, got {rel:.2}");
    }

    #[test]
    fn writes_cheaper_than_dependent_reads_per_op() {
        // Independent stores overlap; dependent loads cannot.
        let w = random_write(scaled_profile(), Setting::PlainCpu, 16 << 20, 50_000, 3);
        let r = crate::pointer_chase::pointer_chase(
            scaled_profile(),
            Setting::PlainCpu,
            16 << 20,
            50_000,
            3,
        );
        assert!(w.cycles_per_write() < r.cycles_per_step());
    }
}
