//! Per-class plan costs the scheduler prices work with.
//!
//! The DES never invents service times: a [`CostTable`] is calibrated by
//! running the real stepped plans ([`sgx_tpch::ServiceJob`]) on a real
//! [`sgx_sim::Machine`] under the stress point being studied, so every
//! cycle here was charged through the simulator's commit choke point.
//! [`CostTable::synthetic`] exists for standalone tools and tests that
//! need plausible, fixed numbers without running a calibration.

use sgx_tpch::Query;
use std::collections::BTreeMap;

/// Which plan shape a query executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanVariant {
    /// The paper's baseline plan.
    Normal,
    /// The §4.2-optimized plan shape — result-identical, cheaper in the
    /// enclave; what the degradation policy downgrades to.
    Degraded,
}

/// Calibrated per-step service costs for one query class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCost {
    /// Cycles per operator step, normal variant (plan order).
    pub normal_steps: Vec<u64>,
    /// Cycles per operator step, degraded variant.
    pub degraded_steps: Vec<u64>,
    /// Admission-control estimate of total work (normal variant), in
    /// cycles. May be coarser than `normal_steps.sum()` when it comes
    /// from [`sgx_tpch::cost_estimate`] scaling rather than measurement.
    pub estimate: u64,
}

impl PlanCost {
    /// The step schedule for `variant`.
    pub fn steps(&self, variant: PlanVariant) -> &[u64] {
        match variant {
            PlanVariant::Normal => &self.normal_steps,
            PlanVariant::Degraded => &self.degraded_steps,
        }
    }

    /// Total fault-free service cycles for `variant`.
    pub fn total(&self, variant: PlanVariant) -> u64 {
        self.steps(variant).iter().sum()
    }
}

/// Per-class cost table (BTreeMap so iteration order is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostTable {
    classes: BTreeMap<Query, PlanCost>,
}

impl CostTable {
    /// An empty table.
    pub fn new() -> CostTable {
        CostTable::default()
    }

    /// Insert (or replace) one class entry.
    pub fn insert(&mut self, q: Query, cost: PlanCost) {
        self.classes.insert(q, cost);
    }

    /// Look up one class.
    pub fn get(&self, q: Query) -> Option<&PlanCost> {
        self.classes.get(&q)
    }

    /// Classes present, in deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = Query> + '_ {
        self.classes.keys().copied()
    }

    /// Mean fault-free total cost across classes for `variant` (load
    /// planning: pick arrival rates relative to capacity).
    pub fn mean_total(&self, variant: PlanVariant) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.classes.values().map(|c| c.total(variant)).sum();
        sum as f64 / self.classes.len() as f64
    }

    /// A fixed, plausible table for standalone tools: step counts match
    /// the real plans ([`sgx_tpch::ServiceJob::steps_total`]), costs are
    /// arbitrary-but-stable cycles scaled by `scale`, and the degraded
    /// variant is uniformly ~25% cheaper.
    pub fn synthetic(scale: u64) -> CostTable {
        let scale = scale.max(1);
        let mut t = CostTable::new();
        let base: [(Query, &[u64]); 4] = [
            (Query::Q3, &[40, 110, 220, 60, 170, 260, 140, 80, 30]),
            (Query::Q10, &[45, 90, 210, 55, 150, 280, 65, 20, 120, 95, 25]),
            (Query::Q12, &[80, 190, 240]),
            (Query::Q19, &[70, 160, 230, 90]),
        ];
        for (q, steps) in base {
            assert_eq!(steps.len(), sgx_tpch::ServiceJob::steps_total(q));
            let normal: Vec<u64> = steps.iter().map(|s| s * scale * 1_000).collect();
            let degraded: Vec<u64> = normal.iter().map(|s| s * 3 / 4).collect();
            let estimate = normal.iter().sum();
            t.insert(q, PlanCost { normal_steps: normal, degraded_steps: degraded, estimate });
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_table_covers_all_classes_with_real_step_counts() {
        let t = CostTable::synthetic(2);
        let classes: Vec<Query> = t.classes().collect();
        assert_eq!(classes.len(), 4);
        for q in Query::all() {
            let c = t.get(q).expect("class present");
            assert_eq!(c.normal_steps.len(), sgx_tpch::ServiceJob::steps_total(q));
            assert_eq!(c.degraded_steps.len(), c.normal_steps.len());
            assert!(c.total(PlanVariant::Degraded) < c.total(PlanVariant::Normal));
            assert!(c.estimate > 0);
        }
        assert!(t.mean_total(PlanVariant::Normal) > t.mean_total(PlanVariant::Degraded));
    }
}
