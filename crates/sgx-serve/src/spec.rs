//! Service workload and policy specifications.

use sgx_sim::OcallFaults;
use sgx_tpch::Query;

/// How a session generates load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Open loop: queries arrive at a fixed mean rate regardless of
    /// completions (the overload-honest model). Gaps jitter
    /// deterministically in `[0.5, 1.5)` of the mean, like the fault
    /// engine's AEX gaps.
    Open {
        /// Mean cycles between submissions per session.
        mean_gap_cycles: u64,
    },
    /// Closed loop: each session thinks, submits one query, waits for
    /// the response (or rejection), thinks again.
    Closed {
        /// Mean think time in cycles (same `[0.5, 1.5)` jitter).
        think_cycles: u64,
    },
}

/// One tenant: a set of sessions sharing an arrival model, query-class
/// mix, and latency SLO.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (stable across runs; used in reports).
    pub name: String,
    /// Number of concurrent simulated client sessions.
    pub sessions: usize,
    /// Arrival model shared by the tenant's sessions.
    pub arrival: Arrival,
    /// Weighted query-class mix, e.g. `[(Q3, 3), (Q12, 1)]`.
    pub mix: Vec<(Query, u32)>,
    /// Per-query deadline: a query not completed within this many cycles
    /// of submission is abandoned (and counted `timed_out`).
    pub deadline_cycles: u64,
}

/// Admission-control policy for the per-socket queues.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Master switch — `false` models a naive service that queues
    /// everything (the negative-check configuration).
    pub enabled: bool,
    /// Bounded queue depth per socket; arrivals beyond it are shed.
    pub queue_cap: usize,
}

/// Graceful-degradation policy: when to downgrade new queries to the
/// cheaper (§4.2-optimized, result-identical) plan variant.
#[derive(Debug, Clone, Copy)]
pub struct DegradePolicy {
    /// Master switch.
    pub enabled: bool,
    /// Downgrade while the configured EPC-pressure level is at or above
    /// this threshold (0..=1).
    pub epc_threshold: f64,
    /// Also downgrade while the target socket's queue is at or above
    /// this depth (load-reactive degradation).
    pub queue_watermark: usize,
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Seed for every arrival, mix, and fault stream.
    pub seed: u64,
    /// Simulated sockets (each gets its own worker pool and queue).
    pub sockets: usize,
    /// Workers per socket (bounded pool).
    pub workers_per_socket: usize,
    /// Stop generating arrivals after this simulated time; in-flight and
    /// queued work is drained to completion.
    pub horizon_cycles: u64,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Degradation policy.
    pub degrade: DegradePolicy,
    /// Transient step-kill faults ([`OcallFaults`] semantics: per-attempt
    /// failure probability, bounded retries, capped exponential backoff).
    /// `None` disables fault injection.
    pub faults: Option<OcallFaults>,
    /// Ambient EPC-pressure level (0..=1) the degradation policy reacts
    /// to. The level itself does not change service times — the
    /// [`crate::CostTable`] calibrated at this stress point carries that.
    pub epc_pressure_level: f64,
}

impl ServiceConfig {
    /// A small sane default: one socket, 4 workers, admission on with a
    /// 16-deep queue, degradation armed at 0.7 EPC pressure, no faults.
    pub fn new(seed: u64) -> ServiceConfig {
        ServiceConfig {
            seed,
            sockets: 1,
            workers_per_socket: 4,
            horizon_cycles: 50_000_000,
            admission: AdmissionPolicy { enabled: true, queue_cap: 16 },
            degrade: DegradePolicy { enabled: true, epc_threshold: 0.7, queue_watermark: 12 },
            faults: None,
            epc_pressure_level: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServiceConfig::new(1);
        assert!(c.sockets >= 1 && c.workers_per_socket >= 1);
        assert!(c.admission.enabled && c.admission.queue_cap > 0);
        assert!(c.degrade.enabled);
        assert!(c.faults.is_none());
    }
}
