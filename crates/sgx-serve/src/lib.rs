//! # sgx-serve — a fault-tolerant multi-tenant enclave query service
//!
//! The paper benchmarks batch kernels; the related work's endgame
//! (DuckDB-SGX2, Polars-inside-SGX2) is a *long-running* engine inside an
//! enclave serving concurrent clients — where AEX storms and EPC pressure
//! surface as tail latency, not just throughput loss. This crate models
//! that serving system as a deterministic discrete-event simulation:
//!
//! * thousands of simulated client **sessions** per tenant, with seeded
//!   open-loop (fixed-rate) and closed-loop (think-time) arrival models
//!   and per-tenant query-class mixes over the §6 TPC-H plans;
//! * a **bounded worker pool per simulated socket** fed by bounded FIFO
//!   queues;
//! * **admission control** with deterministic load shedding — queue-full
//!   and deadline-infeasible rejections, counted per tenant;
//! * **per-query deadlines** enforced at submission, dispatch, and every
//!   operator boundary of the resumable [`sgx_tpch::ServiceJob`] plans;
//! * **retry with bounded exponential backoff** for steps killed by
//!   injected transient faults, reusing [`sgx_sim::OcallFaults`]
//!   semantics (same failure stream, same capped doubling schedule);
//! * **graceful degradation** — under sustained EPC pressure or deep
//!   queues, new queries are downgraded to the cheaper §4.2-optimized
//!   plan variant (result-identical, proven in `sgx-tpch`).
//!
//! Service times come from a [`CostTable`] calibrated by actually running
//! the stepped plans on a [`sgx_sim::Machine`] under a fault profile (see
//! the `ext_service_tail` experiment in `sgx-bench-core`), so every cycle
//! the service accounts for was charged through the simulator's
//! `Core::commit(Charge)` choke point. The simulation itself is pure
//! integer arithmetic over a totally ordered event queue: byte-identical
//! across runs, hosts, and `--jobs` values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod counters;
pub mod des;
pub mod spec;

pub use costs::{CostTable, PlanCost, PlanVariant};
pub use counters::ServiceCounters;
pub use des::{run_service, ServiceOutcome};
pub use spec::{AdmissionPolicy, Arrival, DegradePolicy, ServiceConfig, TenantSpec};
