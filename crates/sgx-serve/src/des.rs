//! The deterministic discrete-event service simulation.
//!
//! Pure integer arithmetic over a totally ordered event queue: every
//! event carries a unique `(time, seq)` key, every random decision is a
//! [`sgx_sim::stream_unit`] draw indexed by a deterministic cursor, and
//! the engine is single-threaded — so two runs with the same
//! [`ServiceConfig`], tenants, and [`CostTable`] produce byte-identical
//! outcomes on any host at any outer `--jobs` level.
//!
//! ## Semantics
//!
//! * **Arrivals.** Each session draws inter-arrival (open loop) or think
//!   (closed loop) gaps jittered in `[0.5, 1.5)` of the mean. Arrivals
//!   stop at the horizon; everything in flight is drained.
//! * **Admission.** A query is shed when its socket's bounded queue is
//!   full, or when the backlog estimate plus its own cost estimate
//!   cannot meet the deadline (`now + backlog/workers + est > deadline`).
//! * **Dispatch.** Sockets run bounded worker pools; an idle worker
//!   implies an empty queue. Queued queries whose deadline expires
//!   before dispatch are abandoned (`timed_out`) without service.
//! * **Execution.** A dispatched query runs its plan steps back to back.
//!   Each step suffers `r` transient kills drawn with
//!   [`sgx_sim::OcallFaults::draw_retries`] (bounded, forced through at
//!   the cap) and pays `(r+1)·step + Σ backoff_wait(k)` cycles — a
//!   killed step loses its work and sleeps the capped exponential
//!   backoff before retrying. Deadlines are enforced at every step
//!   boundary: the first boundary past the deadline abandons the query
//!   (the worker stays occupied until that boundary — work already
//!   sunk).
//! * **Degradation.** When the policy is armed and either the ambient
//!   EPC-pressure level or the socket queue depth crosses its threshold,
//!   new queries run the degraded (cheaper, result-identical) variant.

// sgx-lint: des-module
use crate::costs::{CostTable, PlanVariant};
use crate::counters::ServiceCounters;
use crate::spec::{Arrival, ServiceConfig, TenantSpec};
use sgx_sim::stream_unit;
use sgx_tpch::Query;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Stream tags for the service-level random sequences (disjoint from the
/// fault engine's machine-level tags by construction — different odd
/// constants, different seeds in practice).
const STREAM_ARRIVAL: u64 = 0x5E7E_AD11_C0FF_EE01;
const STREAM_MIX: u64 = 0x5E7E_AD11_0DD5_EED3;
const STREAM_FAULT: u64 = 0x5E7E_AD11_FA17_0005;

/// Result of a drained service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Global counters (sum of `per_tenant`).
    pub total: ServiceCounters,
    /// Per-tenant counters, in tenant order.
    pub per_tenant: Vec<ServiceCounters>,
    /// Completed-in-deadline latencies (cycles) per query class, in
    /// completion order.
    pub latencies: BTreeMap<Query, Vec<u64>>,
    /// Discrete events processed (the DES throughput denominator).
    pub events_processed: u64,
    /// Configured arrival horizon.
    pub horizon_cycles: u64,
    /// Simulated time at which the last event fired (drain end).
    pub end_cycles: u64,
}

impl ServiceOutcome {
    /// Check every conservation law: per-tenant sums equal the global
    /// counters, each tenant's counters balance, and the latency
    /// histograms hold exactly the completed queries.
    pub fn reconcile(&self) -> Result<(), String> {
        let mut sum = ServiceCounters::default();
        for t in &self.per_tenant {
            t.reconcile()?;
            sum.add(t);
        }
        if sum != self.total {
            return Err(format!("tenant sum {sum:?} != total {:?}", self.total));
        }
        self.total.reconcile()?;
        let recorded: u64 = self.latencies.values().map(|v| v.len() as u64).sum();
        if recorded != self.total.completed {
            return Err(format!(
                "latency samples {recorded} != completed {}",
                self.total.completed
            ));
        }
        Ok(())
    }
}

/// One query in flight.
#[derive(Debug, Clone)]
struct Job {
    tenant: usize,
    session: usize,
    class: Query,
    variant: PlanVariant,
    submit_at: u64,
    deadline_at: u64,
    estimate: u64,
}

/// How a dispatched job ended.
#[derive(Debug, Clone, Copy)]
enum Outcome {
    Completed,
    TimedOut,
}

/// A finished execution waiting for its `JobDone` event.
#[derive(Debug, Clone)]
struct Running {
    job: Job,
    outcome: Outcome,
    retries: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    Arrive { tenant: usize, session: usize },
    JobDone { socket: usize, worker: usize },
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

/// Per-socket scheduler state.
struct Socket {
    queue: VecDeque<Job>,
    /// Sum of `estimate` over queued jobs (admission backlog pricing).
    backlog: u64,
    /// `running[w]` holds worker `w`'s in-flight execution.
    running: Vec<Option<Running>>,
}

impl Socket {
    fn idle_worker(&self) -> Option<usize> {
        self.running.iter().position(|r| r.is_none())
    }
}

struct Engine<'a> {
    cfg: &'a ServiceConfig,
    tenants: &'a [TenantSpec],
    costs: &'a CostTable,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    sockets: Vec<Socket>,
    per_tenant: Vec<ServiceCounters>,
    latencies: BTreeMap<Query, Vec<u64>>,
    /// Per-session draw cursors: [arrival, mix].
    session_k: Vec<[u64; 2]>,
    /// Global fault-stream cursor (advances `retries + 1` per step).
    fault_k: u64,
    /// First global session id of each tenant (socket assignment).
    session_base: Vec<usize>,
    events: u64,
    end: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a ServiceConfig, tenants: &'a [TenantSpec], costs: &'a CostTable) -> Engine<'a> {
        let mut session_base = Vec::with_capacity(tenants.len());
        let mut n_sessions = 0usize;
        for t in tenants {
            session_base.push(n_sessions);
            n_sessions += t.sessions;
        }
        Engine {
            cfg,
            tenants,
            costs,
            heap: BinaryHeap::new(),
            seq: 0,
            sockets: (0..cfg.sockets.max(1))
                .map(|_| Socket {
                    queue: VecDeque::new(),
                    backlog: 0,
                    running: vec![None; cfg.workers_per_socket.max(1)],
                })
                .collect(),
            per_tenant: vec![ServiceCounters::default(); tenants.len()],
            latencies: BTreeMap::new(),
            session_k: vec![[0, 0]; n_sessions],
            fault_k: 0,
            session_base,
            events: 0,
            end: 0,
        }
    }

    /// Global session id (stable across runs; salts the draw streams).
    fn sid(&self, tenant: usize, session: usize) -> usize {
        self.session_base[tenant] + session
    }

    /// One uniform draw from `stream`, salted per session, at this
    /// session's cursor for that stream (cursor 0 = arrival, 1 = mix).
    fn draw(&mut self, stream: u64, cursor: usize, tenant: usize, session: usize) -> f64 {
        let sid = self.sid(tenant, session) as u64;
        let k = self.session_k[sid as usize][cursor];
        self.session_k[sid as usize][cursor] += 1;
        stream_unit(self.cfg.seed, stream ^ sid.wrapping_mul(0xD134_2543_DE82_EF95), k)
    }

    /// Jittered gap around `mean` in `[0.5, 1.5) * mean`, at least 1.
    fn gap(&mut self, mean: u64, tenant: usize, session: usize) -> u64 {
        let u = self.draw(STREAM_ARRIVAL, 0, tenant, session);
        ((mean as f64 * (0.5 + u)) as u64).max(1)
    }

    fn push(&mut self, at: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Schedule the session's next submission, if it lands within the
    /// horizon.
    fn schedule_arrival(&mut self, now: u64, tenant: usize, session: usize) {
        let mean = match self.tenants[tenant].arrival {
            Arrival::Open { mean_gap_cycles } => mean_gap_cycles,
            Arrival::Closed { think_cycles } => think_cycles,
        };
        let at = now + self.gap(mean, tenant, session);
        if at <= self.cfg.horizon_cycles {
            self.push(at, EvKind::Arrive { tenant, session });
        }
    }

    /// Weighted query-class pick from the tenant's mix.
    fn pick_class(&mut self, tenant: usize, session: usize) -> Query {
        let total: u32 = self.tenants[tenant].mix.iter().map(|(_, w)| *w).sum();
        let u = self.draw(STREAM_MIX, 1, tenant, session);
        let mut x = (u * total.max(1) as f64) as u32;
        for &(q, w) in &self.tenants[tenant].mix {
            if x < w {
                return q;
            }
            x -= w;
        }
        // Empty or all-zero mix: default to the lightest class.
        self.tenants[tenant].mix.first().map(|&(q, _)| q).unwrap_or(Query::Q12)
    }

    /// Compute a dispatched job's full execution trajectory: per-step
    /// bounded-retry draws, backoff waits, and the step-boundary deadline
    /// check. Returns the finish record and its completion time.
    fn execute(&mut self, job: Job, now: u64) -> (Running, u64) {
        let steps: Vec<u64> = self
            .costs
            .get(job.class)
            .map(|c| c.steps(job.variant).to_vec())
            .unwrap_or_default();
        let mut t = now;
        let mut retries = 0u64;
        let mut outcome = Outcome::Completed;
        for &step in &steps {
            let r = match self.cfg.faults {
                Some(of) => {
                    let r = of.draw_retries(self.cfg.seed, STREAM_FAULT, self.fault_k);
                    self.fault_k += r as u64 + 1;
                    r
                }
                None => 0,
            };
            retries += r as u64;
            let mut cost = (r as u64 + 1).saturating_mul(step);
            if let Some(of) = self.cfg.faults {
                for attempt in 1..=r {
                    cost += of.backoff_wait(attempt) as u64;
                }
            }
            t = t.saturating_add(cost);
            if t > job.deadline_at {
                outcome = Outcome::TimedOut;
                break;
            }
        }
        (Running { job, outcome, retries }, t)
    }

    /// Dispatch `job` on `socket`'s worker `w` starting now.
    fn dispatch(&mut self, socket: usize, w: usize, job: Job, now: u64) {
        let (running, done_at) = self.execute(job, now);
        self.sockets[socket].running[w] = Some(running);
        self.push(done_at, EvKind::JobDone { socket, worker: w });
    }

    fn on_arrive(&mut self, now: u64, tenant: usize, session: usize) {
        // Closed-loop sessions re-arm on response; open-loop immediately.
        if matches!(self.tenants[tenant].arrival, Arrival::Open { .. }) {
            self.schedule_arrival(now, tenant, session);
        }
        let class = self.pick_class(tenant, session);
        self.per_tenant[tenant].submitted += 1;

        let spec = &self.tenants[tenant];
        let deadline_at = now + spec.deadline_cycles;
        let socket_ix = self.sid(tenant, session) % self.sockets.len();

        // Degradation decision (policy looks at ambient EPC pressure and
        // the target queue's depth at submission time).
        let d = &self.cfg.degrade;
        let degraded = d.enabled
            && (self.cfg.epc_pressure_level >= d.epc_threshold
                || self.sockets[socket_ix].queue.len() >= d.queue_watermark);
        let variant = if degraded { PlanVariant::Degraded } else { PlanVariant::Normal };
        // Admission prices the plan variant that will actually run: a
        // degraded query is cheaper, so degradation can rescue work that
        // would be deadline-infeasible on the normal plan
        // ("degrade-to-admit").
        let estimate = self
            .costs
            .get(class)
            .map(|c| match variant {
                PlanVariant::Normal => c.estimate,
                PlanVariant::Degraded => {
                    let n = c.total(PlanVariant::Normal).max(1);
                    ((c.estimate as u128 * c.total(PlanVariant::Degraded) as u128 / n as u128)
                        as u64)
                        .max(1)
                }
            })
            .unwrap_or(0);
        let job = Job {
            tenant,
            session,
            class,
            variant,
            submit_at: now,
            deadline_at,
            estimate,
        };

        // Admission control.
        if self.cfg.admission.enabled {
            let s = &self.sockets[socket_ix];
            let queue_full = s.queue.len() >= self.cfg.admission.queue_cap;
            let workers = s.running.len() as u64;
            let wait_est = s.backlog / workers.max(1);
            let infeasible = s.idle_worker().is_none()
                && now + wait_est + job.estimate > job.deadline_at;
            if queue_full || infeasible {
                self.per_tenant[tenant].rejected += 1;
                if matches!(spec.arrival, Arrival::Closed { .. }) {
                    self.schedule_arrival(now, tenant, session);
                }
                return;
            }
        }
        self.per_tenant[tenant].admitted += 1;
        if degraded {
            self.per_tenant[tenant].degraded += 1;
        }

        match self.sockets[socket_ix].idle_worker() {
            Some(w) => self.dispatch(socket_ix, w, job, now),
            None => {
                self.sockets[socket_ix].backlog += job.estimate;
                self.sockets[socket_ix].queue.push_back(job);
            }
        }
    }

    fn on_job_done(&mut self, now: u64, socket_ix: usize, w: usize) {
        let Some(run) = self.sockets[socket_ix].running[w].take() else {
            return;
        };
        let tenant = run.job.tenant;
        // sgx-lint: allow(des-invariant) retry attempts are informational (surfaced in the tail-latency report), not conserved: retried work is counted once at completion
        self.per_tenant[tenant].retries += run.retries;
        match run.outcome {
            Outcome::Completed => {
                self.per_tenant[tenant].completed += 1;
                self.latencies
                    .entry(run.job.class)
                    .or_default()
                    .push(now - run.job.submit_at);
            }
            Outcome::TimedOut => self.per_tenant[tenant].timed_out += 1,
        }
        if matches!(self.tenants[tenant].arrival, Arrival::Closed { .. }) {
            self.schedule_arrival(now, tenant, run.job.session);
        }

        // Refill the freed worker: skip queued jobs whose deadline has
        // already passed (abandoned without service).
        while let Some(job) = self.sockets[socket_ix].queue.pop_front() {
            self.sockets[socket_ix].backlog =
                self.sockets[socket_ix].backlog.saturating_sub(job.estimate);
            if now >= job.deadline_at {
                self.per_tenant[job.tenant].timed_out += 1;
                if matches!(self.tenants[job.tenant].arrival, Arrival::Closed { .. }) {
                    self.schedule_arrival(now, job.tenant, job.session);
                }
                continue;
            }
            self.dispatch(socket_ix, w, job, now);
            break;
        }
    }

    fn run(mut self) -> ServiceOutcome {
        // Seed every session's first arrival.
        for tenant in 0..self.tenants.len() {
            for session in 0..self.tenants[tenant].sessions {
                self.schedule_arrival(0, tenant, session);
            }
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.events += 1;
            self.end = ev.at;
            match ev.kind {
                EvKind::Arrive { tenant, session } => self.on_arrive(ev.at, tenant, session),
                EvKind::JobDone { socket, worker } => self.on_job_done(ev.at, socket, worker),
            }
        }
        let mut total = ServiceCounters::default();
        for t in &self.per_tenant {
            total.add(t);
        }
        ServiceOutcome {
            total,
            per_tenant: self.per_tenant,
            latencies: self.latencies,
            events_processed: self.events,
            horizon_cycles: self.cfg.horizon_cycles,
            end_cycles: self.end,
        }
    }
}

/// Run the service simulation to drain and return its outcome.
pub fn run_service(
    cfg: &ServiceConfig,
    tenants: &[TenantSpec],
    costs: &CostTable,
) -> ServiceOutcome {
    Engine::new(cfg, tenants, costs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdmissionPolicy, DegradePolicy};
    use sgx_sim::OcallFaults;

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "olap".into(),
                sessions: 40,
                arrival: Arrival::Open { mean_gap_cycles: 40_000_000 },
                mix: vec![(Query::Q3, 2), (Query::Q10, 1), (Query::Q19, 1)],
                deadline_cycles: 40_000_000,
            },
            TenantSpec {
                name: "dash".into(),
                sessions: 60,
                arrival: Arrival::Closed { think_cycles: 20_000_000 },
                mix: vec![(Query::Q12, 3), (Query::Q19, 1)],
                deadline_cycles: 20_000_000,
            },
        ]
    }

    fn base_cfg(seed: u64) -> ServiceConfig {
        let mut c = ServiceConfig::new(seed);
        c.sockets = 2;
        c.workers_per_socket = 4;
        c.horizon_cycles = 400_000_000;
        c
    }

    #[test]
    fn identical_configs_replay_identical_outcomes() {
        let costs = CostTable::synthetic(1);
        let a = run_service(&base_cfg(7), &tenants(), &costs);
        let b = run_service(&base_cfg(7), &tenants(), &costs);
        assert_eq!(a, b, "the DES must be a pure function of its inputs");
        assert!(a.total.completed > 0, "calm run must complete queries");
        assert_eq!(format!("{:?}", a.latencies), format!("{:?}", b.latencies));
        let c = run_service(&base_cfg(8), &tenants(), &costs);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn counters_reconcile_after_drain() {
        let costs = CostTable::synthetic(2);
        let mut cfg = base_cfg(11);
        cfg.faults = Some(OcallFaults { failure_prob: 0.3, max_retries: 4, backoff_cycles: 50_000.0 });
        let out = run_service(&cfg, &tenants(), &costs);
        out.reconcile().expect("conservation laws must hold");
        assert_eq!(out.per_tenant.len(), 2);
        assert!(out.total.retries > 0, "p=0.3 faults must force retries");
        assert!(out.events_processed > out.total.submitted, "done events add to arrivals");
        assert!(out.end_cycles >= out.horizon_cycles / 2);
    }

    #[test]
    fn overload_sheds_load_only_with_admission_control() {
        let costs = CostTable::synthetic(8);
        let mut storm = tenants();
        // Open-loop overload: arrivals far beyond capacity.
        storm[0].arrival = Arrival::Open { mean_gap_cycles: 2_000_000 };
        storm[0].sessions = 100;
        let mut cfg = base_cfg(3);
        cfg.horizon_cycles = 200_000_000;
        let shed = run_service(&cfg, &storm, &costs);
        shed.reconcile().expect("reconciles");
        assert!(shed.total.rejected > 0, "overload must trigger shedding");
        assert!(shed.total.completed > 0, "admitted work still completes");

        let mut naive = cfg.clone();
        naive.admission.enabled = false;
        let unshed = run_service(&naive, &storm, &costs);
        unshed.reconcile().expect("reconciles");
        assert_eq!(unshed.total.rejected, 0, "no admission control, no rejections");
        assert!(
            unshed.total.timed_out > shed.total.timed_out,
            "without shedding the backlog turns into timeouts ({} <= {})",
            unshed.total.timed_out,
            shed.total.timed_out
        );
    }

    #[test]
    fn tight_deadlines_time_out_and_latencies_respect_slo() {
        let costs = CostTable::synthetic(4);
        let mut ts = tenants();
        ts[0].deadline_cycles = 6_000_000; // below a single plan's cost
        let cfg = base_cfg(5);
        let out = run_service(&cfg, &ts, &costs);
        out.reconcile().expect("reconciles");
        assert!(out.per_tenant[0].timed_out > 0, "impossible SLO must time out");
        for (q, lats) in &out.latencies {
            for (i, &l) in lats.iter().enumerate() {
                // Every recorded latency belongs to some tenant's completed
                // query, so it is bounded by the loosest SLO in play.
                let max_deadline = ts.iter().map(|t| t.deadline_cycles).max().unwrap_or(0);
                assert!(l <= max_deadline, "{q:?}[{i}]: latency {l} exceeds every deadline");
            }
        }
    }

    #[test]
    fn epc_pressure_degrades_new_queries_and_helps_tails() {
        let costs = CostTable::synthetic(6);
        let mut cfg = base_cfg(9);
        cfg.epc_pressure_level = 0.9; // above the default 0.7 threshold
        let on = run_service(&cfg, &tenants(), &costs);
        on.reconcile().expect("reconciles");
        assert!(on.total.degraded > 0, "pressure above threshold must degrade");
        assert_eq!(on.total.degraded, on.total.admitted, "ambient trigger applies to all");

        let mut off_cfg = cfg.clone();
        off_cfg.degrade.enabled = false;
        let off = run_service(&off_cfg, &tenants(), &costs);
        assert_eq!(off.total.degraded, 0);
        // The degraded variant is cheaper, so the policy-on run completes
        // at least as many queries within deadline.
        assert!(on.total.completed >= off.total.completed);
    }

    #[test]
    fn faults_inflate_latency_through_bounded_backoff() {
        let costs = CostTable::synthetic(2);
        let calm_out = run_service(&base_cfg(13), &tenants(), &costs);
        let mut cfg = base_cfg(13);
        cfg.faults =
            Some(OcallFaults { failure_prob: 0.5, max_retries: 5, backoff_cycles: 100_000.0 });
        let stormy = run_service(&cfg, &tenants(), &costs);
        stormy.reconcile().expect("reconciles");
        assert!(stormy.total.retries > 0);
        let mean = |o: &ServiceOutcome| -> f64 {
            let (mut n, mut s) = (0u64, 0u64);
            for v in o.latencies.values() {
                n += v.len() as u64;
                s += v.iter().sum::<u64>();
            }
            if n == 0 { 0.0 } else { s as f64 / n as f64 }
        };
        assert!(
            mean(&stormy) > mean(&calm_out),
            "retries + backoff must push mean latency up"
        );
    }

    #[test]
    fn queue_watermark_triggers_load_reactive_degradation() {
        let costs = CostTable::synthetic(8);
        let mut storm = tenants();
        storm[0].arrival = Arrival::Open { mean_gap_cycles: 3_000_000 };
        storm[0].deadline_cycles = 400_000_000; // keep admission from shedding first
        storm[1].deadline_cycles = 400_000_000;
        let mut cfg = base_cfg(17);
        cfg.admission = AdmissionPolicy { enabled: true, queue_cap: 64 };
        cfg.degrade = DegradePolicy { enabled: true, epc_threshold: 2.0, queue_watermark: 8 };
        let out = run_service(&cfg, &storm, &costs);
        out.reconcile().expect("reconciles");
        assert!(out.total.degraded > 0, "deep queues must trigger degradation");
        assert!(out.total.degraded < out.total.admitted, "calm moments stay on the normal plan");
    }
}
