//! Service-level robustness counters with exact conservation laws.
//!
//! Named `ServiceCounters` (not `Counters`) on purpose: the simulator's
//! machine counters flow through `Core::commit(Charge)` and are checked
//! by the existing conservation tests; these count *scheduler decisions*
//! (queries, not cycles) and carry their own conservation laws, checked
//! by [`ServiceCounters::reconcile`].

/// Per-tenant (and, summed, global) service decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Queries submitted by sessions (before admission).
    pub submitted: u64,
    /// Queries accepted into a queue or dispatched directly.
    pub admitted: u64,
    /// Queries shed by admission control (queue full or deadline
    /// infeasible).
    pub rejected: u64,
    /// Queries that finished all plan steps within their deadline.
    pub completed: u64,
    /// Queries abandoned at a deadline — in the queue or mid-plan.
    pub timed_out: u64,
    /// Transient-fault step retries performed across all executed
    /// queries (bounded exponential backoff each).
    pub retries: u64,
    /// Queries dispatched with the degraded (cheaper) plan variant.
    pub degraded: u64,
}

impl ServiceCounters {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: &ServiceCounters) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.timed_out += other.timed_out;
        self.retries += other.retries;
        self.degraded += other.degraded;
    }

    /// Check this counter set's internal conservation laws (valid after
    /// a drained run): every submitted query was either admitted or
    /// rejected, and every admitted query either completed or timed out
    /// — nothing is lost, nothing is double-counted.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.submitted != self.admitted + self.rejected {
            return Err(format!(
                "submitted {} != admitted {} + rejected {}",
                self.submitted, self.admitted, self.rejected
            ));
        }
        if self.admitted != self.completed + self.timed_out {
            return Err(format!(
                "admitted {} != completed {} + timed_out {} (run not drained?)",
                self.admitted, self.completed, self.timed_out
            ));
        }
        if self.degraded > self.admitted {
            return Err(format!(
                "degraded {} > admitted {}",
                self.degraded, self.admitted
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_accepts_conserved_counts() {
        let c = ServiceCounters {
            submitted: 10,
            admitted: 7,
            rejected: 3,
            completed: 5,
            timed_out: 2,
            retries: 4,
            degraded: 1,
        };
        assert!(c.reconcile().is_ok());
    }

    #[test]
    fn reconcile_rejects_lost_queries() {
        let mut c = ServiceCounters { submitted: 10, admitted: 7, rejected: 3, ..Default::default() };
        c.completed = 5;
        c.timed_out = 1; // one query vanished
        let err = c.reconcile().map(|_| String::new()).map_err(|e| e);
        assert!(err.is_err());
        c.timed_out = 2;
        assert!(c.reconcile().is_ok());
        c.rejected = 2; // now submission side is off
        assert!(c.reconcile().is_err());
    }

    #[test]
    fn add_is_elementwise() {
        let mut a = ServiceCounters { submitted: 1, retries: 2, ..Default::default() };
        let b = ServiceCounters { submitted: 3, retries: 5, degraded: 1, ..Default::default() };
        a.add(&b);
        assert_eq!(a.submitted, 4);
        assert_eq!(a.retries, 7);
        assert_eq!(a.degraded, 1);
    }
}
