//! # sgx-index — cache-conscious B+-tree substrate
//!
//! The paper's INL join ("Index Nested Loop Join \[24\] uses an existing
//! B-Tree index to find matching tuples") needs an index structure. This
//! crate provides a static, bulk-loaded B+-tree whose nodes are exactly one
//! cache line (16 × u32 separators for inner nodes, 8 × 8-byte rows for
//! leaves), laid out level by level in [`SimVec`] storage so probes charge
//! the simulator realistically: upper levels become cache-resident, leaf
//! accesses are dependent DRAM loads — the access pattern that determines
//! INL's enclave behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sgx_sim::{Core, Machine, SimVec};

/// Keys per inner node: 16 × u32 = one 64-byte cache line.
pub const INNER_FANOUT: usize = 16;
/// Rows per leaf node: 8 × 8 bytes = one 64-byte cache line.
pub const LEAF_FANOUT: usize = 8;

/// An 8-byte `(key, payload)` row, the tuple format of all join inputs
/// (§4: "rows with a 32-bit key ... and a 32-bit value").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexRow {
    /// Join key.
    pub key: u32,
    /// Tuple payload (row id).
    pub payload: u32,
}

/// Static B+-tree: a sorted leaf array plus a hierarchy of separator
/// levels (CSS-tree layout). `levels\[0\]` is the root level; each inner
/// node stores the *first key* of each child node.
pub struct BPlusTree {
    /// Sorted rows, grouped into `LEAF_FANOUT`-row leaf nodes.
    leaves: SimVec<IndexRow>,
    /// Separator levels, root (smallest) first. Separator slots beyond the
    /// real child count are padded with `u32::MAX`.
    levels: Vec<SimVec<u32>>,
    n_rows: usize,
}

impl BPlusTree {
    /// Bulk-load a tree from rows that the caller guarantees are sorted by
    /// key (duplicates allowed). Storage is allocated in the machine's
    /// current default data region; the load itself is uncharged (the
    /// paper treats the INL index as pre-existing).
    pub fn bulk_load(machine: &mut Machine, sorted: &[IndexRow]) -> BPlusTree {
        assert!(
            sorted.windows(2).all(|w| w[0].key <= w[1].key),
            "bulk_load requires key-sorted input"
        );
        assert!(
            sorted.last().is_none_or(|r| r.key < u32::MAX),
            "u32::MAX is reserved as the node padding sentinel"
        );
        let n = sorted.len();
        let n_leaves = n.div_ceil(LEAF_FANOUT).max(1);
        let mut leaves = machine.alloc::<IndexRow>(n_leaves * LEAF_FANOUT);
        for (i, row) in sorted.iter().enumerate() {
            leaves.poke(i, *row);
        }
        // Pad the final leaf with MAX keys so scans terminate.
        for i in n..n_leaves * LEAF_FANOUT {
            leaves.poke(i, IndexRow { key: u32::MAX, payload: 0 });
        }

        // Build separator levels bottom-up until one node remains.
        let mut levels_rev: Vec<SimVec<u32>> = Vec::new();
        // First keys of each leaf node.
        let mut child_firsts: Vec<u32> =
            (0..n_leaves).map(|l| leaves.peek(l * LEAF_FANOUT).key).collect();
        while child_firsts.len() > 1 {
            let n_nodes = child_firsts.len().div_ceil(INNER_FANOUT);
            let mut level = machine.alloc::<u32>(n_nodes * INNER_FANOUT);
            for i in 0..n_nodes * INNER_FANOUT {
                level.poke(i, *child_firsts.get(i).unwrap_or(&u32::MAX));
            }
            child_firsts = (0..n_nodes).map(|nd| level.peek(nd * INNER_FANOUT)).collect();
            levels_rev.push(level);
        }
        levels_rev.reverse();
        BPlusTree { leaves, levels: levels_rev, n_rows: n }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the tree indexes no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Tree height in levels (inner levels + the leaf level).
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// Charged point lookup: returns the payload of the first row with
    /// `key`, descending the tree as a dependent load chain (each node read
    /// waits for the previous level's result).
    pub fn get(&self, core: &mut Core<'_>, key: u32) -> Option<u32> {
        let mut hit = None;
        self.for_each_match(core, key, |p| {
            if hit.is_none() {
                hit = Some(p);
            }
            // Stop after the first match by returning false.
            false
        });
        hit
    }

    /// Charged lookup invoking `f(payload)` for every row matching `key`
    /// (in key order); `f` returns whether to continue after a match.
    pub fn for_each_match(&self, core: &mut Core<'_>, key: u32, mut f: impl FnMut(u32) -> bool) {
        if self.n_rows == 0 || key == u32::MAX {
            return;
        }
        let mut node = 0usize;
        core.dependent(|c| {
            for level in &self.levels {
                // One cache-line node: a single charged load covers it, the
                // in-line separator comparisons are ALU work.
                let base = node * INNER_FANOUT;
                let _ = level.get(c, base);
                c.compute(6);
                // Strict `<` picks the first child that can contain `key`,
                // so duplicate runs straddling node boundaries start at
                // their first occurrence.
                let mut child = 0usize;
                for s in 1..INNER_FANOUT {
                    if level.peek(base + s) < key {
                        child = s;
                    } else {
                        break;
                    }
                }
                node = node * INNER_FANOUT + child;
            }
        });
        // Leaf scan: the first leaf line is part of the dependent chain;
        // duplicate runs continue into following lines (sequential).
        let n_leaves = self.leaves.len() / LEAF_FANOUT;
        let mut leaf = node.min(n_leaves.saturating_sub(1));
        'outer: loop {
            let base = leaf * LEAF_FANOUT;
            core.dependent(|c| {
                let _ = self.leaves.get(c, base);
            });
            core.compute(4);
            let mut saw_greater = false;
            for s in 0..LEAF_FANOUT {
                let row = self.leaves.peek(base + s);
                if row.key == key {
                    if !f(row.payload) {
                        break 'outer;
                    }
                } else if row.key > key {
                    saw_greater = true;
                    break;
                }
            }
            if saw_greater || leaf + 1 >= n_leaves {
                break;
            }
            leaf += 1;
        }
    }

    /// Uncharged verification lookup (reference behaviour for tests).
    pub fn get_uncharged(&self, key: u32) -> Option<u32> {
        self.leaves
            // sgx-lint: allow(untracked-access) uncharged verification lookup, never inside a timed region
            .as_slice_untracked()
            .iter()
            .take(self.n_rows)
            .find(|r| r.key == key)
            .map(|r| r.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::{Machine, Setting};

    fn machine() -> Machine {
        Machine::new(scaled_profile(), Setting::PlainCpu)
    }

    fn rows(keys: &[u32]) -> Vec<IndexRow> {
        keys.iter().map(|&k| IndexRow { key: k, payload: k.wrapping_mul(7) }).collect()
    }

    #[test]
    fn lookup_finds_every_loaded_key() {
        let mut m = machine();
        let keys: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let tree = BPlusTree::bulk_load(&mut m, &rows(&keys));
        m.run(|c| {
            for &k in &keys {
                assert_eq!(tree.get(c, k), Some(k.wrapping_mul(7)), "key {k}");
            }
            assert_eq!(tree.get(c, 1), None);
            assert_eq!(tree.get(c, 29_998), None);
            // The padding sentinel never matches real rows.
            assert_eq!(tree.get(c, u32::MAX), None);
        });
        assert!(m.wall_cycles() > 0.0);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let mut m = machine();
        let empty = BPlusTree::bulk_load(&mut m, &[]);
        assert!(empty.is_empty());
        let one = BPlusTree::bulk_load(&mut m, &rows(&[42]));
        assert_eq!(one.height(), 1);
        m.run(|c| {
            assert_eq!(empty.get(c, 5), None);
            assert_eq!(one.get(c, 42), Some(42u32.wrapping_mul(7)));
            assert_eq!(one.get(c, 41), None);
        });
    }

    #[test]
    fn duplicates_are_all_visited_in_order() {
        let mut m = machine();
        let mut input = rows(&[1, 5, 5, 5, 9]);
        // Distinguish the duplicate payloads.
        for (i, r) in input.iter_mut().enumerate() {
            r.payload = i as u32;
        }
        let tree = BPlusTree::bulk_load(&mut m, &input);
        m.run(|c| {
            let mut seen = Vec::new();
            tree.for_each_match(c, 5, |p| {
                seen.push(p);
                true
            });
            assert_eq!(seen, vec![1, 2, 3]);
        });
    }

    #[test]
    fn duplicate_run_across_leaf_boundary() {
        let mut m = machine();
        // 20 copies of the same key span multiple 8-row leaves.
        let mut input: Vec<IndexRow> = Vec::new();
        input.extend((0..4).map(|i| IndexRow { key: 1, payload: i }));
        input.extend((0..20).map(|i| IndexRow { key: 7, payload: 100 + i }));
        input.push(IndexRow { key: 9, payload: 999 });
        let tree = BPlusTree::bulk_load(&mut m, &input);
        m.run(|c| {
            let mut n = 0;
            tree.for_each_match(c, 7, |p| {
                assert_eq!(p, 100 + n);
                n += 1;
                true
            });
            assert_eq!(n, 20);
        });
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut m = machine();
        let small = BPlusTree::bulk_load(&mut m, &rows(&(0..100).collect::<Vec<_>>()));
        let big = BPlusTree::bulk_load(&mut m, &rows(&(0..100_000).collect::<Vec<_>>()));
        assert!(big.height() > small.height());
        // 100k rows / 8 per leaf = 12.5k leaves; fanout 16 ⇒ 4 inner
        // levels (ceil log16 of 12.5k = 4) + leaf level.
        assert_eq!(big.height(), 5);
    }

    #[test]
    #[should_panic(expected = "key-sorted")]
    fn rejects_unsorted_input() {
        let mut m = machine();
        BPlusTree::bulk_load(&mut m, &rows(&[3, 1, 2]));
    }

    #[test]
    fn probes_charge_dependent_latency() {
        let mut m = machine();
        let keys: Vec<u32> = (0..200_000).collect(); // leaves >> scaled L3
        let tree = BPlusTree::bulk_load(&mut m, &rows(&keys));
        let cold = m.run(|c| {
            let mut x = 1u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                tree.get(c, (x >> 40) as u32 % 200_000);
            }
            c.busy_cycles()
        });
        // ≥ one DRAM latency per probe on average.
        assert!(cold / 1000.0 > 200.0, "per-probe cost too low: {}", cold / 1000.0);
    }
}
