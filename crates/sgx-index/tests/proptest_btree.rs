//! Property tests: the B+-tree agrees with `std::collections::BTreeMap`
//! on arbitrary key sets, including duplicates and adversarial patterns.

use proptest::prelude::*;
use sgx_index::{BPlusTree, IndexRow};
use sgx_sim::config::scaled_profile;
use sgx_sim::{Machine, Setting};
use std::collections::BTreeMap;

fn machine() -> Machine {
    Machine::new(scaled_profile(), Setting::PlainCpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Point lookups return exactly the first payload of the key, for any
    /// multiset of keys.
    #[test]
    fn get_matches_btreemap(mut keys in proptest::collection::vec(0u32..100_000, 0..2000)) {
        keys.sort_unstable();
        let rows: Vec<IndexRow> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| IndexRow { key: k, payload: i as u32 })
            .collect();
        // Reference: first payload per key (rows are sorted, payloads are
        // insertion positions, so the minimum payload is the first).
        let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
        for r in &rows {
            reference.entry(r.key).or_insert(r.payload);
        }
        let mut m = machine();
        let tree = BPlusTree::bulk_load(&mut m, &rows);
        m.run(|c| {
            for probe in keys.iter().copied().chain([0, 1, 99_999, 54_321]) {
                prop_assert_eq!(tree.get(c, probe), reference.get(&probe).copied(), "key {}", probe);
            }
            Ok(())
        })?;
    }

    /// `for_each_match` visits exactly the duplicate run of the key, in
    /// payload (insertion) order.
    #[test]
    fn duplicates_enumerate_in_order(
        distinct in proptest::collection::vec(1u32..1000, 1..50),
        dup_key in 1u32..1000,
        dups in 1usize..40,
    ) {
        let mut keys: Vec<u32> = distinct;
        keys.extend(std::iter::repeat_n(dup_key, dups));
        keys.sort_unstable();
        let rows: Vec<IndexRow> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| IndexRow { key: k, payload: i as u32 })
            .collect();
        let expected: Vec<u32> =
            rows.iter().filter(|r| r.key == dup_key).map(|r| r.payload).collect();
        let mut m = machine();
        let tree = BPlusTree::bulk_load(&mut m, &rows);
        m.run(|c| {
            let mut seen = Vec::new();
            tree.for_each_match(c, dup_key, |p| {
                seen.push(p);
                true
            });
            prop_assert_eq!(seen, expected);
            Ok(())
        })?;
    }

    /// Early termination: stopping after k matches visits exactly k.
    #[test]
    fn early_stop_respected(dups in 1usize..30, stop_after in 1usize..30) {
        let rows: Vec<IndexRow> =
            (0..dups).map(|i| IndexRow { key: 7, payload: i as u32 }).collect();
        let mut m = machine();
        let tree = BPlusTree::bulk_load(&mut m, &rows);
        m.run(|c| {
            let mut seen = 0usize;
            tree.for_each_match(c, 7, |_| {
                seen += 1;
                seen < stop_after
            });
            prop_assert_eq!(seen, dups.min(stop_after));
            Ok(())
        })?;
    }
}
