//! # sgx-sim — a deterministic Intel SGXv2 platform performance simulator
//!
//! This crate is the hardware substrate of the reproduction of
//! *"Benchmarking Analytical Query Processing in Intel SGXv2"* (EDBT 2025).
//! The paper measures real SGXv2 silicon; this environment has none, so the
//! crate models the platform characteristics the paper identifies:
//!
//! * a three-level cache hierarchy with a stream prefetcher ([`cache`]),
//! * DRAM plus the memory-encryption engine (MEE) that makes random EPC
//!   accesses expensive but hides behind prefetching for sequential scans
//!   (§4.1, §5.1),
//! * the enclave-mode instruction-scheduling restriction that manual loop
//!   unrolling repairs (§4.2) — expressed as *issue groups*
//!   ([`Core::group`]),
//! * two NUMA nodes connected by UPI links with the SGXv2 UPI Crypto
//!   Engine (§5.5),
//! * enclave transitions, the SDK mutex sleep/wake path (§4.4), EDMM
//!   dynamic page commits (Fig 11), and an optional SGXv1-style EPC pager.
//!
//! Operator code runs *for real* on real data held in [`SimVec`]s — only
//! time is simulated. See `DESIGN.md` at the workspace root for the full
//! substitution argument and `tests/calibration.rs` for the measurements
//! that pin the model to the paper.
//!
//! ## Example
//!
//! ```
//! use sgx_sim::{Machine, Setting, config};
//!
//! let mut machine = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
//! let mut data = machine.alloc::<u64>(1 << 16);
//! machine.run(|core| {
//!     for i in 0..data.len() {
//!         data.set(core, i, i as u64);
//!     }
//! });
//! assert!(machine.wall_cycles() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod counters;
pub(crate) mod fastdiv;
pub mod faults;
pub mod machine;
pub mod mem;
pub mod paging;
pub mod profile;
pub mod sync;

pub use config::HwConfig;
pub use counters::Counters;
pub use faults::{
    ocall_cost, stream_draw, stream_unit, AexStorm, EpcPressure, FaultEvent, FaultKind,
    FaultProfile, OcallFaults, MAX_BACKOFF_EXP,
};
pub use machine::{AccessKind, Core, Machine, PhaseStats, StreamReader, StreamWriter};
pub use mem::{ExecMode, Region, Setting, SimVec};
pub use profile::{CategoryCycles, CostCategory, PhaseGuard, PhaseProfile, Profile};
