//! Seeded, deterministic fault injection: AEX interrupt storms, EPC
//! pressure ballooning, and transient OCALL failures.
//!
//! The paper's §4.4 findings (transition avalanche, EDMM stalls) describe
//! how enclaves behave under *adverse events*, and Stress-SGX-style
//! perturbation is how the real cliffs are found — yet a simulator models
//! only the happy path unless faults are injected on purpose. This module
//! drives three fault classes from a schedule that is a pure function of
//! `(FaultProfile, seed)`:
//!
//! * **AEX interrupt storms** — asynchronous enclave exits at a
//!   configurable mean rate. In enclave mode each event charges a full
//!   enclave round trip (2 × [`TransitionConfig::transition_cycles`], the
//!   `transitions` counter moves) and invalidates the interrupted core's
//!   L1/TLB/stream state, so the refill cost on resume emerges organically
//!   from the cache model. Native mode pays only the small
//!   [`InterruptConfig::native_interrupt_cycles`] handler cost — which is
//!   what makes enclave throughput degrade super-linearly with the rate.
//! * **EPC pressure ballooning** — once a run crosses a cycle threshold,
//!   the effective EPC shrinks to a configured residency and overflow is
//!   routed through the existing SGXv1-style pager
//!   ([`crate::paging::Pager`]): every spilled touch pays an EWB/ELDU
//!   round trip and the globally serialized fault train of `finish_phase`.
//! * **Transient OCALL failures** — [`crate::Machine::ocall`] /
//!   [`crate::Core::ocall`] draw from a deterministic failure stream and
//!   retry with bounded exponential backoff in *simulated* cycles; the
//!   `ocall_retries` counter surfaces how often the boundary misbehaved.
//!
//! Every applied event is recorded in a bounded in-order trace
//! ([`crate::Machine::fault_trace`]): identical seeds reproduce the trace
//! byte-for-byte, different seeds diverge — the regression tests pin both.
//!
//! [`TransitionConfig::transition_cycles`]: crate::config::TransitionConfig::transition_cycles
//! [`InterruptConfig::native_interrupt_cycles`]: crate::config::InterruptConfig::native_interrupt_cycles

/// Upper bound on recorded fault events; beyond it events still *charge*
/// (and count) but are no longer appended to the trace.
const MAX_TRACE_EVENTS: usize = 1 << 16;

/// Cap on the exponential-backoff doubling (2^6 = 64× the base backoff).
pub const MAX_BACKOFF_EXP: u32 = 6;

/// Stream tags separating the per-class random sequences drawn from one
/// seed (arbitrary odd constants).
const STREAM_AEX: u64 = 0xA5A5_17E4_0DD5_EED1;
const STREAM_OCALL: u64 = 0x0CA1_1FA1_1B0F_F5E7;

/// AEX interrupt-storm parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AexStorm {
    /// Mean cycles between interrupts on each core. Individual gaps jitter
    /// deterministically in `[0.5, 1.5)` of the mean.
    pub mean_interval_cycles: f64,
}

/// EPC pressure-balloon parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpcPressure {
    /// Per-core cycle count after which the balloon inflates.
    pub after_cycles: f64,
    /// Usable EPC bytes once inflated; overflow pages fault through the
    /// SGXv1-style pager.
    pub resident_bytes: usize,
}

/// Transient OCALL-failure parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcallFaults {
    /// Probability (0..1) that any single OCALL attempt fails transiently.
    pub failure_prob: f64,
    /// Retries before the call is forced through (bounded recovery).
    pub max_retries: u32,
    /// Base backoff in simulated cycles; attempt `k` waits `2^(k-1)` times
    /// this (capped), modeling the SDK's escalating sleep.
    pub backoff_cycles: f64,
}

/// A complete fault-injection plan. All schedules derive from `seed`
/// alone, so a machine with the same profile, seed, and workload replays
/// the exact same fault history.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed for every fault schedule.
    pub seed: u64,
    /// AEX interrupt storm, if enabled.
    pub aex: Option<AexStorm>,
    /// EPC pressure balloon, if enabled.
    pub epc_pressure: Option<EpcPressure>,
    /// Transient OCALL failures, if enabled.
    pub ocall: Option<OcallFaults>,
}

impl OcallFaults {
    /// Backoff wait in simulated cycles before retry `attempt` (1-based):
    /// `backoff_cycles * 2^min(attempt-1, MAX_BACKOFF_EXP)` — the SDK's
    /// escalating sleep, capped so the schedule stays bounded.
    pub fn backoff_wait(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(MAX_BACKOFF_EXP);
        // Shift-safe: the exponent is clamped to MAX_BACKOFF_EXP (6).
        self.backoff_cycles * (1u64 << exp) as f64
    }

    /// Total simulated cost of one OCALL under this fault setting that
    /// suffered `retries` transient failures (see [`ocall_cost`]).
    pub fn call_cost(&self, retries: u32, transition_cycles: f64) -> f64 {
        ocall_cost(retries, transition_cycles, self.backoff_cycles)
    }

    /// Deterministically decide how many transient failures an attempt
    /// stream starting at index `k` suffers, mirroring the engine's
    /// [`FaultEngine::plan_ocall`] semantics exactly: one uniform draw per
    /// attempt, bounded by `max_retries`, with the final forced-through
    /// attempt still consuming a draw. Returns the retry count; the stream
    /// position always advances by `retries + 1` indices, so external
    /// schedulers (e.g. `sgx-serve`) can replay the same schedule the
    /// machine would.
    pub fn draw_retries(&self, seed: u64, stream: u64, k: u64) -> u32 {
        let mut retries = 0u32;
        while retries < self.max_retries {
            if unit(mix(seed, stream, k + retries as u64)) >= self.failure_prob {
                return retries;
            }
            retries += 1;
        }
        retries
    }
}

impl FaultProfile {
    /// An empty profile (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultProfile {
        FaultProfile { seed, aex: None, epc_pressure: None, ocall: None }
    }

    /// Enable an AEX storm with the given mean interrupt interval in
    /// cycles (clamped to at least 1).
    pub fn with_aex_storm(mut self, mean_interval_cycles: f64) -> FaultProfile {
        self.aex = Some(AexStorm { mean_interval_cycles: mean_interval_cycles.max(1.0) });
        self
    }

    /// Enable EPC-pressure ballooning: after `after_cycles` of per-core
    /// work, usable EPC shrinks to `resident_bytes`.
    pub fn with_epc_pressure(mut self, after_cycles: f64, resident_bytes: usize) -> FaultProfile {
        self.epc_pressure = Some(EpcPressure { after_cycles, resident_bytes });
        self
    }

    /// Enable transient OCALL failures.
    pub fn with_ocall_faults(
        mut self,
        failure_prob: f64,
        max_retries: u32,
        backoff_cycles: f64,
    ) -> FaultProfile {
        self.ocall = Some(OcallFaults {
            failure_prob: failure_prob.clamp(0.0, 1.0),
            max_retries,
            backoff_cycles: backoff_cycles.max(0.0),
        });
        self
    }
}

/// What kind of fault an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An asynchronous interrupt delivered to a core (an AEX when the
    /// machine runs in enclave mode).
    Interrupt {
        /// Hardware core the interrupt hit.
        core: usize,
    },
    /// One transient OCALL failure forcing retry number `attempt`.
    OcallRetry {
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// The EPC pressure balloon inflated (pager installed).
    EpcBalloon,
}

/// One applied fault event, in application order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The fault class and its payload.
    pub kind: FaultKind,
    /// Local clock (cycles) at which the event struck: the core's
    /// cumulative busy cycles for interrupts, the call-site clock for
    /// OCALL retries and the balloon.
    pub at_cycles: f64,
}

/// SplitMix64 finalizer over a seed/stream/index triple: the single
/// source of randomness for every schedule (pure, no state).
fn mix(seed: u64, stream: u64, k: u64) -> u64 {
    let mut z = seed
        ^ stream
        ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 uniform bits to a uniform f64 in `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Public clock/stream hook: one 64-bit draw from the deterministic
/// per-stream sequence the fault engine itself uses (SplitMix64 finalizer
/// over `(seed, stream, k)`). Pure function — schedulers layered on the
/// simulator (arrival processes, per-tenant mixes in `sgx-serve`) draw
/// from here so their randomness composes with fault schedules without
/// sharing state.
pub fn stream_draw(seed: u64, stream: u64, k: u64) -> u64 {
    mix(seed, stream, k)
}

/// [`stream_draw`] mapped to a uniform f64 in `[0, 1)`.
pub fn stream_unit(seed: u64, stream: u64, k: u64) -> f64 {
    unit(mix(seed, stream, k))
}

/// Total simulated cost of one OCALL that needed `retries` redo round
/// trips: the initial crossing pair, one more pair per retry, plus the
/// capped exponential backoff waits. Public so service schedulers can
/// price boundary crossings with the exact machine formula.
pub fn ocall_cost(retries: u32, transition_cycles: f64, backoff_cycles: f64) -> f64 {
    let mut cost = 2.0 * transition_cycles;
    for attempt in 0..retries {
        cost += 2.0 * transition_cycles;
        // Shift-safe under overflow checks: the exponent is clamped to
        // MAX_BACKOFF_EXP (6), far below u64's 64-bit shift limit, for any
        // `retries` value.
        cost += backoff_cycles * (1u64 << attempt.min(MAX_BACKOFF_EXP)) as f64;
    }
    cost
}

/// Live fault-injection state attached to a [`crate::Machine`].
#[derive(Debug, Clone)]
pub(crate) struct FaultEngine {
    profile: FaultProfile,
    /// Per-core local-clock threshold of the next interrupt.
    next_interrupt: Vec<f64>,
    /// Per-core count of interrupts already scheduled (jitter stream index).
    interrupt_draws: Vec<u64>,
    /// Machine-wide OCALL attempt counter (failure stream index).
    ocall_draws: u64,
    /// Whether the EPC balloon has already inflated.
    ballooned: bool,
    trace: Vec<FaultEvent>,
}

impl FaultEngine {
    pub(crate) fn new(profile: FaultProfile, n_cores: usize) -> FaultEngine {
        let mut engine = FaultEngine {
            next_interrupt: vec![f64::INFINITY; n_cores],
            interrupt_draws: vec![0; n_cores],
            ocall_draws: 0,
            ballooned: false,
            trace: Vec::new(),
            profile,
        };
        if engine.profile.aex.is_some() {
            for core in 0..n_cores {
                engine.next_interrupt[core] = engine.next_gap(core);
            }
        }
        engine
    }

    pub(crate) fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    pub(crate) fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Jittered gap to the next interrupt on `core` (consumes one draw).
    fn next_gap(&mut self, core: usize) -> f64 {
        let Some(aex) = self.profile.aex else { return f64::INFINITY };
        let k = self.interrupt_draws[core];
        self.interrupt_draws[core] += 1;
        // `<<` binds tighter than `^`, so this already shifted the core id
        // before XORing; parenthesized to make that explicit. The constant
        // 32-bit shift on a u64 can never trip the shift-width check.
        let u = unit(mix(self.profile.seed, STREAM_AEX ^ ((core as u64) << 32), k));
        aex.mean_interval_cycles * (0.5 + u)
    }

    /// Is an interrupt due on `core` at local clock `clock`?
    pub(crate) fn interrupt_due(&self, core: usize, clock: f64) -> bool {
        clock >= self.next_interrupt[core]
    }

    /// Record an applied interrupt and schedule the next one *after* the
    /// handler finished (`resume`): interrupts are masked while one is
    /// being serviced, which also guarantees forward progress when the
    /// event cost exceeds the mean interval.
    pub(crate) fn interrupt_fired(&mut self, core: usize, at: f64, resume: f64) {
        self.record(FaultEvent { kind: FaultKind::Interrupt { core }, at_cycles: at });
        let gap = self.next_gap(core);
        self.next_interrupt[core] = resume + gap;
    }

    /// Returns the balloon's residency exactly once, when pressure is
    /// configured and `clock` has crossed the threshold.
    pub(crate) fn poll_balloon(&mut self, clock: f64) -> Option<usize> {
        let pressure = self.profile.epc_pressure?;
        if self.ballooned || clock < pressure.after_cycles {
            return None;
        }
        self.ballooned = true;
        self.record(FaultEvent { kind: FaultKind::EpcBalloon, at_cycles: clock });
        Some(pressure.resident_bytes)
    }

    /// Decide how many transient failures the next OCALL suffers (0 when
    /// no OCALL faults are configured). Consumes one draw per attempt so
    /// the stream position — and with it every later decision — is a pure
    /// function of the number of OCALLs issued so far.
    pub(crate) fn plan_ocall(&mut self, at: f64) -> u32 {
        let Some(ocall) = self.profile.ocall else { return 0 };
        let mut retries = 0u32;
        while retries < ocall.max_retries {
            let draw = mix(self.profile.seed, STREAM_OCALL, self.ocall_draws);
            self.ocall_draws += 1;
            if unit(draw) >= ocall.failure_prob {
                return retries;
            }
            retries += 1;
            self.record(FaultEvent { kind: FaultKind::OcallRetry { attempt: retries }, at_cycles: at });
        }
        // The final (forced-through) attempt still consumes a draw so the
        // stream advances uniformly per attempt.
        self.ocall_draws += 1;
        retries
    }

    fn record(&mut self, e: FaultEvent) {
        if self.trace.len() < MAX_TRACE_EVENTS {
            self.trace.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::scaled_profile;
    use crate::{Machine, Setting};

    fn storm(seed: u64) -> FaultProfile {
        FaultProfile::new(seed)
            .with_aex_storm(30_000.0)
            .with_ocall_faults(0.5, 3, 4_000.0)
    }

    /// A fixed random-access workload that exercises charged accesses,
    /// streams, and OCALLs.
    fn workload(m: &mut Machine) -> f64 {
        let mut v = m.alloc::<u64>(1 << 16);
        m.ecall();
        m.run(|c| {
            let mut x = 1u64;
            for _ in 0..60_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = (x >> 33) as usize % (1 << 16);
                v.rmw(c, i, |e| *e += 1);
            }
        });
        for _ in 0..16 {
            m.ocall();
        }
        m.wall_cycles()
    }

    #[test]
    fn identical_seeds_replay_identical_traces_and_counters() {
        let run = || {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            m.install_faults(storm(42));
            let wall = workload(&mut m);
            (wall.to_bits(), m.fault_trace().to_vec(), m.counters().clone())
        };
        let (w1, t1, c1) = run();
        let (w2, t2, c2) = run();
        assert_eq!(w1, w2);
        assert_eq!(t1, t2);
        assert_eq!(c1.aex_events, c2.aex_events);
        assert_eq!(c1.ocall_retries, c2.ocall_retries);
        assert_eq!(c1.transitions, c2.transitions);
        assert!(!t1.is_empty(), "storm workload must record events");
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            m.install_faults(storm(seed));
            workload(&mut m);
            m.fault_trace().to_vec()
        };
        let a = run(1);
        let b = run(2);
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "fault schedules must depend on the seed");
    }

    #[test]
    fn empty_profile_is_a_no_op() {
        let base = {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            workload(&mut m)
        };
        let with_empty = {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            m.install_faults(FaultProfile::new(7));
            workload(&mut m)
        };
        assert_eq!(base.to_bits(), with_empty.to_bits());
    }

    #[test]
    fn aex_storm_charges_transitions_and_hits_enclave_harder() {
        let run = |setting: Setting, with_faults: bool| {
            let mut m = Machine::new(scaled_profile(), setting);
            if with_faults {
                m.install_faults(FaultProfile::new(9).with_aex_storm(25_000.0));
            }
            let wall = workload(&mut m);
            (wall, m.counters().clone())
        };
        let (encl_calm, _) = run(Setting::SgxDataInEnclave, false);
        let (encl_storm, c) = run(Setting::SgxDataInEnclave, true);
        let (native_calm, cn) = run(Setting::PlainCpu, false);
        let (native_storm, _) = run(Setting::PlainCpu, true);
        assert!(c.aex_events > 0, "storm must deliver AEX events");
        assert_eq!(cn.aex_events, 0, "aex_events counts enclave exits only");
        // Each AEX charges a full round trip into `transitions`.
        assert!(c.transitions >= 2 * c.aex_events);
        let encl_slow = encl_storm / encl_calm;
        let native_slow = native_storm / native_calm;
        assert!(
            encl_slow > 1.5 * native_slow,
            "the same interrupt rate must hit the enclave far harder: \
             enclave {encl_slow:.2}x vs native {native_slow:.2}x"
        );
        // Attribution: the enclave wall grows at least by the pure
        // transition charge of the delivered AEX events.
        let min_charge = c.aex_events as f64 * 2.0 * 10_000.0;
        assert!(encl_storm - encl_calm >= 0.9 * min_charge);
    }

    #[test]
    fn epc_balloon_routes_overflow_through_the_pager() {
        let run = |with_pressure: bool| {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            if with_pressure {
                // Inflate almost immediately; residency far below the
                // 8 MB working set.
                m.install_faults(FaultProfile::new(3).with_epc_pressure(1_000.0, 256 * 1024));
            }
            let wall = workload(&mut m);
            (wall, m.counters().epc_page_faults, m.fault_trace().to_vec())
        };
        let (calm, calm_faults, _) = run(false);
        let (pressured, faults, trace) = run(true);
        assert_eq!(calm_faults, 0);
        assert!(faults > 0, "shrunken EPC must page");
        assert!(pressured > calm, "paging must cost wall time");
        assert!(
            trace.iter().any(|e| e.kind == FaultKind::EpcBalloon),
            "balloon inflation must be recorded"
        );
    }

    #[test]
    fn ocall_retries_are_bounded_and_counted() {
        let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
        m.install_faults(FaultProfile::new(11).with_ocall_faults(0.6, 3, 2_000.0));
        let before = m.wall_cycles();
        let mut total = 0u64;
        for _ in 0..64 {
            let r = m.ocall();
            assert!(r <= 3, "retries must respect the bound");
            total += r as u64;
        }
        assert!(total > 0, "p=0.6 over 64 calls must retry");
        assert_eq!(m.counters().ocall_retries, total);
        // Every crossing pair is accounted: 64 base calls + retries.
        assert_eq!(m.counters().transitions, 2 * (64 + total));
        assert!(m.wall_cycles() > before);
        // Natively an OCALL is an uninstrumented host call.
        let mut n = Machine::new(scaled_profile(), Setting::PlainCpu);
        n.install_faults(FaultProfile::new(11).with_ocall_faults(0.6, 3, 2_000.0));
        assert_eq!(n.ocall(), 0);
        assert_eq!(n.counters().ocall_retries, 0);
    }

    #[test]
    fn ocall_cost_grows_with_retries() {
        let base = ocall_cost(0, 10_000.0, 1_000.0);
        let one = ocall_cost(1, 10_000.0, 1_000.0);
        let two = ocall_cost(2, 10_000.0, 1_000.0);
        assert_eq!(base, 20_000.0);
        assert_eq!(one, 41_000.0);
        assert_eq!(two, 63_000.0);
    }

    #[test]
    fn backoff_schedule_is_bounded_exponential() {
        let of = OcallFaults { failure_prob: 1.0, max_retries: 32, backoff_cycles: 100.0 };
        // Doubles per attempt, then saturates at 2^MAX_BACKOFF_EXP = 64x.
        let expected = [100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0, 6_400.0];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(of.backoff_wait(i as u32 + 1), want, "attempt {}", i + 1);
        }
        for attempt in 8..40 {
            assert_eq!(of.backoff_wait(attempt), 6_400.0, "cap must hold at attempt {attempt}");
        }
        // The closed-form cost is the sum of crossing pairs plus exactly
        // these waits: each extra retry adds one round trip + one wait.
        let t = 10_000.0;
        for retries in 1..=12u32 {
            let delta = of.call_cost(retries, t) - of.call_cost(retries - 1, t);
            assert_eq!(delta, 2.0 * t + of.backoff_wait(retries));
        }
    }

    #[test]
    fn certain_failure_always_hits_the_retry_bound() {
        let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
        m.install_faults(FaultProfile::new(5).with_ocall_faults(1.0, 5, 1_000.0));
        for _ in 0..16 {
            assert_eq!(m.ocall(), 5, "p=1.0 must exhaust the bound on every call");
        }
        assert_eq!(m.counters().ocall_retries, 16 * 5);
        assert_eq!(m.counters().transitions, 2 * (16 + 16 * 5));
    }

    #[test]
    fn draw_retries_replays_the_engine_schedule() {
        // The public hook must reproduce the machine's own plan: same seed,
        // same stream, cursor advancing by retries+1 per call.
        let profile = FaultProfile::new(11).with_ocall_faults(0.6, 3, 2_000.0);
        let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
        m.install_faults(profile.clone());
        let engine: Vec<u32> = (0..64).map(|_| m.ocall()).collect();
        let of = profile.ocall.unwrap_or(OcallFaults {
            failure_prob: 0.0,
            max_retries: 0,
            backoff_cycles: 0.0,
        });
        let mut k = 0u64;
        let replayed: Vec<u32> = (0..64)
            .map(|_| {
                let r = of.draw_retries(profile.seed, STREAM_OCALL, k);
                k += r as u64 + 1;
                r
            })
            .collect();
        assert_eq!(engine, replayed);
        assert!(replayed.iter().any(|&r| r > 0), "p=0.6 must produce retries");
    }

    #[test]
    fn fault_trace_is_byte_deterministic_for_one_profile_and_seed() {
        // Two runs with the same (profile, seed) must render the identical
        // byte sequence — the trace is part of the reproducibility surface.
        let run = || {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            m.install_faults(storm(0xD15EA5E));
            workload(&mut m);
            format!("{:?}", m.fault_trace())
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty() && a.contains("Interrupt"));
        assert_eq!(a.as_bytes(), b.as_bytes(), "trace bytes must replay exactly");
    }
}
