//! NUMA layer: UPI interconnect accounting and its bandwidth cap. The
//! remote-latency and remote-crypto (UCE) *latency* terms live inside the
//! hierarchy layer's line resolution, where they add onto the far/stream
//! cost of the individual fill; this module owns the *traffic* side —
//! which accesses cross the socket interconnect and what aggregate floor
//! that traffic puts under a phase.
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::config::CACHE_LINE;

use super::{Core, Machine};

impl Machine {
    /// Cycles the UPI links need to move `bytes` across sockets — the
    /// interconnect floor `finish_phase` regulates against.
    pub(super) fn upi_cap(&self, bytes: f64) -> f64 {
        bytes * self.cfg.upi.upi_bw_cycles_per_byte
    }
}

impl<'m> Core<'m> {
    /// Account one cache line crossing the socket interconnect (demand
    /// fill write-allocate traffic, NT stores, remote write-backs).
    pub(super) fn upi_line(&mut self) {
        self.upi_bytes += CACHE_LINE as f64;
    }

    /// Account a demand fill served by the remote socket: counted, and
    /// one line of UPI traffic.
    pub(super) fn remote_fill(&mut self) {
        // sgx-lint: allow(charge-escape) NUMA fill tally recorded at the fill; the fill latency is charged by the caller through `commit`
        self.m.counters.remote_fills += 1;
        self.upi_bytes += CACHE_LINE as f64;
    }
}
