//! EPC layer: the enclave memory boundary — EPC capacity limits, EDMM
//! first-touch commits, SGXv1 paging, MEE bus inflation, and the serial
//! fault/EDMM train caps `finish_phase` regulates against.
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::config::{CACHE_LINE, PAGE_SIZE};
use crate::mem::{ExecMode, Region, SimVec};

use super::core::{Charge, Tally};
use super::{Core, Machine};

impl Machine {
    /// Allocate a vector in the setting's default data region on `node` 0.
    pub fn alloc<T: Copy + Default>(&mut self, len: usize) -> SimVec<T> {
        self.alloc_on(len, self.setting.data_region(0))
    }

    /// Allocate a vector in the setting's default data region on a given
    /// NUMA node.
    pub fn alloc_on_node<T: Copy + Default>(&mut self, len: usize, node: u8) -> SimVec<T> {
        self.alloc_on(len, self.setting.data_region(node))
    }

    /// Allocate a vector in an explicit region. Panics when an EPC region
    /// would exceed the configured per-socket EPC capacity — real enclaves
    /// fail to grow at exactly this point (use [`Machine::try_alloc_on`]
    /// to handle it).
    pub fn alloc_on<T: Copy + Default>(&mut self, len: usize, region: Region) -> SimVec<T> {
        self.try_alloc_on(len, region).unwrap_or_else(|| {
            // sgx-lint: allow(panic-in-library) documented API contract: alloc_on panics on EPC exhaustion, try_alloc_on is the fallible twin
            panic!(
                "EPC capacity exceeded on node {} ({} bytes per socket)",
                region.node(),
                self.cfg.epc_per_socket
            )
        })
    }

    /// Fallible allocation: returns `None` when an EPC region would exceed
    /// the per-socket EPC capacity (Table 1: 64 GB/socket).
    pub fn try_alloc_on<T: Copy + Default>(
        &mut self,
        len: usize,
        region: Region,
    ) -> Option<SimVec<T>> {
        let bytes = (len * SimVec::<T>::elem_size()) as u64;
        if region.is_epc() {
            let used = self.allocs[region.index()].used;
            if used + bytes > self.cfg.epc_per_socket as u64 {
                return None;
            }
        }
        let off = self.allocs[region.index()].alloc(bytes);
        Some(SimVec::new(len, region.base() + off, region))
    }

    /// Bytes allocated so far in a region.
    pub fn region_used(&self, region: Region) -> u64 {
        self.allocs[region.index()].used
    }

    /// Freeze the enclave's statically committed size: EPC memory allocated
    /// *after* this call is committed on first charged touch via EDMM,
    /// paying `EdmmConfig::page_add_cycles` per page (§4.4, Fig 11).
    pub fn seal_enclave(&mut self) {
        self.sealed = true;
        for (i, a) in self.allocs.iter().enumerate() {
            self.seal_watermark[i] = a.used;
        }
    }

    /// Serial SGXv1 fault train: the kernel driver's EWB/ELDU path holds a
    /// global lock, so a phase can never beat `faults` sequential faults.
    pub(super) fn fault_train_cap(&self, faults: u64) -> f64 {
        faults as f64 * self.cfg.paging.fault_cycles
    }

    /// Serial EDMM train: EAUG/EACCEPT go through the globally locked EPC
    /// page-management path.
    pub(super) fn edmm_train_cap(&self, edmm_pages: u64) -> f64 {
        edmm_pages as f64 * self.cfg.edmm.page_add_cycles
    }
}

impl<'m> Core<'m> {
    /// DRAM-bus bytes one cache line effectively occupies: encrypted EPC
    /// lines carry MEE counter/MAC traffic, so under enclave execution they
    /// consume proportionally more of the bandwidth budget (this is what
    /// keeps the few-percent MEE tax visible even when a phase saturates
    /// the memory bus, Fig 13/15).
    pub(super) fn line_bus_bytes(&self, enc: bool, write: bool) -> f64 {
        let base = CACHE_LINE as f64;
        if !enc {
            return base;
        }
        let f = if write {
            self.m.cfg.mem.mee_stream_write_factor
        } else {
            self.m.cfg.mem.mee_stream_factor
        };
        base * f
    }

    /// EDMM commit and SGXv1 paging checks for a charged touch.
    #[inline]
    pub(super) fn pre_touch(&mut self, addr: u64, region: Region) {
        if self.m.mode != ExecMode::Enclave || !region.is_epc() {
            return;
        }
        if self.m.sealed {
            let off = addr - region.base();
            if off >= self.m.seal_watermark[region.index()] {
                let page = addr / PAGE_SIZE as u64;
                if self.m.committed_pages.insert(page) {
                    self.edmm_pages += 1;
                    self.commit(Charge {
                        cycles: self.m.cfg.edmm.page_add_cycles,
                        tally: Tally::EdmmPage,
                    });
                }
            }
        }
        let fault = self.m.pager.as_mut().map_or(0.0, |pager| pager.touch(addr));
        if fault > 0.0 {
            self.faults += 1;
            self.commit(Charge { cycles: fault, tally: Tally::EpcPageFault });
        }
    }
}
