//! Pipeline layer: compute/branch charges, ILP/MLP pooling, issue groups,
//! dependency chains, phase orchestration and the per-core busy clocks —
//! plus the [`Charge`] choke point every other layer commits through.
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::cache::{Cache, StreamDetector};
use crate::config::{HwConfig, SgxGeneration};
use crate::counters::Counters;
use crate::faults::{FaultEngine, FaultEvent, FaultProfile};
use crate::mem::{ExecMode, RegionAlloc, Setting};
use crate::paging::Pager;
use crate::profile::{CostCategory, PhaseGuard, ProfCtx};
use crate::sync::QueueModel;
use std::collections::BTreeSet;

use super::{
    AccessCost, Core, CoreHw, GroupAcc, Machine, PhaseStats, BRANCH_MISS_CYCLES, CTX_POISON,
};

/// One quantum of charged work, built by a layer and committed through
/// [`Core::commit`] — the single place that advances a worker's busy
/// clock and gives the fault engine its tick. Keeping the clock advance
/// and the tick fused in one choke point is what lets the workspace lint
/// prove fault coverage over the whole layered pipeline.
pub(super) struct Charge {
    /// Cycles to add to the worker's busy clock.
    pub cycles: f64,
    /// Counter bumps attributed together with the cycles.
    pub tally: Tally,
}

/// Counter attribution carried by a [`Charge`]. Counters are plain sums,
/// so applying the tally before the clock advance is equivalent to the
/// historical inline order — the fault tick never reads these counters.
/// Every variant maps to a [`CostCategory`], so the cycle-attribution
/// profiler can bin each committed charge; the type system forces every
/// charge site to pick one.
pub(super) enum Tally {
    /// Pure cycle charge attributed to the given cost category; any
    /// counters were already bumped by the caller.
    Cycles(CostCategory),
    /// `n` scalar ALU operations.
    AluOps(u64),
    /// `n` 512-bit vector operations.
    VecOps(u64),
    /// `n` enclave boundary crossings.
    Transitions(u64),
    /// An OCALL round trip: crossings plus transient-failure retries.
    Ocall { transitions: u64, retries: u64 },
    /// One EDMM page committed on first touch.
    EdmmPage,
    /// One SGXv1 EPC page fault.
    EpcPageFault,
}

impl Machine {
    /// Build a machine for one of the paper's three settings.
    pub fn new(cfg: HwConfig, setting: Setting) -> Machine {
        let n_regions = cfg.sockets * 2;
        let cores = (0..cfg.total_cores())
            .map(|_| CoreHw {
                l1: Cache::new(&cfg.l1d),
                l2: Cache::new(&cfg.l2),
                streams: StreamDetector::new(),
                tlb: vec![u64::MAX; cfg.mem.tlb_entries.max(1)],
                tlb_fm: crate::fastdiv::FastMod::new(cfg.mem.tlb_entries.max(1) as u64),
            })
            .collect();
        let l3 = (0..cfg.sockets).map(|_| Cache::new(&cfg.l3)).collect();
        let pager = (cfg.generation == SgxGeneration::V1 && setting.mode() == ExecMode::Enclave)
            .then(|| Pager::new(&cfg.paging));
        Machine {
            mode: setting.mode(),
            setting,
            allocs: vec![RegionAlloc::default(); n_regions],
            cores,
            l3,
            counters: Counters::default(),
            wall: 0.0,
            sealed: false,
            seal_watermark: vec![0; n_regions],
            committed_pages: BTreeSet::new(),
            pager,
            faults: None,
            core_clock: vec![0.0; cfg.total_cores()],
            prof: crate::profile::enabled().then(|| Box::new(ProfCtx::new())),
            stream_oracle: false,
            cfg,
        }
    }

    /// Total simulated bytes handed out by the bump allocators across
    /// all regions — the allocation high-water mark. Nothing is ever
    /// freed, so this is also the footprint the SGXv1-style pager (and
    /// the EPC pressure balloon) prices pages against.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocs.iter().map(|a| a.used).sum()
    }

    /// Push a named phase scope for cycle attribution (see
    /// [`crate::profile`]); the scope ends when the returned guard drops.
    /// Flushes the pending counter delta first, so the push boundary is
    /// exact. Inert (and allocation-free) unless this machine was built
    /// with profiling enabled.
    pub fn phase(&mut self, name: &'static str) -> PhaseGuard {
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.flush(&self.counters);
        }
        let guard = crate::profile::phase(name);
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.refresh_scope();
        }
        guard
    }

    /// Attribute a wall-clock charge that does not flow through
    /// [`Core::commit`] (machine-level ECALL/OCALL costs).
    pub(super) fn prof_record(&mut self, cat: CostCategory, cycles: f64) {
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.record(&self.counters, cat, cycles);
        }
    }

    /// Install a deterministic fault-injection profile (AEX storms, EPC
    /// pressure, transient OCALL failures — see [`crate::faults`]). The
    /// resulting fault schedule is a pure function of the profile and its
    /// seed: replaying the same workload reproduces the identical trace,
    /// counters, and wall time.
    pub fn install_faults(&mut self, profile: FaultProfile) {
        self.faults = Some(FaultEngine::new(profile, self.cfg.total_cores()));
    }

    /// Events the fault engine has applied so far, in application order
    /// (empty without [`Machine::install_faults`]).
    pub fn fault_trace(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |engine| engine.trace())
    }

    /// The hardware configuration.
    pub fn cfg(&self) -> &HwConfig {
        &self.cfg
    }

    /// The benchmark setting this machine models.
    pub fn setting(&self) -> Setting {
        self.setting
    }

    /// Execution mode (derived from the setting).
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Accumulated wall-clock cycles over all phases so far.
    pub fn wall_cycles(&self) -> f64 {
        self.wall
    }

    /// Wall time in seconds at the configured clock frequency.
    pub fn wall_secs(&self) -> f64 {
        self.cfg.cycles_to_secs(self.wall)
    }

    /// Reset the wall clock (e.g. after untimed setup).
    pub fn reset_wall(&mut self) {
        self.wall = 0.0;
    }

    /// Event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Drop all cache contents (between experiment repetitions).
    pub fn flush_caches(&mut self) {
        for c in &mut self.cores {
            c.l1.flush();
            c.l2.flush();
            c.streams.reset();
            c.tlb.fill(u64::MAX);
        }
        for l3 in &mut self.l3 {
            l3.flush();
        }
    }

    /// Run single-threaded code on core 0, advancing the wall clock.
    pub fn run<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        self.run_on(0, f)
    }

    /// Run single-threaded code on a specific core.
    pub fn run_on<R>(&mut self, core_id: usize, f: impl FnOnce(&mut Core) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.parallel(&[core_id], |core| {
            // sgx-lint: allow(panic-in-library) FnOnce-through-Option shim; parallel() calls each worker exactly once
            let f = f.take().expect("single-core phase runs the closure once");
            out = Some(f(core));
        });
        // sgx-lint: allow(panic-in-library) same invariant: the one-element core list ran exactly once
        out.expect("single-core closure always runs")
    }

    /// Execute one parallel phase on the given hardware cores. The closure
    /// is invoked once per worker (sequentially, in core order); wall time
    /// advances by the regulated phase duration.
    pub fn parallel(&mut self, cores: &[usize], mut f: impl FnMut(&mut Core)) -> PhaseStats {
        assert!(!cores.is_empty(), "a phase needs at least one core");
        let sockets = self.cfg.sockets;
        let mut core_cycles = Vec::with_capacity(cores.len());
        let mut dram_bytes = vec![0.0; sockets];
        let mut upi_bytes = 0.0;
        let mut faults = 0u64;
        let mut edmm_pages = 0u64;
        for (w, &id) in cores.iter().enumerate() {
            assert!(id < self.cfg.total_cores(), "core id {id} out of range");
            let mut core = Core::new(self, id);
            core.windex = w;
            f(&mut core);
            core_cycles.push(core.cycles);
            for s in 0..sockets {
                dram_bytes[s] += core.dram_bytes[s];
            }
            upi_bytes += core.upi_bytes;
            faults += core.faults;
            let busy = core.cycles;
            edmm_pages += core.edmm_pages;
            self.core_clock[id] += busy;
        }
        self.finish_phase(core_cycles, dram_bytes, upi_bytes, faults, edmm_pages)
    }

    /// Execute a task-queue-driven phase: workers repeatedly pop tasks from
    /// `queue` (whose cost model serializes contended critical sections)
    /// and process them. Workers are interleaved by their local clocks, so
    /// queue contention plays out realistically (§4.4, Fig 10).
    pub fn parallel_tasks(
        &mut self,
        cores: &[usize],
        queue: &mut dyn QueueModel,
        n_tasks: usize,
        mut f: impl FnMut(&mut Core, usize),
    ) -> PhaseStats {
        assert!(!cores.is_empty(), "a phase needs at least one core");
        queue.reset(n_tasks);
        let sockets = self.cfg.sockets;
        let mut clocks = vec![0.0f64; cores.len()];
        let mut live = vec![true; cores.len()];
        let mut dram_bytes = vec![0.0; sockets];
        let mut upi_bytes = 0.0;
        let mut faults = 0u64;
        let mut edmm_pages = 0u64;
        let cfg = self.cfg.clone();
        loop {
            let Some(w) = (0..cores.len())
                .filter(|&w| live[w])
                .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]))
            else {
                break;
            };
            let mode = self.mode;
            let (t, task) = queue.dequeue(clocks[w], mode, &cfg, &mut self.counters);
            clocks[w] = t;
            match task {
                None => live[w] = false,
                Some(task) => {
                    let mut core = Core::new(self, cores[w]);
                    core.windex = w;
                    f(&mut core, task);
                    // sgx-lint: allow(charge-escape) worker-merge: folding per-core cycles already committed through `Core::commit` into the shared clock array
                    clocks[w] += core.cycles;
                    for s in 0..sockets {
                        dram_bytes[s] += core.dram_bytes[s];
                    }
                    upi_bytes += core.upi_bytes;
                    faults += core.faults;
                    let busy = core.cycles;
                    edmm_pages += core.edmm_pages;
                    self.core_clock[cores[w]] += busy;
                }
            }
        }
        self.finish_phase(clocks, dram_bytes, upi_bytes, faults, edmm_pages)
    }

    fn finish_phase(
        &mut self,
        core_cycles: Vec<f64>,
        dram_bytes: Vec<f64>,
        upi_bytes: f64,
        faults: u64,
        edmm_pages: u64,
    ) -> PhaseStats {
        let busiest = core_cycles.iter().cloned().fold(0.0, f64::max);
        let mut bound = busiest;
        let mut bandwidth_bound = false;
        for &bytes in &dram_bytes {
            let cap = self.dram_cap(bytes);
            if cap > bound {
                bound = cap;
                bandwidth_bound = true;
            }
        }
        let upi_cap = self.upi_cap(upi_bytes);
        if upi_cap > bound {
            bound = upi_cap;
            bandwidth_bound = true;
        }
        // SGXv1 EPC paging is globally serialized (the kernel driver's
        // EWB/ELDU path holds a global lock), so concurrent workers cannot
        // overlap their faults: the phase can never finish faster than the
        // serial fault train.
        let fault_cap = self.fault_train_cap(faults);
        if fault_cap > bound {
            bound = fault_cap;
            bandwidth_bound = true;
        }
        // EDMM page adds serialize the same way: EAUG/EACCEPT go through
        // the driver's global EPC page-management lock, so concurrent
        // workers cannot overlap their enclave growth (this is what makes
        // Fig 11's dynamically grown enclave reach only ~4.5 % of the
        // statically sized one even with 16 threads).
        let edmm_cap = self.edmm_train_cap(edmm_pages);
        if edmm_cap > bound {
            bound = edmm_cap;
            bandwidth_bound = true;
        }
        // sgx-lint: allow(charge-escape) phase barrier: the wall clock advances by the max over per-core totals that each flowed through `commit`
        self.wall += bound;
        PhaseStats { wall_cycles: bound, core_cycles, bandwidth_bound }
    }
}

impl Drop for Machine {
    /// Fold this machine's counter totals — and, when profiling, its
    /// finished cycle-attribution profile — into the thread-local session
    /// accumulators (see [`crate::counters::session_take`] and
    /// [`crate::profile::session_take`]), so the figure harness can
    /// attribute work per job without plumbing a collector through every
    /// experiment.
    fn drop(&mut self) {
        crate::counters::session_absorb(&self.counters);
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.flush(&self.counters);
            crate::profile::session_absorb(&prof.take_profile());
        }
    }
}

impl<'m> Core<'m> {
    fn new(m: &'m mut Machine, id: usize) -> Core<'m> {
        let socket = m.cfg.socket_of_core(id);
        let sockets = m.cfg.sockets;
        Core {
            m,
            id,
            socket,
            cycles: 0.0,
            dram_bytes: vec![0.0; sockets],
            upi_bytes: 0.0,
            group: None,
            dependent_depth: 0,
            windex: 0,
            faults: 0,
            edmm_pages: 0,
            last_rand_addr: CTX_POISON,
        }
    }

    /// Apply a [`Charge`]: attribute its counters, advance this worker's
    /// busy clock, and give the fault engine its tick. Every layer's
    /// cycle charge funnels through here (the only other clock advance is
    /// `fault_tick_slow`, the fault engine's own exempt path). This choke
    /// point is also where the cycle-attribution profiler observes every
    /// charge; counter bumps and float ordering are unchanged from the
    /// unprofiled path, and a machine without a profiler pays two `None`
    /// branches.
    #[inline]
    pub(super) fn commit(&mut self, charge: Charge) {
        let m = &mut *self.m;
        if let Some(prof) = m.prof.as_deref_mut() {
            // Sync scopes *before* the tally so counters bumped since the
            // last charge flush into the bucket they accrued under.
            prof.resync_scope(&m.counters);
        }
        let cat = match charge.tally {
            Tally::Cycles(cat) => cat,
            Tally::AluOps(n) => {
                m.counters.alu_ops += n;
                CostCategory::Compute
            }
            Tally::VecOps(n) => {
                m.counters.vec_ops += n;
                CostCategory::Compute
            }
            Tally::Transitions(n) => {
                m.counters.transitions += n;
                CostCategory::Transition
            }
            Tally::Ocall { transitions, retries } => {
                m.counters.transitions += transitions;
                m.counters.ocall_retries += retries;
                CostCategory::Transition
            }
            Tally::EdmmPage => {
                m.counters.edmm_pages += 1;
                CostCategory::Edmm
            }
            Tally::EpcPageFault => {
                m.counters.epc_page_faults += 1;
                CostCategory::EpcPaging
            }
        };
        if let Some(prof) = m.prof.as_deref_mut() {
            prof.add(cat, charge.cycles);
        }
        self.cycles += charge.cycles;
        self.fault_tick();
    }

    /// Hardware core id this worker is pinned to.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Index of this worker within the phase's core list (0-based), for
    /// indexing per-worker scratch structures.
    pub fn worker(&self) -> usize {
        self.windex
    }

    /// Socket (NUMA node) of this core.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// Execution mode of the machine.
    pub fn mode(&self) -> ExecMode {
        self.m.mode
    }

    /// Cycles this worker has accumulated in the current phase.
    pub fn busy_cycles(&self) -> f64 {
        self.cycles
    }

    /// Charge `n` scalar ALU operations.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.commit(Charge {
            cycles: n as f64 * self.m.cfg.pipeline.cycles_per_op,
            tally: Tally::AluOps(n),
        });
    }

    /// Charge `n` 512-bit vector operations.
    #[inline]
    pub fn vec_compute(&mut self, n: u64) {
        self.commit(Charge {
            cycles: n as f64 * self.m.cfg.pipeline.cycles_per_vec_op,
            tally: Tally::VecOps(n),
        });
    }

    /// Charge raw cycles (e.g. a modelled library call).
    #[inline]
    pub fn charge(&mut self, cycles: f64) {
        self.commit(Charge { cycles, tally: Tally::Cycles(CostCategory::Compute) });
    }

    /// Push a named phase scope for cycle attribution from inside a
    /// parallel phase (see [`Machine::phase`]); the scope ends when the
    /// returned guard drops.
    pub fn phase(&mut self, name: &'static str) -> PhaseGuard {
        self.m.phase(name)
    }

    /// Charge the expected cost of a data-dependent branch that the
    /// predictor misses with probability `miss_prob` (e.g. CrkJoin's
    /// two-pointer comparison on a random key bit: 0.5).
    #[inline]
    pub fn branch(&mut self, miss_prob: f64) {
        self.commit(Charge {
            cycles: miss_prob.clamp(0.0, 1.0) * BRANCH_MISS_CYCLES,
            tally: Tally::Cycles(CostCategory::Compute),
        });
    }

    /// Open an explicit issue group: all accesses inside `f` are declared
    /// independent of one another (the paper's Listing 2 manual unroll —
    /// compute N indexes first, then issue N memory operations). Native
    /// mode is insensitive to grouping; enclave mode only overlaps
    /// *within* a group.
    pub fn group<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        assert!(self.group.is_none(), "issue groups do not nest");
        self.group = Some(GroupAcc::default());
        let r = f(self);
        // sgx-lint: allow(panic-in-library) set to Some two lines above; groups cannot nest (asserted on entry)
        let g = self.group.take().expect("group still open");
        self.close_group(g);
        r
    }

    /// Mark the accesses inside `f` as a serial dependency chain (pointer
    /// chasing): each access waits for the full latency of the previous
    /// one, in both modes.
    pub fn dependent<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        self.dependent_depth += 1;
        let r = f(self);
        self.dependent_depth -= 1;
        r
    }

    fn close_group(&mut self, g: GroupAcc) {
        if g.count == 0 {
            return;
        }
        if self.m.mode == ExecMode::Enclave {
            self.m.counters.enclave_groups += 1;
        }
        let p = &self.m.cfg.pipeline;
        let mem = &self.m.cfg.mem;
        let cost = match self.m.mode {
            ExecMode::Native => {
                (g.near_sum / p.ilp_native).max(g.far_sum / mem.mlp_native)
            }
            ExecMode::Enclave => {
                let near = g.near_max + (g.near_sum - g.near_max) / p.ilp_enclave_group;
                near.max(g.far_sum / mem.mlp_enclave) + p.enclave_group_overhead
            }
        };
        // The group's accesses pooled into one charge; attribute it to the
        // category that contributed the most raw cycles (deterministic
        // lowest-index tie-break).
        self.commit(Charge { cycles: cost, tally: Tally::Cycles(CostCategory::dominant(&g.cats)) });
    }

    /// Commit a resolved access cost to the pipeline model.
    pub(super) fn post(&mut self, c: AccessCost) {
        if self.dependent_depth > 0 {
            // Serial dependency chain: no overlap in either mode. No extra
            // enclave overhead — the paper's in-cache pointer chase runs at
            // parity (Fig 5), and on DRAM chases the MEE fill latency in
            // `far` already carries the whole penalty.
            self.commit(Charge { cycles: c.near + c.far, tally: Tally::Cycles(c.cat) });
            return;
        }
        if let Some(g) = &mut self.group {
            g.near_sum += c.near;
            g.near_max = g.near_max.max(c.near);
            g.far_sum += c.far;
            g.count += 1;
            g.cats[c.cat.index()] += c.near + c.far;
            return;
        }
        // References, not struct copies — `post` runs once per random
        // access and the config blocks are ~20 fields wide.
        let p = &self.m.cfg.pipeline;
        let mem = &self.m.cfg.mem;
        let cost = match self.m.mode {
            ExecMode::Native => (c.near / p.ilp_native).max(c.far / mem.mlp_native),
            ExecMode::Enclave => {
                if c.serial_load {
                    // The §4.2 restriction: ungrouped loads do not overlap
                    // across iterations in enclave mode.
                    c.near + mem.enclave_serial_far_fraction * c.far + p.enclave_group_overhead
                } else {
                    // Pooled path: never overlaps *better* than native
                    // (`ilp_enclave_group` only applies within explicit
                    // issue groups).
                    (c.near / p.ilp_native.min(p.ilp_enclave_group))
                        .max(c.far / mem.mlp_enclave)
                }
            }
        };
        self.commit(Charge { cycles: cost, tally: Tally::Cycles(c.cat) });
    }
}
