//! Transition layer: ECALL/OCALL round trips, enclave boundary
//! crossings, and asynchronous exit (AEX) delivery — the fault tick
//! itself lives here, at the boundary where interrupts strike.
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::faults::ocall_cost;
use crate::mem::ExecMode;
use crate::paging::Pager;
use crate::profile::CostCategory;

use super::core::{Charge, Tally};
use super::{Core, Machine};

impl Machine {
    /// Charge an enclave entry/exit pair to the wall clock (no-op in native
    /// mode), e.g. the ECALL that launches a query.
    pub fn ecall(&mut self) {
        if self.mode == ExecMode::Enclave {
            let cost = 2.0 * self.cfg.transitions.transition_cycles;
            // sgx-lint: allow(charge-escape) ECALL/OCALL transition cost lands on the wall clock directly: transitions happen outside any core phase, so there is no `Charge` to route
            self.wall += cost;
            self.counters.transitions += 2;
            self.prof_record(CostCategory::Transition, cost);
        }
    }

    /// Perform one OCALL round trip on the wall clock: the exit/re-entry
    /// pair, plus deterministic transient-failure retries with bounded
    /// exponential backoff (in simulated cycles) when an OCALL fault
    /// profile is installed. Returns the number of retries, also summed
    /// into `Counters::ocall_retries`. Native mode is a plain host call:
    /// free and infallible here.
    pub fn ocall(&mut self) -> u32 {
        if self.mode != ExecMode::Enclave {
            return 0;
        }
        let retries = match &mut self.faults {
            Some(engine) => engine.plan_ocall(self.wall),
            None => 0,
        };
        let backoff = self
            .faults
            .as_ref()
            .and_then(|engine| engine.profile().ocall)
            .map_or(0.0, |o| o.backoff_cycles);
        let cost = ocall_cost(retries, self.cfg.transitions.transition_cycles, backoff);
        self.wall += cost;
        self.counters.transitions += 2 * (1 + retries as u64);
        self.counters.ocall_retries += retries as u64;
        self.prof_record(CostCategory::Transition, cost);
        retries
    }
}

impl<'m> Core<'m> {
    /// Perform one OCALL round trip from this core, charging the worker's
    /// cycle clock instead of the machine wall clock; otherwise identical
    /// to [`Machine::ocall`] (deterministic transient failures, bounded
    /// backoff, `ocall_retries` accounting).
    pub fn ocall(&mut self) -> u32 {
        if self.m.mode != ExecMode::Enclave {
            return 0;
        }
        let at = self.m.core_clock[self.id] + self.cycles;
        let retries = match &mut self.m.faults {
            Some(engine) => engine.plan_ocall(at),
            None => 0,
        };
        let backoff = self
            .m
            .faults
            .as_ref()
            .and_then(|engine| engine.profile().ocall)
            .map_or(0.0, |o| o.backoff_cycles);
        self.commit(Charge {
            cycles: ocall_cost(retries, self.m.cfg.transitions.transition_cycles, backoff),
            tally: Tally::Ocall {
                transitions: 2 * (1 + retries as u64),
                retries: retries as u64,
            },
        });
        retries
    }

    /// Charge one enclave boundary crossing (no-op natively).
    pub fn transition(&mut self) {
        if self.m.mode == ExecMode::Enclave {
            self.commit(Charge {
                cycles: self.m.cfg.transitions.transition_cycles,
                tally: Tally::Transitions(1),
            });
        }
    }

    /// Fault-injection hook, called after every cycle-advancing charge:
    /// delivers asynchronous interrupts that came due on this core and
    /// inflates the EPC pressure balloon once its threshold is crossed. A
    /// machine without faults installed pays a single branch.
    #[inline]
    pub(super) fn fault_tick(&mut self) {
        if self.m.faults.is_some() {
            self.fault_tick_slow();
        }
    }

    #[cold]
    fn fault_tick_slow(&mut self) {
        let base = self.m.core_clock[self.id];
        // EPC pressure: once the balloon inflates, every touch beyond the
        // shrunken residency pages through the SGXv1-style pager
        // (`pre_touch`), and `finish_phase` serializes the fault train.
        if self.m.mode == ExecMode::Enclave && self.m.pager.is_none() {
            let clock = base + self.cycles;
            let resident = self.m.faults.as_mut().and_then(|engine| engine.poll_balloon(clock));
            if let Some(resident_bytes) = resident {
                let mut paging = self.m.cfg.paging;
                paging.resident_bytes = resident_bytes;
                self.m.pager = Some(Pager::new(&paging));
            }
        }
        // Interrupt delivery. Interrupts stay masked while one is serviced
        // (the next event is scheduled from the post-handler clock), so a
        // storm whose handler outlasts the mean interval cannot livelock.
        loop {
            let clock = base + self.cycles;
            let due = self
                .m
                .faults
                .as_ref()
                .is_some_and(|engine| engine.interrupt_due(self.id, clock));
            if !due {
                return;
            }
            let cost = match self.m.mode {
                ExecMode::Enclave => {
                    // An AEX: scrub state, exit, kernel handler, ERESUME —
                    // a full enclave round trip — and the core resumes with
                    // cold L1/TLB/stream state, so the refill cost emerges
                    // organically from the cache model.
                    self.m.counters.aex_events += 1;
                    self.m.counters.transitions += 2;
                    let hw = &mut self.m.cores[self.id];
                    hw.l1.flush();
                    hw.streams.reset();
                    hw.tlb.fill(u64::MAX);
                    2.0 * self.m.cfg.transitions.transition_cycles
                }
                // A native interrupt is just a kernel round trip: no
                // enclave state to scrub, no TLB flush.
                ExecMode::Native => self.m.cfg.interrupts.native_interrupt_cycles,
            };
            self.cycles += cost;
            // The interrupt bypasses `commit` (the fault engine's exempt
            // path), so attribute its cycles to the profiler here.
            {
                let m = &mut *self.m;
                if let Some(prof) = m.prof.as_deref_mut() {
                    prof.record(&m.counters, CostCategory::Fault, cost);
                }
            }
            if let Some(engine) = self.m.faults.as_mut() {
                engine.interrupt_fired(self.id, clock, base + self.cycles);
            }
        }
    }
}
