//! Hierarchy layer: the L1/L2/L3 walk, TLB, installs/spills/write-backs,
//! and the per-socket DRAM bandwidth cap.
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::cache::Evicted;
use crate::config::{CACHE_LINE, PAGE_SIZE};
use crate::mem::{ExecMode, Region};
use crate::profile::CostCategory;

use super::core::{Charge, Tally};
use super::{
    AccessCost, AccessKind, Core, Machine, L1_STREAM_LINE, L2_STREAM_LINE, L3_STREAM_LINE,
    PREFETCHED_NEAR,
};

/// Cache level an access hit in (DRAM fills return early).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HitLevel {
    L1,
    L2,
    L3,
}

/// Accumulated outcome of a same-region stream run (the fast path of
/// `Core::stream_touch`): the per-line cost fold plus the per-category
/// partial sums the pooled charge's dominant-category pick is built from.
#[derive(Debug, Clone, Copy)]
pub(super) struct StreamRun {
    /// Sum of per-line costs, folded in line order.
    pub total: f64,
    /// Portion of `total` served by caches (folded in line order).
    pub cache_sum: f64,
    /// Portion of `total` served by DRAM (folded in line order).
    pub dram_sum: f64,
    /// Attribution category of DRAM-served lines (fixed per run: the
    /// region, execution mode, and socket are run invariants).
    pub dram_cat: CostCategory,
    /// True when at least one line came from DRAM.
    pub any_dram: bool,
}

impl Machine {
    /// Cycles the per-socket DRAM bus needs to move `bytes` — the
    /// shared-resource floor `finish_phase` regulates against.
    pub(super) fn dram_cap(&self, bytes: f64) -> f64 {
        bytes * self.cfg.mem.socket_bw_cycles_per_byte
    }
}

impl<'m> Core<'m> {
    /// Walk the cache hierarchy for one line; fills caches and accounts
    /// bandwidth. `stream` forces the prefetched-fill cost (explicit
    /// sequential APIs).
    pub(super) fn resolve_line(&mut self, line: u64, kind: AccessKind, stream: bool) -> AccessCost {
        let write = kind != AccessKind::Load;
        let addr = line * CACHE_LINE as u64;
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        let walk = self.tlb_walk(addr);

        let cfg = &self.m.cfg;
        let (l1_lat, l2_lat, l3_lat) = (cfg.l1d.latency, cfg.l2.latency, cfg.l3.latency);
        let hw = &mut self.m.cores[self.id];
        let level;
        if hw.l1.access(line, write) {
            self.m.counters.l1_hits += 1;
            level = HitLevel::L1;
        } else if hw.l2.access(line, write) {
            self.m.counters.l2_hits += 1;
            level = HitLevel::L2;
            self.install_l1(line, write);
        } else if self.m.l3[self.socket].access(line, write) {
            self.m.counters.l3_hits += 1;
            level = HitLevel::L3;
            self.install_l1(line, write);
        } else {
            // DRAM fill.
            self.m.counters.dram_fills += 1;
            let prefetched = stream || self.m.cores[self.id].streams.observe(line);
            if prefetched {
                self.m.counters.prefetched_fills += 1;
            }
            let remote = region.node() != self.socket;
            if remote {
                self.remote_fill();
            }
            let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
            if enc {
                self.m.counters.epc_fills += 1;
            }
            self.dram_bytes[region.node()] += self.line_bus_bytes(enc, false);
            // Install bottom-up so evictions cascade.
            self.install_l3(line, write);
            self.install_l1(line, write);
            // Attribution: the fill's dominant latency source — MEE
            // decryption beats the UPI hop (uce extras ride on the MEE
            // path), which beats plain DRAM.
            let cat = if enc {
                CostCategory::Mee
            } else if remote {
                CostCategory::Upi
            } else {
                CostCategory::Dram
            };
            let cfg = &self.m.cfg;
            let cost = if prefetched {
                let mut per_line = cfg.mem.stream_line_cycles;
                if remote {
                    per_line += cfg.upi.remote_stream_extra;
                    if enc {
                        per_line += cfg.upi.uce_stream_extra;
                    }
                }
                if enc {
                    per_line *= if write {
                        cfg.mem.mee_stream_write_factor
                    } else {
                        cfg.mem.mee_stream_factor
                    };
                }
                if write {
                    per_line += cfg.mem.writeback_line_cycles;
                    // Write-allocate: the eventual write-back consumes
                    // bandwidth too.
                    self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
                    if remote {
                        self.upi_line();
                    }
                }
                return AccessCost {
                    near: PREFETCHED_NEAR,
                    far: per_line + walk,
                    serial_load: false,
                    cat,
                };
            } else {
                let mut far = cfg.mem.dram_latency - cfg.l3.latency + walk;
                if remote {
                    far += cfg.upi.remote_latency;
                }
                if enc {
                    far += cfg.mem.mee_fill_latency;
                    if remote {
                        far += cfg.upi.uce_latency;
                    }
                    if write {
                        far += cfg.mem.mee_write_penalty;
                    }
                }
                AccessCost { near: cfg.l3.latency, far, serial_load: kind == AccessKind::Rmw, cat }
            };
            return cost;
        }
        let near = match level {
            HitLevel::L1 => l1_lat,
            HitLevel::L2 => l2_lat,
            HitLevel::L3 => l3_lat,
        };
        AccessCost {
            near,
            far: walk,
            serial_load: kind == AccessKind::Rmw,
            cat: CostCategory::Cache,
        }
    }

    /// Per-line cost of a stream access through the hierarchy; the flag
    /// reports whether the line came from DRAM, and the category names the
    /// level/region that served it (for profile attribution).
    pub(super) fn resolve_stream_line(
        &mut self,
        line: u64,
        kind: AccessKind,
    ) -> (f64, bool, CostCategory) {
        let write = kind != AccessKind::Load;
        let addr = line * CACHE_LINE as u64;
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        // Page walks on stream paths overlap well (one per 64 lines);
        // charge them pooled like the rest of the line cost.
        let walk = self.tlb_walk(addr) / self.m.cfg.mem.mlp_native;
        let hw = &mut self.m.cores[self.id];
        if hw.l1.access(line, write) {
            self.m.counters.l1_hits += 1;
            return (L1_STREAM_LINE + walk, false, CostCategory::Cache);
        }
        if hw.l2.access(line, write) {
            self.m.counters.l2_hits += 1;
            self.install_l1(line, write);
            return (L2_STREAM_LINE + walk, false, CostCategory::Cache);
        }
        if self.m.l3[self.socket].access(line, write) {
            self.m.counters.l3_hits += 1;
            self.install_l1(line, write);
            return (L3_STREAM_LINE + walk, false, CostCategory::Cache);
        }
        self.m.counters.dram_fills += 1;
        self.m.counters.prefetched_fills += 1;
        let remote = region.node() != self.socket;
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        if enc {
            self.m.counters.epc_fills += 1;
        }
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, false);
        if remote {
            self.remote_fill();
        }
        self.install_l3(line, write);
        self.install_l1(line, write);
        let cfg = &self.m.cfg;
        let mut per_line = cfg.mem.stream_line_cycles;
        if remote {
            per_line += cfg.upi.remote_stream_extra;
            if enc {
                per_line += cfg.upi.uce_stream_extra;
            }
        }
        if enc {
            per_line *= if write {
                cfg.mem.mee_stream_write_factor
            } else {
                cfg.mem.mee_stream_factor
            };
        }
        if write {
            per_line += cfg.mem.writeback_line_cycles;
            self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
            if remote {
                self.upi_line();
            }
        }
        let cat = if enc {
            CostCategory::Mee
        } else if remote {
            CostCategory::Upi
        } else {
            CostCategory::Dram
        };
        (per_line + walk, true, cat)
    }

    /// Resolve a run of `lines` consecutive same-region cache lines — the
    /// stream fast path. One region classification and one set of hoisted
    /// per-line cost constants serve the whole run; the per-line float
    /// fold (`total += c`, plus the per-category partial sums the pooled
    /// charge's dominant-category pick needs) happens in exactly the order
    /// of the per-line slow path, [`Core::resolve_stream_line`], so the
    /// two produce bit-identical state. Selection (see
    /// [`Core::stream_touch`]) guarantees the hoists are invariant:
    /// no fault engine is installed (an AEX could flush the TLB/L1 or a
    /// balloon could install a pager mid-run) and the run never crosses a
    /// region boundary.
    ///
    /// The TLB is probed once per page instead of once per line: a probe
    /// of a just-filled page is a hit with zero cost and no state change,
    /// so skipping it is exact (nothing else touches the TLB mid-run).
    pub(super) fn resolve_stream_run(&mut self, first: u64, lines: u64, write: bool) -> StreamRun {
        let region = Region::of_addr(first * CACHE_LINE as u64);
        let node = region.node();
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        let remote = node != self.socket;
        // EDMM/pager checks only ever fire for enclave-mode EPC touches;
        // hoisting the arming test keeps `pre_touch`'s per-line order when
        // it can matter and skips the call entirely when it cannot.
        let armed = enc && (self.m.sealed || self.m.pager.is_some());
        let cfg = &self.m.cfg;
        let mlp = cfg.mem.mlp_native;
        let mut per_line = cfg.mem.stream_line_cycles;
        if remote {
            per_line += cfg.upi.remote_stream_extra;
            if enc {
                per_line += cfg.upi.uce_stream_extra;
            }
        }
        if enc {
            per_line *= if write {
                cfg.mem.mee_stream_write_factor
            } else {
                cfg.mem.mee_stream_factor
            };
        }
        if write {
            per_line += cfg.mem.writeback_line_cycles;
        }
        let dram_cat = if enc {
            CostCategory::Mee
        } else if remote {
            CostCategory::Upi
        } else {
            CostCategory::Dram
        };
        let fill_bytes = self.line_bus_bytes(enc, false);
        let wb_bytes = self.line_bus_bytes(enc, true);
        let mut run =
            StreamRun { total: 0.0, cache_sum: 0.0, dram_sum: 0.0, dram_cat, any_dram: false };
        let mut cur_page = u64::MAX;
        for line in first..first + lines {
            let addr = line * CACHE_LINE as u64;
            if armed {
                self.pre_touch(addr, region);
            }
            // First touch of a page pays the (possibly zero) walk; later
            // lines of the same page would probe the now-present entry.
            let page = addr / PAGE_SIZE as u64;
            let walk = if page != cur_page {
                cur_page = page;
                self.tlb_walk(addr) / mlp
            } else {
                0.0
            };
            let hw = &mut self.m.cores[self.id];
            let c;
            let mut dram = false;
            if hw.l1.access(line, write) {
                self.m.counters.l1_hits += 1;
                c = L1_STREAM_LINE + walk;
            } else if hw.l2.access(line, write) {
                self.m.counters.l2_hits += 1;
                self.install_l1(line, write);
                c = L2_STREAM_LINE + walk;
            } else if self.m.l3[self.socket].access(line, write) {
                self.m.counters.l3_hits += 1;
                self.install_l1(line, write);
                c = L3_STREAM_LINE + walk;
            } else {
                self.m.counters.dram_fills += 1;
                self.m.counters.prefetched_fills += 1;
                if enc {
                    self.m.counters.epc_fills += 1;
                }
                self.dram_bytes[node] += fill_bytes;
                if remote {
                    self.remote_fill();
                }
                self.install_l3(line, write);
                self.install_l1(line, write);
                if write {
                    self.dram_bytes[node] += wb_bytes;
                    if remote {
                        self.upi_line();
                    }
                }
                c = per_line + walk;
                dram = true;
            }
            run.total += c;
            if dram {
                run.dram_sum += c;
                run.any_dram = true;
            } else {
                run.cache_sum += c;
            }
        }
        run
    }

    /// Probe the per-core TLB for `addr`'s page; returns the page-walk
    /// cycles (0 on a hit). Walks are pooled with the far/DRAM portion of
    /// the access (they overlap with other outstanding misses).
    #[inline]
    pub(super) fn tlb_walk(&mut self, addr: u64) -> f64 {
        let page = addr / PAGE_SIZE as u64;
        let hw = &mut self.m.cores[self.id];
        let slot = hw.tlb_fm.rem(page) as usize;
        if hw.tlb[slot] == page {
            0.0
        } else {
            hw.tlb[slot] = page;
            // sgx-lint: allow(charge-escape) TLB-walk bookkeeping counted at the walk itself; its cycle cost is returned to the caller and committed there
            self.m.counters.tlb_misses += 1;
            self.m.cfg.mem.tlb_walk_cycles
        }
    }

    fn install_l1(&mut self, line: u64, dirty: bool) {
        // Every install follows this resolve's own L1 probe miss of the
        // same line, with only L2/L3 work in between — the rescan-free
        // insert applies.
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l1.insert_miss(line, dirty) {
            self.spill_l2(v);
        }
    }

    fn spill_l2(&mut self, victim: u64) {
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l2.insert(victim, true) {
            self.spill_l3(v);
        }
    }

    fn install_l3(&mut self, line: u64, dirty: bool) {
        // Only reached on the DRAM path: both the L2 and L3 probes of
        // `line` just missed, and the only same-cache op in between — the
        // L3 insert of the L2's dirty victim — inserts a *different* line,
        // so `line` is still absent from both and the rescan-free insert
        // applies (the victim scan itself is recomputed at call time).
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l2.insert_miss(line, dirty) {
            if let Evicted::Dirty(v2) = self.m.l3[self.socket].insert(v, true) {
                self.writeback(v2);
            }
        }
        if let Evicted::Dirty(v) = self.m.l3[self.socket].insert_miss(line, dirty) {
            self.writeback(v);
        }
    }

    fn spill_l3(&mut self, victim: u64) {
        if let Evicted::Dirty(v) = self.m.l3[self.socket].insert(victim, true) {
            self.writeback(v);
        }
    }

    /// Account a dirty L3 eviction: write-back bandwidth plus a small
    /// latency share folded into the evicting access.
    fn writeback(&mut self, line: u64) {
        self.m.counters.writebacks += 1;
        let region = Region::of_addr(line * CACHE_LINE as u64);
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        let remote = region.node() != self.socket;
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
        if remote {
            self.upi_line();
        }
        let cat = if enc {
            CostCategory::Mee
        } else if remote {
            CostCategory::Upi
        } else {
            CostCategory::Dram
        };
        self.commit(Charge {
            cycles: self.m.cfg.mem.writeback_line_cycles
                / self.m.cfg.mem.mlp_native.max(1.0),
            tally: Tally::Cycles(cat),
        });
    }
}
