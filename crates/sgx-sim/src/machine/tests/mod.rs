//! Behavioural tests of the layered machine pipeline. `super` is the
//! `machine` facade, exactly as when these lived inline there.

use super::*;
use crate::config::{scaled_profile, xeon_gold_6326};
use crate::mem::{Region, SimVec};

fn machine(setting: Setting) -> Machine {
    Machine::new(scaled_profile(), setting)
}

#[test]
fn wall_advances_with_work() {
    let mut m = machine(Setting::PlainCpu);
    let v = m.alloc::<u64>(1024);
    assert_eq!(m.wall_cycles(), 0.0);
    m.run(|c| {
        let mut s = 0u64;
        for i in 0..1024 {
            s = s.wrapping_add(v.get(c, i));
        }
        assert_eq!(s, 0);
    });
    assert!(m.wall_cycles() > 0.0);
}

#[test]
fn repeated_access_hits_cache_and_gets_cheaper() {
    let mut m = machine(Setting::PlainCpu);
    // 2 KB fits the scaled 3 KB L1d; access in a scrambled order so the
    // stream detector cannot kick in.
    let v = m.alloc::<u64>(256);
    let pass = |m: &mut Machine, v: &SimVec<u64>| {
        m.run(|c| {
            for k in 0..10_000usize {
                v.get(c, (k * 97) % v.len());
            }
            c.busy_cycles()
        })
    };
    let cold = pass(&mut m, &v);
    let warm = pass(&mut m, &v);
    assert!(warm < cold, "warm {warm} !< cold {cold}");
    assert!(m.counters().l1_hits > 0);
}

#[test]
fn enclave_epc_random_access_slower_than_native() {
    let run = |setting: Setting| {
        let mut m = machine(setting);
        let mut v = m.alloc::<u64>(1 << 20); // 8 MB >> scaled L3 (1.5 MB)
        m.run(|c| {
            let mut x = 12345u64;
            for _ in 0..100_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = (x >> 33) as usize % v.len();
                v.rmw(c, i, |e| *e += 1);
            }
        });
        m.wall_cycles()
    };
    let native = run(Setting::PlainCpu);
    let enclave = run(Setting::SgxDataInEnclave);
    assert!(
        enclave > 1.5 * native,
        "EPC random access should be much slower: native {native}, enclave {enclave}"
    );
}

#[test]
fn streaming_is_much_cheaper_than_random_per_byte() {
    let mut m = machine(Setting::PlainCpu);
    let v = m.alloc::<u64>(1 << 20);
    let stream = m.run(|c| {
        v.read_stream(c, 0..v.len(), |_, _, _| {});
        c.busy_cycles()
    });
    m.flush_caches();
    let random = m.run(|c| {
        let mut x = 9u64;
        for _ in 0..v.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.get(c, (x >> 33) as usize % v.len());
        }
        c.busy_cycles()
    });
    assert!(
        random > 3.0 * stream,
        "random {random} should dwarf stream {stream} for same element count"
    );
}

#[test]
fn groups_help_only_in_enclave_mode() {
    // The paper's Listing 1/2 pattern: scan a key array sequentially
    // and bump a cache-resident histogram per key. The naive loop
    // alternates objects every iteration and suffers the enclave
    // serialization penalty; the 8x-unrolled variant (issue groups)
    // recovers it.
    let run = |setting: Setting, grouped: bool| {
        let mut m = machine(setting);
        let mut keys = m.alloc::<u64>(16 * 1024);
        for i in 0..keys.len() {
            keys.poke(i, (i as u64).wrapping_mul(2654435761) % 512);
        }
        let mut hist = m.alloc::<u32>(512); // cache-resident
        m.run(|c| {
            if grouped {
                let mut batch = [0usize; 8];
                let mut fill = 0;
                keys.read_stream(c, 0..keys.len(), |c, _, k| {
                    batch[fill] = k as usize;
                    fill += 1;
                    if fill == 8 {
                        c.group(|c| {
                            for &i in &batch {
                                hist.rmw(c, i, |e| *e += 1);
                            }
                        });
                        fill = 0;
                    }
                });
            } else {
                keys.read_stream(c, 0..keys.len(), |c, _, k| {
                    hist.rmw(c, k as usize, |e| *e += 1);
                });
            }
        });
        m.wall_cycles()
    };
    let native_plain = run(Setting::PlainCpu, false);
    let native_grouped = run(Setting::PlainCpu, true);
    let enclave_plain = run(Setting::SgxDataInEnclave, false);
    let enclave_grouped = run(Setting::SgxDataInEnclave, true);
    // Native: grouping is irrelevant (the OOO engine already reorders).
    assert!((native_plain - native_grouped).abs() / native_plain < 0.05);
    // Enclave: ungrouped far slower; grouping recovers most of it.
    assert!(enclave_plain > 2.0 * native_plain);
    assert!(enclave_grouped < 0.6 * enclave_plain);
}

#[test]
fn same_object_increments_have_no_enclave_penalty() {
    // §4.2: "incrementing the values inside a cache-resident histogram
    // alone is not the cause of the slowdown" — an LCG-indexed
    // increment loop over one small array runs at native speed.
    let run = |setting: Setting| {
        let mut m = machine(setting);
        let mut hist = m.alloc::<u32>(512);
        m.run(|c| {
            let mut x = 7u64;
            for _ in 0..8000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                c.compute(3);
                hist.rmw(c, (x >> 33) as usize % 512, |e| *e += 1);
            }
        });
        m.wall_cycles()
    };
    let native = run(Setting::PlainCpu);
    let enclave = run(Setting::SgxDataInEnclave);
    assert!(
        enclave < 1.3 * native,
        "increment-only loop should be near-native: native {native}, enclave {enclave}"
    );
}

#[test]
fn data_outside_enclave_avoids_mee_but_keeps_execution_penalty() {
    // Histogram-like pattern over a large table: the execution penalty
    // (object-alternating loads) hits both SGX settings; the MEE fill
    // latency additionally hits only the data-in-enclave setting.
    let run = |setting: Setting| {
        let mut m = machine(setting);
        let keys = m.alloc::<u64>(64 * 1024);
        let mut table = m.alloc::<u64>(1 << 20); // 8 MB >> scaled L3
        m.run(|c| {
            keys.read_stream(c, 0..keys.len(), |c, i, _| {
                let idx = (i as u64).wrapping_mul(2654435761) as usize % table.len();
                table.rmw(c, idx, |e| *e += 1);
            });
        });
        m.wall_cycles()
    };
    let native = run(Setting::PlainCpu);
    let outside = run(Setting::SgxDataOutside);
    let inside = run(Setting::SgxDataInEnclave);
    assert!(outside > 1.2 * native, "enclave execution penalty missing");
    assert!(inside > 1.1 * outside, "MEE penalty missing");
}

#[test]
fn remote_access_slower_and_counts_upi() {
    let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
    let local = m.alloc_on::<u64>(1 << 18, Region::Untrusted(0));
    let remote = m.alloc_on::<u64>(1 << 18, Region::Untrusted(1));
    let t_local = m.run(|c| {
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            local.get(c, (x >> 33) as usize % local.len());
        }
        c.busy_cycles()
    });
    assert_eq!(m.counters().remote_fills, 0);
    let t_remote = m.run(|c| {
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            remote.get(c, (x >> 33) as usize % remote.len());
        }
        c.busy_cycles()
    });
    assert!(m.counters().remote_fills > 0);
    assert!(t_remote > t_local, "remote {t_remote} !> local {t_local}");
}

#[test]
fn parallel_phase_wall_is_max_of_workers() {
    let mut m = machine(Setting::PlainCpu);
    let v = m.alloc::<u64>(1 << 16);
    let stats = m.parallel(&[0, 1, 2, 3], |c| {
        // Worker i does i+1 chunks of work.
        let n = (c.id() + 1) * 1000;
        for i in 0..n {
            v.get(c, i % v.len());
        }
    });
    assert_eq!(stats.core_cycles.len(), 4);
    let max = stats.core_cycles.iter().cloned().fold(0.0, f64::max);
    assert!(stats.wall_cycles >= max);
    assert!(stats.core_cycles[3] > stats.core_cycles[0]);
}

#[test]
fn bandwidth_regulation_caps_parallel_streams() {
    // 16 cores all streaming: aggregate demand exceeds the socket cap,
    // so wall time must exceed a single worker's busy time.
    let mut m = machine(Setting::PlainCpu);
    let vs: Vec<SimVec<u64>> = (0..16).map(|_| m.alloc::<u64>(1 << 18)).collect();
    let stats = m.parallel(&(0..16).collect::<Vec<_>>(), |c| {
        let v = &vs[c.id()];
        v.read_stream(c, 0..v.len(), |_, _, _| {});
    });
    assert!(stats.bandwidth_bound, "16 streaming cores should hit the BW cap");
}

#[test]
fn saturated_phase_wall_equals_bandwidth_bound() {
    let mut m = machine(Setting::PlainCpu);
    let vs: Vec<SimVec<u64>> = (0..16).map(|_| m.alloc::<u64>(1 << 18)).collect();
    let stats = m.parallel(&(0..16).collect::<Vec<_>>(), |c| {
        let v = &vs[c.id()];
        v.read_stream_vec(c, 0..v.len(), |_, _, _| {});
    });
    assert!(stats.bandwidth_bound);
    let bytes = 16.0 * (1u64 << 18) as f64 * 8.0;
    let bound = bytes * m.cfg().mem.socket_bw_cycles_per_byte;
    assert!(
        (stats.wall_cycles - bound).abs() / bound < 1e-9,
        "wall {} should equal the exact bandwidth bound {}",
        stats.wall_cycles,
        bound
    );
}

#[test]
fn edmm_commit_charged_once_per_page() {
    let mut m = machine(Setting::SgxDataInEnclave);
    let _static_heap = m.alloc::<u64>(1024);
    m.seal_enclave();
    let mut dyn_vec = m.alloc::<u64>(2048); // 16 KB = 4 pages
    m.run(|c| {
        for i in 0..dyn_vec.len() {
            dyn_vec.set(c, i, 1);
        }
    });
    assert_eq!(m.counters().edmm_pages, 4);
    let w1 = m.wall_cycles();
    // Second pass: pages already committed, no further EDMM cost.
    m.run(|c| {
        for i in 0..dyn_vec.len() {
            dyn_vec.set(c, i, 2);
        }
    });
    assert_eq!(m.counters().edmm_pages, 4);
    assert!(m.wall_cycles() - w1 < w1);
}

#[test]
fn edmm_not_charged_without_seal_or_in_native() {
    let mut m = machine(Setting::SgxDataInEnclave);
    let mut v = m.alloc::<u64>(2048);
    m.run(|c| {
        for i in 0..v.len() {
            v.set(c, i, 1);
        }
    });
    assert_eq!(m.counters().edmm_pages, 0);
    let mut m = machine(Setting::PlainCpu);
    m.seal_enclave();
    let mut v = m.alloc::<u64>(2048);
    m.run(|c| {
        for i in 0..v.len() {
            v.set(c, i, 1);
        }
    });
    assert_eq!(m.counters().edmm_pages, 0);
}

#[test]
fn sgxv1_pager_charges_faults() {
    let cfg = xeon_gold_6326().scaled(16).sgxv1();
    let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
    // Allocate far more than the scaled resident budget (92 MB/16 ≈ 5.75 MB).
    let v = m.alloc::<u64>(4 << 20); // 32 MB
    m.run(|c| {
        v.read_stream(c, 0..v.len(), |_, _, _| {});
    });
    assert!(m.counters().epc_page_faults > 0);
}

#[test]
fn tlb_misses_charged_for_page_spread_working_sets() {
    let mut m = machine(Setting::PlainCpu);
    // One value per page over far more pages than the scaled TLB (96
    // entries at 1/16 scale).
    let v = m.alloc::<u64>(512 * 512); // 2 MB = 512 pages
    let spread = m.run(|c| {
        for p in 0..512 {
            let _ = v.get(c, p * 512);
        }
        c.busy_cycles()
    });
    assert!(m.counters().tlb_misses >= 512);
    // Same number of accesses inside a few pages: no walks after the
    // first touches.
    m.flush_caches();
    let before = m.counters().tlb_misses;
    let dense = m.run(|c| {
        for k in 0..512 {
            let _ = v.get(c, (k * 7) % 512);
        }
        c.busy_cycles()
    });
    assert!(m.counters().tlb_misses - before <= 8);
    assert!(spread > dense, "page-spread accesses must cost more: {spread} vs {dense}");
}

#[test]
fn nt_store_bypasses_cache_and_halves_bus_traffic() {
    let mut m = machine(Setting::PlainCpu);
    let mut v = m.alloc::<u64>(8192);
    m.run(|c| {
        c.stream_store_line(v.addr(0));
        for k in 0..8 {
            v.poke(k, 7);
        }
    });
    // The line is not cached afterwards: the next read misses.
    let fills_before = m.counters().dram_fills;
    m.run(|c| {
        let _ = v.get(c, 0);
    });
    assert_eq!(m.counters().dram_fills, fills_before + 1, "NT store must not install");
}

#[test]
fn epc_capacity_is_enforced() {
    let mut cfg = scaled_profile();
    cfg.epc_per_socket = 1 << 20; // 1 MB EPC
    let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
    assert!(m.try_alloc_on::<u64>(64 * 1024, Region::Epc(0)).is_some()); // 512 KB
    assert!(m.try_alloc_on::<u64>(128 * 1024, Region::Epc(0)).is_none()); // would exceed
    // The other socket's EPC and untrusted memory are unaffected.
    assert!(m.try_alloc_on::<u64>(64 * 1024, Region::Epc(1)).is_some());
    assert!(m.try_alloc_on::<u64>(10 << 20, Region::Untrusted(0)).is_some());
    assert!(m.region_used(Region::Epc(0)) <= 1 << 20);
}

#[test]
#[should_panic(expected = "EPC capacity exceeded")]
fn epc_overflow_panics_on_infallible_alloc() {
    let mut cfg = scaled_profile();
    cfg.epc_per_socket = 4096;
    let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
    let _ = m.alloc_on::<u64>(1024, Region::Epc(0));
}

#[test]
fn transition_costs_only_in_enclave() {
    let mut m = machine(Setting::SgxDataInEnclave);
    m.ecall();
    assert!(m.wall_cycles() > 0.0);
    assert_eq!(m.counters().transitions, 2);
    let mut m = machine(Setting::PlainCpu);
    m.ecall();
    assert_eq!(m.wall_cycles(), 0.0);
    assert_eq!(m.counters().transitions, 0);
}

#[test]
fn stream_writer_charges_and_writes() {
    let mut m = machine(Setting::PlainCpu);
    let mut v = m.alloc::<u64>(4096);
    m.run(|c| {
        let mut w = v.stream_writer(0);
        for i in 0..4096u64 {
            w.push(c, i * 2);
        }
    });
    assert!(m.wall_cycles() > 0.0);
    assert_eq!(v.peek(17), 34);
    assert!(m.counters().stream_lines >= 4096 * 8 / 64);
}

#[test]
fn vec_stream_charges_fewer_issues_than_scalar() {
    let mut m = machine(Setting::PlainCpu);
    let v = m.alloc::<u32>(1 << 16);
    let scalar = m.run(|c| {
        v.read_stream(c, 0..v.len(), |_, _, _| {});
        c.busy_cycles()
    });
    m.flush_caches();
    let vector = m.run(|c| {
        v.read_stream_vec(c, 0..v.len(), |_, _, _| {});
        c.busy_cycles()
    });
    assert!(vector < scalar, "vector {vector} !< scalar {scalar}");
}

#[test]
fn dependent_chains_serialize_natively_too() {
    let mut m = machine(Setting::PlainCpu);
    let v = m.alloc::<u64>(1 << 20);
    let pooled = m.run(|c| {
        let mut x = 5u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.get(c, (x >> 33) as usize % v.len());
        }
        c.busy_cycles()
    });
    m.flush_caches();
    let serial = m.run(|c| {
        c.dependent(|c| {
            let mut x = 5u64;
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.get(c, (x >> 33) as usize % v.len());
            }
        });
        c.busy_cycles()
    });
    assert!(serial > 2.0 * pooled, "serial {serial} !> 2x pooled {pooled}");
}

#[test]
fn run_on_pins_to_socket() {
    let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
    let remote_core = m.cfg().cores_per_socket; // first core of socket 1
    m.run_on(remote_core, |c| {
        assert_eq!(c.socket(), 1);
    });
}

/// Drive one machine through a deterministic mixed workload — multi-line
/// stream touches of varying length and direction, random reads/writes,
/// and compute — and return its full observable state (every counter plus
/// the bit pattern of the wall clock).
fn stream_workload_state(mut m: Machine, oracle: bool) -> (String, u64) {
    m.force_stream_oracle(oracle);
    let mut v = m.alloc::<u64>(1 << 15); // 256 KB: 4096 lines, 64 pages
    m.run(|c| {
        let mut x = 0x5EED_CAFEu64 | 1;
        for i in 0..400u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lines = 1 + (x >> 7) % 24;
            let start_line = (x >> 33) % (4096 - 24);
            let addr = v.addr((start_line * 8) as usize);
            let write = x & 1 == 0;
            c.stream_touch(addr, lines, lines * 8, write, x & 2 == 0);
            v.set(c, ((x >> 13) as usize) % (1 << 15), i);
            let _ = v.get(c, ((x >> 21) as usize) % (1 << 15));
            c.compute(3);
        }
    });
    (format!("{:?}", m.counters()), m.wall_cycles().to_bits())
}

/// The stream fast path (hoisted same-region runs, `resolve_stream_run`)
/// must be bit-identical to the per-line slow loop it replaces, across
/// every enclave variant that arms per-line work: plain native, EPC data,
/// a sealed (EDMM) enclave, and an SGXv1 machine whose pager commits
/// page-fault charges mid-run.
#[test]
fn stream_fast_path_matches_per_line_oracle() {
    let variants: Vec<(&str, Box<dyn Fn() -> Machine>)> = vec![
        ("native", Box::new(|| machine(Setting::PlainCpu))),
        ("epc", Box::new(|| machine(Setting::SgxDataInEnclave))),
        ("sealed", Box::new(|| {
            let mut m = machine(Setting::SgxDataInEnclave);
            m.seal_enclave();
            m
        })),
        ("sgxv1", Box::new(|| {
            Machine::new(xeon_gold_6326().scaled(16).sgxv1(), Setting::SgxDataInEnclave)
        })),
    ];
    for (name, build) in variants {
        let fast = stream_workload_state(build(), false);
        let slow = stream_workload_state(build(), true);
        assert_eq!(fast.0, slow.0, "{name}: counters diverge between fast path and oracle");
        assert_eq!(
            fast.1, slow.1,
            "{name}: wall clock diverges between fast path and oracle ({} vs {})",
            f64::from_bits(fast.1),
            f64::from_bits(slow.1)
        );
    }
}
