//! Access layer: the load/store/stream entry points — random-pattern
//! accesses, non-temporal stores, stream touches, and the charged
//! `SimVec`/[`StreamReader`]/[`StreamWriter`] APIs (kept here so the cost
//! model stays private).
//
// sgx-lint: fault-tick-module
// sgx-lint: charge-module

use crate::cache::line_of;
use crate::config::CACHE_LINE;
use crate::mem::{ExecMode, Region, SimVec, REGION_SHIFT};
use crate::profile::CostCategory;

use super::core::{Charge, Tally};
use super::{
    AccessKind, Core, CTX_POISON, ENCLAVE_STREAM_LOAD_TAX, STREAM_ELEM_ISSUE, VEC_ISSUE,
};

impl<'m> Core<'m> {
    /// Cost of issuing one scalar stream-element access in the current
    /// mode (used by the incremental stream reader/writer helpers).
    fn stream_issue_cost(&self, write: bool) -> f64 {
        if !write && self.m.mode == ExecMode::Enclave {
            STREAM_ELEM_ISSUE + ENCLAVE_STREAM_LOAD_TAX
        } else {
            STREAM_ELEM_ISSUE
        }
    }

    /// Resolve + charge a random-pattern access of `bytes` at `addr`.
    #[inline]
    pub(crate) fn access(&mut self, addr: u64, bytes: usize, kind: AccessKind) {
        debug_assert!(bytes <= CACHE_LINE);
        match kind {
            AccessKind::Load => self.m.counters.loads += 1,
            AccessKind::Store => self.m.counters.stores += 1,
            AccessKind::Rmw => {
                self.m.counters.loads += 1;
                self.m.counters.stores += 1;
            }
        }
        // Context-switch detection: the enclave serialization penalty
        // strikes the first load after a stream element was consumed (the
        // Listing 1 pattern: scan a table, then use the loaded value for an
        // irregular access). Later loads of the same chain — and loops that
        // only touch one object, like the paper's increment-only check —
        // overlap normally.
        let switched = self.last_rand_addr == CTX_POISON;
        if kind != AccessKind::Store {
            self.last_rand_addr = addr;
        }
        let first = line_of(addr);
        let last = line_of(addr + bytes as u64 - 1);
        for line in first..=last {
            let mut cost = self.resolve_line(line, kind, false);
            cost.serial_load &= switched;
            self.post(cost);
        }
    }

    /// Invalidate the random-access context (called per stream element so
    /// interleaved random accesses count as object switches).
    #[inline]
    fn poison_context(&mut self) {
        self.last_rand_addr = CTX_POISON;
    }

    /// Charge one non-temporal 64-byte store to `addr` (software
    /// write-combining buffer flush, materialization). Unlike a regular
    /// store, an NT store writes the full line without a read-for-ownership
    /// fill and bypasses the caches — half the bus traffic of a
    /// write-allocate miss, and no pollution.
    pub fn stream_store_line(&mut self, addr: u64) {
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        let walk = self.tlb_walk(addr);
        self.m.counters.stores += 1;
        self.m.counters.stream_lines += 1;
        let line = line_of(addr);
        // NT semantics: any cached copy is invalidated, uncharged.
        let hw = &mut self.m.cores[self.id];
        hw.l1.invalidate(line);
        hw.l2.invalidate(line);
        self.m.l3[self.socket].invalidate(line);
        let remote = region.node() != self.socket;
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        let cfg = &self.m.cfg;
        let mut per_line = cfg.mem.stream_line_cycles;
        if remote {
            per_line += cfg.upi.remote_stream_extra;
            if enc {
                per_line += cfg.upi.uce_stream_extra;
            }
        }
        if enc {
            per_line *= cfg.mem.mee_stream_write_factor;
        }
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
        if remote {
            self.upi_line();
        }
        let cat = if enc {
            CostCategory::Mee
        } else if remote {
            CostCategory::Upi
        } else {
            CostCategory::Dram
        };
        self.commit(Charge {
            cycles: per_line + VEC_ISSUE + walk / self.m.cfg.mem.mlp_native,
            tally: Tally::Cycles(cat),
        });
    }

    /// Charge a streaming touch of `lines` consecutive cache lines starting
    /// at `addr`, plus `elems` element-level load/store issues, using the
    /// vector flag to pick scalar or 512-bit issue costs. Used by the
    /// `SimVec` stream APIs.
    ///
    /// Two equivalent resolution paths feed the one pooled charge (see
    /// DESIGN.md §15): the fast path hoists the run's region
    /// classification and per-line cost constants out of the line loop,
    /// and is selected only when that hoist is provably invariant — no
    /// fault engine installed (an AEX can flush the TLB/L1, and the EPC
    /// balloon can install a pager, between any two committed lines) and
    /// every line of the run in one region. Otherwise the historical
    /// per-line loop runs verbatim; it is the oracle the fast path is
    /// checked against (`machine::tests` drives both over identical
    /// sequences via [`Machine::force_stream_oracle`]).
    pub(crate) fn stream_touch(
        &mut self,
        addr: u64,
        lines: u64,
        elems: u64,
        write: bool,
        vector: bool,
    ) {
        if write {
            self.m.counters.stores += elems;
        } else {
            self.m.counters.loads += elems;
        }
        self.m.counters.stream_lines += lines;
        let first = line_of(addr);
        if lines == 1 {
            // Single-line touch — the cadence `read_stream` and the
            // incremental reader/writer produce for every line. The
            // per-line resolver is the fast path *and* the oracle here
            // (nothing to hoist over one line), and the dominant-category
            // pick collapses: only Compute (issue cost) and the one
            // category that served the line are populated, so the
            // first-strictly-greater scan reduces to a two-way compare
            // with the lowest-index (Compute) tie-break.
            let kind = if write { AccessKind::Store } else { AccessKind::Load };
            let (c, dram, cat) = self.resolve_stream_line(first, kind);
            let issue = if vector { VEC_ISSUE } else { STREAM_ELEM_ISSUE };
            let per_elem_tax = if !write && dram && self.m.mode == ExecMode::Enclave {
                ENCLAVE_STREAM_LOAD_TAX
            } else {
                0.0
            };
            let n_issues = if vector { 1 } else { elems };
            let issue_cost = n_issues as f64 * (issue + per_elem_tax);
            let dom = if c > issue_cost { cat } else { CostCategory::Compute };
            self.commit(Charge { cycles: c + issue_cost, tally: Tally::Cycles(dom) });
            return;
        }
        let last_addr = addr + lines.saturating_sub(1) * CACHE_LINE as u64;
        let fast = self.m.faults.is_none()
            && !self.m.stream_oracle
            && (addr >> REGION_SHIFT) == (last_addr >> REGION_SHIFT);
        let mut cats = [0.0f64; 9];
        let (line_cost_total, any_dram) = if fast {
            let run = self.resolve_stream_run(first, lines, write);
            // The partial sums were folded per line in line order, so the
            // rebuilt category array is bitwise what the slow loop's
            // per-line `cats[cat.index()] += c` would hold.
            cats[CostCategory::Cache.index()] = run.cache_sum;
            cats[run.dram_cat.index()] += run.dram_sum;
            (run.total, run.any_dram)
        } else {
            let kind = if write { AccessKind::Store } else { AccessKind::Load };
            let mut total = 0.0;
            let mut any_dram = false;
            for line in first..first + lines {
                let (c, dram, cat) = self.resolve_stream_line(line, kind);
                total += c;
                any_dram |= dram;
                cats[cat.index()] += c;
            }
            (total, any_dram)
        };
        let issue = if vector { VEC_ISSUE } else { STREAM_ELEM_ISSUE };
        // The enclave per-load tax only applies to demand fills the MEE
        // touches: cache-resident streams run at parity (Fig 12/15).
        let per_elem_tax = if !write && any_dram && self.m.mode == ExecMode::Enclave {
            ENCLAVE_STREAM_LOAD_TAX
        } else {
            0.0
        };
        let n_issues = if vector { lines.max(1) } else { elems };
        let issue_cost = n_issues as f64 * (issue + per_elem_tax);
        cats[CostCategory::Compute.index()] += issue_cost;
        // One pooled charge for the touch; attribute it to the dominant
        // contributor (deterministic lowest-index tie-break).
        self.commit(Charge {
            cycles: line_cost_total + issue_cost,
            tally: Tally::Cycles(CostCategory::dominant(&cats)),
        });
    }
}

impl super::Machine {
    /// Force every stream touch down the per-line slow path — the fast
    /// path's oracle. Verification/measurement hook: the machine property
    /// tests drive a forced-slow machine and a default machine over
    /// identical access sequences and require bit-identical clocks and
    /// counters, and `sim_bench` uses it to report the fast path's
    /// speedup. Simulated results are unaffected by construction.
    pub fn force_stream_oracle(&mut self, slow: bool) {
        self.stream_oracle = slow;
    }
}

// ---------------------------------------------------------------------------
// Charged accessors on SimVec (kept here so the cost model stays private).
// ---------------------------------------------------------------------------

impl<T: Copy> SimVec<T> {
    /// Charged random-pattern read of element `i`.
    #[inline]
    pub fn get(&self, core: &mut Core<'_>, i: usize) -> T {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Load);
        self.peek(i)
    }

    /// Charged random-pattern write of element `i`.
    #[inline]
    pub fn set(&mut self, core: &mut Core<'_>, i: usize, v: T) {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Store);
        self.poke(i, v);
    }

    /// Charged read-modify-write of element `i`.
    #[inline]
    pub fn rmw(&mut self, core: &mut Core<'_>, i: usize, f: impl FnOnce(&mut T)) {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Rmw);
        let mut v = self.peek(i);
        f(&mut v);
        self.poke(i, v);
    }

    /// Charged sequential scalar read of `range`, invoking
    /// `f(core, index, value)` per element; charging is interleaved line by
    /// line so the closure can issue further charged work (e.g. histogram
    /// increments). Models a forward scan the prefetcher covers.
    pub fn read_stream(
        &self,
        core: &mut Core<'_>,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Core<'_>, usize, T),
    ) {
        if range.is_empty() {
            return;
        }
        let per_line = (CACHE_LINE / Self::elem_size()).max(1);
        let data = self.as_slice_untracked();
        let mut i = range.start;
        while i < range.end {
            // Elements up to the next line boundary.
            let line_end = (i / per_line + 1) * per_line;
            let hi = line_end.min(range.end);
            core.stream_touch(self.addr(i), 1, (hi - i) as u64, false, false);
            // One bounds check per line, not per element.
            for (k, &x) in data[i..hi].iter().enumerate() {
                core.poison_context();
                f(core, i + k, x);
            }
            i = hi;
        }
    }

    /// Charged sequential *vectorized* read (512-bit loads): `f` receives
    /// the core, the starting element index, and the slice covered by each
    /// 64-byte vector.
    pub fn read_stream_vec(
        &self,
        core: &mut Core<'_>,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Core<'_>, usize, &[T]),
    ) {
        if range.is_empty() {
            return;
        }
        let per_line = (CACHE_LINE / Self::elem_size()).max(1);
        let mut i = range.start;
        while i < range.end {
            let line_end = (i / per_line + 1) * per_line;
            let hi = line_end.min(range.end);
            core.stream_touch(self.addr(i), 1, (hi - i) as u64, false, true);
            core.poison_context();
            f(core, i, &self.as_slice_untracked()[i..hi]);
            i = hi;
        }
    }

    /// Sequential writer that charges stream-store costs as it advances.
    pub fn stream_writer(&mut self, start: usize) -> StreamWriter<'_, T> {
        StreamWriter { vec: self, pos: start, line_open: u64::MAX }
    }

    /// Incremental sequential reader over `range`, for interleaved
    /// consumption of several streams at once (merge joins, two-pointer
    /// partitioning). Each stream charges like `read_stream`.
    pub fn stream_reader(&self, range: std::ops::Range<usize>) -> StreamReader<'_, T> {
        StreamReader { vec: self, pos: range.start, end: range.end, line_open: u64::MAX }
    }
}

/// Pull-style sequential reader over a `SimVec` (see
/// [`SimVec::stream_reader`]).
pub struct StreamReader<'v, T> {
    vec: &'v SimVec<T>,
    pos: usize,
    end: usize,
    line_open: u64,
}

impl<'v, T: Copy> StreamReader<'v, T> {
    /// Read the next element, or `None` at the end of the range.
    #[inline]
    pub fn next(&mut self, core: &mut Core<'_>) -> Option<T> {
        if self.pos >= self.end {
            return None;
        }
        let addr = self.vec.addr(self.pos);
        let line = line_of(addr);
        if line != self.line_open {
            core.stream_touch(addr, 1, 0, false, false);
            self.line_open = line;
        }
        let cost = core.stream_issue_cost(false);
        core.charge(cost);
        core.poison_context();
        let v = self.vec.peek(self.pos);
        self.pos += 1;
        Some(v)
    }

    /// Peek the next element without consuming or charging (the merge
    /// loop's comparison re-reads a register-resident value).
    #[inline]
    pub fn peek_next(&self) -> Option<T> {
        (self.pos < self.end).then(|| self.vec.peek(self.pos))
    }

    /// Elements remaining.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Current read position.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

/// Append-style sequential writer over a `SimVec` (join/scan
/// materialization). Charges one stream-store line cost per 64-byte line
/// crossed plus a per-element issue cost.
pub struct StreamWriter<'v, T> {
    vec: &'v mut SimVec<T>,
    pos: usize,
    line_open: u64,
}

impl<'v, T: Copy> StreamWriter<'v, T> {
    /// Write the next element.
    #[inline]
    pub fn push(&mut self, core: &mut Core<'_>, v: T) {
        let addr = self.vec.addr(self.pos);
        let line = line_of(addr);
        if line != self.line_open {
            core.stream_touch(addr, 1, 0, true, false);
            self.line_open = line;
        }
        core.charge(STREAM_ELEM_ISSUE);
        self.vec.poke(self.pos, v);
        self.pos += 1;
    }

    /// Elements written so far (next write position).
    pub fn pos(&self) -> usize {
        self.pos
    }
}
