//! The simulated machine: cores, caches, memory, enclave state, and the
//! cost model that turns memory accesses into cycles.
//!
//! # Execution model
//!
//! Operators run *functionally* on real data (they compute real join and
//! scan results) while every charged access drives this model. Workers of a
//! parallel phase execute sequentially in simulation, each accumulating its
//! own cycle count; the phase's wall time is the maximum worker time,
//! additionally bounded from below by the DRAM- and UPI-bandwidth caps
//! (shared-resource regulation).
//!
//! # Layered pipeline
//!
//! The model is split into layers, one module per hardware concern; this
//! file holds the shared state (`Machine`, `Core`, calibrated constants)
//! and each layer contributes `impl` blocks:
//!
//! * [`core`](self) — pipeline aggregation (ILP/MLP pooling, issue groups,
//!   dependency chains), branch and compute charges, phase orchestration
//!   and the per-core busy clocks. Owns the [`core::Charge`] choke point:
//!   every layer commits cycles through `Core::commit`, which is the only
//!   place (besides the fault engine's own exempt path) that advances the
//!   busy clock and ticks the fault engine.
//! * `access` — the load/store/stream entry points: random-pattern
//!   accesses, non-temporal stores, stream touches, and the charged
//!   `SimVec`/`StreamReader`/`StreamWriter` APIs.
//! * `hierarchy` — the L1/L2/L3 walk, TLB, installs/spills/write-backs,
//!   and the DRAM bandwidth cap.
//! * `epc` — the enclave memory boundary: EPC allocation limits, EDMM
//!   commits, SGXv1 paging, and MEE bus inflation.
//! * `numa` — UPI interconnect accounting and its bandwidth cap.
//! * `transitions` — ECALL/OCALL round trips, enclave boundary
//!   crossings, and AEX delivery (the fault tick itself).
//!
//! Layer files carry the `sgx-lint: fault-tick-module` pragma, so the
//! workspace lint proves every cycle-charging function in the set reaches
//! `fault_tick` — directly or through `commit`.
//!
//! The `commit` choke point is also where the opt-in cycle-attribution
//! profiler ([`crate::profile`]) observes the machine: every charge
//! carries a [`crate::profile::CostCategory`] (via `core::Tally`), and a
//! machine built while profiling is enabled attributes each charge to the
//! current phase scope (see [`Machine::phase`]).
//!
//! # Cost model summary (anchored to the paper)
//!
//! * Cache hit: level latency, overlapped by the out-of-order engine
//!   (`ilp_*`); *loads outside explicit issue groups serialize in enclave
//!   mode* — this is the §4.2 instruction-reordering restriction that makes
//!   naive histogram loops 225 % slower and that manual unrolling (issue
//!   groups) repairs.
//! * Random DRAM fill: full latency; loads overlap up to `mlp_*`
//!   outstanding misses (natively) but serialize in enclave mode unless
//!   grouped; EPC fills add MEE decrypt latency (§4.1), stores add the MEE
//!   write penalty, remote fills add UPI (+UCE in enclave mode) latency.
//! * Sequential (prefetched) traffic: bandwidth-bound per line with a small
//!   MEE tax (§5.1/§5.4) — the stream detector recognizes sequential fill
//!   patterns automatically, and the explicit `read_stream`/`StreamWriter`
//!   APIs model scan-style code.

use crate::cache::{Cache, StreamDetector};
use crate::config::HwConfig;
use crate::counters::Counters;
use crate::faults::FaultEngine;
use crate::mem::{ExecMode, RegionAlloc, Setting};
use crate::paging::Pager;
use std::collections::BTreeSet;

mod access;
mod core;
mod epc;
mod hierarchy;
mod numa;
mod transitions;

pub use self::access::{StreamReader, StreamWriter};

/// Per-line transfer cost when the line is found in a given cache level
/// during streaming (bytes-per-cycle limits of the level).
const L1_STREAM_LINE: f64 = 1.0;
const L2_STREAM_LINE: f64 = 2.5;
const L3_STREAM_LINE: f64 = 6.0;
/// Near-cost attributed to a prefetched DRAM fill (the demand access only
/// pays an L2-ish latency because the prefetcher ran ahead).
const PREFETCHED_NEAR: f64 = 2.0;
/// Issue cost per scalar element of a stream access.
const STREAM_ELEM_ISSUE: f64 = 0.5;
/// Extra per-load-instruction cost for stream loads in enclave mode;
/// calibrated against Fig 15 (64-bit linear reads −5.5 %, 512-bit ≈ −3 %).
const ENCLAVE_STREAM_LOAD_TAX: f64 = 0.08;
/// Issue cost of one 512-bit vector load/store.
const VEC_ISSUE: f64 = 1.0;
/// Pipeline-flush cost of one mispredicted branch (Ice Lake: ~17 cycles).
const BRANCH_MISS_CYCLES: f64 = 17.0;
/// Sentinel meaning "no random-access context": set at phase start and
/// whenever a stream element is consumed. The §4.2 enclave serialization
/// penalty only strikes loads issued in this state (the paper's Listing 1
/// pattern: scan the table, then use the value for an irregular access);
/// the paper verified that a loop incrementing a cache-resident array
/// alone — no interleaved stream — shows no enclave slowdown.
const CTX_POISON: u64 = u64::MAX;

/// Classification of a charged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Load,
    /// Plain store (fire-and-forget through the store buffer).
    Store,
    /// Read-modify-write of one location (load + dependent store).
    Rmw,
}

/// Resolved cost of one access before pipeline aggregation.
#[derive(Debug, Clone, Copy)]
struct AccessCost {
    /// Short-latency portion (cache-hit latency / miss-handling overhead).
    near: f64,
    /// DRAM-latency portion (overlappable through MLP).
    far: f64,
    /// True when the access is a read-modify-write whose dependency chain
    /// serializes in enclave mode unless it is inside an explicit issue
    /// group (pure loads stay speculatively overlapped — the paper's PHT
    /// *probe* phase degrades only mildly while the *build* phase
    /// collapses, Fig 4).
    serial_load: bool,
    /// Cost category of the level/region that served the access
    /// (cache hit / local DRAM / MEE / UPI), for profile attribution.
    cat: crate::profile::CostCategory,
}

/// Accumulator for an explicit issue group (a manual unroll).
#[derive(Debug, Default, Clone, Copy)]
struct GroupAcc {
    near_sum: f64,
    near_max: f64,
    far_sum: f64,
    count: u32,
    /// Raw (near+far) cycles per cost category, indexed by
    /// `CostCategory::index`; the pooled charge of the group is attributed
    /// to the dominant category at close time.
    cats: [f64; 9],
}

/// Aggregated outcome of a parallel phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Wall-clock cycles of the phase after bandwidth regulation.
    pub wall_cycles: f64,
    /// Busy cycles per participating worker.
    pub core_cycles: Vec<f64>,
    /// True when a DRAM or UPI bandwidth cap (not core time) set the wall
    /// time.
    pub bandwidth_bound: bool,
}

/// Per-core hardware state.
struct CoreHw {
    l1: Cache,
    l2: Cache,
    streams: StreamDetector,
    /// Direct-mapped second-level TLB (page tags; `u64::MAX` = invalid).
    tlb: Vec<u64>,
    /// Precomputed exact `page % tlb.len()` (the TLB entry counts of the
    /// shipped profiles — 1536 full, 96 scaled — are not powers of two).
    tlb_fm: crate::fastdiv::FastMod,
}

/// The simulated machine. Construct one per experiment repetition.
pub struct Machine {
    cfg: HwConfig,
    setting: Setting,
    mode: ExecMode,
    allocs: Vec<RegionAlloc>,
    cores: Vec<CoreHw>,
    l3: Vec<Cache>,
    counters: Counters,
    wall: f64,
    sealed: bool,
    seal_watermark: Vec<u64>,
    committed_pages: BTreeSet<u64>,
    pager: Option<Pager>,
    faults: Option<FaultEngine>,
    /// Cumulative busy cycles per hardware core across finished phases —
    /// the per-core local clock the fault engine schedules against.
    core_clock: Vec<f64>,
    /// Cycle-attribution context, installed at construction when
    /// `profile::enabled()` is set on this thread; `None` (one branch per
    /// commit) otherwise.
    prof: Option<Box<crate::profile::ProfCtx>>,
    /// Testing/measurement hook: when set, stream touches always take the
    /// per-line slow path (the fast path's oracle); see
    /// [`Machine::force_stream_oracle`].
    stream_oracle: bool,
}

/// Handle through which operator code charges work while running on one
/// simulated core. Obtained from [`Machine::run`] / [`Machine::parallel`].
pub struct Core<'m> {
    m: &'m mut Machine,
    id: usize,
    socket: usize,
    cycles: f64,
    dram_bytes: Vec<f64>,
    upi_bytes: f64,
    group: Option<GroupAcc>,
    dependent_depth: u32,
    windex: usize,
    /// EPC page faults raised by this worker in the current phase (SGXv1
    /// paging serializes globally; see `finish_phase`).
    faults: u64,
    /// EDMM pages this worker committed in the current phase (EAUG goes
    /// through the globally locked EPC page-management path).
    edmm_pages: u64,
    /// Last random-access address, for object-alternation detection.
    last_rand_addr: u64,
}

#[cfg(test)]
mod tests;
