//! The simulated machine: cores, caches, memory, enclave state, and the
//! cost model that turns memory accesses into cycles.
//!
//! # Execution model
//!
//! Operators run *functionally* on real data (they compute real join and
//! scan results) while every charged access drives this model. Workers of a
//! parallel phase execute sequentially in simulation, each accumulating its
//! own cycle count; the phase's wall time is the maximum worker time,
//! additionally bounded from below by the DRAM- and UPI-bandwidth caps
//! (shared-resource regulation).
//!
//! # Cost model summary (anchored to the paper)
//!
//! * Cache hit: level latency, overlapped by the out-of-order engine
//!   (`ilp_*`); *loads outside explicit issue groups serialize in enclave
//!   mode* — this is the §4.2 instruction-reordering restriction that makes
//!   naive histogram loops 225 % slower and that manual unrolling (issue
//!   groups) repairs.
//! * Random DRAM fill: full latency; loads overlap up to `mlp_*`
//!   outstanding misses (natively) but serialize in enclave mode unless
//!   grouped; EPC fills add MEE decrypt latency (§4.1), stores add the MEE
//!   write penalty, remote fills add UPI (+UCE in enclave mode) latency.
//! * Sequential (prefetched) traffic: bandwidth-bound per line with a small
//!   MEE tax (§5.1/§5.4) — the stream detector recognizes sequential fill
//!   patterns automatically, and the explicit `read_stream`/`StreamWriter`
//!   APIs model scan-style code.

use crate::cache::{line_of, Cache, Evicted, StreamDetector};
use crate::config::{HwConfig, SgxGeneration, CACHE_LINE, PAGE_SIZE};
use crate::counters::Counters;
use crate::faults::{ocall_cost, FaultEngine, FaultEvent, FaultProfile};
use crate::mem::{ExecMode, Region, RegionAlloc, Setting, SimVec};
use crate::paging::Pager;
use crate::sync::QueueModel;
use std::collections::BTreeSet;

/// Per-line transfer cost when the line is found in a given cache level
/// during streaming (bytes-per-cycle limits of the level).
const L1_STREAM_LINE: f64 = 1.0;
const L2_STREAM_LINE: f64 = 2.5;
const L3_STREAM_LINE: f64 = 6.0;
/// Near-cost attributed to a prefetched DRAM fill (the demand access only
/// pays an L2-ish latency because the prefetcher ran ahead).
const PREFETCHED_NEAR: f64 = 2.0;
/// Issue cost per scalar element of a stream access.
const STREAM_ELEM_ISSUE: f64 = 0.5;
/// Extra per-load-instruction cost for stream loads in enclave mode;
/// calibrated against Fig 15 (64-bit linear reads −5.5 %, 512-bit ≈ −3 %).
const ENCLAVE_STREAM_LOAD_TAX: f64 = 0.08;
/// Issue cost of one 512-bit vector load/store.
const VEC_ISSUE: f64 = 1.0;
/// Pipeline-flush cost of one mispredicted branch (Ice Lake: ~17 cycles).
const BRANCH_MISS_CYCLES: f64 = 17.0;
/// Sentinel meaning "no random-access context": set at phase start and
/// whenever a stream element is consumed. The §4.2 enclave serialization
/// penalty only strikes loads issued in this state (the paper's Listing 1
/// pattern: scan the table, then use the value for an irregular access);
/// the paper verified that a loop incrementing a cache-resident array
/// alone — no interleaved stream — shows no enclave slowdown.
const CTX_POISON: u64 = u64::MAX;

/// Classification of a charged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Load,
    /// Plain store (fire-and-forget through the store buffer).
    Store,
    /// Read-modify-write of one location (load + dependent store).
    Rmw,
}

/// Cache level an access hit in (DRAM fills return early).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HitLevel {
    L1,
    L2,
    L3,
}

/// Resolved cost of one access before pipeline aggregation.
#[derive(Debug, Clone, Copy)]
struct AccessCost {
    /// Short-latency portion (cache-hit latency / miss-handling overhead).
    near: f64,
    /// DRAM-latency portion (overlappable through MLP).
    far: f64,
    /// True when the access is a read-modify-write whose dependency chain
    /// serializes in enclave mode unless it is inside an explicit issue
    /// group (pure loads stay speculatively overlapped — the paper's PHT
    /// *probe* phase degrades only mildly while the *build* phase
    /// collapses, Fig 4).
    serial_load: bool,
}

/// Accumulator for an explicit issue group (a manual unroll).
#[derive(Debug, Default, Clone, Copy)]
struct GroupAcc {
    near_sum: f64,
    near_max: f64,
    far_sum: f64,
    count: u32,
}

/// Aggregated outcome of a parallel phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Wall-clock cycles of the phase after bandwidth regulation.
    pub wall_cycles: f64,
    /// Busy cycles per participating worker.
    pub core_cycles: Vec<f64>,
    /// True when a DRAM or UPI bandwidth cap (not core time) set the wall
    /// time.
    pub bandwidth_bound: bool,
}

/// Per-core hardware state.
struct CoreHw {
    l1: Cache,
    l2: Cache,
    streams: StreamDetector,
    /// Direct-mapped second-level TLB (page tags; `u64::MAX` = invalid).
    tlb: Vec<u64>,
}

/// The simulated machine. Construct one per experiment repetition.
pub struct Machine {
    cfg: HwConfig,
    setting: Setting,
    mode: ExecMode,
    allocs: Vec<RegionAlloc>,
    cores: Vec<CoreHw>,
    l3: Vec<Cache>,
    counters: Counters,
    wall: f64,
    sealed: bool,
    seal_watermark: Vec<u64>,
    committed_pages: BTreeSet<u64>,
    pager: Option<Pager>,
    faults: Option<FaultEngine>,
    /// Cumulative busy cycles per hardware core across finished phases —
    /// the per-core local clock the fault engine schedules against.
    core_clock: Vec<f64>,
}

impl Machine {
    /// Build a machine for one of the paper's three settings.
    pub fn new(cfg: HwConfig, setting: Setting) -> Machine {
        let n_regions = cfg.sockets * 2;
        let cores = (0..cfg.total_cores())
            .map(|_| CoreHw {
                l1: Cache::new(&cfg.l1d),
                l2: Cache::new(&cfg.l2),
                streams: StreamDetector::new(),
                tlb: vec![u64::MAX; cfg.mem.tlb_entries.max(1)],
            })
            .collect();
        let l3 = (0..cfg.sockets).map(|_| Cache::new(&cfg.l3)).collect();
        let pager = (cfg.generation == SgxGeneration::V1 && setting.mode() == ExecMode::Enclave)
            .then(|| Pager::new(&cfg.paging));
        Machine {
            mode: setting.mode(),
            setting,
            allocs: vec![RegionAlloc::default(); n_regions],
            cores,
            l3,
            counters: Counters::default(),
            wall: 0.0,
            sealed: false,
            seal_watermark: vec![0; n_regions],
            committed_pages: BTreeSet::new(),
            pager,
            faults: None,
            core_clock: vec![0.0; cfg.total_cores()],
            cfg,
        }
    }

    /// Install a deterministic fault-injection profile (AEX storms, EPC
    /// pressure, transient OCALL failures — see [`crate::faults`]). The
    /// resulting fault schedule is a pure function of the profile and its
    /// seed: replaying the same workload reproduces the identical trace,
    /// counters, and wall time.
    pub fn install_faults(&mut self, profile: FaultProfile) {
        self.faults = Some(FaultEngine::new(profile, self.cfg.total_cores()));
    }

    /// Events the fault engine has applied so far, in application order
    /// (empty without [`Machine::install_faults`]).
    pub fn fault_trace(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |engine| engine.trace())
    }

    /// Perform one OCALL round trip on the wall clock: the exit/re-entry
    /// pair, plus deterministic transient-failure retries with bounded
    /// exponential backoff (in simulated cycles) when an OCALL fault
    /// profile is installed. Returns the number of retries, also summed
    /// into `Counters::ocall_retries`. Native mode is a plain host call:
    /// free and infallible here.
    pub fn ocall(&mut self) -> u32 {
        if self.mode != ExecMode::Enclave {
            return 0;
        }
        let retries = match &mut self.faults {
            Some(engine) => engine.plan_ocall(self.wall),
            None => 0,
        };
        let backoff = self
            .faults
            .as_ref()
            .and_then(|engine| engine.profile().ocall)
            .map_or(0.0, |o| o.backoff_cycles);
        self.wall += ocall_cost(retries, self.cfg.transitions.transition_cycles, backoff);
        self.counters.transitions += 2 * (1 + retries as u64);
        self.counters.ocall_retries += retries as u64;
        retries
    }

    /// The hardware configuration.
    pub fn cfg(&self) -> &HwConfig {
        &self.cfg
    }

    /// The benchmark setting this machine models.
    pub fn setting(&self) -> Setting {
        self.setting
    }

    /// Execution mode (derived from the setting).
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Accumulated wall-clock cycles over all phases so far.
    pub fn wall_cycles(&self) -> f64 {
        self.wall
    }

    /// Wall time in seconds at the configured clock frequency.
    pub fn wall_secs(&self) -> f64 {
        self.cfg.cycles_to_secs(self.wall)
    }

    /// Reset the wall clock (e.g. after untimed setup).
    pub fn reset_wall(&mut self) {
        self.wall = 0.0;
    }

    /// Event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Allocate a vector in the setting's default data region on `node` 0.
    pub fn alloc<T: Copy + Default>(&mut self, len: usize) -> SimVec<T> {
        self.alloc_on(len, self.setting.data_region(0))
    }

    /// Allocate a vector in the setting's default data region on a given
    /// NUMA node.
    pub fn alloc_on_node<T: Copy + Default>(&mut self, len: usize, node: u8) -> SimVec<T> {
        self.alloc_on(len, self.setting.data_region(node))
    }

    /// Allocate a vector in an explicit region. Panics when an EPC region
    /// would exceed the configured per-socket EPC capacity — real enclaves
    /// fail to grow at exactly this point (use [`Machine::try_alloc_on`]
    /// to handle it).
    pub fn alloc_on<T: Copy + Default>(&mut self, len: usize, region: Region) -> SimVec<T> {
        self.try_alloc_on(len, region).unwrap_or_else(|| {
            // sgx-lint: allow(panic-in-library) documented API contract: alloc_on panics on EPC exhaustion, try_alloc_on is the fallible twin
            panic!(
                "EPC capacity exceeded on node {} ({} bytes per socket)",
                region.node(),
                self.cfg.epc_per_socket
            )
        })
    }

    /// Fallible allocation: returns `None` when an EPC region would exceed
    /// the per-socket EPC capacity (Table 1: 64 GB/socket).
    pub fn try_alloc_on<T: Copy + Default>(
        &mut self,
        len: usize,
        region: Region,
    ) -> Option<SimVec<T>> {
        let bytes = (len * SimVec::<T>::elem_size()) as u64;
        if region.is_epc() {
            let used = self.allocs[region.index()].used;
            if used + bytes > self.cfg.epc_per_socket as u64 {
                return None;
            }
        }
        let off = self.allocs[region.index()].alloc(bytes);
        Some(SimVec::new(len, region.base() + off, region))
    }

    /// Bytes allocated so far in a region.
    pub fn region_used(&self, region: Region) -> u64 {
        self.allocs[region.index()].used
    }

    /// Freeze the enclave's statically committed size: EPC memory allocated
    /// *after* this call is committed on first charged touch via EDMM,
    /// paying `EdmmConfig::page_add_cycles` per page (§4.4, Fig 11).
    pub fn seal_enclave(&mut self) {
        self.sealed = true;
        for (i, a) in self.allocs.iter().enumerate() {
            self.seal_watermark[i] = a.used;
        }
    }

    /// Drop all cache contents (between experiment repetitions).
    pub fn flush_caches(&mut self) {
        for c in &mut self.cores {
            c.l1.flush();
            c.l2.flush();
            c.streams.reset();
            c.tlb.fill(u64::MAX);
        }
        for l3 in &mut self.l3 {
            l3.flush();
        }
    }

    /// Charge an enclave entry/exit pair to the wall clock (no-op in native
    /// mode), e.g. the ECALL that launches a query.
    pub fn ecall(&mut self) {
        if self.mode == ExecMode::Enclave {
            self.wall += 2.0 * self.cfg.transitions.transition_cycles;
            self.counters.transitions += 2;
        }
    }

    /// Run single-threaded code on core 0, advancing the wall clock.
    pub fn run<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        self.run_on(0, f)
    }

    /// Run single-threaded code on a specific core.
    pub fn run_on<R>(&mut self, core_id: usize, f: impl FnOnce(&mut Core) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.parallel(&[core_id], |core| {
            // sgx-lint: allow(panic-in-library) FnOnce-through-Option shim; parallel() calls each worker exactly once
            let f = f.take().expect("single-core phase runs the closure once");
            out = Some(f(core));
        });
        // sgx-lint: allow(panic-in-library) same invariant: the one-element core list ran exactly once
        out.expect("single-core closure always runs")
    }

    /// Execute one parallel phase on the given hardware cores. The closure
    /// is invoked once per worker (sequentially, in core order); wall time
    /// advances by the regulated phase duration.
    pub fn parallel(&mut self, cores: &[usize], mut f: impl FnMut(&mut Core)) -> PhaseStats {
        assert!(!cores.is_empty(), "a phase needs at least one core");
        let sockets = self.cfg.sockets;
        let mut core_cycles = Vec::with_capacity(cores.len());
        let mut dram_bytes = vec![0.0; sockets];
        let mut upi_bytes = 0.0;
        let mut faults = 0u64;
        let mut edmm_pages = 0u64;
        for (w, &id) in cores.iter().enumerate() {
            assert!(id < self.cfg.total_cores(), "core id {id} out of range");
            let mut core = Core::new(self, id);
            core.windex = w;
            f(&mut core);
            core_cycles.push(core.cycles);
            for s in 0..sockets {
                dram_bytes[s] += core.dram_bytes[s];
            }
            upi_bytes += core.upi_bytes;
            faults += core.faults;
            let busy = core.cycles;
            edmm_pages += core.edmm_pages;
            self.core_clock[id] += busy;
        }
        self.finish_phase(core_cycles, dram_bytes, upi_bytes, faults, edmm_pages)
    }

    /// Execute a task-queue-driven phase: workers repeatedly pop tasks from
    /// `queue` (whose cost model serializes contended critical sections)
    /// and process them. Workers are interleaved by their local clocks, so
    /// queue contention plays out realistically (§4.4, Fig 10).
    pub fn parallel_tasks(
        &mut self,
        cores: &[usize],
        queue: &mut dyn QueueModel,
        n_tasks: usize,
        mut f: impl FnMut(&mut Core, usize),
    ) -> PhaseStats {
        assert!(!cores.is_empty(), "a phase needs at least one core");
        queue.reset(n_tasks);
        let sockets = self.cfg.sockets;
        let mut clocks = vec![0.0f64; cores.len()];
        let mut live = vec![true; cores.len()];
        let mut dram_bytes = vec![0.0; sockets];
        let mut upi_bytes = 0.0;
        let mut faults = 0u64;
        let mut edmm_pages = 0u64;
        let cfg = self.cfg.clone();
        loop {
            let Some(w) = (0..cores.len())
                .filter(|&w| live[w])
                .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]))
            else {
                break;
            };
            let mode = self.mode;
            let (t, task) = queue.dequeue(clocks[w], mode, &cfg, &mut self.counters);
            clocks[w] = t;
            match task {
                None => live[w] = false,
                Some(task) => {
                    let mut core = Core::new(self, cores[w]);
                    core.windex = w;
                    f(&mut core, task);
                    clocks[w] += core.cycles;
                    for s in 0..sockets {
                        dram_bytes[s] += core.dram_bytes[s];
                    }
                    upi_bytes += core.upi_bytes;
                    faults += core.faults;
                    let busy = core.cycles;
                    edmm_pages += core.edmm_pages;
                    self.core_clock[cores[w]] += busy;
                }
            }
        }
        self.finish_phase(clocks, dram_bytes, upi_bytes, faults, edmm_pages)
    }

    fn finish_phase(
        &mut self,
        core_cycles: Vec<f64>,
        dram_bytes: Vec<f64>,
        upi_bytes: f64,
        faults: u64,
        edmm_pages: u64,
    ) -> PhaseStats {
        let busiest = core_cycles.iter().cloned().fold(0.0, f64::max);
        let mut bound = busiest;
        let mut bandwidth_bound = false;
        for &bytes in &dram_bytes {
            let cap = bytes * self.cfg.mem.socket_bw_cycles_per_byte;
            if cap > bound {
                bound = cap;
                bandwidth_bound = true;
            }
        }
        let upi_cap = upi_bytes * self.cfg.upi.upi_bw_cycles_per_byte;
        if upi_cap > bound {
            bound = upi_cap;
            bandwidth_bound = true;
        }
        // SGXv1 EPC paging is globally serialized (the kernel driver's
        // EWB/ELDU path holds a global lock), so concurrent workers cannot
        // overlap their faults: the phase can never finish faster than the
        // serial fault train.
        let fault_cap = faults as f64 * self.cfg.paging.fault_cycles;
        if fault_cap > bound {
            bound = fault_cap;
            bandwidth_bound = true;
        }
        // EDMM page adds serialize the same way: EAUG/EACCEPT go through
        // the driver's global EPC page-management lock, so concurrent
        // workers cannot overlap their enclave growth (this is what makes
        // Fig 11's dynamically grown enclave reach only ~4.5 % of the
        // statically sized one even with 16 threads).
        let edmm_cap = edmm_pages as f64 * self.cfg.edmm.page_add_cycles;
        if edmm_cap > bound {
            bound = edmm_cap;
            bandwidth_bound = true;
        }
        self.wall += bound;
        PhaseStats { wall_cycles: bound, core_cycles, bandwidth_bound }
    }
}

/// Handle through which operator code charges work while running on one
/// simulated core. Obtained from [`Machine::run`] / [`Machine::parallel`].
pub struct Core<'m> {
    m: &'m mut Machine,
    id: usize,
    socket: usize,
    cycles: f64,
    dram_bytes: Vec<f64>,
    upi_bytes: f64,
    group: Option<GroupAcc>,
    dependent_depth: u32,
    windex: usize,
    /// EPC page faults raised by this worker in the current phase (SGXv1
    /// paging serializes globally; see `finish_phase`).
    faults: u64,
    /// EDMM pages this worker committed in the current phase (EAUG goes
    /// through the globally locked EPC page-management path).
    edmm_pages: u64,
    /// Last random-access address, for object-alternation detection.
    last_rand_addr: u64,
}

impl<'m> Core<'m> {
    fn new(m: &'m mut Machine, id: usize) -> Core<'m> {
        let socket = m.cfg.socket_of_core(id);
        let sockets = m.cfg.sockets;
        Core {
            m,
            id,
            socket,
            cycles: 0.0,
            dram_bytes: vec![0.0; sockets],
            upi_bytes: 0.0,
            group: None,
            dependent_depth: 0,
            windex: 0,
            faults: 0,
            edmm_pages: 0,
            last_rand_addr: CTX_POISON,
        }
    }

    /// Hardware core id this worker is pinned to.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Index of this worker within the phase's core list (0-based), for
    /// indexing per-worker scratch structures.
    pub fn worker(&self) -> usize {
        self.windex
    }

    /// DRAM-bus bytes one cache line effectively occupies: encrypted EPC
    /// lines carry MEE counter/MAC traffic, so under enclave execution they
    /// consume proportionally more of the bandwidth budget (this is what
    /// keeps the few-percent MEE tax visible even when a phase saturates
    /// the memory bus, Fig 13/15).
    fn line_bus_bytes(&self, enc: bool, write: bool) -> f64 {
        let base = CACHE_LINE as f64;
        if !enc {
            return base;
        }
        let f = if write {
            self.m.cfg.mem.mee_stream_write_factor
        } else {
            self.m.cfg.mem.mee_stream_factor
        };
        base * f
    }

    /// Cost of issuing one scalar stream-element access in the current
    /// mode (used by the incremental stream reader/writer helpers).
    fn stream_issue_cost(&self, write: bool) -> f64 {
        if !write && self.m.mode == ExecMode::Enclave {
            STREAM_ELEM_ISSUE + ENCLAVE_STREAM_LOAD_TAX
        } else {
            STREAM_ELEM_ISSUE
        }
    }

    /// Socket (NUMA node) of this core.
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// Execution mode of the machine.
    pub fn mode(&self) -> ExecMode {
        self.m.mode
    }

    /// Cycles this worker has accumulated in the current phase.
    pub fn busy_cycles(&self) -> f64 {
        self.cycles
    }

    /// Charge `n` scalar ALU operations.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.m.counters.alu_ops += n;
        self.cycles += n as f64 * self.m.cfg.pipeline.cycles_per_op;
        self.fault_tick();
    }

    /// Charge `n` 512-bit vector operations.
    #[inline]
    pub fn vec_compute(&mut self, n: u64) {
        self.m.counters.vec_ops += n;
        self.cycles += n as f64 * self.m.cfg.pipeline.cycles_per_vec_op;
        self.fault_tick();
    }

    /// Charge raw cycles (e.g. a modelled library call).
    #[inline]
    pub fn charge(&mut self, cycles: f64) {
        self.cycles += cycles;
        self.fault_tick();
    }

    /// Perform one OCALL round trip from this core, charging the worker's
    /// cycle clock instead of the machine wall clock; otherwise identical
    /// to [`Machine::ocall`] (deterministic transient failures, bounded
    /// backoff, `ocall_retries` accounting).
    pub fn ocall(&mut self) -> u32 {
        if self.m.mode != ExecMode::Enclave {
            return 0;
        }
        let at = self.m.core_clock[self.id] + self.cycles;
        let retries = match &mut self.m.faults {
            Some(engine) => engine.plan_ocall(at),
            None => 0,
        };
        let backoff = self
            .m
            .faults
            .as_ref()
            .and_then(|engine| engine.profile().ocall)
            .map_or(0.0, |o| o.backoff_cycles);
        self.cycles += ocall_cost(retries, self.m.cfg.transitions.transition_cycles, backoff);
        self.m.counters.transitions += 2 * (1 + retries as u64);
        self.m.counters.ocall_retries += retries as u64;
        self.fault_tick();
        retries
    }

    /// Fault-injection hook, called after every cycle-advancing charge:
    /// delivers asynchronous interrupts that came due on this core and
    /// inflates the EPC pressure balloon once its threshold is crossed. A
    /// machine without faults installed pays a single branch.
    #[inline]
    fn fault_tick(&mut self) {
        if self.m.faults.is_some() {
            self.fault_tick_slow();
        }
    }

    #[cold]
    fn fault_tick_slow(&mut self) {
        let base = self.m.core_clock[self.id];
        // EPC pressure: once the balloon inflates, every touch beyond the
        // shrunken residency pages through the SGXv1-style pager
        // (`pre_touch`), and `finish_phase` serializes the fault train.
        if self.m.mode == ExecMode::Enclave && self.m.pager.is_none() {
            let clock = base + self.cycles;
            let resident = self.m.faults.as_mut().and_then(|engine| engine.poll_balloon(clock));
            if let Some(resident_bytes) = resident {
                let mut paging = self.m.cfg.paging;
                paging.resident_bytes = resident_bytes;
                self.m.pager = Some(Pager::new(&paging));
            }
        }
        // Interrupt delivery. Interrupts stay masked while one is serviced
        // (the next event is scheduled from the post-handler clock), so a
        // storm whose handler outlasts the mean interval cannot livelock.
        loop {
            let clock = base + self.cycles;
            let due = self
                .m
                .faults
                .as_ref()
                .is_some_and(|engine| engine.interrupt_due(self.id, clock));
            if !due {
                return;
            }
            let cost = match self.m.mode {
                ExecMode::Enclave => {
                    // An AEX: scrub state, exit, kernel handler, ERESUME —
                    // a full enclave round trip — and the core resumes with
                    // cold L1/TLB/stream state, so the refill cost emerges
                    // organically from the cache model.
                    self.m.counters.aex_events += 1;
                    self.m.counters.transitions += 2;
                    let hw = &mut self.m.cores[self.id];
                    hw.l1.flush();
                    hw.streams.reset();
                    hw.tlb.fill(u64::MAX);
                    2.0 * self.m.cfg.transitions.transition_cycles
                }
                // A native interrupt is just a kernel round trip: no
                // enclave state to scrub, no TLB flush.
                ExecMode::Native => self.m.cfg.interrupts.native_interrupt_cycles,
            };
            self.cycles += cost;
            if let Some(engine) = self.m.faults.as_mut() {
                engine.interrupt_fired(self.id, clock, base + self.cycles);
            }
        }
    }

    /// Charge the expected cost of a data-dependent branch that the
    /// predictor misses with probability `miss_prob` (e.g. CrkJoin's
    /// two-pointer comparison on a random key bit: 0.5).
    #[inline]
    pub fn branch(&mut self, miss_prob: f64) {
        self.cycles += miss_prob.clamp(0.0, 1.0) * BRANCH_MISS_CYCLES;
        self.fault_tick();
    }

    /// Charge one enclave boundary crossing (no-op natively).
    pub fn transition(&mut self) {
        if self.m.mode == ExecMode::Enclave {
            self.cycles += self.m.cfg.transitions.transition_cycles;
            self.m.counters.transitions += 1;
            self.fault_tick();
        }
    }

    /// Open an explicit issue group: all accesses inside `f` are declared
    /// independent of one another (the paper's Listing 2 manual unroll —
    /// compute N indexes first, then issue N memory operations). Native
    /// mode is insensitive to grouping; enclave mode only overlaps
    /// *within* a group.
    pub fn group<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        assert!(self.group.is_none(), "issue groups do not nest");
        self.group = Some(GroupAcc::default());
        let r = f(self);
        // sgx-lint: allow(panic-in-library) set to Some two lines above; groups cannot nest (asserted on entry)
        let g = self.group.take().expect("group still open");
        self.close_group(g);
        r
    }

    /// Mark the accesses inside `f` as a serial dependency chain (pointer
    /// chasing): each access waits for the full latency of the previous
    /// one, in both modes.
    pub fn dependent<R>(&mut self, f: impl FnOnce(&mut Core) -> R) -> R {
        self.dependent_depth += 1;
        let r = f(self);
        self.dependent_depth -= 1;
        r
    }

    fn close_group(&mut self, g: GroupAcc) {
        if g.count == 0 {
            return;
        }
        let p = self.m.cfg.pipeline;
        let mem = self.m.cfg.mem;
        let cost = match self.m.mode {
            ExecMode::Native => {
                (g.near_sum / p.ilp_native).max(g.far_sum / mem.mlp_native)
            }
            ExecMode::Enclave => {
                self.m.counters.enclave_groups += 1;
                let near = g.near_max + (g.near_sum - g.near_max) / p.ilp_enclave_group;
                near.max(g.far_sum / mem.mlp_enclave) + p.enclave_group_overhead
            }
        };
        self.cycles += cost;
        self.fault_tick();
    }

    /// Resolve + charge a random-pattern access of `bytes` at `addr`.
    #[inline]
    pub(crate) fn access(&mut self, addr: u64, bytes: usize, kind: AccessKind) {
        debug_assert!(bytes <= CACHE_LINE);
        match kind {
            AccessKind::Load => self.m.counters.loads += 1,
            AccessKind::Store => self.m.counters.stores += 1,
            AccessKind::Rmw => {
                self.m.counters.loads += 1;
                self.m.counters.stores += 1;
            }
        }
        // Context-switch detection: the enclave serialization penalty
        // strikes the first load after a stream element was consumed (the
        // Listing 1 pattern: scan a table, then use the loaded value for an
        // irregular access). Later loads of the same chain — and loops that
        // only touch one object, like the paper's increment-only check —
        // overlap normally.
        let switched = self.last_rand_addr == CTX_POISON;
        if kind != AccessKind::Store {
            self.last_rand_addr = addr;
        }
        let first = line_of(addr);
        let last = line_of(addr + bytes as u64 - 1);
        for line in first..=last {
            let mut cost = self.resolve_line(line, kind, false);
            cost.serial_load &= switched;
            self.post(cost);
        }
    }

    /// Invalidate the random-access context (called per stream element so
    /// interleaved random accesses count as object switches).
    #[inline]
    fn poison_context(&mut self) {
        self.last_rand_addr = CTX_POISON;
    }

    /// Commit a resolved access cost to the pipeline model.
    fn post(&mut self, c: AccessCost) {
        if self.dependent_depth > 0 {
            // Serial dependency chain: no overlap in either mode. No extra
            // enclave overhead — the paper's in-cache pointer chase runs at
            // parity (Fig 5), and on DRAM chases the MEE fill latency in
            // `far` already carries the whole penalty.
            self.cycles += c.near + c.far;
            self.fault_tick();
            return;
        }
        if let Some(g) = &mut self.group {
            g.near_sum += c.near;
            g.near_max = g.near_max.max(c.near);
            g.far_sum += c.far;
            g.count += 1;
            return;
        }
        let p = self.m.cfg.pipeline;
        let mem = self.m.cfg.mem;
        let cost = match self.m.mode {
            ExecMode::Native => (c.near / p.ilp_native).max(c.far / mem.mlp_native),
            ExecMode::Enclave => {
                if c.serial_load {
                    // The §4.2 restriction: ungrouped loads do not overlap
                    // across iterations in enclave mode.
                    c.near + mem.enclave_serial_far_fraction * c.far + p.enclave_group_overhead
                } else {
                    // Pooled path: never overlaps *better* than native
                    // (`ilp_enclave_group` only applies within explicit
                    // issue groups).
                    (c.near / p.ilp_native.min(p.ilp_enclave_group))
                        .max(c.far / mem.mlp_enclave)
                }
            }
        };
        self.cycles += cost;
        self.fault_tick();
    }

    /// Walk the cache hierarchy for one line; fills caches and accounts
    /// bandwidth. `stream` forces the prefetched-fill cost (explicit
    /// sequential APIs).
    fn resolve_line(&mut self, line: u64, kind: AccessKind, stream: bool) -> AccessCost {
        let write = kind != AccessKind::Load;
        let addr = line * CACHE_LINE as u64;
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        let walk = self.tlb_walk(addr);

        let cfg = &self.m.cfg;
        let (l1_lat, l2_lat, l3_lat) = (cfg.l1d.latency, cfg.l2.latency, cfg.l3.latency);
        let hw = &mut self.m.cores[self.id];
        let level;
        if hw.l1.access(line, write) {
            self.m.counters.l1_hits += 1;
            level = HitLevel::L1;
        } else if hw.l2.access(line, write) {
            self.m.counters.l2_hits += 1;
            level = HitLevel::L2;
            self.install_l1(line, write);
        } else if self.m.l3[self.socket].access(line, write) {
            self.m.counters.l3_hits += 1;
            level = HitLevel::L3;
            self.install_l1(line, write);
        } else {
            // DRAM fill.
            self.m.counters.dram_fills += 1;
            let prefetched = stream || self.m.cores[self.id].streams.observe(line);
            if prefetched {
                self.m.counters.prefetched_fills += 1;
            }
            let remote = region.node() != self.socket;
            if remote {
                self.m.counters.remote_fills += 1;
                self.upi_bytes += CACHE_LINE as f64;
            }
            let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
            if enc {
                self.m.counters.epc_fills += 1;
            }
            self.dram_bytes[region.node()] += self.line_bus_bytes(enc, false);
            // Install bottom-up so evictions cascade.
            self.install_l3(line, write);
            self.install_l1(line, write);
            let cfg = &self.m.cfg;
            let cost = if prefetched {
                let mut per_line = cfg.mem.stream_line_cycles;
                if remote {
                    per_line += cfg.upi.remote_stream_extra;
                    if enc {
                        per_line += cfg.upi.uce_stream_extra;
                    }
                }
                if enc {
                    per_line *= if write {
                        cfg.mem.mee_stream_write_factor
                    } else {
                        cfg.mem.mee_stream_factor
                    };
                }
                if write {
                    per_line += cfg.mem.writeback_line_cycles;
                    // Write-allocate: the eventual write-back consumes
                    // bandwidth too.
                    self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
                    if remote {
                        self.upi_bytes += CACHE_LINE as f64;
                    }
                }
                return AccessCost { near: PREFETCHED_NEAR, far: per_line + walk, serial_load: false };
            } else {
                let mut far = cfg.mem.dram_latency - cfg.l3.latency + walk;
                if remote {
                    far += cfg.upi.remote_latency;
                }
                if enc {
                    far += cfg.mem.mee_fill_latency;
                    if remote {
                        far += cfg.upi.uce_latency;
                    }
                    if write {
                        far += cfg.mem.mee_write_penalty;
                    }
                }
                AccessCost { near: cfg.l3.latency, far, serial_load: kind == AccessKind::Rmw }
            };
            return cost;
        }
        let near = match level {
            HitLevel::L1 => l1_lat,
            HitLevel::L2 => l2_lat,
            HitLevel::L3 => l3_lat,
        };
        AccessCost { near, far: walk, serial_load: kind == AccessKind::Rmw }
    }

    /// Probe the per-core TLB for `addr`'s page; returns the page-walk
    /// cycles (0 on a hit). Walks are pooled with the far/DRAM portion of
    /// the access (they overlap with other outstanding misses).
    #[inline]
    fn tlb_walk(&mut self, addr: u64) -> f64 {
        let page = addr / PAGE_SIZE as u64;
        let hw = &mut self.m.cores[self.id];
        let slot = (page as usize) % hw.tlb.len();
        if hw.tlb[slot] == page {
            0.0
        } else {
            hw.tlb[slot] = page;
            self.m.counters.tlb_misses += 1;
            self.m.cfg.mem.tlb_walk_cycles
        }
    }

    /// EDMM commit and SGXv1 paging checks for a charged touch.
    #[inline]
    fn pre_touch(&mut self, addr: u64, region: Region) {
        if self.m.mode != ExecMode::Enclave || !region.is_epc() {
            return;
        }
        if self.m.sealed {
            let off = addr - region.base();
            if off >= self.m.seal_watermark[region.index()] {
                let page = addr / PAGE_SIZE as u64;
                if self.m.committed_pages.insert(page) {
                    self.cycles += self.m.cfg.edmm.page_add_cycles;
                    self.edmm_pages += 1;
                    self.m.counters.edmm_pages += 1;
                    self.fault_tick();
                }
            }
        }
        let fault = self.m.pager.as_mut().map_or(0.0, |pager| pager.touch(addr));
        if fault > 0.0 {
            self.cycles += fault;
            self.faults += 1;
            self.m.counters.epc_page_faults += 1;
            self.fault_tick();
        }
    }

    fn install_l1(&mut self, line: u64, dirty: bool) {
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l1.insert(line, dirty) {
            self.spill_l2(v);
        }
    }

    fn spill_l2(&mut self, victim: u64) {
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l2.insert(victim, true) {
            self.spill_l3(v);
        }
    }

    fn install_l3(&mut self, line: u64, dirty: bool) {
        let hw = &mut self.m.cores[self.id];
        if let Evicted::Dirty(v) = hw.l2.insert(line, dirty) {
            if let Evicted::Dirty(v2) = self.m.l3[self.socket].insert(v, true) {
                self.writeback(v2);
            }
        }
        if let Evicted::Dirty(v) = self.m.l3[self.socket].insert(line, dirty) {
            self.writeback(v);
        }
    }

    fn spill_l3(&mut self, victim: u64) {
        if let Evicted::Dirty(v) = self.m.l3[self.socket].insert(victim, true) {
            self.writeback(v);
        }
    }

    /// Account a dirty L3 eviction: write-back bandwidth plus a small
    /// latency share folded into the evicting access.
    fn writeback(&mut self, line: u64) {
        self.m.counters.writebacks += 1;
        let region = Region::of_addr(line * CACHE_LINE as u64);
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
        if region.node() != self.socket {
            self.upi_bytes += CACHE_LINE as f64;
        }
        self.cycles += self.m.cfg.mem.writeback_line_cycles
            / self.m.cfg.mem.mlp_native.max(1.0);
        self.fault_tick();
    }

    /// Charge one non-temporal 64-byte store to `addr` (software
    /// write-combining buffer flush, materialization). Unlike a regular
    /// store, an NT store writes the full line without a read-for-ownership
    /// fill and bypasses the caches — half the bus traffic of a
    /// write-allocate miss, and no pollution.
    pub fn stream_store_line(&mut self, addr: u64) {
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        let walk = self.tlb_walk(addr);
        self.m.counters.stores += 1;
        self.m.counters.stream_lines += 1;
        let line = line_of(addr);
        // NT semantics: any cached copy is invalidated, uncharged.
        let hw = &mut self.m.cores[self.id];
        hw.l1.invalidate(line);
        hw.l2.invalidate(line);
        self.m.l3[self.socket].invalidate(line);
        let remote = region.node() != self.socket;
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        let cfg = &self.m.cfg;
        let mut per_line = cfg.mem.stream_line_cycles;
        if remote {
            per_line += cfg.upi.remote_stream_extra;
            if enc {
                per_line += cfg.upi.uce_stream_extra;
            }
        }
        if enc {
            per_line *= cfg.mem.mee_stream_write_factor;
        }
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
        if remote {
            self.upi_bytes += CACHE_LINE as f64;
        }
        self.cycles += per_line + VEC_ISSUE + walk / self.m.cfg.mem.mlp_native;
        self.fault_tick();
    }

    /// Charge a streaming touch of `lines` consecutive cache lines starting
    /// at `addr`, plus `elems` element-level load/store issues, using the
    /// vector flag to pick scalar or 512-bit issue costs. Used by the
    /// `SimVec` stream APIs.
    pub(crate) fn stream_touch(
        &mut self,
        addr: u64,
        lines: u64,
        elems: u64,
        write: bool,
        vector: bool,
    ) {
        let kind = if write { AccessKind::Store } else { AccessKind::Load };
        if write {
            self.m.counters.stores += elems;
        } else {
            self.m.counters.loads += elems;
        }
        self.m.counters.stream_lines += lines;
        let first = line_of(addr);
        let mut line_cost_total = 0.0;
        let mut any_dram = false;
        for line in first..first + lines {
            let (c, dram) = self.resolve_stream_line(line, kind);
            line_cost_total += c;
            any_dram |= dram;
        }
        let issue = if vector { VEC_ISSUE } else { STREAM_ELEM_ISSUE };
        // The enclave per-load tax only applies to demand fills the MEE
        // touches: cache-resident streams run at parity (Fig 12/15).
        let per_elem_tax = if !write && any_dram && self.m.mode == ExecMode::Enclave {
            ENCLAVE_STREAM_LOAD_TAX
        } else {
            0.0
        };
        let n_issues = if vector { lines.max(1) } else { elems };
        self.cycles += line_cost_total + n_issues as f64 * (issue + per_elem_tax);
        self.fault_tick();
    }

    /// Per-line cost of a stream access through the hierarchy; the flag
    /// reports whether the line came from DRAM.
    fn resolve_stream_line(&mut self, line: u64, kind: AccessKind) -> (f64, bool) {
        let write = kind != AccessKind::Load;
        let addr = line * CACHE_LINE as u64;
        let region = Region::of_addr(addr);
        self.pre_touch(addr, region);
        // Page walks on stream paths overlap well (one per 64 lines);
        // charge them pooled like the rest of the line cost.
        let walk = self.tlb_walk(addr) / self.m.cfg.mem.mlp_native;
        let hw = &mut self.m.cores[self.id];
        if hw.l1.access(line, write) {
            self.m.counters.l1_hits += 1;
            return (L1_STREAM_LINE + walk, false);
        }
        if hw.l2.access(line, write) {
            self.m.counters.l2_hits += 1;
            self.install_l1(line, write);
            return (L2_STREAM_LINE + walk, false);
        }
        if self.m.l3[self.socket].access(line, write) {
            self.m.counters.l3_hits += 1;
            self.install_l1(line, write);
            return (L3_STREAM_LINE + walk, false);
        }
        self.m.counters.dram_fills += 1;
        self.m.counters.prefetched_fills += 1;
        let remote = region.node() != self.socket;
        let enc = region.is_epc() && self.m.mode == ExecMode::Enclave;
        if enc {
            self.m.counters.epc_fills += 1;
        }
        self.dram_bytes[region.node()] += self.line_bus_bytes(enc, false);
        if remote {
            self.m.counters.remote_fills += 1;
            self.upi_bytes += CACHE_LINE as f64;
        }
        self.install_l3(line, write);
        self.install_l1(line, write);
        let cfg = &self.m.cfg;
        let mut per_line = cfg.mem.stream_line_cycles;
        if remote {
            per_line += cfg.upi.remote_stream_extra;
            if enc {
                per_line += cfg.upi.uce_stream_extra;
            }
        }
        if enc {
            per_line *= if write {
                cfg.mem.mee_stream_write_factor
            } else {
                cfg.mem.mee_stream_factor
            };
        }
        if write {
            per_line += cfg.mem.writeback_line_cycles;
            self.dram_bytes[region.node()] += self.line_bus_bytes(enc, true);
            if remote {
                self.upi_bytes += CACHE_LINE as f64;
            }
        }
        (per_line + walk, true)
    }
}

// ---------------------------------------------------------------------------
// Charged accessors on SimVec (kept here so the cost model stays private).
// ---------------------------------------------------------------------------

impl<T: Copy> SimVec<T> {
    /// Charged random-pattern read of element `i`.
    #[inline]
    pub fn get(&self, core: &mut Core<'_>, i: usize) -> T {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Load);
        self.peek(i)
    }

    /// Charged random-pattern write of element `i`.
    #[inline]
    pub fn set(&mut self, core: &mut Core<'_>, i: usize, v: T) {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Store);
        self.poke(i, v);
    }

    /// Charged read-modify-write of element `i`.
    #[inline]
    pub fn rmw(&mut self, core: &mut Core<'_>, i: usize, f: impl FnOnce(&mut T)) {
        core.access(self.addr(i), Self::elem_size(), AccessKind::Rmw);
        let mut v = self.peek(i);
        f(&mut v);
        self.poke(i, v);
    }

    /// Charged sequential scalar read of `range`, invoking
    /// `f(core, index, value)` per element; charging is interleaved line by
    /// line so the closure can issue further charged work (e.g. histogram
    /// increments). Models a forward scan the prefetcher covers.
    pub fn read_stream(
        &self,
        core: &mut Core<'_>,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Core<'_>, usize, T),
    ) {
        if range.is_empty() {
            return;
        }
        let per_line = (CACHE_LINE / Self::elem_size()).max(1);
        let mut i = range.start;
        while i < range.end {
            // Elements up to the next line boundary.
            let line_end = (i / per_line + 1) * per_line;
            let hi = line_end.min(range.end);
            core.stream_touch(self.addr(i), 1, (hi - i) as u64, false, false);
            for j in i..hi {
                core.poison_context();
                f(core, j, self.peek(j));
            }
            i = hi;
        }
    }

    /// Charged sequential *vectorized* read (512-bit loads): `f` receives
    /// the core, the starting element index, and the slice covered by each
    /// 64-byte vector.
    pub fn read_stream_vec(
        &self,
        core: &mut Core<'_>,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Core<'_>, usize, &[T]),
    ) {
        if range.is_empty() {
            return;
        }
        let per_line = (CACHE_LINE / Self::elem_size()).max(1);
        let mut i = range.start;
        while i < range.end {
            let line_end = (i / per_line + 1) * per_line;
            let hi = line_end.min(range.end);
            core.stream_touch(self.addr(i), 1, (hi - i) as u64, false, true);
            core.poison_context();
            f(core, i, &self.as_slice_untracked()[i..hi]);
            i = hi;
        }
    }

    /// Sequential writer that charges stream-store costs as it advances.
    pub fn stream_writer(&mut self, start: usize) -> StreamWriter<'_, T> {
        StreamWriter { vec: self, pos: start, line_open: u64::MAX }
    }

    /// Incremental sequential reader over `range`, for interleaved
    /// consumption of several streams at once (merge joins, two-pointer
    /// partitioning). Each stream charges like `read_stream`.
    pub fn stream_reader(&self, range: std::ops::Range<usize>) -> StreamReader<'_, T> {
        StreamReader { vec: self, pos: range.start, end: range.end, line_open: u64::MAX }
    }
}

/// Pull-style sequential reader over a `SimVec` (see
/// [`SimVec::stream_reader`]).
pub struct StreamReader<'v, T> {
    vec: &'v SimVec<T>,
    pos: usize,
    end: usize,
    line_open: u64,
}

impl<'v, T: Copy> StreamReader<'v, T> {
    /// Read the next element, or `None` at the end of the range.
    #[inline]
    pub fn next(&mut self, core: &mut Core<'_>) -> Option<T> {
        if self.pos >= self.end {
            return None;
        }
        let addr = self.vec.addr(self.pos);
        let line = line_of(addr);
        if line != self.line_open {
            core.stream_touch(addr, 1, 0, false, false);
            self.line_open = line;
        }
        let cost = core.stream_issue_cost(false);
        core.charge(cost);
        core.poison_context();
        let v = self.vec.peek(self.pos);
        self.pos += 1;
        Some(v)
    }

    /// Peek the next element without consuming or charging (the merge
    /// loop's comparison re-reads a register-resident value).
    #[inline]
    pub fn peek_next(&self) -> Option<T> {
        (self.pos < self.end).then(|| self.vec.peek(self.pos))
    }

    /// Elements remaining.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Current read position.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

/// Append-style sequential writer over a `SimVec` (join/scan
/// materialization). Charges one stream-store line cost per 64-byte line
/// crossed plus a per-element issue cost.
pub struct StreamWriter<'v, T> {
    vec: &'v mut SimVec<T>,
    pos: usize,
    line_open: u64,
}

impl<'v, T: Copy> StreamWriter<'v, T> {
    /// Write the next element.
    #[inline]
    pub fn push(&mut self, core: &mut Core<'_>, v: T) {
        let addr = self.vec.addr(self.pos);
        let line = line_of(addr);
        if line != self.line_open {
            core.stream_touch(addr, 1, 0, true, false);
            self.line_open = line;
        }
        core.charge(STREAM_ELEM_ISSUE);
        self.vec.poke(self.pos, v);
        self.pos += 1;
    }

    /// Elements written so far (next write position).
    pub fn pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scaled_profile, xeon_gold_6326};

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    #[test]
    fn wall_advances_with_work() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u64>(1024);
        assert_eq!(m.wall_cycles(), 0.0);
        m.run(|c| {
            let mut s = 0u64;
            for i in 0..1024 {
                s = s.wrapping_add(v.get(c, i));
            }
            assert_eq!(s, 0);
        });
        assert!(m.wall_cycles() > 0.0);
    }

    #[test]
    fn repeated_access_hits_cache_and_gets_cheaper() {
        let mut m = machine(Setting::PlainCpu);
        // 2 KB fits the scaled 3 KB L1d; access in a scrambled order so the
        // stream detector cannot kick in.
        let v = m.alloc::<u64>(256);
        let pass = |m: &mut Machine, v: &SimVec<u64>| {
            m.run(|c| {
                for k in 0..10_000usize {
                    v.get(c, (k * 97) % v.len());
                }
                c.busy_cycles()
            })
        };
        let cold = pass(&mut m, &v);
        let warm = pass(&mut m, &v);
        assert!(warm < cold, "warm {warm} !< cold {cold}");
        assert!(m.counters().l1_hits > 0);
    }

    #[test]
    fn enclave_epc_random_access_slower_than_native() {
        let run = |setting: Setting| {
            let mut m = machine(setting);
            let mut v = m.alloc::<u64>(1 << 20); // 8 MB >> scaled L3 (1.5 MB)
            m.run(|c| {
                let mut x = 12345u64;
                for _ in 0..100_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (x >> 33) as usize % v.len();
                    v.rmw(c, i, |e| *e += 1);
                }
            });
            m.wall_cycles()
        };
        let native = run(Setting::PlainCpu);
        let enclave = run(Setting::SgxDataInEnclave);
        assert!(
            enclave > 1.5 * native,
            "EPC random access should be much slower: native {native}, enclave {enclave}"
        );
    }

    #[test]
    fn streaming_is_much_cheaper_than_random_per_byte() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u64>(1 << 20);
        let stream = m.run(|c| {
            v.read_stream(c, 0..v.len(), |_, _, _| {});
            c.busy_cycles()
        });
        m.flush_caches();
        let random = m.run(|c| {
            let mut x = 9u64;
            for _ in 0..v.len() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.get(c, (x >> 33) as usize % v.len());
            }
            c.busy_cycles()
        });
        assert!(
            random > 3.0 * stream,
            "random {random} should dwarf stream {stream} for same element count"
        );
    }

    #[test]
    fn groups_help_only_in_enclave_mode() {
        // The paper's Listing 1/2 pattern: scan a key array sequentially
        // and bump a cache-resident histogram per key. The naive loop
        // alternates objects every iteration and suffers the enclave
        // serialization penalty; the 8x-unrolled variant (issue groups)
        // recovers it.
        let run = |setting: Setting, grouped: bool| {
            let mut m = machine(setting);
            let mut keys = m.alloc::<u64>(16 * 1024);
            for i in 0..keys.len() {
                keys.poke(i, (i as u64).wrapping_mul(2654435761) % 512);
            }
            let mut hist = m.alloc::<u32>(512); // cache-resident
            m.run(|c| {
                if grouped {
                    let mut batch = [0usize; 8];
                    let mut fill = 0;
                    keys.read_stream(c, 0..keys.len(), |c, _, k| {
                        batch[fill] = k as usize;
                        fill += 1;
                        if fill == 8 {
                            c.group(|c| {
                                for &i in &batch {
                                    hist.rmw(c, i, |e| *e += 1);
                                }
                            });
                            fill = 0;
                        }
                    });
                } else {
                    keys.read_stream(c, 0..keys.len(), |c, _, k| {
                        hist.rmw(c, k as usize, |e| *e += 1);
                    });
                }
            });
            m.wall_cycles()
        };
        let native_plain = run(Setting::PlainCpu, false);
        let native_grouped = run(Setting::PlainCpu, true);
        let enclave_plain = run(Setting::SgxDataInEnclave, false);
        let enclave_grouped = run(Setting::SgxDataInEnclave, true);
        // Native: grouping is irrelevant (the OOO engine already reorders).
        assert!((native_plain - native_grouped).abs() / native_plain < 0.05);
        // Enclave: ungrouped far slower; grouping recovers most of it.
        assert!(enclave_plain > 2.0 * native_plain);
        assert!(enclave_grouped < 0.6 * enclave_plain);
    }

    #[test]
    fn same_object_increments_have_no_enclave_penalty() {
        // §4.2: "incrementing the values inside a cache-resident histogram
        // alone is not the cause of the slowdown" — an LCG-indexed
        // increment loop over one small array runs at native speed.
        let run = |setting: Setting| {
            let mut m = machine(setting);
            let mut hist = m.alloc::<u32>(512);
            m.run(|c| {
                let mut x = 7u64;
                for _ in 0..8000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    c.compute(3);
                    hist.rmw(c, (x >> 33) as usize % 512, |e| *e += 1);
                }
            });
            m.wall_cycles()
        };
        let native = run(Setting::PlainCpu);
        let enclave = run(Setting::SgxDataInEnclave);
        assert!(
            enclave < 1.3 * native,
            "increment-only loop should be near-native: native {native}, enclave {enclave}"
        );
    }

    #[test]
    fn data_outside_enclave_avoids_mee_but_keeps_execution_penalty() {
        // Histogram-like pattern over a large table: the execution penalty
        // (object-alternating loads) hits both SGX settings; the MEE fill
        // latency additionally hits only the data-in-enclave setting.
        let run = |setting: Setting| {
            let mut m = machine(setting);
            let keys = m.alloc::<u64>(64 * 1024);
            let mut table = m.alloc::<u64>(1 << 20); // 8 MB >> scaled L3
            m.run(|c| {
                keys.read_stream(c, 0..keys.len(), |c, i, _| {
                    let idx = (i as u64).wrapping_mul(2654435761) as usize % table.len();
                    table.rmw(c, idx, |e| *e += 1);
                });
            });
            m.wall_cycles()
        };
        let native = run(Setting::PlainCpu);
        let outside = run(Setting::SgxDataOutside);
        let inside = run(Setting::SgxDataInEnclave);
        assert!(outside > 1.2 * native, "enclave execution penalty missing");
        assert!(inside > 1.1 * outside, "MEE penalty missing");
    }

    #[test]
    fn remote_access_slower_and_counts_upi() {
        let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
        let local = m.alloc_on::<u64>(1 << 18, Region::Untrusted(0));
        let remote = m.alloc_on::<u64>(1 << 18, Region::Untrusted(1));
        let t_local = m.run(|c| {
            let mut x = 5u64;
            for _ in 0..20_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                local.get(c, (x >> 33) as usize % local.len());
            }
            c.busy_cycles()
        });
        assert_eq!(m.counters().remote_fills, 0);
        let t_remote = m.run(|c| {
            let mut x = 5u64;
            for _ in 0..20_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                remote.get(c, (x >> 33) as usize % remote.len());
            }
            c.busy_cycles()
        });
        assert!(m.counters().remote_fills > 0);
        assert!(t_remote > t_local, "remote {t_remote} !> local {t_local}");
    }

    #[test]
    fn parallel_phase_wall_is_max_of_workers() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u64>(1 << 16);
        let stats = m.parallel(&[0, 1, 2, 3], |c| {
            // Worker i does i+1 chunks of work.
            let n = (c.id() + 1) * 1000;
            for i in 0..n {
                v.get(c, i % v.len());
            }
        });
        assert_eq!(stats.core_cycles.len(), 4);
        let max = stats.core_cycles.iter().cloned().fold(0.0, f64::max);
        assert!(stats.wall_cycles >= max);
        assert!(stats.core_cycles[3] > stats.core_cycles[0]);
    }

    #[test]
    fn bandwidth_regulation_caps_parallel_streams() {
        // 16 cores all streaming: aggregate demand exceeds the socket cap,
        // so wall time must exceed a single worker's busy time.
        let mut m = machine(Setting::PlainCpu);
        let vs: Vec<SimVec<u64>> = (0..16).map(|_| m.alloc::<u64>(1 << 18)).collect();
        let stats = m.parallel(&(0..16).collect::<Vec<_>>(), |c| {
            let v = &vs[c.id()];
            v.read_stream(c, 0..v.len(), |_, _, _| {});
        });
        assert!(stats.bandwidth_bound, "16 streaming cores should hit the BW cap");
    }

    #[test]
    fn saturated_phase_wall_equals_bandwidth_bound() {
        let mut m = machine(Setting::PlainCpu);
        let vs: Vec<SimVec<u64>> = (0..16).map(|_| m.alloc::<u64>(1 << 18)).collect();
        let stats = m.parallel(&(0..16).collect::<Vec<_>>(), |c| {
            let v = &vs[c.id()];
            v.read_stream_vec(c, 0..v.len(), |_, _, _| {});
        });
        assert!(stats.bandwidth_bound);
        let bytes = 16.0 * (1u64 << 18) as f64 * 8.0;
        let bound = bytes * m.cfg().mem.socket_bw_cycles_per_byte;
        assert!(
            (stats.wall_cycles - bound).abs() / bound < 1e-9,
            "wall {} should equal the exact bandwidth bound {}",
            stats.wall_cycles,
            bound
        );
    }

    #[test]
    fn edmm_commit_charged_once_per_page() {
        let mut m = machine(Setting::SgxDataInEnclave);
        let _static_heap = m.alloc::<u64>(1024);
        m.seal_enclave();
        let mut dyn_vec = m.alloc::<u64>(2048); // 16 KB = 4 pages
        m.run(|c| {
            for i in 0..dyn_vec.len() {
                dyn_vec.set(c, i, 1);
            }
        });
        assert_eq!(m.counters().edmm_pages, 4);
        let w1 = m.wall_cycles();
        // Second pass: pages already committed, no further EDMM cost.
        m.run(|c| {
            for i in 0..dyn_vec.len() {
                dyn_vec.set(c, i, 2);
            }
        });
        assert_eq!(m.counters().edmm_pages, 4);
        assert!(m.wall_cycles() - w1 < w1);
    }

    #[test]
    fn edmm_not_charged_without_seal_or_in_native() {
        let mut m = machine(Setting::SgxDataInEnclave);
        let mut v = m.alloc::<u64>(2048);
        m.run(|c| {
            for i in 0..v.len() {
                v.set(c, i, 1);
            }
        });
        assert_eq!(m.counters().edmm_pages, 0);
        let mut m = machine(Setting::PlainCpu);
        m.seal_enclave();
        let mut v = m.alloc::<u64>(2048);
        m.run(|c| {
            for i in 0..v.len() {
                v.set(c, i, 1);
            }
        });
        assert_eq!(m.counters().edmm_pages, 0);
    }

    #[test]
    fn sgxv1_pager_charges_faults() {
        let cfg = xeon_gold_6326().scaled(16).sgxv1();
        let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
        // Allocate far more than the scaled resident budget (92 MB/16 ≈ 5.75 MB).
        let v = m.alloc::<u64>(4 << 20); // 32 MB
        m.run(|c| {
            v.read_stream(c, 0..v.len(), |_, _, _| {});
        });
        assert!(m.counters().epc_page_faults > 0);
    }

    #[test]
    fn tlb_misses_charged_for_page_spread_working_sets() {
        let mut m = machine(Setting::PlainCpu);
        // One value per page over far more pages than the scaled TLB (96
        // entries at 1/16 scale).
        let v = m.alloc::<u64>(512 * 512); // 2 MB = 512 pages
        let spread = m.run(|c| {
            for p in 0..512 {
                let _ = v.get(c, p * 512);
            }
            c.busy_cycles()
        });
        assert!(m.counters().tlb_misses >= 512);
        // Same number of accesses inside a few pages: no walks after the
        // first touches.
        m.flush_caches();
        let before = m.counters().tlb_misses;
        let dense = m.run(|c| {
            for k in 0..512 {
                let _ = v.get(c, (k * 7) % 512);
            }
            c.busy_cycles()
        });
        assert!(m.counters().tlb_misses - before <= 8);
        assert!(spread > dense, "page-spread accesses must cost more: {spread} vs {dense}");
    }

    #[test]
    fn nt_store_bypasses_cache_and_halves_bus_traffic() {
        let mut m = machine(Setting::PlainCpu);
        let mut v = m.alloc::<u64>(8192);
        m.run(|c| {
            c.stream_store_line(v.addr(0));
            for k in 0..8 {
                v.poke(k, 7);
            }
        });
        // The line is not cached afterwards: the next read misses.
        let fills_before = m.counters().dram_fills;
        m.run(|c| {
            let _ = v.get(c, 0);
        });
        assert_eq!(m.counters().dram_fills, fills_before + 1, "NT store must not install");
    }

    #[test]
    fn epc_capacity_is_enforced() {
        let mut cfg = scaled_profile();
        cfg.epc_per_socket = 1 << 20; // 1 MB EPC
        let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
        assert!(m.try_alloc_on::<u64>(64 * 1024, Region::Epc(0)).is_some()); // 512 KB
        assert!(m.try_alloc_on::<u64>(128 * 1024, Region::Epc(0)).is_none()); // would exceed
        // The other socket's EPC and untrusted memory are unaffected.
        assert!(m.try_alloc_on::<u64>(64 * 1024, Region::Epc(1)).is_some());
        assert!(m.try_alloc_on::<u64>(10 << 20, Region::Untrusted(0)).is_some());
        assert!(m.region_used(Region::Epc(0)) <= 1 << 20);
    }

    #[test]
    #[should_panic(expected = "EPC capacity exceeded")]
    fn epc_overflow_panics_on_infallible_alloc() {
        let mut cfg = scaled_profile();
        cfg.epc_per_socket = 4096;
        let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
        let _ = m.alloc_on::<u64>(1024, Region::Epc(0));
    }

    #[test]
    fn transition_costs_only_in_enclave() {
        let mut m = machine(Setting::SgxDataInEnclave);
        m.ecall();
        assert!(m.wall_cycles() > 0.0);
        assert_eq!(m.counters().transitions, 2);
        let mut m = machine(Setting::PlainCpu);
        m.ecall();
        assert_eq!(m.wall_cycles(), 0.0);
        assert_eq!(m.counters().transitions, 0);
    }

    #[test]
    fn stream_writer_charges_and_writes() {
        let mut m = machine(Setting::PlainCpu);
        let mut v = m.alloc::<u64>(4096);
        m.run(|c| {
            let mut w = v.stream_writer(0);
            for i in 0..4096u64 {
                w.push(c, i * 2);
            }
        });
        assert!(m.wall_cycles() > 0.0);
        assert_eq!(v.peek(17), 34);
        assert!(m.counters().stream_lines >= 4096 * 8 / 64);
    }

    #[test]
    fn vec_stream_charges_fewer_issues_than_scalar() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u32>(1 << 16);
        let scalar = m.run(|c| {
            v.read_stream(c, 0..v.len(), |_, _, _| {});
            c.busy_cycles()
        });
        m.flush_caches();
        let vector = m.run(|c| {
            v.read_stream_vec(c, 0..v.len(), |_, _, _| {});
            c.busy_cycles()
        });
        assert!(vector < scalar, "vector {vector} !< scalar {scalar}");
    }

    #[test]
    fn dependent_chains_serialize_natively_too() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u64>(1 << 20);
        let pooled = m.run(|c| {
            let mut x = 5u64;
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.get(c, (x >> 33) as usize % v.len());
            }
            c.busy_cycles()
        });
        m.flush_caches();
        let serial = m.run(|c| {
            c.dependent(|c| {
                let mut x = 5u64;
                for _ in 0..10_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    v.get(c, (x >> 33) as usize % v.len());
                }
            });
            c.busy_cycles()
        });
        assert!(serial > 2.0 * pooled, "serial {serial} !> 2x pooled {pooled}");
    }

    #[test]
    fn run_on_pins_to_socket() {
        let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
        let remote_core = m.cfg().cores_per_socket; // first core of socket 1
        m.run_on(remote_core, |c| {
            assert_eq!(c.socket(), 1);
        });
    }
}
