//! Hardware configuration profiles and cost-model constants.
//!
//! Every constant in this file is anchored to a measurement reported in the
//! paper (section references in the doc comments) or to public Ice Lake SP
//! micro-architecture data. The calibration tests in
//! `tests/calibration.rs` assert that the *composed* model reproduces the
//! paper's micro-benchmark ratios, so changing a constant here without
//! re-checking calibration will fail CI.


// sgx-lint: calibration-file — every numeric constant below must carry a
// `paper: §x.y` or `uarch: <source>` provenance comment (lint rule
// calibration-provenance), so calibration stays auditable line by line.

/// Cache line size in bytes. SGX encrypts/decrypts at cache-line granularity.
pub const CACHE_LINE: usize = 64; // uarch: x86 cache line; MEE granularity
/// Page size in bytes. EPC pages are 4 KB (paper §2).
pub const PAGE_SIZE: usize = 4096; // paper: §2, EPC pages are 4 KB

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Load-to-use latency in cycles.
    pub latency: f64,
}

impl CacheConfig {
    /// Number of sets; `size / (ways * CACHE_LINE)`.
    pub fn sets(&self) -> usize {
        // sgx-lint: allow(calibration-provenance) structural floor (≥1 set), not a calibrated constant
        (self.size / (self.ways * CACHE_LINE)).max(1)
    }
}

/// DRAM and memory-encryption-engine (MEE) cost model.
///
/// The split between `latency` (random access) and `stream_line_cycles`
/// (sequential access behind the hardware prefetcher) is what makes the
/// paper's central contrast emerge: random access into the EPC is expensive
/// (§4.1, Fig 5) while sequential scans are almost free (§5.1, Fig 12).
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Random-access load latency from local DRAM, in cycles.
    /// Ice Lake SP local DRAM latency is ~75-85 ns; at 2.9 GHz ≈ 220 cycles.
    pub dram_latency: f64,
    /// Additional latency for a random line fill that must be decrypted by
    /// the MEE (enclave mode, data in EPC). Calibrated so that dependent
    /// random reads reach ≈53 % of native throughput at large array sizes
    /// (paper Fig 5: "At 16 GB array size, we measured 53% read throughput").
    pub mee_fill_latency: f64,
    /// Additional cost charged to a *write* miss on EPC data in enclave
    /// mode, covering the read-for-ownership of ciphertext plus the
    /// write-back encryption and integrity-metadata update. Calibrated so
    /// independent random writes fall below 40 % of native performance
    /// (paper Fig 5: "nearly 3 times higher write latencies for the 8 GB
    /// array size").
    pub mee_write_penalty: f64,
    /// Cycles per cache line for a prefetched (sequential) fill from local
    /// DRAM, single stream. ~13 GB/s effective single-core stream bandwidth
    /// at 2.9 GHz ⇒ 64 B / 13 GB/s ≈ 14.3 cycles per line.
    pub stream_line_cycles: f64,
    /// Multiplicative bandwidth tax on sequential EPC *read* traffic in
    /// enclave mode. The paper measures 3 % slowdown for AVX-512 scans
    /// (§5.1) and up to 5.5 % for 64-bit linear reads (§5.4, Fig 15); the
    /// per-instruction share of the gap is modelled separately in the
    /// pipeline, so this factor holds the pure-bandwidth part.
    pub mee_stream_factor: f64,
    /// Multiplicative bandwidth tax on sequential EPC *write* traffic in
    /// enclave mode (Fig 15: linear writes lose only ~2 %).
    pub mee_stream_write_factor: f64,
    /// Fraction of the DRAM-latency part of an *ungrouped* load that an
    /// enclave-mode core cannot hide. 1.0 would mean fully serial misses;
    /// the observed PHT build-phase slowdown (§4.1: "even 9 times slower
    /// than native") calibrates this below 1.
    pub enclave_serial_far_fraction: f64,
    /// Per-socket DRAM bandwidth cap expressed in cycles per byte.
    /// 8 channels DDR4-3200 ⇒ 204.8 GB/s peak, ~150 GB/s achievable;
    /// 2.9e9 / 150e9 ≈ 0.0193 cycles/byte.
    pub socket_bw_cycles_per_byte: f64,
    /// Memory-level parallelism: how many outstanding random misses the
    /// core overlaps in native mode (MSHR-bound, ~10 on Ice Lake).
    pub mlp_native: f64,
    /// Outstanding-miss overlap in enclave mode. Lower than native: the MEE
    /// serializes part of the fill pipeline. Together with
    /// `mee_fill_latency` this produces the 2–3× random-access gap.
    pub mlp_enclave: f64,
    /// Cycles per line of write-back bandwidth (dirty eviction), folded
    /// into streaming writes.
    pub writeback_line_cycles: f64,
    /// Unified second-level TLB entries (Ice Lake SP: 1536 x 4 KB pages).
    /// Working sets spread over more pages than this pay page walks —
    /// the effect that makes software write-combining buffers profitable
    /// at high radix fan-outs.
    pub tlb_entries: usize,
    /// Cycles of a page walk on a TLB miss (pooled with the DRAM-latency
    /// portion: walks overlap with other outstanding work).
    pub tlb_walk_cycles: f64,
}

/// Cross-socket interconnect (UPI) model, including the SGXv2 UPI Crypto
/// Engine (UCE) that encrypts cross-NUMA enclave traffic (paper §2, §5.5).
#[derive(Debug, Clone, Copy)]
pub struct UpiConfig {
    /// Extra latency in cycles for a random access to remote DRAM.
    /// Remote-local delta on 2-socket Ice Lake is ~50-60 ns ≈ 150 cycles.
    pub remote_latency: f64,
    /// Extra latency for UCE encryption/decryption of an enclave line
    /// crossing the UPI. Calibrated against Fig 16: a single-threaded
    /// cross-NUMA enclave scan reaches 77 % of the plain cross-NUMA scan.
    pub uce_latency: f64,
    /// Aggregate bandwidth cap of the UPI links in cycles per byte.
    /// Paper §5.5: "the theoretical upper bound for throughput of the
    /// 3 UPI links between the sockets is 67.2 GB/s";
    /// 2.9e9 / 67.2e9 ≈ 0.0432 cycles/byte.
    pub upi_bw_cycles_per_byte: f64,
    /// Extra cycles per line for sequential (prefetched) remote fills.
    pub remote_stream_extra: f64,
    /// Extra cycles per line of UCE work on sequential enclave remote
    /// fills; mostly hidden at high thread counts (Fig 16: 77 % at 1
    /// thread → 96 % at 16 threads).
    pub uce_stream_extra: f64,
}

/// Instruction-pipeline model capturing the enclave-mode execution
/// difference uncovered in §4.2.
///
/// The paper's hypothesis: in enclave mode the CPU does not perform the
/// "performance-relevant reordering step" that dynamically unrolls loops and
/// overlaps short load→modify→store chains across iterations. Manually
/// unrolling (Listing 2) — computing N independent indexes before issuing N
/// increments — restores most of the lost overlap.
///
/// We model this with *issue groups*: code declares groups of independent
/// operations (a manual unroll of 8 = a group of 8). Native mode ignores
/// group boundaries and overlaps short-latency work up to `ilp_native`;
/// enclave mode overlaps only *within* a group and pays
/// `enclave_group_overhead` at each boundary.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Cycles per scalar ALU op once pipelined (superscalar issue).
    pub cycles_per_op: f64,
    /// Overlap factor for short-latency (cache-hit) access costs in native
    /// mode: the OOO window hides L1/L2 latencies across iterations.
    pub ilp_native: f64,
    /// Overlap factor for short-latency access costs *within* an explicit
    /// issue group in enclave mode.
    pub ilp_enclave_group: f64,
    /// Fixed serialization cost charged when an issue group closes in
    /// enclave mode. Calibrated against Fig 7: naive histogram creation is
    /// 225 % slower in the enclave; 8× manual unrolling brings it to ~20 %.
    pub enclave_group_overhead: f64,
    /// Cycles per 512-bit vector operation (AVX-512 lane).
    pub cycles_per_vec_op: f64,
}

/// Costs of crossing the enclave boundary (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct TransitionConfig {
    /// Cycles for an ECALL or OCALL one-way transition (EENTER/EEXIT pair
    /// amortized): TEEBench and sgx-perf report ~8k-14k cycles.
    pub transition_cycles: f64,
    /// Extra cycles for the futex syscall performed outside the enclave
    /// when an SDK mutex sleeps or wakes a thread.
    pub futex_cycles: f64,
}

/// Asynchronous-interrupt cost model, consulted by the fault-injection
/// engine (`sgx_sim::faults`, Stress-SGX-style AEX storms).
///
/// Only the *native* handler cost lives here: in enclave mode an
/// asynchronous exit charges a full enclave round trip
/// (2 × [`TransitionConfig::transition_cycles`]) and invalidates the
/// interrupted core's L1/TLB/stream state, so the enclave side of the
/// asymmetry is already anchored by the §4.4 transition measurements.
#[derive(Debug, Clone, Copy)]
pub struct InterruptConfig {
    /// Cycles a native-mode core loses to one timer/IPI interrupt: kernel
    /// entry, handler, return — no enclave state to scrub and no TLB
    /// flush. ~0.5 µs at 2.9 GHz.
    pub native_interrupt_cycles: f64,
}

/// EDMM (dynamic enclave memory) cost model (§4.4, Fig 11).
#[derive(Debug, Clone, Copy)]
pub struct EdmmConfig {
    /// Cycles to dynamically add one EPC page to a running enclave:
    /// OCALL to the host, EAUG by the kernel driver, EACCEPT inside the
    /// enclave, page zeroing. Calibrated so a materializing join that must
    /// grow the enclave reaches only ~4.5 % of the statically-sized join
    /// (Fig 11).
    pub page_add_cycles: f64,
}

/// Sealed-storage (AES-GCM) cost model for the secure storage data path
/// (reproduction extension, motivated by the related work on securing
/// the storage data path with SGX enclaves). Data at rest lives outside
/// the enclave as AES-GCM sealed blocks; reading it inside means
/// streaming ciphertext in and paying software decryption + tag
/// verification on top of the ordinary memory costs. The constants are
/// anchored to public AES-NI/VAES throughput data, not to a paper
/// figure.
#[derive(Debug, Clone, Copy)]
pub struct SealConfig {
    /// Cycles to decrypt + GHASH-authenticate one 64-byte cache line of
    /// sealed data.
    pub gcm_cycles_per_line: f64,
    /// Fixed per-block cost: IV/counter setup, J0 derivation and the
    /// final tag comparison, paid once per sealed block.
    pub gcm_block_setup_cycles: f64,
    /// Sealed-block payload size in bytes (one GCM message per block).
    pub block_bytes: usize,
}

/// SGXv1-style EPC paging model (reproduction extension, not a paper
/// figure): lets the suite demonstrate *why* CrkJoin won on SGXv1.
#[derive(Debug, Clone, Copy)]
pub struct PagingConfig {
    /// Usable EPC bytes before paging starts (SGXv1: ~92 MB usable of
    /// 128/256 MB PRM).
    pub resident_bytes: usize,
    /// Cycles per EPC page fault (EWB + ELDU round trip: encrypt/evict one
    /// page, decrypt/load another; ~40k cycles in SGXv1 literature).
    pub fault_cycles: f64,
}

/// Which SGX generation the machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgxGeneration {
    /// SGXv2 (Ice Lake+): large EPC, no paging in our experiments.
    V2,
    /// SGXv1 (client parts): small EPC with software paging. Only used by
    /// the CrkJoin ablation extension.
    V1,
}

/// Complete machine description. `xeon_gold_6326()` reproduces the paper's
/// Table 1; `scaled(f)` shrinks caches and the paging threshold by `f` so
/// experiments can run on proportionally smaller data without changing any
/// cache-vs-data-size relationship.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Human-readable profile name.
    pub name: String,
    /// Number of CPU sockets (NUMA nodes).
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Core clock in GHz (frequency-pinned, Turbo Boost off, per §3).
    pub freq_ghz: f64,
    /// L1 data cache (per core).
    pub l1d: CacheConfig,
    /// L2 cache (per core).
    pub l2: CacheConfig,
    /// L3 cache (per socket, shared).
    pub l3: CacheConfig,
    /// DRAM + MEE model.
    pub mem: MemConfig,
    /// Cross-socket interconnect model.
    pub upi: UpiConfig,
    /// Pipeline/ILP model.
    pub pipeline: PipelineConfig,
    /// Enclave transition costs.
    pub transitions: TransitionConfig,
    /// Asynchronous-interrupt costs (fault injection).
    pub interrupts: InterruptConfig,
    /// Dynamic enclave memory costs.
    pub edmm: EdmmConfig,
    /// SGX generation; V1 additionally enables `paging`.
    pub generation: SgxGeneration,
    /// EPC paging model (only consulted for `SgxGeneration::V1`).
    pub paging: PagingConfig,
    /// Sealed-storage (AES-GCM) costs for the secure storage data path.
    pub seal: SealConfig,
    /// EPC capacity per socket in bytes (Table 1: 64 GB/socket).
    pub epc_per_socket: usize,
}

impl HwConfig {
    /// Total number of physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Convert a cycle count to seconds at the configured frequency.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        // sgx-lint: allow(calibration-provenance) GHz-to-Hz unit conversion, not calibration
        cycles / (self.freq_ghz * 1e9)
    }

    /// The socket a core id belongs to (cores are numbered socket-major).
    pub fn socket_of_core(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }
}

/// The paper's benchmark server (Table 1): dual-socket Intel Xeon Gold 6326
/// "Ice Lake SP", 16 cores/socket at a pinned 2.9 GHz, 48 KB L1d, 1.25 MB
/// L2, 24 MB L3 per socket, 8 channels of DDR4-3200 per socket, 64 GB EPC
/// per socket.
pub fn xeon_gold_6326() -> HwConfig {
    HwConfig {
        name: "Intel Xeon Gold 6326 (Table 1)".to_string(),
        sockets: 2, // paper: §3 Table 1, dual socket
        cores_per_socket: 16, // paper: §3 Table 1, 16 cores per socket
        freq_ghz: 2.9, // paper: §3, frequency pinned to 2.9 GHz
        l1d: CacheConfig { size: 48 * 1024, ways: 12, latency: 5.0 }, // paper: §3 Table 1, 48 KB L1d; uarch: 5-cycle load-to-use
        l2: CacheConfig { size: 1280 * 1024, ways: 20, latency: 14.0 }, // paper: §3 Table 1, 1.25 MB L2; uarch: ~14-cycle latency
        l3: CacheConfig { size: 24 * 1024 * 1024, ways: 12, latency: 42.0 }, // paper: §3 Table 1, 24 MB shared L3; uarch: ~42-cycle latency
        mem: MemConfig {
            dram_latency: 220.0, // uarch: ~76 ns local DRAM load-to-use at 2.9 GHz
            mee_fill_latency: 175.0, // paper: §4.1 Fig 5, in-EPC random reads reach ~53% of native
            mee_write_penalty: 180.0, // paper: §4.1 Fig 5, random enclave writes slower than reads
            stream_line_cycles: 14.3, // uarch: ~13 GB/s single-stream sequential read at 2.9 GHz
            mee_stream_factor: 1.025, // paper: §5.1, sequential scans lose only a few percent in EPC
            mee_stream_write_factor: 1.02, // paper: §5.4 Fig 15, near-native linear enclave writes
            enclave_serial_far_fraction: 0.6, // paper: §4.1, dependent far misses serialize behind the MEE
            socket_bw_cycles_per_byte: 2.9 / 150.0, // uarch: 8ch DDR4-3200, ~150 GB/s achievable per socket
            mlp_native: 6.0, // uarch: MSHR-bound overlap of independent misses
            mlp_enclave: 6.0, // paper: §5.4, grouped enclave misses overlap like native
            writeback_line_cycles: 7.0, // uarch: dirty-eviction bandwidth share per line
            tlb_entries: 1536, // uarch: Ice Lake SP unified second-level TLB
            tlb_walk_cycles: 40.0, // uarch: page-walk cost on an STLB miss
        },
        upi: UpiConfig {
            remote_latency: 170.0, // uarch: ~55 ns extra for remote-socket DRAM over UPI
            uce_latency: 90.0, // paper: §5.5 Fig 16, cross-NUMA enclave single-thread at ~77%
            upi_bw_cycles_per_byte: 2.9 / 67.2, // paper: §5.5, 3 UPI links at 67.2 GB/s aggregate
            remote_stream_extra: 14.0, // uarch: remote prefetched-fill tax per line
            uce_stream_extra: 8.0, // paper: §5.5 Fig 16, UCE overhead mostly hidden at full threads
        },
        pipeline: PipelineConfig {
            cycles_per_op: 0.5, // uarch: two sustained scalar ALU ops per cycle
            ilp_native: 4.0, // paper: §4.2, OOO overlap across loop iterations in native mode
            ilp_enclave_group: 6.0, // paper: §4.2 Listing 2, overlap within an unrolled issue group
            enclave_group_overhead: 5.0, // paper: §4.2 Fig 7, naive enclave loop ~225% vs unrolled ~20%
            cycles_per_vec_op: 1.0, // uarch: one 512-bit vector op per cycle (single FMA port)
        },
        // paper: §4.4, ECALL/OCALL cost 8k-14k cycles; futex wake via sgx-perf
        transitions: TransitionConfig { transition_cycles: 10_000.0, futex_cycles: 2_000.0 },
        interrupts: InterruptConfig { native_interrupt_cycles: 1_500.0 }, // uarch: ~0.5 us native interrupt round trip
        edmm: EdmmConfig { page_add_cycles: 36_000.0 }, // paper: §4.4 Fig 11, EDMM growth adds up to ~4.5%
        generation: SgxGeneration::V2,
        // paper: §2, SGXv1 exposes ~92 MB usable PRM; uarch: ~40k-cycle EWB/ELDU round trip
        paging: PagingConfig { resident_bytes: 92 * 1024 * 1024, fault_cycles: 40_000.0 },
        seal: SealConfig {
            gcm_cycles_per_line: 48.0, // uarch: AES-NI+PCLMUL AES-GCM decrypt ≈0.75 cycles/byte on Ice Lake SP
            gcm_block_setup_cycles: 220.0, // uarch: per-message GCM overhead (IV/J0 setup, final GHASH + tag compare)
            block_bytes: 4096, // uarch: sealed blocks sized to the 4 KB EPC page granularity
        },
        epc_per_socket: 64 * 1024 * 1024 * 1024, // paper: §3 Table 1, 64 GB EPC per socket
    }
}

impl HwConfig {
    /// Shrink the machine by `factor`: caches, the SGXv1 paging threshold
    /// and the EPC capacity scale down; latencies, bandwidth rates and the
    /// pipeline model are size-independent and stay fixed. Running an
    /// experiment on `1/factor`-sized data on the scaled machine preserves
    /// every cache-residency relationship of the full-size experiment.
    pub fn scaled(mut self, factor: usize) -> HwConfig {
        assert!(factor >= 1, "scale factor must be >= 1"); // sgx-lint: allow(calibration-provenance) structural sanity check, not calibration
        if factor == 1 {
            return self;
        }
        let shrink = |c: &mut CacheConfig| {
            c.size = (c.size / factor).max(c.ways * CACHE_LINE);
        };
        shrink(&mut self.l1d);
        shrink(&mut self.l2);
        shrink(&mut self.l3);
        // sgx-lint: allow(calibration-provenance) structural floor: keep at least 16 TLB entries
        self.mem.tlb_entries = (self.mem.tlb_entries / factor).max(16);
        self.paging.resident_bytes = (self.paging.resident_bytes / factor).max(PAGE_SIZE);
        self.epc_per_socket = (self.epc_per_socket / factor).max(PAGE_SIZE);
        self.name = format!("{} [1/{factor} scale]", self.name);
        self
    }

    /// The paper's machine with an SGXv1-style EPC: small usable EPC and
    /// software paging. Used by the CrkJoin ablation extension.
    pub fn sgxv1(mut self) -> HwConfig {
        self.generation = SgxGeneration::V1;
        self.name = format!("{} [SGXv1 EPC model]", self.name);
        self
    }
}

/// Default profile for tests and fast local runs: the Table 1 machine at
/// 1/16 scale (L3 = 1.5 MB, L2 = 80 KB, L1d = 3 KB).
pub fn scaled_profile() -> HwConfig {
    // sgx-lint: allow(calibration-provenance) test-profile scale choice, not a paper constant
    xeon_gold_6326().scaled(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = xeon_gold_6326();
        assert_eq!(c.sockets, 2);
        assert_eq!(c.cores_per_socket, 16);
        assert_eq!(c.l1d.size, 48 * 1024);
        assert_eq!(c.l2.size, 1280 * 1024);
        assert_eq!(c.l3.size, 24 * 1024 * 1024);
        assert_eq!(c.epc_per_socket, 64 * 1024 * 1024 * 1024);
        assert!((c.freq_ghz - 2.9).abs() < 1e-9);
        assert_eq!(c.generation, SgxGeneration::V2);
    }

    #[test]
    fn cache_sets_are_consistent() {
        let c = xeon_gold_6326();
        assert_eq!(c.l1d.sets(), 48 * 1024 / (12 * 64));
        assert_eq!(c.l2.sets(), 1280 * 1024 / (20 * 64));
        assert_eq!(c.l3.sets(), 24 * 1024 * 1024 / (12 * 64));
    }

    #[test]
    fn scaling_preserves_ratios_and_floors() {
        let full = xeon_gold_6326();
        let s = full.clone().scaled(16);
        assert_eq!(s.l3.size, full.l3.size / 16);
        assert_eq!(s.l2.size, full.l2.size / 16);
        // Latencies and bandwidth do not change with scale.
        assert_eq!(s.mem.dram_latency, full.mem.dram_latency);
        assert_eq!(s.mem.socket_bw_cycles_per_byte, full.mem.socket_bw_cycles_per_byte);
        // Extreme scaling clamps to one line per way.
        let tiny = xeon_gold_6326().scaled(1 << 20);
        assert!(tiny.l1d.size >= tiny.l1d.ways * CACHE_LINE);
        assert!(tiny.l1d.sets() >= 1);
    }

    #[test]
    fn scaled_by_one_is_identity() {
        let a = xeon_gold_6326();
        let b = xeon_gold_6326().scaled(1);
        assert_eq!(a.l3.size, b.l3.size);
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn socket_of_core_is_socket_major() {
        let c = xeon_gold_6326();
        assert_eq!(c.socket_of_core(0), 0);
        assert_eq!(c.socket_of_core(15), 0);
        assert_eq!(c.socket_of_core(16), 1);
        assert_eq!(c.socket_of_core(31), 1);
    }

    #[test]
    fn cycles_to_secs() {
        let c = xeon_gold_6326();
        assert!((c.cycles_to_secs(2.9e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sgxv1_profile_enables_paging_generation() {
        let c = xeon_gold_6326().sgxv1();
        assert_eq!(c.generation, SgxGeneration::V1);
        assert!(c.paging.resident_bytes < 128 * 1024 * 1024);
    }
}
