//! Set-associative, write-back, write-allocate cache model with LRU
//! replacement.
//!
//! The simulator keeps an inclusive three-level hierarchy (private L1d and
//! L2 per core, shared L3 per socket). Only tags are stored — data lives in
//! the `SimVec` backing buffers — so a cache access is a handful of array
//! probes.
//!
//! # Hot-path layout
//!
//! All replacement metadata lives in one `u64` blob, one fixed-stride
//! block per set: `[tags; ways][lru; ways][dirty bitmask]`, padded to a
//! 64-byte multiple. A probe scans the dense tag run; a victim scan reads
//! the adjacent LRU run — the whole set is a handful of *contiguous* host
//! cache lines, which matters because the L3 model's metadata is far
//! larger than the host L1/L2 and random probes into three scattered
//! parallel arrays cost three distant host misses each. Set selection is
//! a mask when the set count is a power of two (every shipped profile),
//! with a plain `%` fallback so arbitrary `scaled()` factors stay exact.
//!
//! # Victim selection invariant
//!
//! Invalid ways keep `lru == 0` and valid ways always have `lru >= 1`
//! (the stamp pre-increments from 0), so the historical selection rule —
//! tag match > first invalid way > first minimal-LRU valid way — reduces
//! to *first strict minimum of the LRU run*: every invalid way ties at 0
//! ahead of any valid way, and valid stamps are unique. That makes the
//! victim scan a branchless running minimum, with no per-way invalid
//! test. [`Cache::flush`] and [`Cache::invalidate`] re-zero the LRU word
//! when they clear a tag to uphold the invariant. The selection and the
//! stamp sequence are bit-identical to the historical three-pass
//! implementation, which the golden digests and the property tests in
//! `tests/proptest_cache.rs` pin down.

use crate::config::{CacheConfig, CACHE_LINE};

/// Tag value marking an invalid way. Real tags are line addresses, which
/// stay far below `2^40` (region bases top out at `9 << 40` bytes).
const INVALID: u64 = u64::MAX;

/// One cache level.
#[derive(Debug)]
pub struct Cache {
    ways: usize,
    sets: usize,
    /// `sets - 1` when `sets` is a power of two, else `usize::MAX` to
    /// select the modulo fallback in [`Cache::set_of`].
    set_mask: usize,
    /// Words per set block: `2 * ways + 1` rounded up to a multiple of 8,
    /// so blocks stay 64-byte aligned relative to the blob start.
    stride: usize,
    /// Per-set metadata blocks: `[tags; ways][lru; ways][dirty mask]`.
    meta: Vec<u64>,
    stamp: u64,
}

/// What happened to a line evicted by an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// No line was displaced.
    None,
    /// A clean line was dropped.
    Clean(u64),
    /// A dirty line must be written back (line address).
    Dirty(u64),
}

impl Cache {
    /// Build a cache level from its configuration.
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.sets();
        let ways = cfg.ways;
        let set_mask = if sets.is_power_of_two() { sets - 1 } else { usize::MAX };
        assert!(ways <= 64, "dirty bitmask holds at most 64 ways");
        let stride = (2 * ways + 1).next_multiple_of(8);
        let mut meta = vec![0u64; sets * stride];
        for set in 0..sets {
            meta[set * stride..set * stride + ways].fill(INVALID);
        }
        Cache { ways, sets, set_mask, stride, meta, stamp: 0 }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != usize::MAX {
            (line as usize) & self.set_mask
        } else {
            (line as usize) % self.sets
        }
    }

    /// Offset of the set block holding `line`.
    #[inline]
    fn base_of(&self, line: u64) -> usize {
        self.set_of(line) * self.stride
    }

    /// Probe for `line`; on hit, refresh LRU and optionally mark dirty.
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        let base = self.base_of(line);
        self.stamp += 1;
        let tags = &self.meta[base..base + self.ways];
        for (i, &t) in tags.iter().enumerate() {
            if t == line {
                self.meta[base + self.ways + i] = self.stamp;
                self.meta[base + 2 * self.ways] |= (write as u64) << i;
                return true;
            }
        }
        false
    }

    /// Probe without updating replacement state (used by tests/inspection).
    pub fn contains(&self, line: u64) -> bool {
        let base = self.base_of(line);
        self.meta[base..base + self.ways].contains(&line)
    }

    /// First strict minimum of the set's LRU run — the victim the
    /// historical match > invalid > min-LRU selection would pick (see the
    /// module docs for why the zero-LRU invariant collapses the three
    /// rules into one branchless scan).
    #[inline]
    fn victim_way(&self, base: usize) -> usize {
        let lru = &self.meta[base + self.ways..base + 2 * self.ways];
        let mut vi = 0;
        let mut vl = lru[0];
        for (i, &l) in lru.iter().enumerate().skip(1) {
            if l < vl {
                vl = l;
                vi = i;
            }
        }
        vi
    }

    /// Fill `way` of the set at `base` with `line`, returning what it
    /// displaced.
    #[inline]
    fn place(&mut self, base: usize, way: usize, line: u64, dirty: bool) -> Evicted {
        let old = self.meta[base + way];
        let mask = self.meta[base + 2 * self.ways];
        let evicted = if old == INVALID {
            Evicted::None
        } else if mask & (1 << way) != 0 {
            Evicted::Dirty(old)
        } else {
            Evicted::Clean(old)
        };
        self.meta[base + way] = line;
        self.meta[base + self.ways + way] = self.stamp;
        self.meta[base + 2 * self.ways] = (mask & !(1 << way)) | ((dirty as u64) << way);
        evicted
    }

    /// Insert `line` (after a miss), evicting the LRU way if the set is
    /// full. Returns what was displaced.
    ///
    /// Reuses the line's own way if it is somehow present already (spilled
    /// victims can race their own earlier copies), else places at
    /// [`Cache::victim_way`].
    #[inline]
    pub fn insert(&mut self, line: u64, dirty: bool) -> Evicted {
        let base = self.base_of(line);
        self.stamp += 1;
        let tags = &self.meta[base..base + self.ways];
        for (i, &t) in tags.iter().enumerate() {
            if t == line {
                self.meta[base + self.ways + i] = self.stamp;
                self.meta[base + 2 * self.ways] |= (dirty as u64) << i;
                return Evicted::None;
            }
        }
        let way = self.victim_way(base);
        self.place(base, way, line, dirty)
    }

    /// [`Cache::insert`] for a line the caller has just probed and missed,
    /// with no intervening operations on this cache: the tag-match rescan
    /// is skipped (the line cannot be present). Stamp sequence and victim
    /// choice are identical to `insert`.
    #[inline]
    pub fn insert_miss(&mut self, line: u64, dirty: bool) -> Evicted {
        debug_assert!(!self.contains(line), "insert_miss caller guarantees absence");
        let base = self.base_of(line);
        self.stamp += 1;
        let way = self.victim_way(base);
        self.place(base, way, line, dirty)
    }

    /// Remove a line if present, reporting whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = self.base_of(line);
        for i in 0..self.ways {
            if self.meta[base + i] == line {
                self.meta[base + i] = INVALID;
                // Uphold the victim-selection invariant: invalid ways keep
                // a zero LRU word.
                self.meta[base + self.ways + i] = 0;
                return self.meta[base + 2 * self.ways] & (1 << i) != 0;
            }
        }
        false
    }

    /// Number of currently valid lines (test helper).
    pub fn occupancy(&self) -> usize {
        (0..self.sets)
            .map(|s| {
                self.meta[s * self.stride..s * self.stride + self.ways]
                    .iter()
                    .filter(|&&t| t != INVALID)
                    .count()
            })
            .sum()
    }

    /// Maximum number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Drop all contents (used between experiment repetitions).
    pub fn flush(&mut self) {
        self.meta.fill(0);
        for set in 0..self.sets {
            self.meta[set * self.stride..set * self.stride + self.ways].fill(INVALID);
        }
    }
}
/// Per-core stream-prefetcher model: tracks up to `SLOTS` independent
/// sequential streams; a DRAM fill that continues a tracked stream is
/// considered prefetched (bandwidth-bound instead of latency-bound).
#[derive(Debug)]
pub struct StreamDetector {
    last_lines: [u64; Self::SLOTS],
    next: usize,
}

impl StreamDetector {
    /// Hardware prefetchers track a limited number of streams; 16 covers
    /// the per-core stream count of Ice Lake's L2 prefetcher.
    pub const SLOTS: usize = 16;

    /// Fresh detector with no streams.
    pub fn new() -> Self {
        StreamDetector { last_lines: [u64::MAX; Self::SLOTS], next: 0 }
    }

    /// Record a DRAM fill of `line`; returns true when the fill continues a
    /// tracked stream (i.e. would have been prefetched). Both ascending and
    /// descending streams are tracked — hardware prefetchers lock onto
    /// either direction (CrkJoin's two-pointer partitioning relies on the
    /// descending one).
    pub fn observe(&mut self, line: u64) -> bool {
        for l in &mut self.last_lines {
            // Accept strides of up to two lines in either direction:
            // prefetchers lock on even when the access skips a line.
            if *l != u64::MAX && line != *l && line.abs_diff(*l) <= 2 {
                *l = line;
                return true;
            }
        }
        self.last_lines[self.next] = line;
        self.next = (self.next + 1) % Self::SLOTS;
        false
    }

    /// Forget all streams (phase boundaries).
    pub fn reset(&mut self) {
        *self = StreamDetector::new();
    }
}

impl Default for StreamDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Convert a byte address to its cache-line address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / CACHE_LINE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig { size: 4 * CACHE_LINE, ways: 2, latency: 1.0 })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(!c.access(10, false));
        c.insert(10, false);
        assert!(c.access(10, false));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even lines).
        c.insert(0, false);
        c.insert(2, false);
        c.access(0, false); // 0 now MRU, 2 is LRU
        let ev = c.insert(4, false);
        assert_eq!(ev, Evicted::Clean(2));
        assert!(c.contains(0));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(2, false);
        c.access(2, false);
        let ev = c.insert(4, false);
        assert_eq!(ev, Evicted::Dirty(0));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.access(0, true));
        c.insert(2, false);
        c.access(2, false);
        assert_eq!(c.insert(4, false), Evicted::Dirty(0));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for line in 0..100 {
            c.insert(line, line % 3 == 0);
            assert!(c.occupancy() <= c.capacity_lines());
        }
        assert_eq!(c.occupancy(), c.capacity_lines());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(1, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(1));
        assert!(!c.invalidate(99));
        assert!(!c.contains(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(1, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn reinserting_present_line_does_not_evict() {
        let mut c = tiny();
        c.insert(0, false);
        c.insert(2, false);
        assert_eq!(c.insert(0, true), Evicted::None);
        assert!(c.contains(2));
    }

    #[test]
    fn stream_detector_tracks_sequential() {
        let mut d = StreamDetector::new();
        assert!(!d.observe(100));
        assert!(d.observe(101));
        assert!(d.observe(102));
        assert!(d.observe(104)); // stride-2 tolerated
        assert!(!d.observe(200)); // new stream
        assert!(d.observe(201));
        // Old stream still tracked.
        assert!(d.observe(105));
    }

    #[test]
    fn stream_detector_tracks_descending() {
        let mut d = StreamDetector::new();
        assert!(!d.observe(1000));
        assert!(d.observe(999));
        assert!(d.observe(998));
        assert!(d.observe(996)); // stride-2 down
    }

    #[test]
    fn stream_detector_capacity_bounded() {
        let mut d = StreamDetector::new();
        // Start more streams than slots; earliest stream gets evicted.
        for s in 0..(StreamDetector::SLOTS as u64 + 4) {
            assert!(!d.observe(s * 1000));
        }
        // Stream 0 was evicted, continuing it is a miss first.
        assert!(!d.observe(1));
    }

    #[test]
    fn random_accesses_not_streams() {
        let mut d = StreamDetector::new();
        let mut x: u64 = 12345;
        let mut hits = 0;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if d.observe(x >> 20) {
                hits += 1;
            }
        }
        assert!(hits < 20, "random pattern detected as stream too often: {hits}");
    }
}
