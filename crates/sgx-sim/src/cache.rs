//! Set-associative, write-back, write-allocate cache model with LRU
//! replacement.
//!
//! The simulator keeps an inclusive three-level hierarchy (private L1d and
//! L2 per core, shared L3 per socket). Only tags are stored — data lives in
//! the `SimVec` backing buffers — so a cache access is a handful of array
//! probes.

use crate::config::{CacheConfig, CACHE_LINE};

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    /// Line address (byte address / 64); `u64::MAX` = invalid.
    tag: u64,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    dirty: bool,
    valid: bool,
}

/// One cache level.
#[derive(Debug)]
pub struct Cache {
    ways: usize,
    sets: usize,
    slots: Vec<Way>,
    stamp: u64,
}

/// What happened to a line evicted by an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// No line was displaced.
    None,
    /// A clean line was dropped.
    Clean(u64),
    /// A dirty line must be written back (line address).
    Dirty(u64),
}

impl Cache {
    /// Build a cache level from its configuration.
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache { ways: cfg.ways, sets, slots: vec![Way::default(); sets * cfg.ways], stamp: 0 }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    /// Probe for `line`; on hit, refresh LRU and optionally mark dirty.
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        let s = self.set_of(line) * self.ways;
        self.stamp += 1;
        for w in &mut self.slots[s..s + self.ways] {
            if w.valid && w.tag == line {
                w.lru = self.stamp;
                w.dirty |= write;
                return true;
            }
        }
        false
    }

    /// Probe without updating replacement state (used by tests/inspection).
    pub fn contains(&self, line: u64) -> bool {
        let s = self.set_of(line) * self.ways;
        self.slots[s..s + self.ways].iter().any(|w| w.valid && w.tag == line)
    }

    /// Insert `line` (after a miss), evicting the LRU way if the set is
    /// full. Returns what was displaced.
    pub fn insert(&mut self, line: u64, dirty: bool) -> Evicted {
        let s = self.set_of(line) * self.ways;
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.slots[s..s + self.ways];
        // Reuse the line's own slot if it is somehow present already.
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            w.lru = stamp;
            w.dirty |= dirty;
            return Evicted::None;
        }
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way { tag: line, lru: stamp, dirty, valid: true };
            return Evicted::None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            // sgx-lint: allow(panic-in-library) associativity >= 1 is validated at Cache::new, sets are never empty
            .expect("cache sets always have at least one way");
        let evicted =
            if victim.dirty { Evicted::Dirty(victim.tag) } else { Evicted::Clean(victim.tag) };
        *victim = Way { tag: line, lru: stamp, dirty, valid: true };
        evicted
    }

    /// Remove a line if present, reporting whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let s = self.set_of(line) * self.ways;
        for w in &mut self.slots[s..s + self.ways] {
            if w.valid && w.tag == line {
                w.valid = false;
                return w.dirty;
            }
        }
        false
    }

    /// Number of currently valid lines (test helper).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|w| w.valid).count()
    }

    /// Maximum number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Drop all contents (used between experiment repetitions).
    pub fn flush(&mut self) {
        for w in &mut self.slots {
            w.valid = false;
            w.dirty = false;
        }
    }
}

/// Per-core stream-prefetcher model: tracks up to `SLOTS` independent
/// sequential streams; a DRAM fill that continues a tracked stream is
/// considered prefetched (bandwidth-bound instead of latency-bound).
#[derive(Debug)]
pub struct StreamDetector {
    last_lines: [u64; Self::SLOTS],
    next: usize,
}

impl StreamDetector {
    /// Hardware prefetchers track a limited number of streams; 16 covers
    /// the per-core stream count of Ice Lake's L2 prefetcher.
    pub const SLOTS: usize = 16;

    /// Fresh detector with no streams.
    pub fn new() -> Self {
        StreamDetector { last_lines: [u64::MAX; Self::SLOTS], next: 0 }
    }

    /// Record a DRAM fill of `line`; returns true when the fill continues a
    /// tracked stream (i.e. would have been prefetched). Both ascending and
    /// descending streams are tracked — hardware prefetchers lock onto
    /// either direction (CrkJoin's two-pointer partitioning relies on the
    /// descending one).
    pub fn observe(&mut self, line: u64) -> bool {
        for l in &mut self.last_lines {
            // Accept strides of up to two lines in either direction:
            // prefetchers lock on even when the access skips a line.
            if *l != u64::MAX && line != *l && line.abs_diff(*l) <= 2 {
                *l = line;
                return true;
            }
        }
        self.last_lines[self.next] = line;
        self.next = (self.next + 1) % Self::SLOTS;
        false
    }

    /// Forget all streams (phase boundaries).
    pub fn reset(&mut self) {
        *self = StreamDetector::new();
    }
}

impl Default for StreamDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Convert a byte address to its cache-line address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / CACHE_LINE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig { size: 4 * CACHE_LINE, ways: 2, latency: 1.0 })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(!c.access(10, false));
        c.insert(10, false);
        assert!(c.access(10, false));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even lines).
        c.insert(0, false);
        c.insert(2, false);
        c.access(0, false); // 0 now MRU, 2 is LRU
        let ev = c.insert(4, false);
        assert_eq!(ev, Evicted::Clean(2));
        assert!(c.contains(0));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(2, false);
        c.access(2, false);
        let ev = c.insert(4, false);
        assert_eq!(ev, Evicted::Dirty(0));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.access(0, true));
        c.insert(2, false);
        c.access(2, false);
        assert_eq!(c.insert(4, false), Evicted::Dirty(0));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for line in 0..100 {
            c.insert(line, line % 3 == 0);
            assert!(c.occupancy() <= c.capacity_lines());
        }
        assert_eq!(c.occupancy(), c.capacity_lines());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(1, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(1));
        assert!(!c.invalidate(99));
        assert!(!c.contains(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(1, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn reinserting_present_line_does_not_evict() {
        let mut c = tiny();
        c.insert(0, false);
        c.insert(2, false);
        assert_eq!(c.insert(0, true), Evicted::None);
        assert!(c.contains(2));
    }

    #[test]
    fn stream_detector_tracks_sequential() {
        let mut d = StreamDetector::new();
        assert!(!d.observe(100));
        assert!(d.observe(101));
        assert!(d.observe(102));
        assert!(d.observe(104)); // stride-2 tolerated
        assert!(!d.observe(200)); // new stream
        assert!(d.observe(201));
        // Old stream still tracked.
        assert!(d.observe(105));
    }

    #[test]
    fn stream_detector_tracks_descending() {
        let mut d = StreamDetector::new();
        assert!(!d.observe(1000));
        assert!(d.observe(999));
        assert!(d.observe(998));
        assert!(d.observe(996)); // stride-2 down
    }

    #[test]
    fn stream_detector_capacity_bounded() {
        let mut d = StreamDetector::new();
        // Start more streams than slots; earliest stream gets evicted.
        for s in 0..(StreamDetector::SLOTS as u64 + 4) {
            assert!(!d.observe(s * 1000));
        }
        // Stream 0 was evicted, continuing it is a miss first.
        assert!(!d.observe(1));
    }

    #[test]
    fn random_accesses_not_streams() {
        let mut d = StreamDetector::new();
        let mut x: u64 = 12345;
        let mut hits = 0;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if d.observe(x >> 20) {
                hits += 1;
            }
        }
        assert!(hits < 20, "random pattern detected as stream too often: {hits}");
    }
}
