//! Models of the thread-synchronization primitives whose costs §4.4 of the
//! paper analyzes: the SGX SDK mutex (which sleeps threads *outside* the
//! enclave, paying two transitions plus a futex syscall on every contended
//! acquire), a spinlock, and a lock-free (Michael-Scott style) queue.
//!
//! A queue model owns a virtual timeline: `dequeue(now)` maps a worker's
//! local clock to the time its dequeue completes, serializing conflicting
//! critical sections and charging mode-dependent costs. The scheduler in
//! `Machine::parallel_tasks` interleaves workers by advancing whichever has
//! the smallest local clock, so contention (and the §4.4 avalanche effect)
//! plays out the same way it would under real concurrent execution.

use crate::config::HwConfig;
use crate::counters::Counters;
use crate::mem::ExecMode;

/// A task-distribution queue with a simulated cost model.
pub trait QueueModel {
    /// Prepare for a phase distributing `n_tasks` tasks.
    fn reset(&mut self, n_tasks: usize);

    /// A worker whose local clock reads `now` tries to pop a task.
    /// Returns `(completion_time, Some(task))` or `(completion_time, None)`
    /// when the queue is empty.
    fn dequeue(
        &mut self,
        now: f64,
        mode: ExecMode,
        cfg: &HwConfig,
        counters: &mut Counters,
    ) -> (f64, Option<usize>);

    /// Display name used in reports.
    fn name(&self) -> &'static str;
}

/// Cycles a lock-free queue pop costs when uncontended (atomic load + CAS).
const LOCKFREE_POP_CYCLES: f64 = 40.0;
/// Extra cycles for a CAS retry when another pop landed almost
/// simultaneously.
const LOCKFREE_RETRY_CYCLES: f64 = 30.0;
/// Window within which two pops conflict on the head pointer.
const LOCKFREE_CONFLICT_WINDOW: f64 = 25.0;

/// Lock-free MPMC queue (the Boost lock-free queue the paper substitutes
/// for the SDK mutex). Contention only costs bounded CAS retries; no OS or
/// enclave-boundary interaction ever happens.
#[derive(Debug, Default)]
pub struct LockFreeQueue {
    next_task: usize,
    n_tasks: usize,
    last_pop_at: f64,
}

impl QueueModel for LockFreeQueue {
    fn reset(&mut self, n_tasks: usize) {
        self.next_task = 0;
        self.n_tasks = n_tasks;
        self.last_pop_at = f64::NEG_INFINITY;
    }

    fn dequeue(
        &mut self,
        now: f64,
        _mode: ExecMode,
        _cfg: &HwConfig,
        _counters: &mut Counters,
    ) -> (f64, Option<usize>) {
        let mut done = now + LOCKFREE_POP_CYCLES;
        if (now - self.last_pop_at).abs() < LOCKFREE_CONFLICT_WINDOW {
            done += LOCKFREE_RETRY_CYCLES;
        }
        self.last_pop_at = done;
        if self.next_task < self.n_tasks {
            self.next_task += 1;
            (done, Some(self.next_task - 1))
        } else {
            (done, None)
        }
    }

    fn name(&self) -> &'static str {
        "lock-free queue"
    }
}

/// Cycles the critical section of a mutex-guarded pop takes (pointer
/// manipulation under the lock).
const MUTEX_CS_CYCLES: f64 = 60.0;
/// Fast-path (uncontended) lock+unlock cost.
const MUTEX_FAST_CYCLES: f64 = 50.0;

/// The SGX SDK mutex (`sgx_thread_mutex_*`): a contended acquire performs an
/// OCALL so the OS can put the thread to sleep, and the release performs an
/// OCALL to wake a sleeper — four enclave crossings per handover (§4.4).
/// In native mode the same structure degenerates to a futex-based mutex.
#[derive(Debug, Default)]
pub struct SdkMutexQueue {
    next_task: usize,
    n_tasks: usize,
    /// Virtual time at which the lock becomes free.
    free_at: f64,
}

impl QueueModel for SdkMutexQueue {
    fn reset(&mut self, n_tasks: usize) {
        self.next_task = 0;
        self.n_tasks = n_tasks;
        self.free_at = 0.0;
    }

    fn dequeue(
        &mut self,
        now: f64,
        mode: ExecMode,
        cfg: &HwConfig,
        counters: &mut Counters,
    ) -> (f64, Option<usize>) {
        let t = &cfg.transitions;
        let acquired;
        if now >= self.free_at {
            // Uncontended fast path: stays inside the enclave.
            acquired = now + MUTEX_FAST_CYCLES;
        } else if mode == ExecMode::Native && self.free_at - now < t.futex_cycles {
            // Native glibc-style mutexes spin briefly before sleeping;
            // short critical sections are handed over without any syscall,
            // which is why the paper measures no native difference between
            // the mutex and the lock-free queue.
            acquired = self.free_at + MUTEX_FAST_CYCLES;
        } else {
            counters.futex_waits += 1;
            // The waiter goes to sleep — in enclave mode this means an
            // OCALL out plus a transition back in once woken.
            let (out_cost, in_cost) = match mode {
                ExecMode::Enclave => {
                    counters.transitions += 2;
                    (t.transition_cycles + t.futex_cycles, t.transition_cycles)
                }
                ExecMode::Native => (t.futex_cycles, 0.0),
            };
            let asleep_at = now + out_cost;
            // The wake-up itself is performed by the releasing thread; the
            // waiter additionally pays the futex wake latency and the
            // transition back into the enclave. Crucially, the lock stays
            // logically unavailable while the next owner wakes up — this is
            // the avalanche effect: transitions stretch the effective
            // critical section.
            acquired = asleep_at.max(self.free_at) + t.futex_cycles + in_cost;
        }
        let done = acquired + MUTEX_CS_CYCLES;
        self.free_at = done;
        if self.next_task < self.n_tasks {
            self.next_task += 1;
            (done, Some(self.next_task - 1))
        } else {
            (done, None)
        }
    }

    fn name(&self) -> &'static str {
        "SDK mutex queue"
    }
}

/// Spinlock-guarded queue: contended acquires busy-wait inside the enclave.
/// No transitions, but the waiting time is real (the core burns cycles).
#[derive(Debug, Default)]
pub struct SpinLockQueue {
    next_task: usize,
    n_tasks: usize,
    free_at: f64,
}

impl QueueModel for SpinLockQueue {
    fn reset(&mut self, n_tasks: usize) {
        self.next_task = 0;
        self.n_tasks = n_tasks;
        self.free_at = 0.0;
    }

    fn dequeue(
        &mut self,
        now: f64,
        _mode: ExecMode,
        _cfg: &HwConfig,
        _counters: &mut Counters,
    ) -> (f64, Option<usize>) {
        // Spin until the lock frees, then take it; the cache-line bounce on
        // handover costs roughly one coherence miss.
        let acquired = now.max(self.free_at) + MUTEX_FAST_CYCLES;
        let done = acquired + MUTEX_CS_CYCLES;
        self.free_at = done;
        if self.next_task < self.n_tasks {
            self.next_task += 1;
            (done, Some(self.next_task - 1))
        } else {
            (done, None)
        }
    }

    fn name(&self) -> &'static str {
        "spinlock queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::xeon_gold_6326;

    fn drain(q: &mut dyn QueueModel, mode: ExecMode, workers: usize, n: usize) -> f64 {
        let cfg = xeon_gold_6326();
        let mut counters = Counters::default();
        q.reset(n);
        // Simple round-robin interleave with zero work per task.
        let mut clocks = vec![0.0f64; workers];
        let mut live = vec![true; workers];
        loop {
            let Some(w) = (0..workers)
                .filter(|&w| live[w])
                .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]))
            else {
                break;
            };
            let (t, task) = q.dequeue(clocks[w], mode, &cfg, &mut counters);
            clocks[w] = t;
            if task.is_none() {
                live[w] = false;
            }
        }
        clocks.iter().cloned().fold(0.0, f64::max)
    }

    #[test]
    fn all_queues_hand_out_each_task_once() {
        let cfg = xeon_gold_6326();
        let mut counters = Counters::default();
        for q in [
            &mut LockFreeQueue::default() as &mut dyn QueueModel,
            &mut SdkMutexQueue::default(),
            &mut SpinLockQueue::default(),
        ] {
            q.reset(10);
            let mut seen = vec![false; 10];
            let mut now = 0.0;
            loop {
                let (t, task) = q.dequeue(now, ExecMode::Enclave, &cfg, &mut counters);
                assert!(t >= now);
                now = t;
                match task {
                    Some(i) => {
                        assert!(!seen[i], "task {i} handed out twice by {}", q.name());
                        seen[i] = true;
                    }
                    None => break,
                }
            }
            assert!(seen.iter().all(|&s| s), "{} dropped tasks", q.name());
        }
    }

    #[test]
    fn sdk_mutex_contention_is_catastrophic_only_in_enclave() {
        let native = drain(&mut SdkMutexQueue::default(), ExecMode::Native, 16, 1000);
        let enclave = drain(&mut SdkMutexQueue::default(), ExecMode::Enclave, 16, 1000);
        let lockfree = drain(&mut LockFreeQueue::default(), ExecMode::Enclave, 16, 1000);
        // Inside the enclave the mutex pays transitions on contended
        // acquires; the lock-free queue never does.
        assert!(enclave > 5.0 * lockfree, "enclave {enclave} vs lock-free {lockfree}");
        assert!(enclave > 3.0 * native, "enclave {enclave} vs native {native}");
    }

    #[test]
    fn lock_free_cost_mode_independent() {
        let native = drain(&mut LockFreeQueue::default(), ExecMode::Native, 16, 1000);
        let enclave = drain(&mut LockFreeQueue::default(), ExecMode::Enclave, 16, 1000);
        assert!((native - enclave).abs() < 1e-6);
    }

    #[test]
    fn uncontended_mutex_is_cheap() {
        let cfg = xeon_gold_6326();
        let mut counters = Counters::default();
        let mut q = SdkMutexQueue::default();
        q.reset(100);
        // Single worker: never contended, never transitions.
        let mut now = 0.0;
        for _ in 0..100 {
            let (t, task) = q.dequeue(now, ExecMode::Enclave, &cfg, &mut counters);
            assert!(task.is_some());
            // Leave a gap so the lock is always free on arrival.
            now = t + 1000.0;
        }
        assert_eq!(counters.transitions, 0);
        assert_eq!(counters.futex_waits, 0);
    }

    #[test]
    fn spinlock_serializes_without_transitions() {
        let cfg = xeon_gold_6326();
        let mut counters = Counters::default();
        let mut q = SpinLockQueue::default();
        q.reset(2);
        let (t1, _) = q.dequeue(0.0, ExecMode::Enclave, &cfg, &mut counters);
        // Second worker arrives while first still holds the lock.
        let (t2, _) = q.dequeue(1.0, ExecMode::Enclave, &cfg, &mut counters);
        assert!(t2 >= t1, "critical sections must serialize");
        assert_eq!(counters.transitions, 0);
    }
}
