//! SGXv1-style EPC paging model (CLOCK replacement).
//!
//! SGXv2 removed the tiny-EPC bottleneck, so none of the paper's
//! experiments page. This module exists for the reproduction's *ablation*
//! extension: running the same joins against an SGXv1-sized EPC shows why
//! CrkJoin's design made sense on the old hardware (cf. §7's discussion of
//! TEEBench and CrkJoin).

use crate::config::{PagingConfig, PAGE_SIZE};
use std::collections::BTreeMap;

/// Tracks which EPC pages are resident and charges EWB/ELDU round trips on
/// faults, using the CLOCK (second-chance) policy like the Linux SGX
/// driver.
#[derive(Debug)]
pub struct Pager {
    capacity: usize,
    fault_cycles: f64,
    slots: Vec<(u64, bool)>,
    map: BTreeMap<u64, usize>,
    hand: usize,
    faults: u64,
}

impl Pager {
    /// Build a pager for the given paging configuration.
    pub fn new(cfg: &PagingConfig) -> Pager {
        let capacity = (cfg.resident_bytes / PAGE_SIZE).max(1);
        Pager {
            capacity,
            fault_cycles: cfg.fault_cycles,
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            map: BTreeMap::new(),
            hand: 0,
            faults: 0,
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// Total faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Touch the page containing `addr`; returns the fault cost in cycles
    /// (0.0 on a resident hit).
    pub fn touch(&mut self, addr: u64) -> f64 {
        let page = addr / PAGE_SIZE as u64;
        if let Some(&slot) = self.map.get(&page) {
            self.slots[slot].1 = true;
            return 0.0;
        }
        self.faults += 1;
        if self.slots.len() < self.capacity {
            self.map.insert(page, self.slots.len());
            self.slots.push((page, true));
        } else {
            // CLOCK: sweep until a slot with a clear reference bit appears.
            loop {
                let (victim, referenced) = self.slots[self.hand];
                if referenced {
                    self.slots[self.hand].1 = false;
                    self.hand = (self.hand + 1) % self.capacity;
                } else {
                    self.map.remove(&victim);
                    self.map.insert(page, self.hand);
                    self.slots[self.hand] = (page, true);
                    self.hand = (self.hand + 1) % self.capacity;
                    break;
                }
            }
        }
        self.fault_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager(pages: usize) -> Pager {
        Pager::new(&PagingConfig { resident_bytes: pages * PAGE_SIZE, fault_cycles: 100.0 })
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut p = pager(4);
        assert_eq!(p.touch(0), 100.0);
        assert_eq!(p.touch(8), 0.0); // same page
        assert_eq!(p.touch(PAGE_SIZE as u64), 100.0);
        assert_eq!(p.faults(), 2);
    }

    #[test]
    fn working_set_within_capacity_never_refaults() {
        let mut p = pager(8);
        for round in 0..3 {
            for i in 0..8u64 {
                let cost = p.touch(i * PAGE_SIZE as u64);
                if round > 0 {
                    assert_eq!(cost, 0.0, "refault of page {i} in round {round}");
                }
            }
        }
        assert_eq!(p.faults(), 8);
        assert_eq!(p.resident(), 8);
    }

    #[test]
    fn oversubscription_thrashes() {
        let mut p = pager(4);
        // Cyclic sweep over 8 pages with 4 slots: CLOCK degenerates to
        // FIFO and every touch faults.
        for _ in 0..4 {
            for i in 0..8u64 {
                p.touch(i * PAGE_SIZE as u64);
            }
        }
        assert!(p.faults() >= 28, "expected thrashing, got {} faults", p.faults());
        assert_eq!(p.resident(), 4);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = pager(2);
        let page = |i: u64| i * PAGE_SIZE as u64;
        p.touch(page(0));
        p.touch(page(1));
        // Fault on page 2: the sweep clears both reference bits and evicts
        // page 0 (FIFO order when everything is referenced). Page 2 enters
        // with its bit set while page 1's bit stays cleared.
        p.touch(page(2));
        // Fault on page 3: the hand finds page 1 unreferenced and evicts
        // it, giving the freshly referenced page 2 its second chance.
        p.touch(page(3));
        assert_eq!(p.touch(page(2)), 0.0, "referenced page 2 should have survived");
    }
}
