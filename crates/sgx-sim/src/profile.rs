//! Opt-in cycle-attribution profiler (DESIGN.md §11).
//!
//! The machine charges every cycle through the `Core::commit(Charge)`
//! choke point; this module answers *where in a workload's lifetime*
//! those cycles went. Experiments push named phase scopes
//! ([`Machine::phase`](crate::Machine::phase) /
//! [`Core::phase`](crate::Core::phase), RAII [`PhaseGuard`]), and every
//! committed charge is attributed to the pair *(phase stack, cost
//! category)*. The result is a [`Profile`]: a map from phase path
//! (`"build"`, `"join/probe"`, …) to a [`CategoryCycles`] cycle breakdown
//! plus the [`Counters`] delta that accrued under that phase.
//!
//! ## Conservation
//!
//! Counter attribution works by snapshot deltas: the per-machine
//! [`ProfCtx`] remembers the last-seen [`Counters`] and flushes the
//! field-wise difference into the current phase bucket at every phase
//! transition (and at machine drop). The deltas telescope, so the sum of
//! the per-phase counters equals the machine's end-of-run totals
//! *exactly* (u64 arithmetic; witnessed in `tests/integration_counters.rs`
//! and lint-checked: every `CategoryCycles` field must be written here and
//! read by the report layer). Cycle attribution adds each charge to
//! exactly one `(phase, category)` bin, so the bin sum equals the
//! arrival-order total [`Profile::charged_cycles`] up to float
//! re-association.
//!
//! ## Attribution boundaries
//!
//! Attribution is *commit-granular*: counters bumped between a phase
//! transition and the next committed charge land in the bucket that is
//! current at flush time, so a phase boundary can smear at most one
//! operation's counters into the neighbouring phase. Pushing a scope via
//! `Machine::phase`/`Core::phase` flushes eagerly, which makes *push*
//! boundaries exact. Queue wait cycles (`sync::QueueModel::dequeue`) are
//! deliberately not attributed — they are idle time, not charged work.
//!
//! ## Determinism
//!
//! Profiles are [`BTreeMap`]-backed (sorted, no hash iteration), phase
//! stacks and sessions are thread-local, and the figure harness runs each
//! job wholly on one worker thread — so a job's profile is a pure
//! function of the job, byte-identical at any `--jobs` value.
//!
//! When profiling is disabled (the default) a machine carries no
//! [`ProfCtx`] and every commit pays a single `Option` branch.

use crate::counters::Counters;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Cost category a committed charge is attributed to. Categories are
/// derived from the charge's `Tally` (compute/transition/EDMM/EPC-fault
/// charges) or from the memory level and region that served the access
/// (cache/DRAM/MEE/UPI), mirroring the decomposition the paper uses to
/// explain enclave slowdowns (§4–§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostCategory {
    /// Scalar/vector ALU work, branches, issue costs, modelled library
    /// calls.
    Compute,
    /// Accesses served by L1/L2/L3 (plus their TLB-walk share).
    Cache,
    /// Plain local DRAM fills and write-backs.
    Dram,
    /// DRAM traffic through the memory-encryption engine (EPC data in
    /// enclave mode).
    Mee,
    /// SGXv1-style EPC page faults (EWB/ELDU round trips).
    EpcPaging,
    /// EDMM dynamic page commits (EAUG + EACCEPT).
    Edmm,
    /// Enclave boundary crossings: ECALLs, OCALLs, retries.
    Transition,
    /// Remote-socket fills and their UPI/UCE latency.
    Upi,
    /// Asynchronous exits and native interrupts delivered by the fault
    /// engine.
    Fault,
}

impl CostCategory {
    /// Every category, in the fixed report order.
    pub const ALL: [CostCategory; 9] = [
        CostCategory::Compute,
        CostCategory::Cache,
        CostCategory::Dram,
        CostCategory::Mee,
        CostCategory::EpcPaging,
        CostCategory::Edmm,
        CostCategory::Transition,
        CostCategory::Upi,
        CostCategory::Fault,
    ];

    /// Stable label used in `profile.json` and chart legends.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Compute => "compute",
            CostCategory::Cache => "cache",
            CostCategory::Dram => "dram",
            CostCategory::Mee => "mee",
            CostCategory::EpcPaging => "epc_paging",
            CostCategory::Edmm => "edmm",
            CostCategory::Transition => "transition",
            CostCategory::Upi => "upi",
            CostCategory::Fault => "fault",
        }
    }

    /// Index of this category in [`CostCategory::ALL`].
    pub fn index(self) -> usize {
        match self {
            CostCategory::Compute => 0,
            CostCategory::Cache => 1,
            CostCategory::Dram => 2,
            CostCategory::Mee => 3,
            CostCategory::EpcPaging => 4,
            CostCategory::Edmm => 5,
            CostCategory::Transition => 6,
            CostCategory::Upi => 7,
            CostCategory::Fault => 8,
        }
    }

    /// The category holding the largest share of `sums` (indexed per
    /// [`CostCategory::index`]); ties break towards the lowest index, so
    /// the choice is deterministic. Used for pooled charges (issue groups,
    /// stream touches) that aggregate several accesses into one commit.
    pub fn dominant(sums: &[f64; 9]) -> CostCategory {
        let mut best = 0;
        for (i, &v) in sums.iter().enumerate() {
            if v > sums[best] {
                best = i;
            }
        }
        CostCategory::ALL[best]
    }
}

/// Cycles attributed to each [`CostCategory`] within one phase. The named
/// fields mirror `Counters` on purpose: the workspace lint's
/// counter-conservation rule covers this struct too, proving every
/// category is both written by the attribution path and read by the
/// report layer.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CategoryCycles {
    /// Cycles of ALU/vector/branch/issue work.
    pub compute: f64,
    /// Cycles of L1/L2/L3-served accesses.
    pub cache: f64,
    /// Cycles of plain local DRAM traffic.
    pub dram: f64,
    /// Cycles of MEE-encrypted EPC traffic.
    pub mee: f64,
    /// Cycles of SGXv1 EPC page faults.
    pub epc_paging: f64,
    /// Cycles of EDMM page commits.
    pub edmm: f64,
    /// Cycles of enclave transitions (ECALL/OCALL).
    pub transition: f64,
    /// Cycles of remote-socket (UPI/UCE) traffic.
    pub upi: f64,
    /// Cycles of fault-engine interrupts (AEX storms).
    pub fault: f64,
}

impl CategoryCycles {
    /// Add `cycles` to the bin for `cat`.
    #[inline]
    pub fn add(&mut self, cat: CostCategory, cycles: f64) {
        match cat {
            CostCategory::Compute => self.compute += cycles,
            CostCategory::Cache => self.cache += cycles,
            CostCategory::Dram => self.dram += cycles,
            CostCategory::Mee => self.mee += cycles,
            CostCategory::EpcPaging => self.epc_paging += cycles,
            CostCategory::Edmm => self.edmm += cycles,
            CostCategory::Transition => self.transition += cycles,
            CostCategory::Upi => self.upi += cycles,
            CostCategory::Fault => self.fault += cycles,
        }
    }

    /// The bin for `cat`.
    pub fn get(&self, cat: CostCategory) -> f64 {
        match cat {
            CostCategory::Compute => self.compute,
            CostCategory::Cache => self.cache,
            CostCategory::Dram => self.dram,
            CostCategory::Mee => self.mee,
            CostCategory::EpcPaging => self.epc_paging,
            CostCategory::Edmm => self.edmm,
            CostCategory::Transition => self.transition,
            CostCategory::Upi => self.upi,
            CostCategory::Fault => self.fault,
        }
    }

    /// Field-wise sum: add every bin of `other` into `self`.
    pub fn merge(&mut self, other: &CategoryCycles) {
        self.compute += other.compute;
        self.cache += other.cache;
        self.dram += other.dram;
        self.mee += other.mee;
        self.epc_paging += other.epc_paging;
        self.edmm += other.edmm;
        self.transition += other.transition;
        self.upi += other.upi;
        self.fault += other.fault;
    }

    /// Total cycles over all bins (fixed summation order).
    pub fn total(&self) -> f64 {
        CostCategory::ALL.iter().map(|&c| self.get(c)).sum()
    }
}

/// Everything attributed to one phase path: the cycle breakdown and the
/// counter events that accrued while the phase was current.
#[derive(Debug, Default, Clone)]
pub struct PhaseProfile {
    /// Cycles per cost category.
    pub cycles: CategoryCycles,
    /// Counter delta of the phase (sums exactly to the run totals).
    pub counters: Counters,
}

/// A cycle-attribution profile: phase path → attributed work. Phase paths
/// are `/`-joined scope stacks; work charged outside any scope lands under
/// `"(unscoped)"`.
#[derive(Debug, Default, Clone)]
pub struct Profile {
    /// Per-phase attribution, sorted by path (deterministic iteration).
    pub phases: BTreeMap<String, PhaseProfile>,
    /// Arrival-order sum of every attributed cycle charge — the
    /// conservation witness for [`Profile::total_cycles`], which re-sums
    /// the same charges grouped by bin.
    pub charged_cycles: f64,
}

impl Profile {
    /// Fold `other` into `self`, phase by phase.
    pub fn merge(&mut self, other: &Profile) {
        for (path, ph) in &other.phases {
            let e = self.phases.entry(path.clone()).or_default();
            e.cycles.merge(&ph.cycles);
            e.counters.merge(&ph.counters);
        }
        self.charged_cycles += other.charged_cycles;
    }

    /// Sum of all cycle bins over all phases. Equals
    /// [`Profile::charged_cycles`] up to float re-association.
    pub fn total_cycles(&self) -> f64 {
        self.phases.values().map(|p| p.cycles.total()).sum()
    }

    /// Merged counter totals over all phases. Exactly equal (u64) to the
    /// run totals of the machines that produced this profile.
    pub fn total_counters(&self) -> Counters {
        let mut c = Counters::default();
        for p in self.phases.values() {
            c.merge(&p.counters);
        }
        c
    }

    /// True when nothing was attributed.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

thread_local! {
    /// Whether machines built on this thread attribute their charges.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// Bumped on every phase push/pop; `ProfCtx` uses it to notice scope
    /// changes without comparing stacks.
    static VERSION: Cell<u64> = const { Cell::new(0) };
    /// The current phase scope stack.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Session accumulator fed by `Machine::drop`, mirroring
    /// `counters::SESSION` (one harness job runs wholly on one thread).
    static SESSION: RefCell<Profile> = RefCell::new(Profile::default());
}

/// Enable or disable profiling for machines subsequently built on this
/// thread (existing machines keep their setting). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Is profiling enabled on this thread?
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn version() -> u64 {
    VERSION.with(|v| v.get())
}

fn bump_version() {
    VERSION.with(|v| v.set(v.get().wrapping_add(1)));
}

fn current_path() -> String {
    STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            "(unscoped)".to_string()
        } else {
            s.join("/")
        }
    })
}

/// Push a named phase scope on this thread's stack; the scope ends when
/// the returned guard drops. Inert (and free) while profiling is
/// disabled. Prefer [`Machine::phase`](crate::Machine::phase) /
/// [`Core::phase`](crate::Core::phase), which additionally flush the
/// machine's pending counter delta so the push boundary is exact; this
/// free function serves contexts without a machine at hand.
pub fn phase(name: &'static str) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { active: false };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    bump_version();
    PhaseGuard { active: true }
}

/// RAII guard for a phase scope (see [`phase`]). Guards must nest:
/// dropping them out of order pops the wrong scope.
#[must_use = "binding the guard keeps the phase scope open; dropping it immediately closes the scope"]
pub struct PhaseGuard {
    active: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _popped = STACK.with(|s| s.borrow_mut().pop());
        bump_version();
    }
}

/// Fold `p` into the current thread's session accumulator.
pub fn session_absorb(p: &Profile) {
    if p.is_empty() && p.charged_cycles == 0.0 {
        return;
    }
    SESSION.with(|s| s.borrow_mut().merge(p));
}

/// Take (and reset) the current thread's session accumulator.
pub fn session_take() -> Profile {
    SESSION.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Per-machine attribution context, installed by `Machine::new` when
/// [`enabled`] is set. Keeps the profile under construction plus the
/// state needed to attribute incrementally: the last-seen counter
/// snapshot, the cached phase path, and flat cycle bins for the current
/// phase (so the hot path touches no map).
pub(crate) struct ProfCtx {
    /// Thread-local [`VERSION`] at the last scope sync.
    version: u64,
    /// Cached phase path (valid for `version`).
    path: String,
    /// Counter values already flushed into `profile`.
    snapshot: Counters,
    /// Cycle bins of the current phase, merged into `profile` on flush.
    cur: CategoryCycles,
    /// The profile under construction.
    profile: Profile,
}

impl ProfCtx {
    pub(crate) fn new() -> ProfCtx {
        ProfCtx {
            version: version(),
            path: current_path(),
            snapshot: Counters::default(),
            cur: CategoryCycles::default(),
            profile: Profile::default(),
        }
    }

    /// Merge the pending cycle bins and the counter delta since the last
    /// flush into the bucket of the cached phase path. Cheap when nothing
    /// is pending; otherwise one map lookup per phase transition.
    pub(crate) fn flush(&mut self, counters: &Counters) {
        let delta = counters.delta(&self.snapshot);
        let dirty = self.cur != CategoryCycles::default() || delta.any();
        if !dirty {
            return;
        }
        self.snapshot = counters.clone();
        let e = self.profile.phases.entry(self.path.clone()).or_default();
        e.cycles.merge(&self.cur);
        e.counters.merge(&delta);
        self.cur = CategoryCycles::default();
    }

    /// Re-cache the thread-local scope path after a push/pop performed by
    /// the caller (who has already flushed).
    pub(crate) fn refresh_scope(&mut self) {
        self.version = version();
        self.path = current_path();
    }

    /// Notice phase pushes/pops since the last sync: flush pending work to
    /// the old scope, then adopt the new one. Call before applying a
    /// charge's counter tally so pre-charge counter bumps land in the
    /// scope they accrued under.
    #[inline]
    pub(crate) fn resync_scope(&mut self, counters: &Counters) {
        if version() != self.version {
            self.flush(counters);
            self.refresh_scope();
        }
    }

    /// Attribute `cycles` to the `cat` bin of the current phase (counters
    /// flow via snapshot deltas at flush time). The hot path of
    /// `Core::commit`: two field adds, no map access.
    #[inline]
    pub(crate) fn add(&mut self, cat: CostCategory, cycles: f64) {
        self.cur.add(cat, cycles);
        self.profile.charged_cycles += cycles;
    }

    /// Attribute one out-of-band charge: [`ProfCtx::resync_scope`] +
    /// [`ProfCtx::add`], for cycle advances that bypass `Core::commit`
    /// (machine-level ECALL/OCALL wall charges, fault-engine interrupts).
    #[inline]
    pub(crate) fn record(&mut self, counters: &Counters, cat: CostCategory, cycles: f64) {
        self.resync_scope(counters);
        self.add(cat, cycles);
    }

    /// Take the finished profile (call [`ProfCtx::flush`] first).
    pub(crate) fn take_profile(&mut self) -> Profile {
        std::mem::take(&mut self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(cats: &[(CostCategory, f64)]) -> ProfCtx {
        let mut ctx = ProfCtx::new();
        let c = Counters::default();
        for &(cat, v) in cats {
            ctx.record(&c, cat, v);
        }
        ctx
    }

    #[test]
    fn categories_have_stable_order_labels_and_indexes() {
        assert_eq!(CostCategory::ALL.len(), 9);
        for (i, cat) in CostCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
        let labels: Vec<&str> = CostCategory::ALL.iter().map(|c| c.label()).collect();
        let mut sorted = labels.clone();
        sorted.dedup();
        assert_eq!(labels.len(), sorted.len(), "labels must be unique");
    }

    #[test]
    fn dominant_breaks_ties_towards_lowest_index() {
        let mut sums = [0.0; 9];
        assert_eq!(CostCategory::dominant(&sums), CostCategory::Compute);
        sums[CostCategory::Mee.index()] = 5.0;
        sums[CostCategory::Upi.index()] = 5.0;
        assert_eq!(CostCategory::dominant(&sums), CostCategory::Mee);
        sums[CostCategory::Upi.index()] = 6.0;
        assert_eq!(CostCategory::dominant(&sums), CostCategory::Upi);
    }

    #[test]
    fn category_cycles_add_get_merge_total_cover_every_bin() {
        let mut a = CategoryCycles::default();
        for (i, &cat) in CostCategory::ALL.iter().enumerate() {
            a.add(cat, (i + 1) as f64);
        }
        for (i, &cat) in CostCategory::ALL.iter().enumerate() {
            assert_eq!(a.get(cat), (i + 1) as f64);
        }
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.total(), 2.0 * a.total());
        assert_eq!(a.total(), 45.0);
    }

    #[test]
    fn guard_is_inert_when_disabled() {
        set_enabled(false);
        let before = version();
        {
            let _g = phase("dead");
            assert_eq!(version(), before);
            assert_eq!(current_path(), "(unscoped)");
        }
        assert_eq!(version(), before);
    }

    #[test]
    fn scopes_nest_and_version_tracks_transitions() {
        set_enabled(true);
        let v0 = version();
        {
            let _a = phase("outer");
            assert_eq!(current_path(), "outer");
            {
                let _b = phase("inner");
                assert_eq!(current_path(), "outer/inner");
            }
            assert_eq!(current_path(), "outer");
        }
        assert_eq!(current_path(), "(unscoped)");
        assert_eq!(version(), v0 + 4, "two pushes + two pops");
        set_enabled(false);
    }

    #[test]
    fn profctx_attributes_by_scope_and_conserves() {
        set_enabled(true);
        let mut ctx = ProfCtx::new();
        let mut counters = Counters::default();
        counters.loads += 3;
        ctx.record(&counters, CostCategory::Cache, 10.0);
        {
            let _g = phase("hot");
            ctx.flush(&counters);
            ctx.refresh_scope();
            counters.loads += 2;
            counters.epc_fills += 1;
            ctx.record(&counters, CostCategory::Mee, 32.0);
        }
        // The pop is noticed lazily at the next record.
        counters.stores += 1;
        ctx.record(&counters, CostCategory::Compute, 1.0);
        ctx.flush(&counters);
        let p = ctx.take_profile();
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases["hot"].cycles.mee, 32.0);
        // Commit-granular smear: the store bumped before the first
        // post-pop record flushes with the "hot" bucket.
        assert_eq!(p.phases["hot"].counters.loads, 2);
        assert_eq!(p.phases["hot"].counters.stores, 1);
        assert_eq!(p.phases["(unscoped)"].cycles.cache, 10.0);
        assert_eq!(p.phases["(unscoped)"].cycles.compute, 1.0);
        let totals = p.total_counters();
        assert_eq!(format!("{totals:?}"), format!("{counters:?}"), "deltas telescope exactly");
        assert_eq!(p.total_cycles(), p.charged_cycles);
        set_enabled(false);
    }

    #[test]
    fn session_accumulator_merges_and_resets() {
        let _ = session_take();
        let mut ctx = ctx_with(&[(CostCategory::Compute, 4.0)]);
        let c = Counters::default();
        ctx.flush(&c);
        session_absorb(&ctx.take_profile());
        let mut ctx2 = ctx_with(&[(CostCategory::Compute, 6.0)]);
        ctx2.flush(&c);
        session_absorb(&ctx2.take_profile());
        let got = session_take();
        assert_eq!(got.phases["(unscoped)"].cycles.compute, 10.0);
        assert_eq!(got.charged_cycles, 10.0);
        assert!(session_take().is_empty());
    }

    #[test]
    fn empty_flushes_create_no_phase_entries() {
        let mut ctx = ProfCtx::new();
        let c = Counters::default();
        ctx.flush(&c);
        ctx.flush(&c);
        assert!(ctx.take_profile().is_empty());
    }
}
