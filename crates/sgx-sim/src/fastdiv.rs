//! Exact strength-reduced remainders for the simulator hot path.
//!
//! The per-access pipeline computes two kinds of modulo: cache set
//! selection (`line % sets`) and the TLB slot probe (`page % entries`).
//! Both sit inside loops that run once per simulated cache line, and a
//! 64-bit integer division costs tens of host cycles. [`FastMod`]
//! removes the division while returning *bit-identical* results:
//!
//! * power-of-two divisors reduce to a mask;
//! * other divisors use Lemire's fastmod (a 64-bit magic multiply),
//!   which is exact for all `n < 2^32` — and falls back to a real `%`
//!   for larger operands, so the result is always exact.
//!
//! Simulated addresses top out well under `2^44` (region bases are
//! `(index + 1) << 40` with at most 8 regions), so page numbers
//! (`addr / 4096 < 2^32`) always take the magic-multiply path; the
//! fallback only exists to keep the function total.

/// Precomputed remainder-by-constant: `rem(n) == n % d` for every `n`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastMod {
    d: u64,
    /// `ceil(2^64 / d)` (Lemire's magic constant); unused for powers of
    /// two.
    magic: u64,
    /// `d - 1` when `d` is a power of two, else `u64::MAX` as a
    /// "use the magic path" sentinel.
    mask: u64,
}

impl FastMod {
    /// Build the constants for divisor `d` (must be non-zero).
    pub fn new(d: u64) -> FastMod {
        assert!(d > 0, "FastMod divisor must be non-zero");
        let mask = if d.is_power_of_two() { d - 1 } else { u64::MAX };
        // For d == 1 the mask path answers 0 before magic is consulted.
        let magic = (u64::MAX / d).wrapping_add(1);
        FastMod { d, magic, mask }
    }

    /// `n % d`, exactly.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        if self.mask != u64::MAX {
            return n & self.mask;
        }
        if n <= u32::MAX as u64 {
            // Lemire fastmod: frac = n * magic mod 2^64 holds the
            // fractional part of n/d scaled by 2^64; multiplying by d and
            // keeping the high word recovers the remainder (exact for
            // n, d < 2^32).
            let frac = self.magic.wrapping_mul(n);
            ((frac as u128 * self.d as u128) >> 64) as u64
        } else {
            n % self.d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_modulo_for_hot_path_divisors() {
        // The divisors the simulator actually uses: TLB entries (full and
        // /16-scaled profiles) and cache set counts.
        for d in [1u64, 2, 3, 4, 64, 96, 1024, 1536, 2048, 32768, 12345] {
            let fm = FastMod::new(d);
            for n in (0u64..5000).chain([
                u32::MAX as u64 - 1,
                u32::MAX as u64,
                u32::MAX as u64 + 1,
                1 << 40,
                (9u64 << 40) + 12345,
                u64::MAX,
            ]) {
                assert_eq!(fm.rem(n), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn dense_sweep_around_divisor_multiples() {
        for d in [96u64, 1536] {
            let fm = FastMod::new(d);
            for k in [0u64, 1, 7, 1000, 44_000_000] {
                let base = k * d;
                for n in base.saturating_sub(2)..base + 2 * d + 2 {
                    assert_eq!(fm.rem(n), n % d);
                }
            }
        }
    }
}
