//! Virtual address space, memory regions and the typed `SimVec` container.
//!
//! Every byte an operator touches lives in a [`Region`]: untrusted DRAM or
//! the Enclave Page Cache (EPC), each pinned to a NUMA node. The region an
//! access targets — together with the machine's [`ExecMode`] — determines
//! which costs the memory model charges (MEE encryption, UPI/UCE crossing,
//! EDMM page commits, SGXv1 paging).

use crate::config::{CACHE_LINE, PAGE_SIZE};

/// Whether the simulated CPU executes in enclave mode or natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Normal (unprotected) execution.
    Native,
    /// Execution inside an SGX enclave (after EENTER).
    Enclave,
}

/// Regions are laid out 1 TiB apart: `addr >> REGION_SHIFT` identifies
/// the region of any simulated address (the access fast path compares
/// these shifted prefixes directly to prove a line run stays within one
/// region).
pub(crate) const REGION_SHIFT: u32 = 40;

/// Where data physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Ordinary untrusted DRAM on the given NUMA node.
    Untrusted(u8),
    /// Encrypted EPC memory on the given NUMA node.
    Epc(u8),
}

impl Region {
    /// NUMA node the region's memory is attached to.
    pub fn node(self) -> usize {
        match self {
            Region::Untrusted(n) | Region::Epc(n) => n as usize,
        }
    }

    /// True for EPC regions (data encrypted at rest).
    pub fn is_epc(self) -> bool {
        matches!(self, Region::Epc(_))
    }

    /// Dense index used for allocator bookkeeping: `node * 2 + is_epc`.
    pub(crate) fn index(self) -> usize {
        self.node() * 2 + usize::from(self.is_epc())
    }

    pub(crate) fn from_index(i: usize) -> Region {
        let node = (i / 2) as u8;
        if i % 2 == 1 { Region::Epc(node) } else { Region::Untrusted(node) }
    }

    /// Base virtual address of the region (1 TiB apart, so a region is
    /// recoverable from any address).
    pub(crate) fn base(self) -> u64 {
        ((self.index() as u64) + 1) << REGION_SHIFT
    }

    /// Recover the region an address belongs to.
    #[inline]
    pub(crate) fn of_addr(addr: u64) -> Region {
        Region::from_index(((addr >> REGION_SHIFT) - 1) as usize)
    }
}

/// The three benchmark settings of the paper (§3):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// (1) Native code, data in untrusted memory; no protection, no cost.
    PlainCpu,
    /// (2) Enclave code, data stored inside the enclave (EPC).
    SgxDataInEnclave,
    /// (3) Enclave code, data in untrusted memory: isolates code-execution
    /// effects from memory-encryption effects.
    SgxDataOutside,
}

impl Setting {
    /// Execution mode implied by the setting.
    pub fn mode(self) -> ExecMode {
        match self {
            Setting::PlainCpu => ExecMode::Native,
            _ => ExecMode::Enclave,
        }
    }

    /// Default placement region for working data on `node`.
    pub fn data_region(self, node: u8) -> Region {
        match self {
            Setting::SgxDataInEnclave => Region::Epc(node),
            _ => Region::Untrusted(node),
        }
    }

    /// Short label used in reports, mirroring the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Setting::PlainCpu => "Plain CPU",
            Setting::SgxDataInEnclave => "SGX (Data in Enclave)",
            Setting::SgxDataOutside => "SGX (Data outside Enclave)",
        }
    }

    /// All three settings in the paper's presentation order.
    pub fn all() -> [Setting; 3] {
        [Setting::PlainCpu, Setting::SgxDataInEnclave, Setting::SgxDataOutside]
    }
}

/// Bump allocator state for one region.
#[derive(Debug, Default, Clone)]
pub(crate) struct RegionAlloc {
    /// Bytes handed out so far.
    pub used: u64,
}

impl RegionAlloc {
    /// Allocate `bytes` aligned to a cache line; returns region-relative
    /// offset.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let off = (self.used + (CACHE_LINE as u64 - 1)) & !(CACHE_LINE as u64 - 1);
        self.used = off + bytes;
        off
    }
}

/// Round a byte count up to whole 4 KB pages.
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

/// A typed array living in simulated memory.
///
/// `SimVec` owns real backing storage (operators compute real results) and
/// knows its simulated address, so charged accessors (`get`, `set`, `rmw`,
/// `iter_stream`, …) drive the machine's cache/memory model while `peek` /
/// `poke` bypass accounting for test setup and verification.
pub struct SimVec<T> {
    buf: Vec<T>,
    base: u64,
    region: Region,
}

impl<T: Copy + Default> SimVec<T> {
    /// Internal constructor; use `Machine::alloc`.
    pub(crate) fn new(len: usize, base: u64, region: Region) -> Self {
        SimVec { buf: vec![T::default(); len], base, region }
    }
}

impl<T: Copy> SimVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Size of the backing storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<T>()
    }

    /// Region this vector was allocated in.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Simulated virtual address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + (i * std::mem::size_of::<T>()) as u64
    }

    /// Uncharged read for setup/verification code.
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.buf[i]
    }

    /// Uncharged write for setup code.
    #[inline]
    pub fn poke(&mut self, i: usize, v: T) {
        self.buf[i] = v;
    }

    /// Uncharged view of the backing storage — **bypasses the event
    /// stream**, so nothing read through it is priced by the cost model.
    ///
    /// Legitimate uses, and only these:
    /// * test/verification code comparing results against a reference,
    /// * data-generation/setup code outside the timed region,
    /// * simulator internals that already charged the access another way
    ///   (e.g. [`read_stream`](crate::Machine) batches).
    ///
    /// In operator hot paths this is a model-integrity bug;
    /// `sgx-lint`'s `untracked-access` rule flags every use in operator
    /// crates unless annotated with a reasoned allow-marker.
    pub fn as_slice_untracked(&self) -> &[T] {
        &self.buf
    }

    /// Uncharged mutable view of the backing storage (setup only) — same
    /// contract and lint rule as [`SimVec::as_slice_untracked`].
    pub fn as_mut_slice_untracked(&mut self) -> &mut [T] {
        &mut self.buf
    }

    pub(crate) fn elem_size() -> usize {
        std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_roundtrip() {
        for i in 0..8 {
            let r = Region::from_index(i);
            assert_eq!(r.index(), i);
            assert_eq!(Region::of_addr(r.base()), r);
            assert_eq!(Region::of_addr(r.base() + 123_456_789), r);
        }
    }

    #[test]
    fn region_properties() {
        assert!(Region::Epc(0).is_epc());
        assert!(!Region::Untrusted(1).is_epc());
        assert_eq!(Region::Epc(1).node(), 1);
        assert_eq!(Region::Untrusted(0).node(), 0);
    }

    #[test]
    fn settings_imply_modes_and_regions() {
        assert_eq!(Setting::PlainCpu.mode(), ExecMode::Native);
        assert_eq!(Setting::SgxDataInEnclave.mode(), ExecMode::Enclave);
        assert_eq!(Setting::SgxDataOutside.mode(), ExecMode::Enclave);
        assert_eq!(Setting::SgxDataInEnclave.data_region(1), Region::Epc(1));
        assert_eq!(Setting::SgxDataOutside.data_region(0), Region::Untrusted(0));
        assert_eq!(Setting::PlainCpu.data_region(0), Region::Untrusted(0));
    }

    #[test]
    fn bump_allocator_aligns_and_never_overlaps() {
        let mut a = RegionAlloc::default();
        let x = a.alloc(10);
        let y = a.alloc(100);
        let z = a.alloc(1);
        assert_eq!(x % CACHE_LINE as u64, 0);
        assert_eq!(y % CACHE_LINE as u64, 0);
        assert_eq!(z % CACHE_LINE as u64, 0);
        assert!(x + 10 <= y);
        assert!(y + 100 <= z);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
    }
}
