//! Performance counters collected by the simulator.
//!
//! Besides the per-[`crate::Machine`] totals, this module keeps a
//! *session accumulator*: a thread-local [`Counters`] that absorbs the
//! totals of every `Machine` dropped on that thread. The parallel figure
//! harness runs each job wholly on one worker thread, so
//! [`session_take`] around a job yields that job's counter totals without
//! threading a collector through the 25 experiment signatures; summing
//! the per-job results with [`Counters::merge`] reproduces the whole-run
//! totals exactly (u64 addition is associative and commutative).

use std::cell::RefCell;

thread_local! {
    /// Per-thread session accumulator fed by `Machine::drop`.
    static SESSION: RefCell<Counters> = RefCell::new(Counters::default());
}

/// Fold `c` into the current thread's session accumulator. Called by
/// `Machine::drop`; also usable directly for counters captured before a
/// machine is dropped.
pub fn session_absorb(c: &Counters) {
    SESSION.with(|s| s.borrow_mut().merge(c));
}

/// Take (and reset) the current thread's session accumulator.
pub fn session_take() -> Counters {
    SESSION.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Event totals across the whole machine, analogous to the hardware PMU and
/// sgx-perf counters the paper relies on. Tests and benches use these to
/// verify *why* a result looks the way it does (e.g. that a slowdown really
/// comes from EPC fills and not from extra instructions).
#[derive(Debug, Default, Clone)]
pub struct Counters {
    /// Charged load/RMW accesses.
    pub loads: u64,
    /// Charged store accesses.
    pub stores: u64,
    /// Hits in the (per-core) L1d.
    pub l1_hits: u64,
    /// Hits in the (per-core) L2.
    pub l2_hits: u64,
    /// Hits in the (shared, per-socket) L3.
    pub l3_hits: u64,
    /// Line fills from DRAM.
    pub dram_fills: u64,
    /// DRAM fills served by the stream prefetcher (bandwidth-bound).
    pub prefetched_fills: u64,
    /// DRAM fills that required MEE decryption (EPC data, enclave mode).
    pub epc_fills: u64,
    /// DRAM fills from a remote NUMA node (over UPI).
    pub remote_fills: u64,
    /// Dirty L3 lines written back to DRAM.
    pub writebacks: u64,
    /// Cache lines moved for explicit stream reads/writes.
    pub stream_lines: u64,
    /// Enclave transitions (ECALL/OCALL one-way crossings).
    pub transitions: u64,
    /// Futex sleep/wake pairs performed by the SDK mutex model.
    pub futex_waits: u64,
    /// EPC pages dynamically added via EDMM (EAUG + EACCEPT).
    pub edmm_pages: u64,
    /// SGXv1-style EPC page faults (EWB/ELDU round trips).
    pub epc_page_faults: u64,
    /// Issue groups closed in enclave mode.
    pub enclave_groups: u64,
    /// Second-level TLB misses (page walks).
    pub tlb_misses: u64,
    /// Scalar ALU operations charged via `Core::compute`.
    pub alu_ops: u64,
    /// 512-bit vector operations charged via `Core::vec_compute`.
    pub vec_ops: u64,
    /// Asynchronous enclave exits delivered by the fault engine
    /// (`sgx_sim::faults`); each one also charges two `transitions`.
    pub aex_events: u64,
    /// Transient OCALL failures that forced a retry (fault engine).
    pub ocall_retries: u64,
}

impl Counters {
    /// Field-wise sum: add every counter of `other` into `self`.
    ///
    /// Conservation contract (tested in `tests/integration_counters.rs`
    /// and `tests/integration_equivalence.rs`): merging the per-job
    /// counters of a partitioned run equals the counters of the whole
    /// run, whatever the partition.
    pub fn merge(&mut self, other: &Counters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l3_hits += other.l3_hits;
        self.dram_fills += other.dram_fills;
        self.prefetched_fills += other.prefetched_fills;
        self.epc_fills += other.epc_fills;
        self.remote_fills += other.remote_fills;
        self.writebacks += other.writebacks;
        self.stream_lines += other.stream_lines;
        self.transitions += other.transitions;
        self.futex_waits += other.futex_waits;
        self.edmm_pages += other.edmm_pages;
        self.epc_page_faults += other.epc_page_faults;
        self.enclave_groups += other.enclave_groups;
        self.tlb_misses += other.tlb_misses;
        self.alu_ops += other.alu_ops;
        self.vec_ops += other.vec_ops;
        self.aex_events += other.aex_events;
        self.ocall_retries += other.ocall_retries;
    }

    /// Field-wise difference `self - since`. Counters are monotone (every
    /// event only increments), so for a snapshot taken earlier on the same
    /// machine the subtraction cannot underflow; the profiler
    /// ([`crate::profile`]) relies on these deltas telescoping exactly to
    /// the run totals.
    pub fn delta(&self, since: &Counters) -> Counters {
        Counters {
            loads: self.loads - since.loads,
            stores: self.stores - since.stores,
            l1_hits: self.l1_hits - since.l1_hits,
            l2_hits: self.l2_hits - since.l2_hits,
            l3_hits: self.l3_hits - since.l3_hits,
            dram_fills: self.dram_fills - since.dram_fills,
            prefetched_fills: self.prefetched_fills - since.prefetched_fills,
            epc_fills: self.epc_fills - since.epc_fills,
            remote_fills: self.remote_fills - since.remote_fills,
            writebacks: self.writebacks - since.writebacks,
            stream_lines: self.stream_lines - since.stream_lines,
            transitions: self.transitions - since.transitions,
            futex_waits: self.futex_waits - since.futex_waits,
            edmm_pages: self.edmm_pages - since.edmm_pages,
            epc_page_faults: self.epc_page_faults - since.epc_page_faults,
            enclave_groups: self.enclave_groups - since.enclave_groups,
            tlb_misses: self.tlb_misses - since.tlb_misses,
            alu_ops: self.alu_ops - since.alu_ops,
            vec_ops: self.vec_ops - since.vec_ops,
            aex_events: self.aex_events - since.aex_events,
            ocall_retries: self.ocall_retries - since.ocall_retries,
        }
    }

    /// True when at least one counter is nonzero.
    pub fn any(&self) -> bool {
        (self.loads
            | self.stores
            | self.l1_hits
            | self.l2_hits
            | self.l3_hits
            | self.dram_fills
            | self.prefetched_fills
            | self.epc_fills
            | self.remote_fills
            | self.writebacks
            | self.stream_lines
            | self.transitions
            | self.futex_waits
            | self.edmm_pages
            | self.epc_page_faults
            | self.enclave_groups
            | self.tlb_misses
            | self.alu_ops
            | self.vec_ops
            | self.aex_events
            | self.ocall_retries)
            != 0
    }

    /// Total charged memory accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of DRAM fills that were prefetched.
    pub fn prefetch_ratio(&self) -> f64 {
        if self.dram_fills == 0 {
            0.0
        } else {
            self.prefetched_fills as f64 / self.dram_fills as f64
        }
    }

    /// Formatted multi-line report (the `perf stat`-style dump examples
    /// print after a run).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let rows: [(&str, u64); 21] = [
            ("loads", self.loads),
            ("stores", self.stores),
            ("L1 hits", self.l1_hits),
            ("L2 hits", self.l2_hits),
            ("L3 hits", self.l3_hits),
            ("DRAM fills", self.dram_fills),
            ("  prefetched", self.prefetched_fills),
            ("  EPC (MEE)", self.epc_fills),
            ("  remote (UPI)", self.remote_fills),
            ("writebacks", self.writebacks),
            ("stream lines", self.stream_lines),
            ("transitions", self.transitions),
            ("futex waits", self.futex_waits),
            ("EDMM pages", self.edmm_pages),
            ("EPC page faults", self.epc_page_faults),
            ("TLB misses", self.tlb_misses),
            ("ALU ops", self.alu_ops),
            ("vector ops", self.vec_ops),
            ("enclave issue groups", self.enclave_groups),
            ("AEX events", self.aex_events),
            ("OCALL retries", self.ocall_retries),
        ];
        for (name, v) in rows {
            if v > 0 {
                out.push_str(&format!("{name:<22} {v:>14}
"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_sums_loads_and_stores() {
        let c = Counters { loads: 3, stores: 4, ..Default::default() };
        assert_eq!(c.accesses(), 7);
    }

    #[test]
    fn report_lists_only_nonzero_counters() {
        let c = Counters { loads: 5, epc_fills: 2, ..Default::default() };
        let r = c.report();
        assert!(r.contains("loads"));
        assert!(r.contains("EPC (MEE)"));
        assert!(!r.contains("transitions"));
    }

    #[test]
    fn merge_covers_every_field() {
        // Distinct primes per field; merging into a default must reproduce
        // the original exactly (Debug covers all fields, so a counter
        // added later but missed in `merge` fails this test).
        let src = Counters {
            loads: 2,
            stores: 3,
            l1_hits: 5,
            l2_hits: 7,
            l3_hits: 11,
            dram_fills: 13,
            prefetched_fills: 17,
            epc_fills: 19,
            remote_fills: 23,
            writebacks: 29,
            stream_lines: 31,
            transitions: 37,
            futex_waits: 41,
            edmm_pages: 43,
            epc_page_faults: 47,
            enclave_groups: 53,
            tlb_misses: 59,
            alu_ops: 61,
            vec_ops: 67,
            aex_events: 71,
            ocall_retries: 73,
        };
        let mut dst = Counters::default();
        dst.merge(&src);
        assert_eq!(format!("{dst:?}"), format!("{src:?}"));
        dst.merge(&src);
        assert_eq!(dst.loads, 4);
        assert_eq!(dst.ocall_retries, 146);
    }

    #[test]
    fn delta_covers_every_field_and_inverts_merge() {
        let src = Counters {
            loads: 2,
            stores: 3,
            l1_hits: 5,
            l2_hits: 7,
            l3_hits: 11,
            dram_fills: 13,
            prefetched_fills: 17,
            epc_fills: 19,
            remote_fills: 23,
            writebacks: 29,
            stream_lines: 31,
            transitions: 37,
            futex_waits: 41,
            edmm_pages: 43,
            epc_page_faults: 47,
            enclave_groups: 53,
            tlb_misses: 59,
            alu_ops: 61,
            vec_ops: 67,
            aex_events: 71,
            ocall_retries: 73,
        };
        let mut grown = src.clone();
        grown.merge(&src);
        // (src + src) - src == src, field by field (Debug covers all 21).
        assert_eq!(format!("{:?}", grown.delta(&src)), format!("{src:?}"));
        assert!(!grown.delta(&grown).any());
        assert!(src.any());
        assert!(!Counters::default().any());
    }

    #[test]
    fn session_accumulator_takes_and_resets() {
        // Drain whatever earlier tests on this thread left behind.
        let _ = session_take();
        session_absorb(&Counters { loads: 10, ..Default::default() });
        session_absorb(&Counters { loads: 5, vec_ops: 2, ..Default::default() });
        let got = session_take();
        assert_eq!(got.loads, 15);
        assert_eq!(got.vec_ops, 2);
        let empty = session_take();
        assert_eq!(empty.loads, 0);
        assert_eq!(empty.vec_ops, 0);
    }

    #[test]
    fn prefetch_ratio_handles_zero() {
        let c = Counters::default();
        assert_eq!(c.prefetch_ratio(), 0.0);
        let c = Counters { dram_fills: 10, prefetched_fills: 5, ..Default::default() };
        assert!((c.prefetch_ratio() - 0.5).abs() < 1e-12);
    }
}
