//! Randomized property tests for the packed cache model (`cache.rs`).
//!
//! The hot-path rewrite packed all replacement metadata into one blob and
//! collapsed the historical victim selection (tag match > first invalid
//! way > first minimal-LRU valid way) into a single branchless
//! first-strict-minimum scan over the LRU run. These tests pin the claim
//! that nothing observable changed: a naive reference model implementing
//! the *historical* three-pass selection with scattered parallel arrays
//! is driven through hundreds of thousands of randomized operations in
//! lockstep with the packed `Cache`, and every return value — hits,
//! evictions and their dirtiness, invalidation reports, occupancy — must
//! agree at every step. Dependency-free: randomness comes from a seeded
//! LCG, so every run replays the same operation streams.

use sgx_sim::cache::{Cache, Evicted, StreamDetector};
use sgx_sim::config::{CacheConfig, CACHE_LINE};

/// Deterministic LCG (same constants as `sgx_microbench::random_write`).
fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x >> 16
}

/// Naive reference model: the historical cache implementation with
/// parallel `tags`/`lru`/`dirty` arrays and the literal three-pass victim
/// selection. Deliberately simple — correctness is obvious by inspection.
struct RefCache {
    ways: usize,
    sets: usize,
    tags: Vec<Option<u64>>,
    lru: Vec<u64>,
    dirty: Vec<bool>,
    stamp: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> RefCache {
        let sets = cfg.sets();
        RefCache {
            ways: cfg.ways,
            sets,
            tags: vec![None; sets * cfg.ways],
            lru: vec![0; sets * cfg.ways],
            dirty: vec![false; sets * cfg.ways],
            stamp: 0,
        }
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let s = (line as usize) % self.sets;
        s * self.ways..(s + 1) * self.ways
    }

    fn access(&mut self, line: u64, write: bool) -> bool {
        self.stamp += 1;
        for i in self.set_range(line) {
            if self.tags[i] == Some(line) {
                self.lru[i] = self.stamp;
                self.dirty[i] |= write;
                return true;
            }
        }
        false
    }

    fn contains(&self, line: u64) -> bool {
        self.set_range(line).any(|i| self.tags[i] == Some(line))
    }

    fn insert(&mut self, line: u64, dirty: bool) -> Evicted {
        self.stamp += 1;
        // Pass 1: refresh a present line.
        for i in self.set_range(line) {
            if self.tags[i] == Some(line) {
                self.lru[i] = self.stamp;
                self.dirty[i] |= dirty;
                return Evicted::None;
            }
        }
        // Pass 2: first invalid way.
        // Pass 3: first strict-minimum LRU among valid ways.
        let range = self.set_range(line);
        let victim = range
            .clone()
            .find(|&i| self.tags[i].is_none())
            .unwrap_or_else(|| range.clone().reduce(|a, b| if self.lru[b] < self.lru[a] { b } else { a }).unwrap());
        let evicted = match self.tags[victim] {
            None => Evicted::None,
            Some(old) if self.dirty[victim] => Evicted::Dirty(old),
            Some(old) => Evicted::Clean(old),
        };
        self.tags[victim] = Some(line);
        self.lru[victim] = self.stamp;
        self.dirty[victim] = dirty;
        evicted
    }

    fn invalidate(&mut self, line: u64) -> bool {
        for i in self.set_range(line) {
            if self.tags[i] == Some(line) {
                self.tags[i] = None;
                // The historical model did NOT reset the stale LRU word —
                // invalid ways were excluded by pass 2 instead. Keeping it
                // stale here is the point: the packed cache must agree
                // anyway, proving its zero-LRU invariant is equivalent.
                return std::mem::replace(&mut self.dirty[i], false);
            }
        }
        false
    }

    fn occupancy(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    fn flush(&mut self) {
        self.tags.fill(None);
        self.lru.fill(0);
        self.dirty.fill(false);
        self.stamp = 0;
    }
}

/// Drive the packed cache and the reference model through one randomized
/// operation stream, asserting observable agreement at every step.
fn lockstep(cfg: &CacheConfig, seed: u64, ops: usize, line_space: u64, allow_insert_miss: bool) {
    let mut packed = Cache::new(cfg);
    let mut model = RefCache::new(cfg);
    let mut x = seed | 1;
    for op in 0..ops {
        let line = lcg(&mut x) % line_space;
        let dirty = lcg(&mut x) % 2 == 0;
        match lcg(&mut x) % 100 {
            // Probes dominate, like the real resolve path.
            0..=44 => {
                assert_eq!(
                    packed.access(line, dirty),
                    model.access(line, dirty),
                    "op {op}: access({line}, write={dirty}) diverged (seed {seed})"
                );
            }
            45..=84 => {
                // insert_miss is insert with the caller-proven-absent
                // shortcut; exercising it against the reference's full
                // insert IS the equivalence claim from the module docs.
                let miss = allow_insert_miss && !packed.contains(line) && lcg(&mut x) % 2 == 0;
                let got =
                    if miss { packed.insert_miss(line, dirty) } else { packed.insert(line, dirty) };
                let want = model.insert(line, dirty);
                assert_eq!(got, want, "op {op}: insert({line}, dirty={dirty}) diverged (seed {seed}, miss-path {miss})");
            }
            85..=94 => {
                assert_eq!(
                    packed.invalidate(line),
                    model.invalidate(line),
                    "op {op}: invalidate({line}) diverged (seed {seed})"
                );
            }
            95..=97 => {
                assert_eq!(packed.contains(line), model.contains(line), "op {op}: contains({line}) diverged (seed {seed})");
            }
            _ => {
                packed.flush();
                model.flush();
            }
        }
        if op % 64 == 0 {
            assert_eq!(packed.occupancy(), model.occupancy(), "op {op}: occupancy diverged (seed {seed})");
        }
    }
    // Final state sweep: membership must agree line-for-line.
    for line in 0..line_space {
        assert_eq!(packed.contains(line), model.contains(line), "final contains({line}) diverged (seed {seed})");
    }
    assert_eq!(packed.occupancy(), model.occupancy(), "final occupancy diverged (seed {seed})");
}

/// Small geometry with heavy set contention: every victim-selection path
/// is hit constantly.
#[test]
fn packed_cache_matches_three_pass_reference_small() {
    let cfg = CacheConfig { size: 4 * 4 * CACHE_LINE, ways: 4, latency: 1.0 };
    for seed in [1, 0xBEEF, 0xC0FFEE, 0x5EED5EED] {
        lockstep(&cfg, seed, 40_000, 64, true);
    }
}

/// Power-of-two set count at L2-like geometry (mask-based set selection).
#[test]
fn packed_cache_matches_three_pass_reference_pow2() {
    let cfg = CacheConfig { size: 64 * 20 * CACHE_LINE, ways: 20, latency: 1.0 };
    lockstep(&cfg, 0xDEAD_BEEF, 60_000, 64 * 20 * 3, true);
}

/// Non-power-of-two set count (modulo fallback, e.g. odd `scaled()`
/// factors) and a ways=1 degenerate geometry.
#[test]
fn packed_cache_matches_three_pass_reference_odd_geometries() {
    let odd = CacheConfig { size: 3 * 5 * CACHE_LINE, ways: 5, latency: 1.0 };
    lockstep(&odd, 7, 40_000, 48, true);
    let direct = CacheConfig { size: 8 * CACHE_LINE, ways: 1, latency: 1.0 };
    lockstep(&direct, 11, 20_000, 32, true);
}

/// LRU ordering: after touching a full set in a known order, inserts must
/// evict in exactly that order (oldest stamp first).
#[test]
fn lru_evicts_in_recency_order() {
    let ways = 8u64;
    let cfg = CacheConfig { size: 2 * ways as usize * CACHE_LINE, ways: ways as usize, latency: 1.0 };
    let mut c = Cache::new(&cfg);
    let mut x = 0x1234u64;
    for round in 0..200 {
        c.flush();
        // Fill set 0 (even lines; sets = 2), then re-touch in a random order.
        let lines: Vec<u64> = (0..ways).map(|i| i * 2).collect();
        for &l in &lines {
            assert_eq!(c.insert(l, false), Evicted::None, "round {round}: filling an empty set evicts nothing");
        }
        let mut order = lines.clone();
        // Fisher-Yates with the LCG.
        for i in (1..order.len()).rev() {
            order.swap(i, (lcg(&mut x) % (i as u64 + 1)) as usize);
        }
        for &l in &order {
            assert!(c.access(l, false), "round {round}: touched line must hit");
        }
        // Fresh conflicting lines must now evict in exactly touch order.
        for (k, &expect) in order.iter().enumerate() {
            let fresh = 1000 + 2 * (round * ways + k as u64);
            assert_eq!(
                c.insert(fresh, false),
                Evicted::Clean(expect),
                "round {round}: eviction {k} must follow the recency order"
            );
        }
    }
}

/// Dirty bits survive spill cascades: chain two caches the way the
/// hierarchy spills L1 victims into L2 (`Evicted::Dirty` re-inserted
/// dirty, `Evicted::Clean` clean). Every `Dirty(line)` surfacing from the
/// bottom of the chain must correspond to a line whose last write is
/// still unflushed; cross-check against the reference-model chain.
#[test]
fn dirty_bits_propagate_through_eviction_cascades() {
    let l1cfg = CacheConfig { size: 2 * 2 * CACHE_LINE, ways: 2, latency: 1.0 };
    let l2cfg = CacheConfig { size: 4 * 4 * CACHE_LINE, ways: 4, latency: 1.0 };
    let (mut l1, mut l2) = (Cache::new(&l1cfg), Cache::new(&l2cfg));
    let (mut r1, mut r2) = (RefCache::new(&l1cfg), RefCache::new(&l2cfg));
    let mut x = 0xFEEDu64;
    let mut writebacks = 0u32;
    for op in 0..60_000 {
        let line = lcg(&mut x) % 96;
        let write = lcg(&mut x) % 3 == 0;
        let hit = l1.access(line, write);
        assert_eq!(hit, r1.access(line, write), "op {op}: L1 hit state diverged");
        if !hit {
            // Miss path: install into L1, spill its victim into L2, and
            // mirror the same cascade on the reference chain.
            let spill = |ev: Evicted, l2: &mut dyn FnMut(u64, bool) -> Evicted| match ev {
                Evicted::None => Evicted::None,
                Evicted::Clean(v) => l2(v, false),
                Evicted::Dirty(v) => l2(v, true),
            };
            let got = spill(l1.insert_miss(line, write), &mut |v, d| l2.insert(v, d));
            let want = spill(r1.insert(line, write), &mut |v, d| r2.insert(v, d));
            assert_eq!(got, want, "op {op}: cascade outcome diverged");
            if let Evicted::Dirty(_) = got {
                writebacks += 1;
            }
        }
    }
    assert!(writebacks > 100, "cascade test must actually produce write-backs, got {writebacks}");
}

/// `StreamDetector::observe` is a pure function of the observation
/// sequence: replaying any sequence on a fresh detector reproduces the
/// verdicts exactly, and `reset()` is indistinguishable from fresh.
#[test]
fn stream_detector_observe_is_replay_pure() {
    let mut x = 0xABCDu64;
    for trial in 0..50 {
        // Mix of sequential runs and random jumps.
        let mut seq = Vec::new();
        let mut cur = lcg(&mut x) % 10_000;
        for _ in 0..400 {
            match lcg(&mut x) % 4 {
                0 => cur = lcg(&mut x) % 10_000,
                1 => cur = cur.saturating_sub(1 + lcg(&mut x) % 2),
                _ => cur += 1 + lcg(&mut x) % 2,
            }
            seq.push(cur);
        }
        let mut a = StreamDetector::new();
        let va: Vec<bool> = seq.iter().map(|&l| a.observe(l)).collect();
        let mut b = StreamDetector::new();
        let vb: Vec<bool> = seq.iter().map(|&l| b.observe(l)).collect();
        assert_eq!(va, vb, "trial {trial}: fresh replay diverged");
        // A reset detector must behave exactly like a fresh one, however
        // polluted it was before.
        a.reset();
        let vc: Vec<bool> = seq.iter().map(|&l| a.observe(l)).collect();
        assert_eq!(va, vc, "trial {trial}: reset() is not equivalent to fresh");
    }
}
