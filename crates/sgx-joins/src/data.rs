//! Join input generation (TEEBench-style) and the reference join used to
//! verify every algorithm's output.
//!
//! §4 "Join data": rows are 8 bytes (32-bit key + 32-bit payload), all
//! joins are foreign-key joins, keys follow a uniform distribution. The
//! primary-key relation holds each key `1..=n` exactly once (shuffled);
//! the foreign-key relation draws uniformly from the primary keys, so
//! every probe row matches exactly one build row.

use crate::common::Row;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sgx_sim::{Machine, Region, SimVec};
use std::collections::BTreeMap;

/// Generate a primary-key relation of `n` rows: keys `1..=n` shuffled,
/// payload = original row position. Placed in the machine's default data
/// region (setting-dependent).
pub fn gen_pk_relation(machine: &mut Machine, n: usize, seed: u64) -> SimVec<Row> {
    let region = machine.setting().data_region(0);
    gen_pk_relation_on(machine, n, seed, region)
}

/// [`gen_pk_relation`] with explicit region placement (NUMA experiments).
pub fn gen_pk_relation_on(
    machine: &mut Machine,
    n: usize,
    seed: u64,
    region: Region,
) -> SimVec<Row> {
    assert!(n < u32::MAX as usize - 1, "keys must fit u32");
    let mut keys: Vec<u32> = (1..=n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        keys.swap(i, j);
    }
    let mut rel = machine.alloc_on::<Row>(n, region);
    for (i, k) in keys.into_iter().enumerate() {
        rel.poke(i, Row { key: k, payload: i as u32 });
    }
    rel
}

/// Generate a foreign-key relation of `n` rows with keys drawn uniformly
/// from `1..=pk_max` (every row matches exactly one PK row).
pub fn gen_fk_relation(machine: &mut Machine, n: usize, pk_max: usize, seed: u64) -> SimVec<Row> {
    let region = machine.setting().data_region(0);
    gen_fk_relation_on(machine, n, pk_max, seed, region)
}

/// [`gen_fk_relation`] with explicit region placement.
pub fn gen_fk_relation_on(
    machine: &mut Machine,
    n: usize,
    pk_max: usize,
    seed: u64,
    region: Region,
) -> SimVec<Row> {
    assert!(pk_max >= 1 && pk_max < u32::MAX as usize - 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = machine.alloc_on::<Row>(n, region);
    for i in 0..n {
        let k = rng.random_range(1..=pk_max as u32);
        rel.poke(i, Row { key: k, payload: i as u32 });
    }
    rel
}

/// Generate a foreign-key relation with Zipf-distributed keys over
/// `1..=pk_max` (reproduction extension: TEEBench \[24\] also evaluates
/// skewed workloads; the paper's §4 uses uniform keys). `theta = 0` is
/// uniform; `theta ≈ 1` is the classic heavy Zipf.
pub fn gen_fk_zipf(
    machine: &mut Machine,
    n: usize,
    pk_max: usize,
    theta: f64,
    seed: u64,
) -> SimVec<Row> {
    assert!(pk_max >= 1 && pk_max < u32::MAX as usize - 1);
    assert!(theta >= 0.0, "zipf exponent must be non-negative");
    // Inverse-CDF sampling over the generalized harmonic numbers.
    let mut cdf = Vec::with_capacity(pk_max);
    let mut acc = 0.0f64;
    for k in 1..=pk_max {
        acc += 1.0 / (k as f64).powf(theta);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    let region = machine.setting().data_region(0);
    let mut rel = machine.alloc_on::<Row>(n, region);
    for i in 0..n {
        let u: f64 = rng.random::<f64>() * total;
        let rank = cdf.partition_point(|&c| c < u).min(pk_max - 1);
        // Scatter ranks over the key domain so hot keys are not clustered
        // (the PK side is shuffled anyway, but this keeps radix bins fair).
        let key = (rank as u64 * 2654435761 % pk_max as u64) as u32 + 1;
        rel.poke(i, Row { key, payload: i as u32 });
    }
    rel
}

/// Number of 8-byte rows that make up `mb` megabytes (the paper sizes
/// relations by bytes: "100 MB" = 13.1 M rows).
pub const fn rows_for_mb(mb: usize) -> usize {
    mb * (1 << 20) / std::mem::size_of::<Row>()
}

/// Uncharged reference join (build a std BTreeMap over R, probe with S).
/// Returns `(matches, checksum)` where the checksum is the sum of
/// `r.payload + s.payload` over all matching pairs — the same quantities
/// every join implementation reports.
pub fn reference_join(r: &SimVec<Row>, s: &SimVec<Row>) -> (u64, u64) {
    let mut table: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    // sgx-lint: allow(untracked-access) uncharged reference oracle, runs outside the timed region
    for row in r.as_slice_untracked() {
        table.entry(row.key).or_default().push(row.payload);
    }
    let mut matches = 0u64;
    let mut checksum = 0u64;
    // sgx-lint: allow(untracked-access) uncharged reference oracle, runs outside the timed region
    for row in s.as_slice_untracked() {
        if let Some(payloads) = table.get(&row.key) {
            matches += payloads.len() as u64;
            for &p in payloads {
                checksum += p as u64 + row.payload as u64;
            }
        }
    }
    (matches, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine() -> Machine {
        Machine::new(scaled_profile(), Setting::PlainCpu)
    }

    #[test]
    fn pk_relation_is_a_permutation() {
        let mut m = machine();
        let r = gen_pk_relation(&mut m, 10_000, 1);
        let mut seen = vec![false; 10_001];
        for row in r.as_slice_untracked() {
            assert!(!seen[row.key as usize], "duplicate PK {}", row.key);
            seen[row.key as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn fk_join_matches_probe_cardinality() {
        let mut m = machine();
        let r = gen_pk_relation(&mut m, 1000, 1);
        let s = gen_fk_relation(&mut m, 4000, 1000, 2);
        let (matches, _) = reference_join(&r, &s);
        // FK semantics: every probe row matches exactly one PK row.
        assert_eq!(matches, 4000);
    }

    #[test]
    fn fk_keys_within_pk_domain() {
        let mut m = machine();
        let s = gen_fk_relation(&mut m, 5000, 300, 7);
        assert!(s.as_slice_untracked().iter().all(|r| (1..=300).contains(&r.key)));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut m1 = machine();
        let mut m2 = machine();
        let a = gen_pk_relation(&mut m1, 1000, 9);
        let b = gen_pk_relation(&mut m2, 1000, 9);
        assert_eq!(a.as_slice_untracked(), b.as_slice_untracked());
        let a = gen_fk_relation(&mut m1, 1000, 500, 9);
        let b = gen_fk_relation(&mut m2, 1000, 500, 9);
        assert_eq!(a.as_slice_untracked(), b.as_slice_untracked());
    }

    #[test]
    fn reference_join_counts_duplicates() {
        let mut m = machine();
        let mut r = m.alloc::<Row>(3);
        r.poke(0, Row { key: 5, payload: 10 });
        r.poke(1, Row { key: 5, payload: 20 });
        r.poke(2, Row { key: 7, payload: 30 });
        let mut s = m.alloc::<Row>(2);
        s.poke(0, Row { key: 5, payload: 1 });
        s.poke(1, Row { key: 9, payload: 2 });
        let (matches, checksum) = reference_join(&r, &s);
        assert_eq!(matches, 2);
        assert_eq!(checksum, (10 + 1) + (20 + 1));
    }

    #[test]
    fn zipf_theta_zero_is_uniformish_and_high_theta_is_skewed() {
        let mut m = machine();
        let flat = gen_fk_zipf(&mut m, 20_000, 1000, 0.0, 5);
        let skew = gen_fk_zipf(&mut m, 20_000, 1000, 1.2, 5);
        let top_share = |rel: &sgx_sim::SimVec<Row>| {
            let mut counts = std::collections::HashMap::new();
            for r in rel.as_slice_untracked() {
                *counts.entry(r.key).or_insert(0usize) += 1;
            }
            let mut v: Vec<usize> = counts.into_values().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(10).sum::<usize>() as f64 / rel.len() as f64
        };
        let flat_share = top_share(&flat);
        let skew_share = top_share(&skew);
        assert!(flat_share < 0.05, "uniform top-10 share {flat_share}");
        assert!(skew_share > 0.3, "zipf(1.2) top-10 share {skew_share}");
        // Keys stay within the PK domain, so FK joins still match fully.
        assert!(skew.as_slice_untracked().iter().all(|r| (1..=1000).contains(&r.key)));
    }

    #[test]
    fn zipf_join_still_matches_every_probe_row() {
        let mut m = machine();
        let r = gen_pk_relation(&mut m, 500, 1);
        let s = gen_fk_zipf(&mut m, 5000, 500, 1.0, 2);
        let (matches, _) = reference_join(&r, &s);
        assert_eq!(matches, 5000);
    }

    #[test]
    fn rows_for_mb_matches_paper_sizing() {
        // 100 MB of 8-byte tuples = 13.1 M rows.
        assert_eq!(rows_for_mb(100), 13_107_200);
        assert_eq!(rows_for_mb(0), 0);
    }
}
