//! MWAY — Multi-Way Sort-Merge join (Kim et al. \[17\], via TEEBench).
//!
//! Each worker sorts its chunk of both relations (cache-sized runs +
//! multi-way merge), then workers split the key domain into disjoint
//! ranges and each merge-joins its range across all sorted chunks. All
//! large-data traffic is sequential, which is why MWAY shows only a small
//! enclave penalty in Fig 3.

use crate::common::{JoinConfig, JoinStats, Row};
use crate::pht::chunk_range;
use sgx_sim::{Core, Machine, SimVec};

/// Sort `src[range]` into `dst[range]` charging cache-sized run formation
/// plus one multi-way merge pass, and performing the real sort.
fn sort_chunk(
    c: &mut Core<'_>,
    src: &SimVec<Row>,
    dst: &mut SimVec<Row>,
    range: std::ops::Range<usize>,
    run_rows: usize,
) {
    let n = range.len();
    if n == 0 {
        return;
    }
    // Run formation: stream the chunk in, sort runs in cache, stream out.
    // An in-cache quicksort costs ~n log2(run) compare/swap pairs, and the
    // comparisons on uniform keys are data-dependent branches the
    // predictor misses about a quarter of the time.
    let log_run = (run_rows.max(2) as f64).log2();
    src.read_stream(c, range.clone(), |c, _, _| c.compute(2));
    c.compute((n as f64 * log_run * 2.0) as u64);
    c.charge(n as f64 * log_run * 0.25 * 17.0);
    // Multi-way merge of the runs with a loser tree: one sequential pass,
    // log2(k) comparisons per element.
    let k = n.div_ceil(run_rows).max(1);
    if k > 1 {
        let log_k = (k as f64).log2().ceil();
        src.read_stream(c, range.clone(), |c, _, _| c.compute(log_k as u64));
    }
    // The real sort (functional result), written out as a stream.
    let mut rows: Vec<Row> = range.clone().map(|i| src.peek(i)).collect();
    rows.sort_unstable_by_key(|r| r.key);
    let mut w = dst.stream_writer(range.start);
    for row in rows {
        w.push(c, row);
    }
}

/// Binary-search the first index in sorted `v[range]` with `key >= bound`.
fn lower_bound(c: &mut Core<'_>, v: &SimVec<Row>, range: &std::ops::Range<usize>, bound: u32) -> usize {
    let (mut lo, mut hi) = (range.start, range.end);
    c.dependent(|c| {
        while lo < hi {
            let mid = (lo + hi) / 2;
            let row = v.get(c, mid);
            c.compute(2);
            if row.key < bound {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
    });
    lo
}

/// Execute the MWAY sort-merge join of `r` and `s`.
pub fn mway_join(
    machine: &mut Machine,
    r: &SimVec<Row>,
    s: &SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    let t = cfg.cores.len();
    let run_rows = (machine.cfg().l2.size / 2 / std::mem::size_of::<Row>()).max(64);
    let mut r_sorted = machine.alloc::<Row>(r.len());
    let mut s_sorted = machine.alloc::<Row>(s.len());

    let start = machine.wall_cycles();
    // ------------------------------------------------------- sort phase
    let sort_stats = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        sort_chunk(c, r, &mut r_sorted, chunk_range(r.len(), t, w), run_rows);
        sort_chunk(c, s, &mut s_sorted, chunk_range(s.len(), t, w), run_rows);
    });

    // ------------------------------------------------------ merge-join
    // Workers own disjoint key ranges; each merge-joins its range across
    // all sorted chunks with a k-way merge (k = number of chunks).
    let mut matches = 0u64;
    let mut checksum = 0u64;
    let splitter = |w: usize| -> u32 {
        // Uniform keys: equal-width key ranges balance well.
        ((u32::MAX as u64 + 1) * w as u64 / t as u64) as u32
    };
    let merge_stats = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        let (key_lo, key_hi) =
            (splitter(w), if w + 1 == t { u32::MAX } else { splitter(w + 1) });
        // Locate this worker's key range in every sorted chunk.
        let mut r_readers = Vec::with_capacity(t);
        let mut s_readers = Vec::with_capacity(t);
        for ch in 0..t {
            let rr = chunk_range(r.len(), t, ch);
            let lo = lower_bound(c, &r_sorted, &rr, key_lo);
            let hi = if w + 1 == t { rr.end } else { lower_bound(c, &r_sorted, &rr, key_hi) };
            r_readers.push(r_sorted.stream_reader(lo..hi));
            let sr = chunk_range(s.len(), t, ch);
            let lo = lower_bound(c, &s_sorted, &sr, key_lo);
            let hi = if w + 1 == t { sr.end } else { lower_bound(c, &s_sorted, &sr, key_hi) };
            s_readers.push(s_sorted.stream_reader(lo..hi));
        }
        let log_k = (t.max(2) as f64).log2().ceil() as u64;
        // k-way "next smallest" pop across readers.
        let pop = |c: &mut Core<'_>, readers: &mut Vec<sgx_sim::StreamReader<'_, Row>>| {
            c.compute(log_k);
            // Loser-tree updates branch on key comparisons.
            c.branch(0.25);
            let mut best: Option<usize> = None;
            let mut best_key = u32::MAX;
            for (i, rd) in readers.iter().enumerate() {
                if let Some(row) = rd.peek_next() {
                    if best.is_none() || row.key < best_key {
                        best = Some(i);
                        best_key = row.key;
                    }
                }
            }
            best.and_then(|i| readers[i].next(c))
        };
        // Merge-join: advance R runs of equal keys against S runs.
        let mut r_cur = pop(c, &mut r_readers);
        let mut s_cur = pop(c, &mut s_readers);
        while let (Some(rrow), Some(srow)) = (r_cur, s_cur) {
            c.compute(2);
            match rrow.key.cmp(&srow.key) {
                std::cmp::Ordering::Less => r_cur = pop(c, &mut r_readers),
                std::cmp::Ordering::Greater => s_cur = pop(c, &mut s_readers),
                std::cmp::Ordering::Equal => {
                    // Gather the full R run for this key, then match every
                    // S row with the same key against it.
                    let key = rrow.key;
                    let mut r_run = vec![rrow];
                    loop {
                        r_cur = pop(c, &mut r_readers);
                        match r_cur {
                            Some(next) if next.key == key => r_run.push(next),
                            _ => break,
                        }
                    }
                    while let Some(srow) = s_cur {
                        if srow.key != key {
                            break;
                        }
                        for rrow in &r_run {
                            matches += 1;
                            checksum += rrow.payload as u64 + srow.payload as u64;
                        }
                        s_cur = pop(c, &mut s_readers);
                    }
                }
            }
        }
    });

    JoinStats {
        matches,
        checksum,
        wall_cycles: machine.wall_cycles() - start,
        phases: vec![("sort", sort_stats.wall_cycles), ("merge", merge_stats.wall_cycles)],
        output: None,
        output_runs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_fk_relation, gen_pk_relation, reference_join};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn join_correct(threads: usize, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let stats = mway_join(&mut m, &r, &s, &JoinConfig::new(threads));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn correct_single_thread() {
        join_correct(1, 5000, 20_000);
    }

    #[test]
    fn correct_multi_thread() {
        join_correct(8, 5000, 20_000);
        join_correct(3, 777, 3001);
    }

    #[test]
    fn correct_with_duplicates_in_both() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = m.alloc::<Row>(60);
        for i in 0..60 {
            r.poke(i, Row { key: (i % 20 + 1) as u32, payload: i as u32 });
        }
        let mut s = m.alloc::<Row>(90);
        for i in 0..90 {
            s.poke(i, Row { key: (i % 30 + 1) as u32, payload: i as u32 });
        }
        let stats = mway_join(&mut m, &r, &s, &JoinConfig::new(4));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn sorted_output_is_actually_sorted() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 4096, 7);
        let mut dst = m.alloc::<Row>(4096);
        m.run(|c| sort_chunk(c, &r, &mut dst, 0..4096, 256));
        assert!(dst.as_slice_untracked().windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn small_enclave_penalty_versus_hash_joins() {
        // Fig 3: MWAY's in-enclave reduction is much smaller than PHT's.
        let run = |setting: Setting| {
            let mut m = Machine::new(scaled_profile(), setting);
            let r = gen_pk_relation(&mut m, 100_000, 1);
            let s = gen_fk_relation(&mut m, 400_000, 100_000, 2);
            let mw = mway_join(&mut m, &r, &s, &JoinConfig::new(1)).wall_cycles;
            let ph = crate::pht::pht_join(&mut m, &r, &s, &JoinConfig::new(1)).wall_cycles;
            (mw, ph)
        };
        let (mw_n, ph_n) = run(Setting::PlainCpu);
        let (mw_e, ph_e) = run(Setting::SgxDataInEnclave);
        let mway_slowdown = mw_e / mw_n;
        let pht_slowdown = ph_e / ph_n;
        assert!(
            mway_slowdown < pht_slowdown,
            "MWAY {mway_slowdown:.2}x should be gentler than PHT {pht_slowdown:.2}x"
        );
    }

    #[test]
    fn empty_inputs() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = m.alloc::<Row>(0);
        let s = gen_fk_relation(&mut m, 100, 50, 2);
        let stats = mway_join(&mut m, &r, &s, &JoinConfig::new(2));
        assert_eq!(stats.matches, 0);
    }
}
