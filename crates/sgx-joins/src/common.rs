//! Shared types for all join implementations.

use sgx_sim::sync::{LockFreeQueue, QueueModel, SdkMutexQueue, SpinLockQueue};

/// An 8-byte join tuple: 32-bit key, 32-bit payload (§4 "Join data").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Row {
    /// Join key.
    pub key: u32,
    /// Payload (row id in our generators).
    pub payload: u32,
}

/// A materialized join result pair (the payload columns of both sides).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinTuple {
    /// Payload of the build-side (R) row.
    pub r_payload: u32,
    /// Payload of the probe-side (S) row.
    pub s_payload: u32,
}

/// Task-queue implementation used to distribute partition/join tasks
/// (§4.4, Fig 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Lock-free MPMC queue (the paper's fix; Boost lock-free queue).
    LockFree,
    /// The SGX SDK mutex, which sleeps contended threads outside the
    /// enclave.
    SdkMutex,
    /// An in-enclave spinlock.
    SpinLock,
}

impl QueueKind {
    /// Instantiate the queue's cost model.
    pub fn build(self) -> Box<dyn QueueModel> {
        match self {
            QueueKind::LockFree => Box::new(LockFreeQueue::default()),
            QueueKind::SdkMutex => Box::new(SdkMutexQueue::default()),
            QueueKind::SpinLock => Box::new(SpinLockQueue::default()),
        }
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::LockFree => "lock-free queue",
            QueueKind::SdkMutex => "SDK mutex queue",
            QueueKind::SpinLock => "spinlock queue",
        }
    }
}

/// Configuration shared by all joins.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Hardware core ids executing the join (thread pinning, §3).
    pub cores: Vec<usize>,
    /// Total radix bits for partitioning joins (RHO, CrkJoin).
    pub radix_bits: u32,
    /// Apply the paper's §4.2 unroll-and-reorder optimization (issue
    /// groups around the irregular inner loops).
    pub optimized: bool,
    /// Task-queue implementation for task-distributed phases.
    pub queue: QueueKind,
    /// Materialize the join result (allocates an output table and writes
    /// one [`JoinTuple`] per match).
    pub materialize: bool,
}

impl JoinConfig {
    /// Default configuration on cores `0..threads` of socket 0.
    pub fn new(threads: usize) -> JoinConfig {
        JoinConfig {
            cores: (0..threads).collect(),
            radix_bits: 10,
            optimized: false,
            queue: QueueKind::LockFree,
            materialize: false,
        }
    }

    /// Builder-style: set total radix bits.
    pub fn with_radix_bits(mut self, bits: u32) -> Self {
        self.radix_bits = bits;
        self
    }

    /// Builder-style: enable the §4.2 optimization.
    pub fn with_optimization(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }

    /// Builder-style: choose the task queue.
    pub fn with_queue(mut self, q: QueueKind) -> Self {
        self.queue = q;
        self
    }

    /// Builder-style: materialize results.
    pub fn with_materialization(mut self, on: bool) -> Self {
        self.materialize = on;
        self
    }

    /// Builder-style: pin to explicit hardware cores.
    pub fn on_cores(mut self, cores: Vec<usize>) -> Self {
        self.cores = cores;
        self
    }

    /// Pick radix bits so the average final R partition fits in half the
    /// given cache budget (the classic radix-join sizing rule).
    pub fn auto_radix_bits(r_bytes: usize, cache_bytes: usize) -> u32 {
        let target = (cache_bytes / 2).max(1);
        let mut bits = 0u32;
        while (r_bytes >> bits) > target && bits < 16 {
            bits += 1;
        }
        bits.max(2)
    }
}

/// Timing and result summary of one join execution.
pub struct JoinStats {
    /// Number of matching tuple pairs.
    pub matches: u64,
    /// Order-independent checksum: sum of `r.payload + s.payload` over all
    /// matches (verified against the reference join in tests).
    pub checksum: u64,
    /// Total simulated wall cycles of the join.
    pub wall_cycles: f64,
    /// Per-phase wall cycles, in execution order.
    pub phases: Vec<(&'static str, f64)>,
    /// The materialized result table when `JoinConfig::materialize` was
    /// set. Valid entries live in `output_runs` (one dense run per
    /// partition/worker); slots outside the runs are unwritten.
    pub output: Option<sgx_sim::SimVec<JoinTuple>>,
    /// Dense ranges of valid entries within `output`.
    pub output_runs: Vec<std::ops::Range<usize>>,
}

impl JoinStats {
    /// Throughput in input rows per cycle: `(|R| + |S|) / cycles` — the
    /// paper's metric ("sum of input cardinalities divided by the join
    /// execution time").
    pub fn rows_per_cycle(&self, r_rows: usize, s_rows: usize) -> f64 {
        (r_rows + s_rows) as f64 / self.wall_cycles
    }

    /// Throughput in million rows per second at the given clock.
    pub fn mrows_per_sec(&self, r_rows: usize, s_rows: usize, freq_ghz: f64) -> f64 {
        self.rows_per_cycle(r_rows, s_rows) * freq_ghz * 1e3
    }

    /// Cycles spent in the named phase (0 if absent).
    pub fn phase(&self, name: &str) -> f64 {
        self.phases.iter().filter(|(n, _)| *n == name).map(|(_, c)| c).sum()
    }
}

/// Multiplicative (Knuth) hash used by the hash joins: maps a key into
/// `2^bits` buckets. `bits` must be in `1..=32`.
#[inline]
pub fn hash32(key: u32, bits: u32) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    key.wrapping_mul(2654435761) >> (32 - bits)
}

/// Radix of a key for partitioning: bits `[shift, shift+bits)`.
#[inline]
pub fn radix(key: u32, shift: u32, mask: u32) -> u32 {
    (key >> shift) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_radix_bits_targets_half_cache() {
        // 100 MB relation, 1.25 MB L2: need 2^8 partitions of ~400 KB...
        let bits = JoinConfig::auto_radix_bits(100 << 20, 1280 << 10);
        assert!((100 << 20) >> bits <= (1280 << 10) / 2);
        assert!(bits <= 16);
        // Tiny relation needs the minimum.
        assert_eq!(JoinConfig::auto_radix_bits(1024, 1 << 20), 2);
    }

    #[test]
    fn hash32_stays_in_range_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u32 {
            let h = hash32(k, 8);
            assert!(h < 256);
            seen.insert(h);
        }
        assert_eq!(seen.len(), 256, "multiplicative hash should cover all buckets");
        // Full-width hash is the multiply itself.
        assert_eq!(hash32(1, 32), 2654435761);
    }

    #[test]
    fn radix_extracts_bit_ranges() {
        assert_eq!(radix(0b1011_0110, 2, 0b1111), 0b1101);
        assert_eq!(radix(u32::MAX, 28, 0xF), 0xF);
        assert_eq!(radix(0, 0, 0xFF), 0);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = JoinConfig::new(4)
            .with_radix_bits(12)
            .with_optimization(true)
            .with_queue(QueueKind::SdkMutex)
            .with_materialization(true)
            .on_cores(vec![3, 5]);
        assert_eq!(cfg.radix_bits, 12);
        assert!(cfg.optimized);
        assert_eq!(cfg.queue, QueueKind::SdkMutex);
        assert!(cfg.materialize);
        assert_eq!(cfg.cores, vec![3, 5]);
    }

    #[test]
    fn phase_lookup_sums_repeated_names() {
        let s = JoinStats {
            matches: 0,
            checksum: 0,
            wall_cycles: 10.0,
            phases: vec![("part", 3.0), ("join", 5.0), ("part", 2.0)],
            output: None,
            output_runs: vec![],
        };
        assert_eq!(s.phase("part"), 5.0);
        assert_eq!(s.phase("missing"), 0.0);
    }

    #[test]
    fn throughput_metric_matches_paper_definition() {
        let s = JoinStats {
            matches: 0,
            checksum: 0,
            wall_cycles: 2.9e9,
            phases: vec![],
            output: None,
            output_runs: vec![],
        };
        // 29 M rows joined in one second at 2.9 GHz = 29 M rows/s.
        let m = s.mrows_per_sec(9_000_000, 20_000_000, 2.9);
        assert!((m - 29.0).abs() < 1e-9);
    }
}
