//! CHT — the Concise Hash Table join (Barber et al., via the TEEBench
//! suite; reproduction extension).
//!
//! CHT replaces the chained hash table with a bitmap plus a dense,
//! collision-free tuple array: a set bit at position `p` means the tuple
//! lives at `rank(p)` (the number of set bits before `p`), computed from a
//! per-word popcount prefix. The table is roughly half the size of PHT's,
//! trading pointer chasing for two dependent loads per probe — a distinct
//! point in the random-access spectrum §4.1 explores.

use crate::common::{hash32, JoinConfig, JoinStats, Row};
use crate::pht::{charged_fill, chunk_range};
use sgx_sim::{Core, Machine, SimVec};

/// Load factor: bitmap has `2 * |R|` slots.
const SLOTS_PER_ROW: usize = 2;

/// Claim the first free bit at or after `h` (linear probing) and return
/// its position. `bitmap` is mutated.
fn claim_slot(c: &mut Core<'_>, bitmap: &mut SimVec<u64>, nbits: usize, h: u32) -> usize {
    let mut pos = h as usize & (nbits - 1);
    loop {
        let word = pos / 64;
        let bit = pos % 64;
        let mut claimed = false;
        c.compute(3);
        bitmap.rmw(c, word, |w| {
            if *w & (1 << bit) == 0 {
                *w |= 1 << bit;
                claimed = true;
            }
        });
        if claimed {
            return pos;
        }
        pos = (pos + 1) & (nbits - 1);
    }
}

/// Execute the CHT join of `r` (build side) and `s` (probe side).
pub fn cht_join(
    machine: &mut Machine,
    r: &SimVec<Row>,
    s: &SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    let t = cfg.cores.len();
    let nbits = (r.len() * SLOTS_PER_ROW).next_power_of_two().max(64);
    let n_words = nbits / 64;
    let hash_bits = nbits.trailing_zeros();
    let mut bitmap = machine.alloc::<u64>(n_words);
    let mut prefix = machine.alloc::<u32>(n_words);
    let mut positions = machine.alloc::<u32>(r.len());
    let mut dense = machine.alloc::<Row>(r.len());

    let start = machine.wall_cycles();
    // Clear the bitmap (barrier phase, as in PHT's init).
    let init = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        charged_fill(c, &mut bitmap, chunk_range(n_words, t, w), 0u64);
    });

    // Build pass 1: claim a bit per build row, remembering each row's
    // position. Serialized on one worker: the claim order must be
    // deterministic and the bitmap updates race otherwise (TEEBench's CHT
    // builds the bitmap with atomics; the simulator's sequential workers
    // would hide the retry costs, so we model the conservative variant).
    let pass1 = machine.parallel(&cfg.cores[..1], |c| {
        let mut pw = positions.stream_writer(0);
        if cfg.optimized {
            let mut batch: [(Row, u32); 8] = [(Row::default(), 0); 8];
            let mut fill = 0usize;
            let mut flush = |c: &mut Core<'_>,
                             batch: &[(Row, u32)],
                             pw: &mut sgx_sim::StreamWriter<'_, u32>| {
                let mut slots = [0usize; 8];
                c.group(|c| {
                    for (bi, &(_, h)) in batch.iter().enumerate() {
                        slots[bi] = claim_slot(c, &mut bitmap, nbits, h);
                    }
                });
                for &slot in &slots[..batch.len()] {
                    pw.push(c, slot as u32);
                }
            };
            r.read_stream(c, 0..r.len(), |c, _, row| {
                c.compute(2);
                batch[fill] = (row, hash32(row.key, hash_bits));
                fill += 1;
                if fill == 8 {
                    flush(c, &batch, &mut pw);
                    fill = 0;
                }
            });
            flush(c, &batch[..fill], &mut pw);
        } else {
            r.read_stream(c, 0..r.len(), |c, _, row| {
                c.compute(2);
                let h = hash32(row.key, hash_bits);
                let slot = claim_slot(c, &mut bitmap, nbits, h);
                pw.push(c, slot as u32);
            });
        }
    });

    // Prefix: cumulative popcount per bitmap word (sequential scan).
    let prefix_stats = machine.parallel(&cfg.cores[..1], |c| {
        let mut acc = 0u32;
        let mut pw = prefix.stream_writer(0);
        bitmap.read_stream(c, 0..n_words, |c, _, w| {
            c.compute(2); // POPCNT + add
            pw.push(c, acc);
            acc += w.count_ones();
        });
    });

    // Build pass 2: place tuples into the dense array by rank.
    let pass2 = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        let range = chunk_range(r.len(), t, w);
        positions.read_stream(c, range.clone(), |c, i, pos| {
            let row = r.peek(i);
            let word = pos as usize / 64;
            let bit = pos as usize % 64;
            c.compute(4);
            let base = prefix.get(c, word);
            let mask = (1u64 << bit) - 1;
            let rank = base + (bitmap.peek(word) & mask).count_ones();
            dense.set(c, rank as usize, row);
        });
    });

    // Probe.
    let mut matches = 0u64;
    let mut checksum = 0u64;
    let probe = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        let range = chunk_range(s.len(), t, w);
        // Pure loads: the OOO engine overlaps lookups across consecutive
        // probe rows (same reasoning as the PHT probe), so the bitmap and
        // dense-array reads take the pooled path.
        let mut lookup = |c: &mut Core<'_>, srow: Row, h: u32| {
            let mut pos = h as usize & (nbits - 1);
            loop {
                let word = pos / 64;
                let bit = pos % 64;
                let wv = bitmap.get(c, word);
                c.compute(4);
                if wv & (1 << bit) == 0 {
                    break; // end of the probe run
                }
                let base = prefix.peek(word);
                let rank = base + (wv & ((1u64 << bit) - 1)).count_ones();
                let cand = dense.get(c, rank as usize);
                c.compute(2);
                if cand.key == srow.key {
                    matches += 1;
                    checksum += cand.payload as u64 + srow.payload as u64;
                }
                pos = (pos + 1) & (nbits - 1);
            }
        };
        if cfg.optimized {
            let mut batch: [(Row, u32); 8] = [(Row::default(), 0); 8];
            let mut fill = 0usize;
            s.read_stream(c, range, |c, _, srow| {
                c.compute(2);
                batch[fill] = (srow, hash32(srow.key, hash_bits));
                fill += 1;
                if fill == 8 {
                    // Prefetch the 8 bitmap words as one issue group, then
                    // walk the runs.
                    c.group(|c| {
                        for &(_, h) in &batch {
                            let _ = bitmap.get(c, (h as usize & (nbits - 1)) / 64);
                        }
                    });
                    for &(srow, h) in &batch {
                        lookup(c, srow, h);
                    }
                    fill = 0;
                }
            });
            for &(srow, h) in &batch[..fill] {
                lookup(c, srow, h);
            }
        } else {
            s.read_stream(c, range, |c, _, srow| {
                c.compute(2);
                let h = hash32(srow.key, hash_bits);
                lookup(c, srow, h);
            });
        }
    });

    JoinStats {
        matches,
        checksum,
        wall_cycles: machine.wall_cycles() - start,
        phases: vec![
            (
                "build",
                init.wall_cycles + pass1.wall_cycles + prefix_stats.wall_cycles + pass2.wall_cycles,
            ),
            ("probe", probe.wall_cycles),
        ],
        output: None,
        output_runs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_fk_relation, gen_fk_zipf, gen_pk_relation, reference_join};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn join_correct(threads: usize, optimized: bool, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let cfg = JoinConfig::new(threads).with_optimization(optimized);
        let stats = cht_join(&mut m, &r, &s, &cfg);
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn correct_basic_configs() {
        join_correct(1, false, 3000, 12_000);
        join_correct(8, false, 3000, 12_000);
        join_correct(8, true, 3000, 12_000);
        join_correct(3, true, 777, 3001);
    }

    #[test]
    fn correct_with_duplicate_build_keys() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = m.alloc::<Row>(200);
        for i in 0..200 {
            r.poke(i, Row { key: (i % 50 + 1) as u32, payload: i as u32 });
        }
        let s = gen_fk_relation(&mut m, 1000, 50, 3);
        let stats = cht_join(&mut m, &r, &s, &JoinConfig::new(4));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn correct_under_skew() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 2000, 1);
        let s = gen_fk_zipf(&mut m, 8000, 2000, 1.0, 2);
        let stats = cht_join(&mut m, &r, &s, &JoinConfig::new(4));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn table_is_denser_than_pht() {
        // CHT's whole point: the auxiliary structures (bitmap + prefix)
        // are a fraction of R, and the tuple array is exactly |R|. The
        // probe should therefore beat PHT once the build table exceeds
        // cache.
        let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
        let r = gen_pk_relation(&mut m, 200_000, 1);
        let s = gen_fk_relation(&mut m, 800_000, 200_000, 2);
        let cht = cht_join(&mut m, &r, &s, &JoinConfig::new(8));
        let pht = crate::pht::pht_join(&mut m, &r, &s, &JoinConfig::new(8));
        assert_eq!(cht.matches, pht.matches);
        assert!(
            cht.phase("probe") < pht.phase("probe") * 1.6,
            "CHT probe should be competitive: {} vs {}",
            cht.phase("probe"),
            pht.phase("probe")
        );
    }

    #[test]
    fn empty_inputs() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = m.alloc::<Row>(0);
        let s = m.alloc::<Row>(0);
        assert_eq!(cht_join(&mut m, &r, &s, &JoinConfig::new(2)).matches, 0);
    }
}
