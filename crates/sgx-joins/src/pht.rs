//! PHT — the Parallel Hash Table join (Blanas et al. \[4\], "no
//! partitioning" join).
//!
//! Multiple threads build one shared chaining hash table over the smaller
//! relation (latched buckets), then probe it with partitions of the larger
//! relation. Its build phase performs latched random read-modify-writes
//! into a DRAM-sized bucket array — exactly the pattern §4.1 identifies as
//! the worst case inside an enclave ("the hash table build phase in the
//! PHT join is even 9 times slower than native").

use crate::common::{hash32, JoinConfig, JoinStats, JoinTuple, Row};
use sgx_sim::{Core, Machine, SimVec};

/// Chained hash-table entry (12 bytes).
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    key: u32,
    payload: u32,
    /// Index of the next entry in the bucket chain; `u32::MAX` terminates.
    next: u32,
}

/// Empty-bucket marker.
const EMPTY: u32 = u32::MAX;

/// Split `0..n` into `parts` near-equal chunks; returns chunk `i`.
pub(crate) fn chunk_range(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    let base = n / parts;
    let rem = n % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

/// Charged sequential fill of a range with one value (table memset).
pub(crate) fn charged_fill<T: Copy>(
    c: &mut Core<'_>,
    v: &mut SimVec<T>,
    range: std::ops::Range<usize>,
    val: T,
) {
    let mut w = v.stream_writer(range.start);
    for _ in range {
        w.push(c, val);
    }
}

/// Execute the PHT join of `r` (build side) and `s` (probe side).
pub fn pht_join(
    machine: &mut Machine,
    r: &SimVec<Row>,
    s: &SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    let t = cfg.cores.len();
    let bits = (usize::BITS - r.len().next_power_of_two().leading_zeros() - 1).max(4);
    let nbuckets = 1usize << bits;
    let mut heads = machine.alloc::<u32>(nbuckets);
    let mut entries = machine.alloc::<Entry>(r.len());
    let mut output = cfg.materialize.then(|| machine.alloc::<JoinTuple>(s.len()));

    let start = machine.wall_cycles();
    // ------------------------------------------------------------- build
    // Clearing the bucket array must complete on all workers before any
    // insert lands in a foreign worker's share, so it is its own barrier
    // phase (as in the original implementation).
    let build_scope = machine.phase("build");
    let init = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        charged_fill(c, &mut heads, chunk_range(nbuckets, t, w), EMPTY);
    });
    let build = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        // Insert this worker's chunk of R. Entry i corresponds to R row i,
        // so entry writes are sequential and need no atomic counter.
        let range = chunk_range(r.len(), t, w);
        let mut ew = entries.stream_writer(range.start);
        if cfg.optimized {
            let mut batch: [(usize, Row, u32); 8] = [(0, Row::default(), 0); 8];
            let mut fill = 0usize;
            let mut flush = |c: &mut Core<'_>,
                             batch: &[(usize, Row, u32)],
                             ew: &mut sgx_sim::StreamWriter<'_, Entry>| {
                // All bucket updates issued together (Listing 2 pattern).
                let mut nexts = [EMPTY; 8];
                c.group(|c| {
                    for (bi, &(i, _, h)) in batch.iter().enumerate() {
                        c.compute(2); // latch acquire/release
                        heads.rmw(c, h as usize, |head| {
                            nexts[bi] = *head;
                            *head = i as u32;
                        });
                    }
                });
                for (bi, &(_, row, _)) in batch.iter().enumerate() {
                    ew.push(c, Entry { key: row.key, payload: row.payload, next: nexts[bi] });
                }
            };
            r.read_stream(c, range, |c, i, row| {
                c.compute(3);
                batch[fill] = (i, row, hash32(row.key, bits));
                fill += 1;
                if fill == 8 {
                    flush(c, &batch, &mut ew);
                    fill = 0;
                }
            });
            flush(c, &batch[..fill], &mut ew);
        } else {
            r.read_stream(c, range, |c, i, row| {
                c.compute(5); // hash + latch
                let h = hash32(row.key, bits) as usize;
                let mut next = EMPTY;
                heads.rmw(c, h, |head| {
                    next = *head;
                    *head = i as u32;
                });
                ew.push(c, Entry { key: row.key, payload: row.payload, next });
            });
        }
    });

    // ------------------------------------------------------------- probe
    drop(build_scope);
    let probe_scope = machine.phase("probe");
    let mut matches = 0u64;
    let mut checksum = 0u64;
    let mut overflow = false;
    let mut output_runs: Vec<std::ops::Range<usize>> = Vec::new();
    let probe = machine.parallel(&cfg.cores, |c| {
        let w = c.worker();
        let range = chunk_range(s.len(), t, w);
        let mut out = output.as_mut().map(|o| (o.stream_writer(range.start), range.clone()));
        let mut emit = |c: &mut Core<'_>, e: &Entry, srow: &Row| {
            matches += 1;
            checksum += e.payload as u64 + srow.payload as u64;
            if let Some((ow, range)) = out.as_mut() {
                if ow.pos() < range.end {
                    ow.push(c, JoinTuple { r_payload: e.payload, s_payload: srow.payload });
                } else {
                    overflow = true;
                }
            }
        };
        // The chain walk is dependent *within* one probe, but the
        // out-of-order engine overlaps entry loads across consecutive
        // probes (different s rows are independent), so the entry loads go
        // through the normal pooled path rather than `Core::dependent`.
        let mut walk = |c: &mut Core<'_>, first: u32, srow: Row| {
            let mut e = first;
            while e != EMPTY {
                let ent = entry_get(c, &entries, e);
                c.compute(2);
                if ent.key == srow.key {
                    emit(c, &ent, &srow);
                }
                e = ent.next;
            }
        };
        if cfg.optimized {
            let mut batch: [(Row, u32); 8] = [(Row::default(), 0); 8];
            let mut fill = 0usize;
            s.read_stream(c, range.clone(), |c, _, srow| {
                c.compute(3);
                batch[fill] = (srow, hash32(srow.key, bits));
                fill += 1;
                if fill == 8 {
                    let mut firsts = [EMPTY; 8];
                    c.group(|c| {
                        for (bi, &(_, h)) in batch.iter().enumerate() {
                            firsts[bi] = heads.get(c, h as usize);
                        }
                    });
                    for (bi, &(srow, _)) in batch.iter().enumerate() {
                        walk(c, firsts[bi], srow);
                    }
                    fill = 0;
                }
            });
            for bi in 0..fill {
                let (srow, h) = batch[bi];
                let first = heads.get(c, h as usize);
                walk(c, first, srow);
            }
        } else {
            s.read_stream(c, range.clone(), |c, _, srow| {
                c.compute(4);
                let h = hash32(srow.key, bits) as usize;
                let first = heads.get(c, h);
                walk(c, first, srow);
            });
        }
        if let Some((ow, _)) = out {
            output_runs.push(range.start..ow.pos());
        }
    });
    assert!(!overflow, "PHT materialization overflowed a worker range (non-FK duplicates?)");
    drop(probe_scope);

    JoinStats {
        matches,
        checksum,
        wall_cycles: machine.wall_cycles() - start,
        phases: vec![
            ("build", init.wall_cycles + build.wall_cycles),
            ("probe", probe.wall_cycles),
        ],
        output,
        output_runs,
    }
}

/// Charged read of one 12-byte entry (may straddle two cache lines).
#[inline]
fn entry_get(c: &mut Core<'_>, entries: &SimVec<Entry>, idx: u32) -> Entry {
    entries.get(c, idx as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_fk_relation, gen_pk_relation, reference_join};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn join_correct(threads: usize, optimized: bool, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let cfg = JoinConfig::new(threads).with_optimization(optimized);
        let stats = pht_join(&mut m, &r, &s, &cfg);
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
        assert!(stats.wall_cycles > 0.0);
    }

    #[test]
    fn correct_single_thread() {
        join_correct(1, false, 5000, 20_000);
    }

    #[test]
    fn correct_multi_thread() {
        join_correct(8, false, 5000, 20_000);
    }

    #[test]
    fn correct_optimized() {
        join_correct(8, true, 5000, 20_000);
        join_correct(1, true, 777, 3001); // non-multiple-of-8 remainders
    }

    #[test]
    fn correct_with_duplicate_build_keys() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = m.alloc::<Row>(100);
        for i in 0..100 {
            // Keys repeat 4x.
            r.poke(i, Row { key: (i % 25 + 1) as u32, payload: i as u32 });
        }
        let s = gen_fk_relation(&mut m, 1000, 25, 3);
        let stats = pht_join(&mut m, &r, &s, &JoinConfig::new(4));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn materialization_produces_all_pairs() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 1000, 1);
        let s = gen_fk_relation(&mut m, 4000, 1000, 2);
        let cfg = JoinConfig::new(4).with_materialization(true);
        let stats = pht_join(&mut m, &r, &s, &cfg);
        assert_eq!(stats.matches, 4000);
    }

    #[test]
    fn enclave_build_phase_suffers_most() {
        // §4.1/Fig 4: the build phase has a much higher in-enclave penalty
        // than the probe phase.
        let run = |setting: Setting| {
            let mut m = Machine::new(scaled_profile(), setting);
            let r = gen_pk_relation(&mut m, 200_000, 1); // 1.6 MB table > scaled L3
            let s = gen_fk_relation(&mut m, 800_000, 200_000, 2);
            pht_join(&mut m, &r, &s, &JoinConfig::new(1))
        };
        let native = run(Setting::PlainCpu);
        let sgx = run(Setting::SgxDataInEnclave);
        let build_slowdown = sgx.phase("build") / native.phase("build");
        let probe_slowdown = sgx.phase("probe") / native.phase("probe");
        assert!(
            build_slowdown > probe_slowdown,
            "build {build_slowdown:.2}x should exceed probe {probe_slowdown:.2}x"
        );
        assert!(build_slowdown > 2.0, "build should be heavily penalized, got {build_slowdown:.2}x");
    }

    #[test]
    fn empty_inputs() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 100, 1);
        let empty = m.alloc::<Row>(0);
        let stats = pht_join(&mut m, &r, &empty, &JoinConfig::new(2));
        assert_eq!(stats.matches, 0);
    }
}
