//! RHO — the Radix Hash Optimized join (Manegold et al. \[25\], Balkesen et
//! al. \[2\], Kim et al. \[17\] two-phase parallel partitioning).
//!
//! Both inputs are radix-partitioned into cache-sized partitions (up to
//! two passes, with software write-combining buffers), then each partition
//! pair is joined with a small bucket-chained hash table that stays
//! cache-resident. Partition and join tasks are distributed over a task
//! queue (§4.4 studies the queue's lock implementation).
//!
//! `JoinConfig::optimized` applies the paper's §4.2 unroll-and-reorder
//! optimization to all three irregular phases — histogram, scatter, and
//! hash-table build — exactly the phases Fig 6 shows improving.

use crate::common::{hash32, radix, JoinConfig, JoinStats, JoinTuple, Row};
use crate::pht::{charged_fill, chunk_range};
use sgx_sim::{Core, Machine, PhaseStats, SimVec};

/// Maximum radix bits resolved per partitioning pass (swwcb fan-out limit).
pub const MAX_PASS_BITS: u32 = 8;
/// Rows per software write-combining buffer slot (one cache line).
const WCB_ROWS: usize = 8;
/// Empty bucket marker in the per-partition hash table.
const EMPTY: u32 = u32::MAX;

/// Sequential radix histogram over `src[range]` into `hist` (which the
/// caller has zeroed), naive or unrolled per `optimized`.
fn seq_histogram(
    c: &mut Core<'_>,
    src: &SimVec<Row>,
    range: std::ops::Range<usize>,
    hist: &mut SimVec<u32>,
    shift: u32,
    mask: u32,
    optimized: bool,
) {
    if optimized {
        let mut batch = [0usize; 8];
        let mut fill = 0usize;
        src.read_stream(c, range, |c, _, row| {
            c.compute(3);
            batch[fill] = radix(row.key, shift, mask) as usize;
            fill += 1;
            if fill == 8 {
                c.group(|c| {
                    for &idx in &batch {
                        hist.rmw(c, idx, |e| *e += 1);
                    }
                });
                fill = 0;
            }
        });
        c.group(|c| {
            for &idx in &batch[..fill] {
                hist.rmw(c, idx, |e| *e += 1);
            }
        });
    } else {
        src.read_stream(c, range, |c, _, row| {
            c.compute(3);
            hist.rmw(c, radix(row.key, shift, mask) as usize, |e| *e += 1);
        });
    }
}

/// Flush one write-combining buffer line (`rows`) to `dst[at..]` as a
/// single non-temporal 64-byte store.
fn flush_line(c: &mut Core<'_>, dst: &mut SimVec<Row>, at: usize, rows: &[Row]) {
    c.stream_store_line(dst.addr(at));
    for (k, &row) in rows.iter().enumerate() {
        dst.poke(at + k, row);
    }
}

/// Scatter `src[range]` into `dst` using software write-combining buffers.
/// `offsets[p]` is the next free slot of partition `p` for this worker and
/// is advanced in place. `counts`/`buffers` are this worker's scratch
/// (≥ fanout entries / fanout*WCB_ROWS rows).
#[allow(clippy::too_many_arguments)]
pub fn seq_scatter(
    c: &mut Core<'_>,
    src: &SimVec<Row>,
    range: std::ops::Range<usize>,
    dst: &mut SimVec<Row>,
    offsets: &mut [usize],
    counts: &mut SimVec<u32>,
    buffers: &mut SimVec<Row>,
    shift: u32,
    mask: u32,
    optimized: bool,
) {
    let fanout = mask as usize + 1;
    // Reset the per-partition fill counters (cache-resident scratch).
    charged_fill(c, counts, 0..fanout, 0);
    let mut drain = |c: &mut Core<'_>, p: usize, dst: &mut SimVec<Row>, buffers: &SimVec<Row>| {
        // Copy the full buffer line out to the partition.
        let rows: Vec<Row> =
            (0..WCB_ROWS).map(|k| buffers.peek(p * WCB_ROWS + k)).collect();
        flush_line(c, dst, offsets[p], &rows);
        offsets[p] += WCB_ROWS;
    };
    let mut push_row = |c: &mut Core<'_>,
                        p: usize,
                        row: Row,
                        fill: u32,
                        dst: &mut SimVec<Row>,
                        buffers: &mut SimVec<Row>| {
        buffers.set(c, p * WCB_ROWS + fill as usize, row);
        if fill as usize + 1 == WCB_ROWS {
            drain(c, p, dst, buffers);
        }
    };
    if optimized {
        let mut batch: [(Row, usize); 8] = [(Row::default(), 0); 8];
        let mut fills = [0u32; 8];
        let mut bfill = 0usize;
        let mut flush_batch = |c: &mut Core<'_>,
                               batch: &[(Row, usize)],
                               fills: &mut [u32; 8],
                               dst: &mut SimVec<Row>,
                               buffers: &mut SimVec<Row>| {
            // All counter RMWs first (one issue group), then the buffer
            // stores and any full-line drains.
            c.group(|c| {
                for (bi, &(_, p)) in batch.iter().enumerate() {
                    counts.rmw(c, p, |f| {
                        fills[bi] = *f % WCB_ROWS as u32;
                        *f += 1;
                    });
                }
            });
            for (bi, &(row, p)) in batch.iter().enumerate() {
                push_row(c, p, row, fills[bi], dst, buffers);
            }
        };
        src.read_stream(c, range, |c, _, row| {
            c.compute(3);
            batch[bfill] = (row, radix(row.key, shift, mask) as usize);
            bfill += 1;
            if bfill == 8 {
                flush_batch(c, &batch, &mut fills, dst, buffers);
                bfill = 0;
            }
        });
        flush_batch(c, &batch[..bfill], &mut fills, dst, buffers);
    } else {
        src.read_stream(c, range, |c, _, row| {
            c.compute(4);
            let p = radix(row.key, shift, mask) as usize;
            let mut fill = 0u32;
            counts.rmw(c, p, |f| {
                fill = *f % WCB_ROWS as u32;
                *f += 1;
            });
            push_row(c, p, row, fill, dst, buffers);
        });
    }
    // Flush partial buffers.
    for p in 0..fanout {
        let rem = (counts.peek(p) as usize) % WCB_ROWS;
        if rem > 0 {
            let rows: Vec<Row> = (0..rem).map(|k| buffers.peek(p * WCB_ROWS + k)).collect();
            flush_line(c, dst, offsets[p], &rows);
            offsets[p] += rem;
        }
    }
}

/// Direct (non-write-combining) scatter: every tuple is stored straight to
/// its partition cursor — the textbook radix partitioning that software
/// write-combining buffers replace. Kept public for the swwcb ablation
/// bench; RHO itself always uses [`seq_scatter`].
pub fn seq_scatter_direct(
    c: &mut Core<'_>,
    src: &SimVec<Row>,
    range: std::ops::Range<usize>,
    dst: &mut SimVec<Row>,
    cursors: &mut SimVec<u32>,
    shift: u32,
    mask: u32,
) {
    src.read_stream(c, range, |c, _, row| {
        c.compute(4);
        let p = radix(row.key, shift, mask) as usize;
        // The cursor bump is a charged RMW on the cursor array; the tuple
        // store goes wherever the partition cursor points.
        let mut at = 0u32;
        cursors.rmw(c, p, |v| {
            at = *v;
            *v += 1;
        });
        dst.set(c, at as usize, row);
    });
}

/// One parallel partitioning pass over a whole relation. Returns partition
/// start offsets (length `fanout + 1`) and records the histogram and
/// scatter phases.
#[allow(clippy::too_many_arguments)]
fn parallel_partition_pass(
    machine: &mut Machine,
    src: &SimVec<Row>,
    dst: &mut SimVec<Row>,
    shift: u32,
    bits: u32,
    cfg: &JoinConfig,
    phases: &mut Vec<(&'static str, f64)>,
    names: (&'static str, &'static str),
) -> Vec<usize> {
    let t = cfg.cores.len();
    let fanout = 1usize << bits;
    let mask = fanout as u32 - 1;
    let mut hists: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(fanout)).collect();

    let hist_stats = {
        let _scope = machine.phase(names.0);
        machine.parallel(&cfg.cores, |c| {
            let w = c.worker();
            charged_fill(c, &mut hists[w], 0..fanout, 0);
            seq_histogram(c, src, chunk_range(src.len(), t, w), &mut hists[w], shift, mask, cfg.optimized);
        })
    };
    phases.push((names.0, hist_stats.wall_cycles));

    // Prefix sums over (partition, worker) — small metadata, charged as
    // compute on core 0.
    let mut starts = vec![0usize; fanout + 1];
    let mut worker_offsets = vec![vec![0usize; fanout]; t];
    machine.run(|c| {
        c.compute((fanout * t * 2) as u64);
        let mut acc = 0usize;
        for p in 0..fanout {
            starts[p] = acc;
            for (w, h) in hists.iter().enumerate() {
                worker_offsets[w][p] = acc;
                acc += h.get(c, p) as usize;
            }
        }
        starts[fanout] = acc;
    });

    // Per-worker write-combining scratch.
    let mut counts: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(fanout)).collect();
    let mut buffers: Vec<SimVec<Row>> =
        (0..t).map(|_| machine.alloc::<Row>(fanout * WCB_ROWS)).collect();
    let copy_stats = {
        let _scope = machine.phase(names.1);
        machine.parallel(&cfg.cores, |c| {
            let w = c.worker();
            seq_scatter(
                c,
                src,
                chunk_range(src.len(), t, w),
                dst,
                &mut worker_offsets[w],
                &mut counts[w],
                &mut buffers[w],
                shift,
                mask,
                cfg.optimized,
            );
        })
    };
    phases.push((names.1, copy_stats.wall_cycles));
    starts
}

/// Per-partition chained hash table build + probe, cache-resident.
/// `heads`/`links` are worker scratch sized for the largest partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_partition(
    c: &mut Core<'_>,
    r_part: (&SimVec<Row>, std::ops::Range<usize>),
    s_part: (&SimVec<Row>, std::ops::Range<usize>),
    heads: &mut SimVec<u32>,
    links: &mut SimVec<u32>,
    optimized: bool,
    build_busy: &mut f64,
    mut emit: impl FnMut(&mut Core<'_>, u32, u32),
) {
    let (r, r_range) = r_part;
    let (s, s_range) = s_part;
    let n = r_range.len();
    if n == 0 || s_range.is_empty() {
        return;
    }
    let bits = (usize::BITS - n.next_power_of_two().leading_zeros()).max(3);
    let ht_size = 1usize << bits;
    debug_assert!(ht_size <= heads.len(), "scratch table too small for partition");

    // ------------------------------------------------------------- build
    let build_start = c.busy_cycles();
    // The "build" profile scope covers exactly the busy-cycle window the
    // Fig 6 breakdown measures, so profile vs. phase stats cross-check.
    let build_scope = c.phase("build");
    charged_fill(c, heads, 0..ht_size, EMPTY);
    let r_base = r_range.start;
    if optimized {
        let mut batch: [(usize, u32); 8] = [(0, 0); 8];
        let mut fill = 0usize;
        let mut flush = |c: &mut Core<'_>, batch: &[(usize, u32)]| {
            c.group(|c| {
                for &(i, h) in batch {
                    let mut next = EMPTY;
                    heads.rmw(c, h as usize, |head| {
                        next = *head;
                        *head = i as u32;
                    });
                    links.set(c, i, next);
                }
            });
        };
        r.read_stream(c, r_range.clone(), |c, i, row| {
            c.compute(3);
            batch[fill] = (i - r_base, hash32(row.key, bits));
            fill += 1;
            if fill == 8 {
                flush(c, &batch);
                fill = 0;
            }
        });
        flush(c, &batch[..fill]);
    } else {
        r.read_stream(c, r_range.clone(), |c, i, row| {
            c.compute(4);
            let h = hash32(row.key, bits) as usize;
            let mut next = EMPTY;
            heads.rmw(c, h, |head| {
                next = *head;
                *head = i as u32 - r_base as u32;
            });
            links.set(c, i - r_base, next);
        });
    }
    drop(build_scope);
    *build_busy += c.busy_cycles() - build_start;

    // ------------------------------------------------------------- probe
    let _probe_scope = c.phase("probe");
    let mut walk = |c: &mut Core<'_>, first: u32, srow: Row| {
        let mut e = first;
        c.dependent(|c| {
            while e != EMPTY {
                let rrow = r.get(c, r_base + e as usize);
                c.compute(2);
                if rrow.key == srow.key {
                    emit(c, rrow.payload, srow.payload);
                }
                e = links.get(c, e as usize);
            }
        });
    };
    if optimized {
        let mut batch: [(Row, u32); 8] = [(Row::default(), 0); 8];
        let mut fill = 0usize;
        s.read_stream(c, s_range, |c, _, srow| {
            c.compute(3);
            batch[fill] = (srow, hash32(srow.key, bits));
            fill += 1;
            if fill == 8 {
                let mut firsts = [EMPTY; 8];
                c.group(|c| {
                    for (bi, &(_, h)) in batch.iter().enumerate() {
                        firsts[bi] = heads.get(c, h as usize);
                    }
                });
                for (bi, &(srow, _)) in batch.iter().enumerate() {
                    walk(c, firsts[bi], srow);
                }
                fill = 0;
            }
        });
        for bi in 0..fill {
            let (srow, h) = batch[bi];
            let first = heads.get(c, h as usize);
            walk(c, first, srow);
        }
    } else {
        s.read_stream(c, s_range, |c, _, srow| {
            c.compute(4);
            let first = heads.get(c, hash32(srow.key, bits) as usize);
            walk(c, first, srow);
        });
    }
}

/// Execute the RHO join of `r` (build side) and `s` (probe side).
pub fn rho_join(
    machine: &mut Machine,
    r: &SimVec<Row>,
    s: &SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    let t = cfg.cores.len();
    let total_bits = cfg.radix_bits.clamp(2, 2 * MAX_PASS_BITS);
    let pass1_bits = total_bits.min(MAX_PASS_BITS);
    let pass2_bits = total_bits - pass1_bits;

    // Partition destinations (ping-pong buffers for two passes).
    let mut r1 = machine.alloc::<Row>(r.len());
    let mut s1 = machine.alloc::<Row>(s.len());
    let mut output = cfg.materialize.then(|| machine.alloc::<JoinTuple>(s.len()));

    let start = machine.wall_cycles();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();

    // Pass 1 over both relations (Fig 6: Hist 1 / Copy 1 / Hist 2 / Copy 2).
    let r_starts =
        parallel_partition_pass(machine, r, &mut r1, 0, pass1_bits, cfg, &mut phases, ("hist_r", "copy_r"));
    let s_starts =
        parallel_partition_pass(machine, s, &mut s1, 0, pass1_bits, cfg, &mut phases, ("hist_s", "copy_s"));

    // Pass 2 (task-per-partition, queue-distributed).
    let fanout1 = 1usize << pass1_bits;
    let (r_final, s_final, r_bounds, s_bounds) = if pass2_bits > 0 {
        let mut r2 = machine.alloc::<Row>(r.len());
        let mut s2 = machine.alloc::<Row>(s.len());
        let fanout2 = 1usize << pass2_bits;
        let mask2 = fanout2 as u32 - 1;
        let mut r_bounds = vec![0usize; fanout1 * fanout2 + 1];
        let mut s_bounds = vec![0usize; fanout1 * fanout2 + 1];
        // Worker scratch for the second pass.
        let mut hists: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(fanout2)).collect();
        let mut counts: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(fanout2)).collect();
        let mut buffers: Vec<SimVec<Row>> =
            (0..t).map(|_| machine.alloc::<Row>(fanout2 * WCB_ROWS)).collect();
        let mut queue = cfg.queue.build();
        // Each task repartitions one pass-1 partition of R and S.
        let _scope = machine.phase("part2");
        let stats = machine.parallel_tasks(&cfg.cores, queue.as_mut(), fanout1, |c, p| {
            let w = c.worker();
            for (src, dst, starts, bounds) in [
                (&r1, &mut r2, &r_starts, &mut r_bounds),
                (&s1, &mut s2, &s_starts, &mut s_bounds),
            ] {
                let range = starts[p]..starts[p + 1];
                charged_fill(c, &mut hists[w], 0..fanout2, 0);
                seq_histogram(c, src, range.clone(), &mut hists[w], pass1_bits, mask2, cfg.optimized);
                let mut offsets = vec![0usize; fanout2];
                let mut acc = range.start;
                c.compute(2 * fanout2 as u64);
                for sp in 0..fanout2 {
                    bounds[p * fanout2 + sp] = acc;
                    offsets[sp] = acc;
                    acc += hists[w].get(c, sp) as usize;
                }
                seq_scatter(
                    c,
                    src,
                    range,
                    dst,
                    &mut offsets,
                    &mut counts[w],
                    &mut buffers[w],
                    pass1_bits,
                    mask2,
                    cfg.optimized,
                );
            }
        });
        phases.push(("part2", stats.wall_cycles));
        r_bounds[fanout1 * fanout2] = r.len();
        s_bounds[fanout1 * fanout2] = s.len();
        (r2, s2, r_bounds, s_bounds)
    } else {
        (r1, s1, r_starts, s_starts)
    };

    // Join phase: one task per final partition.
    let n_parts = r_bounds.len() - 1;
    let max_r_part = (0..n_parts).map(|p| r_bounds[p + 1] - r_bounds[p]).max().unwrap_or(0);
    let ht_cap = (max_r_part.next_power_of_two() * 2).max(8);
    let mut heads: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(ht_cap)).collect();
    let mut links: Vec<SimVec<u32>> =
        (0..t).map(|_| machine.alloc::<u32>(max_r_part.max(1))).collect();

    let mut matches = 0u64;
    let mut checksum = 0u64;
    let mut build_busy = 0.0f64;
    let mut overflow = false;
    let mut output_runs: Vec<std::ops::Range<usize>> = Vec::new();
    let mut queue = cfg.queue.build();
    let join_stats: PhaseStats =
        machine.parallel_tasks(&cfg.cores, queue.as_mut(), n_parts, |c, p| {
            let w = c.worker();
            let s_range = s_bounds[p]..s_bounds[p + 1];
            let mut out = output
                .as_mut()
                .map(|o| (o.stream_writer(s_range.start), s_range.clone()));
            join_partition(
                c,
                (&r_final, r_bounds[p]..r_bounds[p + 1]),
                (&s_final, s_range.clone()),
                &mut heads[w],
                &mut links[w],
                cfg.optimized,
                &mut build_busy,
                |c, rp, sp| {
                    matches += 1;
                    checksum += rp as u64 + sp as u64;
                    if let Some((ow, range)) = out.as_mut() {
                        if ow.pos() < range.end {
                            ow.push(c, JoinTuple { r_payload: rp, s_payload: sp });
                        } else {
                            overflow = true;
                        }
                    }
                },
            );
            if let Some((ow, _)) = out {
                let run = s_range.start..ow.pos();
                if !run.is_empty() {
                    output_runs.push(run);
                }
            }
        });
    assert!(!overflow, "RHO materialization overflowed a partition range (non-FK duplicates?)");
    let probe_busy: f64 = join_stats.core_cycles.iter().sum::<f64>() - build_busy;
    phases.push(("build", build_busy));
    phases.push(("probe", probe_busy.max(0.0)));

    output_runs.sort_by_key(|r| r.start);
    JoinStats { matches, checksum, wall_cycles: machine.wall_cycles() - start, phases, output, output_runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::QueueKind;
    use crate::data::{gen_fk_relation, gen_pk_relation, reference_join};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn join_correct(cfg: JoinConfig, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let stats = rho_join(&mut m, &r, &s, &cfg);
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref, "matches");
        assert_eq!(stats.checksum, c_ref, "checksum");
    }

    #[test]
    fn correct_single_pass_single_thread() {
        join_correct(JoinConfig::new(1).with_radix_bits(4), 5000, 20_000);
    }

    #[test]
    fn correct_single_pass_multi_thread() {
        join_correct(JoinConfig::new(8).with_radix_bits(6), 5000, 20_000);
    }

    #[test]
    fn correct_two_pass() {
        join_correct(JoinConfig::new(4).with_radix_bits(10), 5000, 20_000);
    }

    #[test]
    fn correct_optimized() {
        join_correct(JoinConfig::new(4).with_radix_bits(6).with_optimization(true), 5000, 20_000);
        join_correct(JoinConfig::new(3).with_radix_bits(10).with_optimization(true), 777, 3001);
    }

    #[test]
    fn correct_with_mutex_queue() {
        join_correct(JoinConfig::new(8).with_radix_bits(8).with_queue(QueueKind::SdkMutex), 4000, 16_000);
        join_correct(JoinConfig::new(8).with_radix_bits(8).with_queue(QueueKind::SpinLock), 4000, 16_000);
    }

    #[test]
    fn materialization_counts_match() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 2000, 1);
        let s = gen_fk_relation(&mut m, 8000, 2000, 2);
        let cfg = JoinConfig::new(4).with_radix_bits(6).with_materialization(true);
        let stats = rho_join(&mut m, &r, &s, &cfg);
        assert_eq!(stats.matches, 8000);
    }

    #[test]
    fn phases_cover_fig6_breakdown() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 5000, 1);
        let s = gen_fk_relation(&mut m, 20_000, 5000, 2);
        let stats = rho_join(&mut m, &r, &s, &JoinConfig::new(1).with_radix_bits(4));
        for name in ["hist_r", "copy_r", "hist_s", "copy_s", "build", "probe"] {
            assert!(stats.phase(name) > 0.0, "phase {name} missing");
        }
    }

    #[test]
    fn optimization_speeds_up_enclave_execution() {
        let run = |optimized: bool| {
            let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
            let r = gen_pk_relation(&mut m, 100_000, 1);
            let s = gen_fk_relation(&mut m, 400_000, 100_000, 2);
            let cfg = JoinConfig::new(1).with_radix_bits(6).with_optimization(optimized);
            rho_join(&mut m, &r, &s, &cfg).wall_cycles
        };
        let naive = run(false);
        let optimized = run(true);
        assert!(
            optimized < 0.8 * naive,
            "§4.2 optimization should cut enclave run time: {optimized} !< 0.8*{naive}"
        );
    }

    #[test]
    fn empty_probe_side() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 1000, 1);
        let s = m.alloc::<Row>(0);
        let stats = rho_join(&mut m, &r, &s, &JoinConfig::new(2).with_radix_bits(4));
        assert_eq!(stats.matches, 0);
    }
}
