//! INL — Index Nested Loop join (TEEBench \[24\]).
//!
//! Probes an *existing* B+-tree index on the build relation once per probe
//! row. Index construction is untimed (the paper: "uses an existing B-Tree
//! index"), matching TEEBench's setup. The probe pattern — a dependent
//! pointer chase through the tree per row — explains INL's behaviour in
//! Fig 3: slow in absolute terms, but with a comparatively small enclave
//! penalty because only the leaf levels fall out of cache.

use crate::common::{JoinConfig, JoinStats, Row};
use crate::pht::chunk_range;
use sgx_index::{BPlusTree, IndexRow};
use sgx_sim::{Machine, SimVec};

/// Build the (untimed) index over `r`, then probe it with every row of
/// `s`.
pub fn inl_join(
    machine: &mut Machine,
    r: &SimVec<Row>,
    s: &SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    // Untimed setup: sort R and bulk-load the tree, as if the index
    // already existed before the query.
    let mut indexed: Vec<IndexRow> =
        // sgx-lint: allow(untracked-access) untimed setup: the index pre-exists the measured query
        r.as_slice_untracked().iter().map(|row| IndexRow { key: row.key, payload: row.payload }).collect();
    indexed.sort_unstable_by_key(|r| r.key);
    // sgx-lint: allow(untracked-slice-taint) untimed setup continues: bulk_load builds the pre-existing index
    let tree = BPlusTree::bulk_load(machine, &indexed);

    let t = cfg.cores.len();
    let mut matches = 0u64;
    let mut checksum = 0u64;
    let start = machine.wall_cycles();
    let probe = machine.parallel(&cfg.cores, |c| {
        let range = chunk_range(s.len(), t, c.worker());
        s.read_stream(c, range, |c, _, srow| {
            c.compute(2);
            tree.for_each_match(c, srow.key, |r_payload| {
                matches += 1;
                checksum += r_payload as u64 + srow.payload as u64;
                true
            });
        });
    });

    JoinStats {
        matches,
        checksum,
        wall_cycles: machine.wall_cycles() - start,
        phases: vec![("probe", probe.wall_cycles)],
        output: None,
        output_runs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_fk_relation, gen_pk_relation, reference_join};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn join_correct(threads: usize, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, nr, 1);
        let s = gen_fk_relation(&mut m, ns, nr, 2);
        let stats = inl_join(&mut m, &r, &s, &JoinConfig::new(threads));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn correct_single_and_multi_thread() {
        join_correct(1, 3000, 12_000);
        join_correct(8, 3000, 12_000);
    }

    #[test]
    fn correct_with_duplicate_index_keys() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = m.alloc::<Row>(100);
        for i in 0..100 {
            r.poke(i, Row { key: (i % 10 + 1) as u32, payload: i as u32 });
        }
        let s = gen_fk_relation(&mut m, 500, 10, 3);
        let stats = inl_join(&mut m, &r, &s, &JoinConfig::new(4));
        let (m_ref, c_ref) = reference_join(&r, &s);
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn probe_cost_dominated_by_dependent_chains() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 100_000, 1);
        let s = gen_fk_relation(&mut m, 10_000, 100_000, 2);
        let stats = inl_join(&mut m, &r, &s, &JoinConfig::new(1));
        // Each probe descends ≥3 levels; leaves miss cache.
        assert!(stats.wall_cycles / 10_000.0 > 100.0);
    }

    #[test]
    fn empty_probe() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let r = gen_pk_relation(&mut m, 100, 1);
        let s = m.alloc::<Row>(0);
        assert_eq!(inl_join(&mut m, &r, &s, &JoinConfig::new(2)).matches, 0);
    }
}
