//! # sgx-joins — parallel in-memory join algorithms for the SGXv2 study
//!
//! Implementations of the five join algorithms §4 of the paper evaluates,
//! all running against the `sgx-sim` machine model:
//!
//! * [`pht::pht_join`] — Parallel Hash Table join (Blanas et al.): shared
//!   chaining hash table, latched buckets.
//! * [`rho::rho_join`] — Radix Hash Optimized join (Manegold et al. /
//!   Balkesen et al.): multi-pass parallel radix partitioning with
//!   software write-combining buffers, then cache-resident hash joins.
//! * [`mway::mway_join`] — Multi-Way Sort-Merge join (Kim et al.).
//! * [`inl::inl_join`] — Index Nested Loop join over the `sgx-index`
//!   B+-tree.
//! * [`cht::cht_join`] — Concise Hash Table join (TEEBench family;
//!   reproduction extension): bitmap + rank-addressed dense array.
//! * [`crkjoin::crk_join`] — CrkJoin (Maliszewski et al.), the
//!   SGXv1-optimized cracking join that partitions in place one radix bit
//!   at a time with two-pointer swaps.
//!
//! Every join computes real matches over real tuples; the returned
//! [`JoinStats`] carry simulated timings, per-phase breakdowns
//! (Figs 4 & 6), and a checksum tests verify against [`data::reference_join`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cht;
pub mod common;
pub mod crkjoin;
pub mod data;
pub mod inl;
pub mod mway;
pub mod pht;
pub mod rho;

pub use common::{JoinConfig, JoinStats, JoinTuple, QueueKind, Row};
pub use data::{gen_fk_relation, gen_fk_zipf, gen_pk_relation, reference_join};
