//! CrkJoin — the SGXv1-optimized cracking join (Maliszewski et al. \[23\]).
//!
//! CrkJoin radix-partitions both inputs *in place*, one bit at a time:
//! two pointers move from the ends of a segment towards each other,
//! swapping tuples whose current radix bit is on the wrong side. This
//! avoids random scattered writes entirely (only two sequential streams
//! per segment) and keeps the working set to a handful of EPC pages —
//! exactly what SGXv1's tiny, paging-prone EPC rewarded. After
//! partitioning, partition pairs are joined with the same cache-resident
//! hash join as RHO.
//!
//! On SGXv2 these properties no longer pay: the paper's Fig 3 shows
//! CrkJoin as the *slowest* join (the repeated full passes cost more than
//! the scatter they avoid), which this implementation reproduces; the
//! `sgxv1` machine profile reproduces why it used to win.

use crate::common::{JoinConfig, JoinStats, Row};
use crate::rho::join_partition;
use sgx_sim::{Core, Machine, SimVec};

/// In-place two-pointer partition of `v[range]` by bit `bit` of the key.
/// Returns the index of the first row with the bit set.
fn crack_segment(
    c: &mut Core<'_>,
    v: &mut SimVec<Row>,
    range: std::ops::Range<usize>,
    bit: u32,
) -> usize {
    if range.is_empty() {
        return range.start;
    }
    let mut lo = range.start;
    let mut hi = range.end - 1;
    let mask = 1u32 << bit;
    loop {
        // Advance the low pointer over rows with the bit clear (ascending
        // stream) ...
        while lo <= hi {
            let row = v.get(c, lo);
            c.compute(2);
            // The tested bit is uniformly random: the branch predictor
            // misses half the time — a major cost of bit-at-a-time
            // cracking on wide out-of-order cores.
            c.branch(0.5);
            if row.key & mask != 0 {
                break;
            }
            lo += 1;
        }
        // ... and the high pointer over rows with the bit set (descending
        // stream).
        while hi > lo {
            let row = v.get(c, hi);
            c.compute(2);
            c.branch(0.5);
            if row.key & mask == 0 {
                break;
            }
            hi -= 1;
        }
        if lo >= hi {
            break;
        }
        // Swap the misplaced pair.
        let a = v.peek(lo);
        let b = v.peek(hi);
        v.set(c, lo, b);
        v.set(c, hi, a);
        c.compute(2);
        lo += 1;
        if hi == 0 {
            break;
        }
        hi -= 1;
    }
    lo
}

/// Execute CrkJoin. Partitions `r` and `s` **in place** (callers that need
/// the inputs preserved should regenerate or copy them), then joins
/// partition pairs.
pub fn crk_join(
    machine: &mut Machine,
    r: &mut SimVec<Row>,
    s: &mut SimVec<Row>,
    cfg: &JoinConfig,
) -> JoinStats {
    let t = cfg.cores.len();
    let bits = cfg.radix_bits.clamp(1, 16);
    let start = machine.wall_cycles();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();

    // Phase 1 — breadth-first cracking of the top levels, just far enough
    // to feed all cores (level d has 2^d segments; the early levels
    // underutilize the cores — inherent to cracking). [23]
    let bfs_target = (4 * t).max(2);
    let mut r_bounds = vec![0usize, r.len()];
    let mut s_bounds = vec![0usize, s.len()];
    let mut crack_cycles = 0.0;
    let mut depth = 0u32;
    while depth < bits && r_bounds.len() - 1 < bfs_target {
        let bit = depth; // partition by least significant bits first [23]
        for (v, bounds) in [(&mut *r, &mut r_bounds), (&mut *s, &mut s_bounds)] {
            let n_segments = bounds.len() - 1;
            let mut splits = vec![0usize; n_segments];
            let mut queue = cfg.queue.build();
            let stats = machine.parallel_tasks(&cfg.cores, queue.as_mut(), n_segments, |c, seg| {
                splits[seg] = crack_segment(c, v, bounds[seg]..bounds[seg + 1], bit);
            });
            crack_cycles += stats.wall_cycles;
            let mut new_bounds = Vec::with_capacity(2 * n_segments + 1);
            for seg in 0..n_segments {
                new_bounds.push(bounds[seg]);
                new_bounds.push(splits[seg]);
            }
            // sgx-lint: allow(panic-in-library) bounds always ends with n by construction (seeded two lines up, re-pushed here)
            new_bounds.push(*bounds.last().expect("bounds never empty"));
            *bounds = new_bounds;
        }
        depth += 1;
    }

    // Phase 2 — depth-first per segment: each task fully cracks its R and
    // S segments through the remaining bits and joins the partition pairs
    // immediately. This is CrkJoin's tree traversal: once a segment drops
    // below cache (or, on SGXv1, below the resident EPC) all its deeper
    // levels run over warm memory, which is exactly what made the design
    // viable on the old hardware.
    let n_segments = r_bounds.len() - 1;
    let max_r_seg =
        (0..n_segments).map(|g| r_bounds[g + 1] - r_bounds[g]).max().unwrap_or(0);
    let ht_cap = (max_r_seg.next_power_of_two() * 2).max(8);
    let mut heads: Vec<SimVec<u32>> = (0..t).map(|_| machine.alloc::<u32>(ht_cap)).collect();
    let mut links: Vec<SimVec<u32>> =
        (0..t).map(|_| machine.alloc::<u32>(max_r_seg.max(1))).collect();
    let mut matches = 0u64;
    let mut checksum = 0u64;
    let mut build_busy = 0.0;
    let mut queue = cfg.queue.build();
    let dfs_stats = machine.parallel_tasks(&cfg.cores, queue.as_mut(), n_segments, |c, seg| {
        let w = c.worker();
        // DFS-crack both segments; identical recursion order yields the
        // final partitions in matching radix order.
        let mut r_parts = Vec::new();
        crack_dfs(c, r, r_bounds[seg]..r_bounds[seg + 1], depth, bits, &mut r_parts);
        let mut s_parts = Vec::new();
        crack_dfs(c, s, s_bounds[seg]..s_bounds[seg + 1], depth, bits, &mut s_parts);
        debug_assert_eq!(r_parts.len(), s_parts.len());
        for (rp, sp) in r_parts.into_iter().zip(s_parts) {
            join_partition(
                c,
                (&*r, rp),
                (&*s, sp),
                &mut heads[w],
                &mut links[w],
                cfg.optimized,
                &mut build_busy,
                |_c, rpay, spay| {
                    matches += 1;
                    checksum += rpay as u64 + spay as u64;
                },
            );
        }
    });
    crack_cycles += dfs_stats.wall_cycles;
    phases.push(("crack", crack_cycles));
    phases.push(("join", build_busy));

    JoinStats {
        matches,
        checksum,
        wall_cycles: machine.wall_cycles() - start,
        phases,
        output: None,
        output_runs: vec![],
    }
}

/// Depth-first cracking of `range` from `bit` (exclusive of `end_bit`);
/// appends the final partition ranges in radix order.
fn crack_dfs(
    c: &mut Core<'_>,
    v: &mut SimVec<Row>,
    range: std::ops::Range<usize>,
    bit: u32,
    end_bit: u32,
    out: &mut Vec<std::ops::Range<usize>>,
) {
    if bit >= end_bit {
        out.push(range);
        return;
    }
    let split = crack_segment(c, v, range.clone(), bit);
    crack_dfs(c, v, range.start..split, bit + 1, end_bit, out);
    crack_dfs(c, v, split..range.end, bit + 1, end_bit, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gen_fk_relation, gen_pk_relation, reference_join};
    use crate::rho::rho_join;
    use sgx_sim::config::{scaled_profile, xeon_gold_6326};
    use sgx_sim::Setting;

    fn join_correct(threads: usize, bits: u32, nr: usize, ns: usize) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = gen_pk_relation(&mut m, nr, 1);
        let mut s = gen_fk_relation(&mut m, ns, nr, 2);
        let (m_ref, c_ref) = reference_join(&r, &s);
        let stats =
            crk_join(&mut m, &mut r, &mut s, &JoinConfig::new(threads).with_radix_bits(bits));
        assert_eq!(stats.matches, m_ref);
        assert_eq!(stats.checksum, c_ref);
    }

    #[test]
    fn correct_various_configs() {
        join_correct(1, 4, 3000, 12_000);
        join_correct(8, 6, 3000, 12_000);
        join_correct(3, 5, 777, 3001);
    }

    #[test]
    fn cracking_actually_partitions() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut v = gen_pk_relation(&mut m, 10_000, 3);
        let split = m.run(|c| crack_segment(c, &mut v, 0..10_000, 0));
        for i in 0..split {
            assert_eq!(v.peek(i).key & 1, 0, "row {i} below split has bit set");
        }
        for i in split..10_000 {
            assert_eq!(v.peek(i).key & 1, 1, "row {i} above split has bit clear");
        }
    }

    #[test]
    fn crack_preserves_multiset() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut v = gen_pk_relation(&mut m, 5000, 4);
        let mut before: Vec<u32> = v.as_slice_untracked().iter().map(|r| r.key).collect();
        m.run(|c| crack_segment(c, &mut v, 0..5000, 3));
        let mut after: Vec<u32> = v.as_slice_untracked().iter().map(|r| r.key).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn slower_than_rho_on_sgxv2() {
        // Fig 3: CrkJoin is the slowest join on SGXv2 hardware with all 16
        // cores of a socket — its bit-at-a-time sweep serializes the early
        // levels (1, 2, 4, ... active tasks) while RHO parallelizes every
        // phase across all cores.
        let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
        let r = gen_pk_relation(&mut m, 50_000, 1);
        let s = gen_fk_relation(&mut m, 200_000, 50_000, 2);
        let rho = rho_join(&mut m, &r, &s, &JoinConfig::new(16).with_radix_bits(8));
        let mut r2 = gen_pk_relation(&mut m, 50_000, 1);
        let mut s2 = gen_fk_relation(&mut m, 200_000, 50_000, 2);
        // CrkJoin cracks down to L1-sized partitions by design (minimal
        // working set), i.e. deeper than RHO's L2-sized ones.
        let crk = crk_join(&mut m, &mut r2, &mut s2, &JoinConfig::new(16).with_radix_bits(12));
        assert!(
            crk.wall_cycles > 1.7 * rho.wall_cycles,
            "CrkJoin {} should be well behind RHO {}",
            crk.wall_cycles,
            rho.wall_cycles
        );
    }

    #[test]
    fn wins_on_sgxv1_epc_model() {
        // The reproduction extension: with an SGXv1-sized, paging EPC the
        // ordering flips. CrkJoin partitions *in place*, so its working set
        // stays at 1x the data and fits the resident EPC; RHO's
        // out-of-place passes need 2x and thrash the pager (the reason
        // CrkJoin existed [23]).
        let cfg = xeon_gold_6326().scaled(16).sgxv1();
        // Data (R+S ≈ 4.8 MB) fits the scaled resident budget (5.75 MB);
        // data + partition copies (≥ 9.6 MB) does not.
        let make = |m: &mut Machine| {
            let r = gen_pk_relation(m, 120_000, 1);
            let s = gen_fk_relation(m, 480_000, 120_000, 2);
            (r, s)
        };
        let mut m = Machine::new(cfg.clone(), Setting::SgxDataInEnclave);
        let (r, s) = make(&mut m);
        let rho = rho_join(&mut m, &r, &s, &JoinConfig::new(16).with_radix_bits(8));
        assert!(m.counters().epc_page_faults > 0, "RHO should page on SGXv1");
        let mut m = Machine::new(cfg, Setting::SgxDataInEnclave);
        let (mut r, mut s) = make(&mut m);
        let crk = crk_join(&mut m, &mut r, &mut s, &JoinConfig::new(16).with_radix_bits(8));
        assert!(
            crk.wall_cycles < rho.wall_cycles,
            "on SGXv1 CrkJoin {} should beat RHO {}",
            crk.wall_cycles,
            rho.wall_cycles
        );
    }

    #[test]
    fn empty_inputs() {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let mut r = m.alloc::<Row>(0);
        let mut s = m.alloc::<Row>(0);
        let stats = crk_join(&mut m, &mut r, &mut s, &JoinConfig::new(2));
        assert_eq!(stats.matches, 0);
    }
}
