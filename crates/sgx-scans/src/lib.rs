//! # sgx-scans — AVX-512-style columnar scans and linear memory kernels
//!
//! §5 of the paper: state-of-the-art SIMD column scans (Willhalm et al.
//! \[38\], Polychroniou et al. \[29\]) that "load 64 byte-sized values at once
//! from a column, compare them to a lower and upper bound, and store the
//! comparison result either in a bit vector or materialize row
//! identifiers", plus pmbw-style linear read/write kernels in 64-bit and
//! 512-bit widths (§5.4, Fig 15).
//!
//! Scans compute real results (the bitvector/indexes are verified against
//! a scalar filter in tests) while charging the simulator per 64-byte
//! vector operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linear;
pub mod packed;
pub mod scan;

pub use linear::{linear_read, linear_write, LinearConfig, Width};
pub use packed::{packed_scan_count, PackedColumn};
pub use scan::{column_scan, gen_column, reference_filter, ScanConfig, ScanOutput, ScanStats};
