//! pmbw-style linear read/write kernels (§5.4, Fig 15).
//!
//! The paper extended pmbw with 512-bit AVX variants; reads and writes are
//! pure assembly loops over sequential addresses. Here the 64-bit variants
//! issue one scalar access per 8 bytes and the 512-bit variants one vector
//! access per cache line, which is what produces the paper's observation
//! that narrow reads suffer slightly more (−5.5 %) than wide ones (−3 %)
//! inside the enclave.

use sgx_sim::{Core, Machine, SimVec};

/// Access width of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Scalar 64-bit loads/stores.
    Bits64,
    /// AVX-512 64-byte loads/stores.
    Bits512,
}

impl Width {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Width::Bits64 => "64-bit",
            Width::Bits512 => "512-bit",
        }
    }
}

/// Kernel configuration (mirrors `ScanConfig`).
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Hardware cores participating.
    pub cores: Vec<usize>,
    /// Measured passes over the array.
    pub repeats: usize,
    /// Untimed warm-up passes.
    pub warmup: usize,
}

impl LinearConfig {
    /// `threads` cores on socket 0, one pass.
    pub fn new(threads: usize) -> LinearConfig {
        LinearConfig { cores: (0..threads).collect(), repeats: 1, warmup: 0 }
    }

    /// Builder-style: warm-up passes.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder-style: measured passes.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }
}

fn chunk(n: usize, t: usize, w: usize) -> std::ops::Range<usize> {
    // Cache-line aligned (8 u64 per line).
    let per = n.div_ceil(t).div_ceil(8) * 8;
    let start = (w * per).min(n);
    start..((w + 1) * per).min(n)
}

/// Linear read of the whole array, returning wall cycles of the measured
/// passes. The checksum of the final pass is computed for real (pmbw keeps
/// the loads live the same way).
pub fn linear_read(machine: &mut Machine, v: &SimVec<u64>, width: Width, cfg: &LinearConfig) -> f64 {
    let t = cfg.cores.len();
    let mut sink = 0u64;
    let pass = |machine: &mut Machine, sink: &mut u64| {
        machine.parallel(&cfg.cores, |c| {
            let range = chunk(v.len(), t, c.worker());
            match width {
                Width::Bits64 => {
                    v.read_stream(c, range, |_, _, x| *sink = sink.wrapping_add(x));
                }
                Width::Bits512 => {
                    v.read_stream_vec(c, range, |c, _, vals| {
                        c.vec_compute(1);
                        for &x in vals {
                            *sink = sink.wrapping_add(x);
                        }
                    });
                }
            }
        });
    };
    for _ in 0..cfg.warmup {
        pass(machine, &mut sink);
    }
    machine.reset_wall();
    for _ in 0..cfg.repeats {
        pass(machine, &mut sink);
    }
    std::hint::black_box(sink);
    machine.wall_cycles()
}

/// Linear write of the whole array.
pub fn linear_write(
    machine: &mut Machine,
    v: &mut SimVec<u64>,
    width: Width,
    cfg: &LinearConfig,
) -> f64 {
    let t = cfg.cores.len();
    let mut pass = |machine: &mut Machine, val: u64| {
        machine.parallel(&cfg.cores, |c| {
            let range = chunk(v.len(), t, c.worker());
            match width {
                Width::Bits64 => {
                    let mut w = v.stream_writer(range.start);
                    for _ in range {
                        w.push(c, val);
                    }
                }
                Width::Bits512 => write_stream_vec(c, v, range, val),
            }
        });
    };
    for i in 0..cfg.warmup {
        pass(machine, i as u64);
    }
    machine.reset_wall();
    for i in 0..cfg.repeats {
        pass(machine, 0xA5A5_0000 + i as u64);
    }
    machine.wall_cycles()
}

/// 512-bit streaming stores: one vector store per cache line.
fn write_stream_vec(c: &mut Core<'_>, v: &mut SimVec<u64>, range: std::ops::Range<usize>, val: u64) {
    let mut i = range.start;
    while i < range.end {
        let hi = (i + 8).min(range.end);
        c.stream_store_line(v.addr(i));
        for j in i..hi {
            v.poke(j, val);
        }
        i = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    #[test]
    fn writes_actually_write() {
        let mut m = machine(Setting::PlainCpu);
        let mut v = m.alloc::<u64>(10_000);
        linear_write(&mut m, &mut v, Width::Bits64, &LinearConfig::new(4));
        assert!(v.as_slice_untracked().iter().all(|&x| x == 0xA5A5_0000));
        linear_write(&mut m, &mut v, Width::Bits512, &LinearConfig::new(4).with_repeats(2));
        assert!(v.as_slice_untracked().iter().all(|&x| x == 0xA5A5_0001));
    }

    #[test]
    fn wide_reads_are_faster_than_narrow() {
        let mut m = machine(Setting::PlainCpu);
        let v = m.alloc::<u64>(1 << 20);
        let narrow = linear_read(&mut m, &v, Width::Bits64, &LinearConfig::new(1));
        let wide = linear_read(&mut m, &v, Width::Bits512, &LinearConfig::new(1));
        assert!(wide < narrow, "512-bit {wide} should beat 64-bit {narrow}");
    }

    #[test]
    fn enclave_overheads_match_fig15_shape() {
        // Fig 15: 64-bit reads lose the most (~5.5 %), 512-bit reads ~3 %,
        // writes ~2 %; everything stays single-digit.
        // 8 cores: per-core issue costs still matter (the width split);
        // the 16-core saturated case is covered by the Fig 15 harness,
        // where the MEE bus tax keeps a uniform few-percent gap.
        let overhead = |read: bool, width: Width| {
            let run = |setting: Setting| {
                let mut m = machine(setting);
                let mut v = m.alloc::<u64>(4 << 20); // 32 MB >> scaled L3
                let cfg = LinearConfig::new(8).with_warmup(1);
                if read {
                    linear_read(&mut m, &v, width, &cfg)
                } else {
                    linear_write(&mut m, &mut v, width, &cfg)
                }
            };
            run(Setting::SgxDataInEnclave) / run(Setting::PlainCpu) - 1.0
        };
        let r64 = overhead(true, Width::Bits64);
        let r512 = overhead(true, Width::Bits512);
        let w64 = overhead(false, Width::Bits64);
        let w512 = overhead(false, Width::Bits512);
        assert!((0.02..0.09).contains(&r64), "64-bit read overhead {r64:.3}");
        assert!((0.005..0.06).contains(&r512), "512-bit read overhead {r512:.3}");
        assert!(r512 < r64, "wide reads should suffer less: {r512:.3} vs {r64:.3}");
        assert!((0.0..0.045).contains(&w64), "64-bit write overhead {w64:.3}");
        assert!((0.0..0.045).contains(&w512), "512-bit write overhead {w512:.3}");
    }

    #[test]
    fn in_cache_kernels_at_parity() {
        let run = |setting: Setting| {
            let mut m = machine(setting);
            let v = m.alloc::<u64>(4 << 10); // 32 KB fits scaled L2
            linear_read(&mut m, &v, Width::Bits512, &LinearConfig::new(1).with_warmup(2))
        };
        let native = run(Setting::PlainCpu);
        let enclave = run(Setting::SgxDataInEnclave);
        let rel = enclave / native;
        assert!(rel < 1.02, "in-cache linear reads should be at parity, got {rel:.3}");
    }
}
