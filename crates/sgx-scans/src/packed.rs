//! Bit-packed column scans — the actual SIMD-scan algorithm of Willhalm
//! et al. \[38\], which the paper's §5 scan family descends from.
//!
//! Values are packed at `k` bits each into 64-bit words (no value spans a
//! word boundary: `64 / k` values per word, upper bits padded). The scan
//! unpacks 64 bytes at a time with shift/mask vector operations and
//! compares against the predicate range, producing the same outputs as the
//! byte-column scans in [`crate::scan`]. Packing reduces the bytes the MEE
//! must decrypt per value — on the paper's hardware this is the cheapest
//! way to buy scan throughput inside an enclave.

use sgx_sim::{Core, Machine, SimVec};

/// A column of `k`-bit unsigned values packed into 64-bit words.
pub struct PackedColumn {
    words: SimVec<u64>,
    /// Bits per value (1..=32).
    bits: u32,
    /// Logical number of values.
    len: usize,
}

impl PackedColumn {
    /// Values stored per 64-bit word.
    pub fn per_word(bits: u32) -> usize {
        (64 / bits) as usize
    }

    /// Pack `values` (each `< 2^bits`) into a new column in the machine's
    /// default data region.
    pub fn pack(machine: &mut Machine, values: &[u32], bits: u32) -> PackedColumn {
        assert!((1..=32).contains(&bits), "1..=32 bits per value");
        let pw = Self::per_word(bits);
        let n_words = values.len().div_ceil(pw).max(1);
        let mut words = machine.alloc::<u64>(n_words);
        for (i, &v) in values.iter().enumerate() {
            assert!(u64::from(v) < (1u64 << bits), "value {v} exceeds {bits} bits");
            let word = i / pw;
            let shift = (i % pw) as u32 * bits;
            let mut w = words.peek(word);
            w |= u64::from(v) << shift;
            words.poke(word, w);
        }
        PackedColumn { words, bits, len: values.len() }
    }

    /// Logical length in values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Physical size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.size_bytes()
    }

    /// Uncharged read of value `i` (verification).
    pub fn peek(&self, i: usize) -> u32 {
        let pw = Self::per_word(self.bits);
        let w = self.words.peek(i / pw);
        let shift = (i % pw) as u32 * self.bits;
        ((w >> shift) & ((1u64 << self.bits) - 1)) as u32
    }

    /// Charged range scan `lo <= v <= hi` over `range`, invoking `f(index)`
    /// per match. One 64-byte vector load plus `unpack_ops` shift/mask/
    /// compare vector operations per cache line (Willhalm-style in-register
    /// unpacking).
    pub fn scan_range(
        &self,
        core: &mut Core<'_>,
        range: std::ops::Range<usize>,
        lo: u32,
        hi: u32,
        mut f: impl FnMut(&mut Core<'_>, usize),
    ) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let pw = Self::per_word(self.bits);
        let word_range = range.start / pw..(range.end - 1) / pw + 1;
        let mask = (1u64 << self.bits) - 1;
        let mut matches = 0u64;
        // Unpack cost per 64-byte line: one shift+and+two-compares round
        // per packed lane position (Willhalm's shuffle/shift networks).
        let unpack_ops = 3 + self.bits as u64 / 8;
        self.words.read_stream_vec(core, word_range, |c, word_base, words| {
            c.vec_compute(unpack_ops);
            for (k, &w) in words.iter().enumerate() {
                let base = (word_base + k) * pw;
                for lane in 0..pw {
                    let i = base + lane;
                    if i < range.start || i >= range.end {
                        continue;
                    }
                    let v = ((w >> (lane as u32 * self.bits)) & mask) as u32;
                    if v >= lo && v <= hi {
                        matches += 1;
                        f(c, i);
                    }
                }
            }
        });
        matches
    }
}

/// Multi-threaded packed scan counting matches (bitvector-free variant;
/// the match positions are handed to `per-worker` counters only).
pub fn packed_scan_count(
    machine: &mut Machine,
    col: &PackedColumn,
    lo: u32,
    hi: u32,
    cores: &[usize],
) -> (u64, f64) {
    let t = cores.len();
    let pw = PackedColumn::per_word(col.bits());
    // Chunk on word boundaries so workers never split a word.
    let words_per = col.len().div_ceil(pw).div_ceil(t);
    let mut total = 0u64;
    let start = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        let lo_i = (w * words_per * pw).min(col.len());
        let hi_i = ((w + 1) * words_per * pw).min(col.len());
        total += col.scan_range(c, lo_i..hi_i, lo, hi, |_, _| {});
    });
    (total, machine.wall_cycles() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    fn random_values(n: usize, bits: u32, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..(1u32 << bits.min(31)))).collect()
    }

    #[test]
    fn pack_roundtrip_all_widths() {
        let mut m = machine(Setting::PlainCpu);
        for bits in [1u32, 3, 7, 8, 12, 16, 21, 32] {
            let vals = random_values(1000, bits, bits as u64);
            let col = PackedColumn::pack(&mut m, &vals, bits);
            assert_eq!(col.len(), 1000);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(col.peek(i), v, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn packed_scan_matches_reference() {
        let mut m = machine(Setting::PlainCpu);
        let vals = random_values(50_000, 12, 7);
        let col = PackedColumn::pack(&mut m, &vals, 12);
        let (lo, hi) = (100u32, 2000u32);
        let expected = vals.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
        for threads in [1usize, 4, 16] {
            let (count, cycles) =
                packed_scan_count(&mut m, &col, lo, hi, &(0..threads).collect::<Vec<_>>());
            assert_eq!(count, expected, "{threads} threads");
            assert!(cycles > 0.0);
        }
    }

    #[test]
    fn packing_shrinks_storage_and_scan_bytes() {
        let mut m = machine(Setting::PlainCpu);
        let vals = random_values(64_000, 8, 3);
        let col8 = PackedColumn::pack(&mut m, &vals, 8);
        let col12 = PackedColumn::pack(&mut m, &vals, 12);
        assert!(col8.size_bytes() < col12.size_bytes());
        // 8-bit packing: 8 values/word; 12-bit: 5 values/word.
        assert_eq!(col8.size_bytes(), 64_000 / 8 * 8);
    }

    #[test]
    fn narrower_packing_scans_faster_in_enclave() {
        // The [38] motivation, amplified by the MEE: fewer bytes per value
        // = fewer lines to decrypt = faster enclave scans.
        let mut m = machine(Setting::SgxDataInEnclave);
        let vals: Vec<u32> = random_values(4_000_000, 8, 9);
        let col8 = PackedColumn::pack(&mut m, &vals, 8);
        let col32 = PackedColumn::pack(&mut m, &vals, 32);
        let cores: Vec<usize> = (0..8).collect();
        let (c8, t8) = packed_scan_count(&mut m, &col8, 10, 200, &cores);
        let (c32, t32) = packed_scan_count(&mut m, &col32, 10, 200, &cores);
        assert_eq!(c8, c32);
        assert!(t8 < 0.6 * t32, "8-bit scan should be much faster: {t8} vs {t32}");
    }

    #[test]
    fn scan_subranges_respect_bounds() {
        let mut m = machine(Setting::PlainCpu);
        let vals: Vec<u32> = (0..100).collect();
        let col = PackedColumn::pack(&mut m, &vals, 7);
        m.run(|c| {
            let mut seen = Vec::new();
            let n = col.scan_range(c, 10..20, 0, 127, |_, i| seen.push(i));
            assert_eq!(n, 10);
            assert_eq!(seen, (10..20).collect::<Vec<_>>());
        });
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_oversized_values() {
        let mut m = machine(Setting::PlainCpu);
        PackedColumn::pack(&mut m, &[256], 8);
    }
}
