//! Vectorized column scans (§5.1–§5.3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sgx_sim::{Core, Machine, SimVec};

/// What the scan materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOutput {
    /// One result bit per value, packed into 64-bit words (§5.1: the
    /// read-heavy configuration).
    BitVector,
    /// One 64-bit row index per matching value (§5.3: the write rate is
    /// `8 × selectivity` bytes per byte read).
    Indexes,
}

/// Scan execution parameters.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Hardware cores executing the scan.
    pub cores: Vec<usize>,
    /// Number of times the column is scanned (the paper runs 10 warm-up +
    /// 1000 measured scans for cache-residency experiments).
    pub repeats: usize,
    /// Untimed warm-up scans beforehand.
    pub warmup: usize,
}

impl ScanConfig {
    /// `threads` cores on socket 0, one measured pass, no warm-up.
    pub fn new(threads: usize) -> ScanConfig {
        ScanConfig { cores: (0..threads).collect(), repeats: 1, warmup: 0 }
    }

    /// Builder-style: measured repeats.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    /// Builder-style: warm-up passes.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Builder-style: explicit core pinning.
    pub fn on_cores(mut self, cores: Vec<usize>) -> Self {
        self.cores = cores;
        self
    }
}

/// Result of a scan benchmark.
#[derive(Debug, Clone)]
pub struct ScanStats {
    /// Simulated wall cycles of the measured repeats.
    pub cycles: f64,
    /// Matching values per pass.
    pub matches: u64,
    /// Bytes read per pass (column size).
    pub bytes_read: u64,
    /// Measured repeats.
    pub repeats: usize,
}

impl ScanStats {
    /// Effective read throughput in GB/s at the given clock.
    pub fn gb_per_sec(&self, freq_ghz: f64) -> f64 {
        let total = self.bytes_read as f64 * self.repeats as f64;
        total / (self.cycles / (freq_ghz * 1e9)) / 1e9
    }
}

/// Generate a column of `n` uniform byte values.
pub fn gen_column(machine: &mut Machine, n: usize, seed: u64) -> SimVec<u8> {
    let mut col = machine.alloc::<u8>(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        col.poke(i, rng.random::<u8>());
    }
    col
}

/// One worker's share of a bitvector scan: 64 values per AVX-512 step,
/// two compares and a mask-AND, one 64-bit mask store per step.
fn scan_bitvector_range(
    c: &mut Core<'_>,
    col: &SimVec<u8>,
    range: std::ops::Range<usize>,
    lo: u8,
    hi: u8,
    bits: &mut SimVec<u64>,
) -> u64 {
    debug_assert_eq!(range.start % 64, 0, "worker ranges are 64-aligned");
    let mut matches = 0u64;
    let mut writer = bits.stream_writer(range.start / 64);
    let mut mask = 0u64;
    let mut fill = 0u32;
    col.read_stream_vec(c, range, |c, _, vals| {
        // VPCMPUB x2 + KAND on a 64-byte vector.
        c.vec_compute(3);
        for &v in vals {
            if v >= lo && v <= hi {
                mask |= 1 << fill;
                matches += 1;
            }
            fill += 1;
            if fill == 64 {
                writer.push(c, mask);
                mask = 0;
                fill = 0;
            }
        }
    });
    if fill > 0 {
        writer.push(c, mask);
    }
    matches
}

/// One worker's share of an index-materializing scan: compress-store the
/// row ids of matching values (VPCOMPRESSQ), making the write volume
/// proportional to selectivity.
fn scan_indexes_range(
    c: &mut Core<'_>,
    col: &SimVec<u8>,
    range: std::ops::Range<usize>,
    lo: u8,
    hi: u8,
    out: &mut SimVec<u64>,
    out_start: usize,
) -> u64 {
    let mut matches = 0u64;
    let mut writer = out.stream_writer(out_start);
    col.read_stream_vec(c, range, |c, base, vals| {
        // Compare + 8 compress-stores (64 u8 lanes → 8 × 8 u64 lanes).
        c.vec_compute(10);
        for (k, &v) in vals.iter().enumerate() {
            if v >= lo && v <= hi {
                writer.push(c, (base + k) as u64);
                matches += 1;
            }
        }
    });
    matches
}

/// Run a multi-threaded column scan with predicate `lo <= v <= hi`.
/// Output storage is allocated in the machine's default data region; only
/// the measured repeats advance the wall clock.
pub fn column_scan(
    machine: &mut Machine,
    col: &SimVec<u8>,
    lo: u8,
    hi: u8,
    output: ScanOutput,
    cfg: &ScanConfig,
) -> ScanStats {
    let t = cfg.cores.len();
    let n = col.len();
    // 64-aligned worker chunks.
    let chunk = |w: usize| -> std::ops::Range<usize> {
        let per = n.div_ceil(t).div_ceil(64) * 64;
        let start = (w * per).min(n);
        start..((w + 1) * per).min(n)
    };
    let mut bits = machine.alloc::<u64>(n.div_ceil(64));
    let mut indexes = machine.alloc::<u64>(n);
    let mut matches = 0u64;

    let mut pass = |machine: &mut Machine, count: &mut u64| {
        machine.parallel(&cfg.cores, |c| {
            let w = c.worker();
            let range = chunk(w);
            if range.is_empty() {
                return;
            }
            *count += match output {
                ScanOutput::BitVector => {
                    scan_bitvector_range(c, col, range, lo, hi, &mut bits)
                }
                ScanOutput::Indexes => {
                    let start = range.start;
                    scan_indexes_range(c, col, range, lo, hi, &mut indexes, start)
                }
            };
        });
    };

    for _ in 0..cfg.warmup {
        let mut scratch = 0u64;
        pass(machine, &mut scratch);
    }
    machine.reset_wall();
    let start = machine.wall_cycles();
    // Only the measured passes carry the "scan" profile scope; warm-up
    // work above stays unscoped, mirroring the wall-clock accounting.
    let _scan_scope = machine.phase("scan");
    for rep in 0..cfg.repeats {
        let mut count = 0u64;
        pass(machine, &mut count);
        if rep == 0 {
            matches = count;
        }
    }
    ScanStats {
        cycles: machine.wall_cycles() - start,
        matches,
        bytes_read: n as u64,
        repeats: cfg.repeats.max(1),
    }
}

/// Uncharged reference filter for verification.
pub fn reference_filter(col: &SimVec<u8>, lo: u8, hi: u8) -> Vec<u64> {
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    col.as_slice_untracked()
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= lo && v <= hi)
        .map(|(i, _)| i as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    #[test]
    fn bitvector_scan_counts_correctly() {
        let mut m = machine(Setting::PlainCpu);
        let col = gen_column(&mut m, 100_000, 1);
        let expected = reference_filter(&col, 50, 150).len() as u64;
        for threads in [1, 4, 16] {
            let stats =
                column_scan(&mut m, &col, 50, 150, ScanOutput::BitVector, &ScanConfig::new(threads));
            assert_eq!(stats.matches, expected, "{threads} threads");
        }
    }

    #[test]
    fn index_scan_materializes_matches() {
        let mut m = machine(Setting::PlainCpu);
        let col = gen_column(&mut m, 50_000, 2);
        let expected = reference_filter(&col, 0, 127).len() as u64;
        let stats =
            column_scan(&mut m, &col, 0, 127, ScanOutput::Indexes, &ScanConfig::new(8));
        assert_eq!(stats.matches, expected);
        // ~50% selectivity on uniform bytes.
        let sel = stats.matches as f64 / 50_000.0;
        assert!((0.45..0.55).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn selectivity_extremes() {
        let mut m = machine(Setting::PlainCpu);
        let col = gen_column(&mut m, 10_000, 3);
        let none = column_scan(&mut m, &col, 10, 9, ScanOutput::Indexes, &ScanConfig::new(2));
        assert_eq!(none.matches, 0);
        let all = column_scan(&mut m, &col, 0, 255, ScanOutput::Indexes, &ScanConfig::new(2));
        assert_eq!(all.matches, 10_000);
    }

    #[test]
    fn enclave_scan_overhead_is_small() {
        // §5.1/Fig 12: out-of-cache scans lose only ~3 % inside the
        // enclave.
        let run = |setting: Setting| {
            let mut m = machine(setting);
            let col = gen_column(&mut m, 8 << 20, 4); // 8 MB >> scaled L3
            let stats = column_scan(
                &mut m,
                &col,
                32,
                96,
                ScanOutput::BitVector,
                &ScanConfig::new(1).with_warmup(1),
            );
            stats.cycles
        };
        let native = run(Setting::PlainCpu);
        let enclave = run(Setting::SgxDataInEnclave);
        let overhead = enclave / native - 1.0;
        assert!(
            (0.0..0.10).contains(&overhead),
            "scan overhead should be a few percent, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn in_cache_scan_at_parity_and_faster() {
        let run = |setting: Setting, n: usize| {
            let mut m = machine(setting);
            let col = gen_column(&mut m, n, 5);
            column_scan(
                &mut m,
                &col,
                32,
                96,
                ScanOutput::BitVector,
                &ScanConfig::new(1).with_warmup(2).with_repeats(10),
            )
        };
        // 32 KB fits the scaled L2 (80 KB).
        let small_native = run(Setting::PlainCpu, 32 << 10);
        let small_enclave = run(Setting::SgxDataInEnclave, 32 << 10);
        let rel = small_enclave.cycles / small_native.cycles;
        assert!(rel < 1.02, "in-cache scan should be at parity, got {rel:.3}");
        // And much faster per byte than the DRAM-sized scan.
        let big_native = run(Setting::PlainCpu, 8 << 20);
        let small_rate = small_native.gb_per_sec(2.9);
        let big_rate = big_native.gb_per_sec(2.9);
        assert!(small_rate > 1.5 * big_rate, "cache {small_rate} vs dram {big_rate}");
    }

    #[test]
    fn thread_scaling_saturates_bandwidth() {
        // Fig 13: scan throughput scales with threads until the memory
        // bandwidth cap, identically in and out of the enclave.
        let run = |setting: Setting, threads: usize| {
            let mut m = machine(setting);
            let col = gen_column(&mut m, 16 << 20, 6);
            column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(threads))
                .gb_per_sec(2.9)
        };
        let t1 = run(Setting::PlainCpu, 1);
        let t4 = run(Setting::PlainCpu, 4);
        let t16 = run(Setting::PlainCpu, 16);
        assert!(t4 > 3.0 * t1, "near-linear early scaling: {t1} -> {t4}");
        assert!(t16 < 16.0 * t1 * 0.9, "saturation at high threads: {t16} vs {t1}");
        let e16 = run(Setting::SgxDataInEnclave, 16);
        assert!(e16 / t16 > 0.9, "enclave scaling should match: {e16} vs {t16}");
    }

    #[test]
    fn higher_write_rate_does_not_widen_enclave_gap() {
        // Fig 14: increasing selectivity (write rate) does not increase
        // the relative enclave overhead.
        let gap = |sel_hi: u8| {
            let run = |setting: Setting| {
                let mut m = machine(setting);
                let col = gen_column(&mut m, 4 << 20, 7);
                column_scan(&mut m, &col, 0, sel_hi, ScanOutput::Indexes, &ScanConfig::new(8))
                    .cycles
            };
            run(Setting::SgxDataInEnclave) / run(Setting::PlainCpu)
        };
        let low = gap(25); // ~10% selectivity
        let high = gap(255); // 100% selectivity
        assert!(
            high <= low * 1.05,
            "write-heavy scan gap {high:.3} should not exceed read-heavy {low:.3}"
        );
    }
}
