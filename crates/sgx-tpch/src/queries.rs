//! The four TPC-H queries of §6 (Fig 17), simplified exactly as the paper
//! describes: scans + RHO joins, integer-encoded dates/categories, full
//! materialization between operators, final aggregation replaced by
//! `count(*)`.

use crate::gen::{
    date, TpchDb, FLAG_R, INSTRUCT_DELIVER_IN_PERSON, MODE_AIR, MODE_AIR_REG, MODE_MAIL,
    MODE_SHIP, SEG_BUILDING,
};
use crate::ops::{for_each_join_tuple, retuple, select_rows, Payload};
use sgx_joins::rho::rho_join;
use sgx_joins::{JoinConfig, JoinStats, Row};
use sgx_sim::{Machine, SimVec};

/// Query identifiers of the paper's workload. Ordered/hashable so
/// service layers can key per-class tables (latency histograms, cost
/// tables) on the query class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// Shipping priority (customer ⋈ orders ⋈ lineitem).
    Q3,
    /// Returned items (customer ⋈ orders ⋈ lineitem ⋈ nation).
    Q10,
    /// Shipping modes (orders ⋈ lineitem).
    Q12,
    /// Discounted revenue (part ⋈ lineitem, disjunctive predicate).
    Q19,
}

impl Query {
    /// All four queries in the paper's order.
    pub fn all() -> [Query; 4] {
        [Query::Q3, Query::Q10, Query::Q12, Query::Q19]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Query::Q3 => "Q3",
            Query::Q10 => "Q10",
            Query::Q12 => "Q12",
            Query::Q19 => "Q19",
        }
    }
}

/// Query execution parameters.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Hardware cores (the paper uses all 16 cores of one socket).
    pub cores: Vec<usize>,
    /// Apply the §4.2 unroll-and-reorder optimization inside the joins.
    pub optimized: bool,
}

impl QueryConfig {
    /// `threads` cores on socket 0.
    pub fn new(threads: usize) -> QueryConfig {
        QueryConfig { cores: (0..threads).collect(), optimized: false }
    }

    /// Builder-style: enable the join optimization.
    pub fn with_optimization(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The `count(*)` result.
    pub count: u64,
    /// Total simulated wall cycles.
    pub wall_cycles: f64,
    /// Per-operator wall cycles in plan order.
    pub ops: Vec<(&'static str, f64)>,
}

/// Run one query against the database.
pub fn run_query(machine: &mut Machine, db: &TpchDb, q: Query, cfg: &QueryConfig) -> QueryStats {
    match q {
        Query::Q3 => q3(machine, db, cfg),
        Query::Q10 => q10(machine, db, cfg),
        Query::Q12 => q12(machine, db, cfg),
        Query::Q19 => q19(machine, db, cfg),
    }
}

/// RHO join sized for the build side, materializing unless `count_only`.
/// Shared with the stepped service plans in [`crate::service`] so both
/// execution styles price the join identically.
pub(crate) fn join(
    machine: &mut Machine,
    build: &SimVec<Row>,
    probe: &SimVec<Row>,
    cfg: &QueryConfig,
    count_only: bool,
) -> JoinStats {
    let bits = JoinConfig::auto_radix_bits(build.size_bytes().max(64), machine.cfg().l2.size);
    let jcfg = JoinConfig::new(cfg.cores.len())
        .on_cores(cfg.cores.clone())
        .with_radix_bits(bits)
        .with_optimization(cfg.optimized)
        .with_materialization(!count_only);
    rho_join(machine, build, probe, &jcfg)
}

/// TPC-H Q3 (simplified): `count(*)` of
/// customer(BUILDING) ⋈ orders(o_orderdate < 1995-03-15)
/// ⋈ lineitem(l_shipdate > 1995-03-15).
pub fn q3(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let cutoff = date(1995, 3, 15);
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    // Each plan operator runs under a profile scope named like its `ops`
    // entry, so `--profile` yields a per-operator cycle breakdown.
    let scope = machine.phase("sel customer");
    let (cust, t) = select_rows(
        machine,
        cores,
        &[&db.customer.mktsegment],
        &db.customer.custkey,
        Payload::RowIndex,
        &|i| db.customer.mktsegment.peek(i) == SEG_BUILDING,
    );
    drop(scope);
    ops.push(("sel customer", t));

    let scope = machine.phase("sel orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderdate],
        &db.orders.custkey,
        Payload::Col(&db.orders.orderkey),
        &|i| db.orders.orderdate.peek(i) < cutoff,
    );
    drop(scope);
    ops.push(("sel orders", t));

    let scope = machine.phase("join c⋈o");
    let j1 = join(machine, &cust, &orders, cfg, false);
    drop(scope);
    ops.push(("join c⋈o", j1.wall_cycles));
    // sgx-lint: allow(panic-in-library) join() always materializes when asked; a None output is a simulator bug, not an input condition
    let jt1 = j1.output.expect("materializing join returns output");
    let scope = machine.phase("reshape");
    let (co, t) = retuple(machine, cores, &jt1, &j1.output_runs, &|t| Row {
        key: t.s_payload,
        payload: t.s_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipdate],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| db.lineitem.shipdate.peek(i) > cutoff,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join co⋈l");
    let j2 = join(machine, &co, &line, cfg, true);
    drop(scope);
    ops.push(("join co⋈l", j2.wall_cycles));

    QueryStats { count: j2.matches, wall_cycles: machine.wall_cycles() - start, ops }
}

/// TPC-H Q10 (simplified): `count(*)` of
/// customer ⋈ orders(one quarter) ⋈ lineitem(R) ⋈ nation.
pub fn q10(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("scan customer");
    let (cust, t) = select_rows(
        machine,
        cores,
        &[&db.customer.custkey],
        &db.customer.custkey,
        Payload::Col(&db.customer.nationkey),
        &|_| true,
    );
    drop(scope);
    ops.push(("scan customer", t));

    let scope = machine.phase("sel orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderdate],
        &db.orders.custkey,
        Payload::Col(&db.orders.orderkey),
        &|i| {
            let d = db.orders.orderdate.peek(i);
            d >= lo && d < hi
        },
    );
    drop(scope);
    ops.push(("sel orders", t));

    let scope = machine.phase("join c⋈o");
    let j1 = join(machine, &cust, &orders, cfg, false);
    drop(scope);
    ops.push(("join c⋈o", j1.wall_cycles));
    // sgx-lint: allow(panic-in-library) join() always materializes when asked; a None output is a simulator bug, not an input condition
    let jt1 = j1.output.expect("materializing join returns output");
    // key: orderkey, payload: the customer's nationkey.
    let scope = machine.phase("reshape");
    let (co, t) = retuple(machine, cores, &jt1, &j1.output_runs, &|t| Row {
        key: t.s_payload,
        payload: t.r_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.returnflag],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| db.lineitem.returnflag.peek(i) == FLAG_R,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join co⋈l");
    let j2 = join(machine, &co, &line, cfg, false);
    drop(scope);
    ops.push(("join co⋈l", j2.wall_cycles));
    // sgx-lint: allow(panic-in-library) join() always materializes when asked; a None output is a simulator bug, not an input condition
    let jt2 = j2.output.expect("materializing join returns output");
    // key: nationkey carried from the customer side.
    let scope = machine.phase("reshape");
    let (col, t) = retuple(machine, cores, &jt2, &j2.output_runs, &|t| Row {
        key: t.r_payload,
        payload: t.s_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("scan nation");
    let (nation, t) = select_rows(
        machine,
        cores,
        &[&db.nation.nationkey],
        &db.nation.nationkey,
        Payload::RowIndex,
        &|_| true,
    );
    drop(scope);
    ops.push(("scan nation", t));

    let scope = machine.phase("join ⋈n");
    let j3 = join(machine, &nation, &col, cfg, true);
    drop(scope);
    ops.push(("join ⋈n", j3.wall_cycles));

    QueryStats { count: j3.matches, wall_cycles: machine.wall_cycles() - start, ops }
}

/// Q12 lineitem predicate (shared with the reference count).
pub fn q12_line_pred(db: &TpchDb, i: usize) -> bool {
    let mode = db.lineitem.shipmode.peek(i);
    (mode == MODE_MAIL || mode == MODE_SHIP)
        && db.lineitem.commitdate.peek(i) < db.lineitem.receiptdate.peek(i)
        && db.lineitem.shipdate.peek(i) < db.lineitem.commitdate.peek(i)
        && db.lineitem.receiptdate.peek(i) >= date(1994, 1, 1)
        && db.lineitem.receiptdate.peek(i) < date(1995, 1, 1)
}

/// TPC-H Q12 (simplified): `count(*)` of orders ⋈ lineitem(MAIL/SHIP,
/// consistent dates, received in 1994).
pub fn q12(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("scan orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderkey],
        &db.orders.orderkey,
        Payload::RowIndex,
        &|_| true,
    );
    drop(scope);
    ops.push(("scan orders", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[
            &db.lineitem.shipmode,
            &db.lineitem.commitdate,
            &db.lineitem.receiptdate,
            &db.lineitem.shipdate,
        ],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| q12_line_pred(db, i),
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join o⋈l");
    let j = join(machine, &orders, &line, cfg, true);
    drop(scope);
    ops.push(("join o⋈l", j.wall_cycles));

    QueryStats { count: j.matches, wall_cycles: machine.wall_cycles() - start, ops }
}

/// Q19's three disjuncts: `(brand, container class, quantity range,
/// max size)`. Containers are encoded in decades: SM = 0..5, MED = 10..15,
/// LG = 20..25.
const Q19_DISJUNCTS: [(i32, i32, (i32, i32), i32); 3] =
    [(1, 0, (1, 11), 5), (12, 10, (10, 20), 10), (13, 20, (20, 30), 15)];

/// Part-side pre-filter for Q19 (union over disjuncts).
pub fn q19_part_pred(db: &TpchDb, i: usize) -> bool {
    let brand = db.part.brand.peek(i);
    let cont = db.part.container.peek(i);
    let size = db.part.size.peek(i);
    Q19_DISJUNCTS.iter().any(|&(b, c0, _, smax)| {
        brand == b && (c0..c0 + 5).contains(&cont) && (1..=smax).contains(&size)
    })
}

/// Lineitem-side pre-filter for Q19.
pub fn q19_line_pred(db: &TpchDb, i: usize) -> bool {
    let mode = db.lineitem.shipmode.peek(i);
    (mode == MODE_AIR || mode == MODE_AIR_REG)
        && db.lineitem.shipinstruct.peek(i) == INSTRUCT_DELIVER_IN_PERSON
        && (1..=30).contains(&db.lineitem.quantity.peek(i))
}

/// The full joint predicate evaluated after the join (both sides' columns).
pub fn q19_joint_pred(db: &TpchDb, part_idx: usize, line_idx: usize) -> bool {
    let brand = db.part.brand.peek(part_idx);
    let cont = db.part.container.peek(part_idx);
    let size = db.part.size.peek(part_idx);
    let qty = db.lineitem.quantity.peek(line_idx);
    Q19_DISJUNCTS.iter().any(|&(b, c0, (qlo, qhi), smax)| {
        brand == b
            && (c0..c0 + 5).contains(&cont)
            && (1..=smax).contains(&size)
            && (qlo..=qhi).contains(&qty)
    })
}

/// TPC-H Q19 (simplified): `count(*)` of part ⋈ lineitem under the
/// disjunctive brand/container/quantity predicate, evaluated with
/// pre-filters on both inputs and the exact joint predicate on the join
/// result (late materialization: the post-join pass fetches the original
/// columns by row id).
pub fn q19(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("sel part");
    let (part, t) = select_rows(
        machine,
        cores,
        &[&db.part.brand, &db.part.container, &db.part.size],
        &db.part.partkey,
        Payload::RowIndex,
        &|i| q19_part_pred(db, i),
    );
    drop(scope);
    ops.push(("sel part", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipmode, &db.lineitem.shipinstruct, &db.lineitem.quantity],
        &db.lineitem.partkey,
        Payload::RowIndex,
        &|i| q19_line_pred(db, i),
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join p⋈l");
    let j = join(machine, &part, &line, cfg, false);
    drop(scope);
    ops.push(("join p⋈l", j.wall_cycles));
    // sgx-lint: allow(panic-in-library) join() always materializes when asked; a None output is a simulator bug, not an input condition
    let jt = j.output.expect("materializing join returns output");

    // Post-join disjunct evaluation: gather the part attributes (random
    // reads by row id) and the lineitem quantity for every surviving pair.
    let mut count = 0u64;
    let scope = machine.phase("post filter");
    let t = for_each_join_tuple(machine, cores, &jt, &j.output_runs, |c, tup| {
        let (pi, li) = (tup.r_payload as usize, tup.s_payload as usize);
        let _ = db.part.brand.get(c, pi);
        let _ = db.lineitem.quantity.get(c, li);
        c.compute(8);
        if q19_joint_pred(db, pi, li) {
            count += 1;
        }
    });
    drop(scope);
    ops.push(("post filter", t));

    QueryStats { count, wall_cycles: machine.wall_cycles() - start, ops }
}

/// TPC-H Q1-style pricing summary (reproduction extension): scan LINEITEM
/// with the shipdate predicate and aggregate `count(*)` grouped by
/// `(returnflag, shipmode)` — the aggregation operator the paper's
/// simplification elides. Returns the per-group counts alongside the
/// timing; the group id is `returnflag * 8 + shipmode` (32 radix groups).
pub fn q1_pricing_summary(
    machine: &mut Machine,
    db: &TpchDb,
    cfg: &QueryConfig,
) -> (QueryStats, Vec<u64>) {
    let cores = &cfg.cores;
    let cutoff = date(1998, 9, 2);
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    // Materialize group ids for qualifying rows: key = group id.
    let n = db.lineitem_len();
    let mut group_col = machine.alloc::<i32>(n);
    for i in 0..n {
        group_col.poke(i, db.lineitem.returnflag.peek(i) * 8 + db.lineitem.shipmode.peek(i));
    }
    let scope = machine.phase("sel lineitem");
    let (rows, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipdate],
        &group_col,
        Payload::RowIndex,
        &|i| db.lineitem.shipdate.peek(i) <= cutoff,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("group count");
    let agg = crate::aggregate::group_count(machine, cores, &rows, 32, cfg.optimized);
    drop(scope);
    ops.push(("group count", agg.cycles));

    let total: u64 = agg.counts.iter().sum();
    (
        QueryStats { count: total, wall_cycles: machine.wall_cycles() - start, ops },
        agg.counts,
    )
}

/// TPC-H Q6-style forecasting revenue query (reproduction extension): a
/// pure scan — no join — counting lineitems shipped in 1994 with a
/// discount of 5–7 % and quantity below 24. End to end it demonstrates the
/// paper's §6 observation that "scan & selection performance is very
/// similar across settings".
pub fn q6_forecast_revenue(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
    let start = machine.wall_cycles();
    machine.ecall();
    let scope = machine.phase("sel lineitem");
    let (rows, t) = select_rows(
        machine,
        &cfg.cores,
        &[&db.lineitem.shipdate, &db.lineitem.discount, &db.lineitem.quantity],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| {
            let d = db.lineitem.shipdate.peek(i);
            d >= lo
                && d < hi
                && (5..=7).contains(&db.lineitem.discount.peek(i))
                && db.lineitem.quantity.peek(i) < 24
        },
    );
    drop(scope);
    QueryStats {
        count: rows.len() as u64,
        wall_cycles: machine.wall_cycles() - start,
        ops: vec![("sel lineitem", t)],
    }
}

/// Uncharged reference for [`q6_forecast_revenue`].
pub fn reference_q6(db: &TpchDb) -> u64 {
    let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
    (0..db.lineitem_len())
        .filter(|&i| {
            let d = db.lineitem.shipdate.peek(i);
            d >= lo
                && d < hi
                && (5..=7).contains(&db.lineitem.discount.peek(i))
                && db.lineitem.quantity.peek(i) < 24
        })
        .count() as u64
}

/// Uncharged reference for [`q1_pricing_summary`]'s per-group counts.
pub fn reference_q1(db: &TpchDb) -> Vec<u64> {
    let cutoff = date(1998, 9, 2);
    let mut counts = vec![0u64; 32];
    for i in 0..db.lineitem_len() {
        if db.lineitem.shipdate.peek(i) <= cutoff {
            let g = db.lineitem.returnflag.peek(i) * 8 + db.lineitem.shipmode.peek(i);
            counts[g as usize] += 1;
        }
    }
    counts
}

/// Uncharged reference counts for all four queries (tests).
pub fn reference_count(db: &TpchDb, q: Query) -> u64 {
    use std::collections::{BTreeMap, BTreeSet};
    match q {
        Query::Q3 => {
            let cutoff = date(1995, 3, 15);
            let building: BTreeSet<i32> = (0..db.customer.custkey.len())
                .filter(|&i| db.customer.mktsegment.peek(i) == SEG_BUILDING)
                .map(|i| db.customer.custkey.peek(i))
                .collect();
            let orders: BTreeSet<i32> = (0..db.orders.orderkey.len())
                .filter(|&i| {
                    db.orders.orderdate.peek(i) < cutoff
                        && building.contains(&db.orders.custkey.peek(i))
                })
                .map(|i| db.orders.orderkey.peek(i))
                .collect();
            (0..db.lineitem_len())
                .filter(|&i| {
                    db.lineitem.shipdate.peek(i) > cutoff
                        && orders.contains(&db.lineitem.orderkey.peek(i))
                })
                .count() as u64
        }
        Query::Q10 => {
            let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
            let nation_of_cust: BTreeMap<i32, i32> = (0..db.customer.custkey.len())
                .map(|i| (db.customer.custkey.peek(i), db.customer.nationkey.peek(i)))
                .collect();
            let orders: BTreeSet<i32> = (0..db.orders.orderkey.len())
                .filter(|&i| {
                    let d = db.orders.orderdate.peek(i);
                    d >= lo
                        && d < hi
                        && nation_of_cust.contains_key(&db.orders.custkey.peek(i))
                })
                .map(|i| db.orders.orderkey.peek(i))
                .collect();
            (0..db.lineitem_len())
                .filter(|&i| {
                    db.lineitem.returnflag.peek(i) == FLAG_R
                        && orders.contains(&db.lineitem.orderkey.peek(i))
                })
                .count() as u64
        }
        Query::Q12 => (0..db.lineitem_len()).filter(|&i| q12_line_pred(db, i)).count() as u64,
        Query::Q19 => (0..db.lineitem_len())
            .filter(|&i| {
                q19_line_pred(db, i)
                    && q19_joint_pred(db, db.lineitem.partkey.peek(i) as usize - 1, i)
            })
            .count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;


    fn setup(sf: f64) -> (Machine, TpchDb) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let db = generate(&mut m, sf, 42);
        (m, db)
    }

    #[test]
    fn all_queries_match_reference_counts() {
        let (mut m, db) = setup(0.005);
        for q in Query::all() {
            let stats = run_query(&mut m, &db, q, &QueryConfig::new(4));
            let expected = reference_count(&db, q);
            assert_eq!(stats.count, expected, "{} count", q.label());
            assert!(stats.wall_cycles > 0.0);
            if q != Query::Q19 {
                // Q19's disjunctive predicate is legitimately ultra
                // selective (a handful of rows per unit scale factor).
                assert!(expected > 0, "{} reference should be non-trivial", q.label());
            }
        }
    }

    #[test]
    fn q19_returns_rows_at_larger_scale() {
        let (mut m, db) = setup(0.08);
        let stats = run_query(&mut m, &db, Query::Q19, &QueryConfig::new(8));
        assert_eq!(stats.count, reference_count(&db, Query::Q19));
        assert!(stats.count > 0, "Q19 should match some rows at SF 0.08");
    }

    #[test]
    fn optimization_does_not_change_results() {
        let (mut m, db) = setup(0.005);
        for q in Query::all() {
            let plain = run_query(&mut m, &db, q, &QueryConfig::new(4));
            let opt = run_query(&mut m, &db, q, &QueryConfig::new(4).with_optimization(true));
            assert_eq!(plain.count, opt.count, "{}", q.label());
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let (mut m, db) = setup(0.003);
        for q in Query::all() {
            let one = run_query(&mut m, &db, q, &QueryConfig::new(1));
            let many = run_query(&mut m, &db, q, &QueryConfig::new(8));
            assert_eq!(one.count, many.count, "{}", q.label());
            assert!(
                many.wall_cycles < one.wall_cycles,
                "{} should speed up with threads",
                q.label()
            );
        }
    }

    #[test]
    fn enclave_overhead_shrinks_with_optimization() {
        // Fig 17: the optimization reduces the enclave-vs-native gap.
        let run = |setting: Setting, optimized: bool| {
            let mut m = Machine::new(scaled_profile(), setting);
            let db = generate(&mut m, 0.01, 42);
            let mut total = 0.0;
            for q in Query::all() {
                total +=
                    run_query(&mut m, &db, q, &QueryConfig::new(8).with_optimization(optimized))
                        .wall_cycles;
            }
            total
        };
        let native = run(Setting::PlainCpu, false);
        let sgx_plain = run(Setting::SgxDataInEnclave, false);
        let sgx_opt = run(Setting::SgxDataInEnclave, true);
        assert!(sgx_plain > native, "queries should cost more in the enclave");
        assert!(sgx_opt < sgx_plain, "optimization should help in the enclave");
        let gap_plain = sgx_plain / native - 1.0;
        let gap_opt = sgx_opt / native - 1.0;
        assert!(
            gap_opt < gap_plain,
            "optimized gap {gap_opt:.3} should undercut plain gap {gap_plain:.3}"
        );
    }

    #[test]
    fn q6_extension_matches_reference_and_scans_at_parity() {
        let (mut m, db) = setup(0.01);
        let stats = q6_forecast_revenue(&mut m, &db, &QueryConfig::new(8));
        assert_eq!(stats.count, reference_q6(&db));
        assert!(stats.count > 0);
        // Pure-scan query: the enclave overhead stays in single digits.
        // (SF large enough that the fixed ECALL cost does not dominate.)
        let run = |setting: Setting| {
            let mut m = Machine::new(scaled_profile(), setting);
            let db = generate(&mut m, 0.08, 42);
            m.reset_wall();
            q6_forecast_revenue(&mut m, &db, &QueryConfig::new(8)).wall_cycles
        };
        let native = run(Setting::PlainCpu);
        let sgx = run(Setting::SgxDataInEnclave);
        let overhead = sgx / native - 1.0;
        assert!(
            overhead < 0.12,
            "scan-only query should be near parity, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn q1_extension_matches_reference() {
        let (mut m, db) = setup(0.005);
        for optimized in [false, true] {
            let (stats, counts) = q1_pricing_summary(
                &mut m,
                &db,
                &QueryConfig::new(4).with_optimization(optimized),
            );
            assert_eq!(counts, reference_q1(&db), "optimized={optimized}");
            assert_eq!(stats.count, counts.iter().sum::<u64>());
            // returnflag 0..3 x shipmode 0..7 => only ids < 24 populated.
            assert!(counts[24..].iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn query_ops_breakdown_present() {
        let (mut m, db) = setup(0.003);
        let stats = q3(&mut m, &db, &QueryConfig::new(2));
        let names: Vec<&str> = stats.ops.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"sel customer"));
        assert!(names.contains(&"join c⋈o"));
        let op_sum: f64 = stats.ops.iter().map(|(_, c)| c).sum();
        assert!(op_sum <= stats.wall_cycles * 1.01);
    }
}
