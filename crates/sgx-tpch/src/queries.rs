//! The four TPC-H queries of §6 (Fig 17), simplified as the paper
//! describes: scans + RHO joins, integer-encoded dates/categories, full
//! materialization between operators. Q12/Q19 keep the paper's
//! `count(*)` materialization; Q3 and Q10 go further (ROADMAP item 3)
//! and run the plan tail the paper elides — grouped revenue aggregation
//! and an ordered (top-k) result through the external merge sort.

use crate::aggregate::group_sum_tuples;
use crate::gen::{
    date, TpchDb, FLAG_R, INSTRUCT_DELIVER_IN_PERSON, MODE_AIR, MODE_AIR_REG, MODE_MAIL,
    MODE_SHIP, SEG_BUILDING,
};
use crate::ops::{for_each_join_tuple, retuple, select_rows, Payload};
use crate::sort::{external_merge_sort, sort_input_from_join, SortRow};
use sgx_joins::rho::rho_join;
use sgx_joins::{JoinConfig, JoinStats, JoinTuple, Row};
use sgx_sim::{Machine, SimVec};

/// Rows Q3's ORDER BY … LIMIT keeps (the TPC-H spec's top 10).
pub const Q3_TOP_K: usize = 10;

/// Query identifiers of the paper's workload. Ordered/hashable so
/// service layers can key per-class tables (latency histograms, cost
/// tables) on the query class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// Shipping priority (customer ⋈ orders ⋈ lineitem).
    Q3,
    /// Returned items (customer ⋈ orders ⋈ lineitem ⋈ nation).
    Q10,
    /// Shipping modes (orders ⋈ lineitem).
    Q12,
    /// Discounted revenue (part ⋈ lineitem, disjunctive predicate).
    Q19,
}

impl Query {
    /// All four queries in the paper's order.
    pub fn all() -> [Query; 4] {
        [Query::Q3, Query::Q10, Query::Q12, Query::Q19]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Query::Q3 => "Q3",
            Query::Q10 => "Q10",
            Query::Q12 => "Q12",
            Query::Q19 => "Q19",
        }
    }
}

/// Query execution parameters.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Hardware cores (the paper uses all 16 cores of one socket).
    pub cores: Vec<usize>,
    /// Apply the §4.2 unroll-and-reorder optimization inside the joins.
    pub optimized: bool,
}

impl QueryConfig {
    /// `threads` cores on socket 0.
    pub fn new(threads: usize) -> QueryConfig {
        QueryConfig { cores: (0..threads).collect(), optimized: false }
    }

    /// Builder-style: enable the join optimization.
    pub fn with_optimization(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Join-result cardinality (the paper's `count(*)` figure, still
    /// reported by every plan).
    pub count: u64,
    /// The real grouped + ordered output, where the plan produces one:
    /// Q3 = top-[`Q3_TOP_K`] `(orderkey, revenue)` by revenue desc;
    /// Q10 = all `(nationkey, revenue)` by revenue desc. Empty for the
    /// count-only plans (Q12, Q19, extensions).
    pub grouped: Vec<(u32, u64)>,
    /// Total simulated wall cycles.
    pub wall_cycles: f64,
    /// Per-operator wall cycles in plan order.
    pub ops: Vec<(&'static str, f64)>,
}

/// Run one query against the database.
pub fn run_query(machine: &mut Machine, db: &TpchDb, q: Query, cfg: &QueryConfig) -> QueryStats {
    match q {
        Query::Q3 => q3(machine, db, cfg),
        Query::Q10 => q10(machine, db, cfg),
        Query::Q12 => q12(machine, db, cfg),
        Query::Q19 => q19(machine, db, cfg),
    }
}

/// RHO join sized for the build side, materializing unless `count_only`.
/// Shared with the stepped service plans in [`crate::service`] so both
/// execution styles price the join identically.
pub(crate) fn join(
    machine: &mut Machine,
    build: &SimVec<Row>,
    probe: &SimVec<Row>,
    cfg: &QueryConfig,
    count_only: bool,
) -> JoinStats {
    let bits = JoinConfig::auto_radix_bits(build.size_bytes().max(64), machine.cfg().l2.size);
    let jcfg = JoinConfig::new(cfg.cores.len())
        .on_cores(cfg.cores.clone())
        .with_radix_bits(bits)
        .with_optimization(cfg.optimized)
        .with_materialization(!count_only);
    rho_join(machine, build, probe, &jcfg)
}

/// The materialized tuple table of a join executed with
/// `count_only = false`. One checked accessor shared by every plan
/// (monolithic and stepped) instead of a copy-pasted `expect` per site.
pub(crate) fn materialized_output(j: &JoinStats) -> &SimVec<JoinTuple> {
    // sgx-lint: allow(panic-in-library) join() always materializes when asked; a None output is a simulator bug, not an input condition
    j.output.as_ref().expect("materializing join returns output")
}

/// Per-lineitem revenue term, gathered by row id (charged random reads
/// into the lineitem columns): `extendedprice * (100 - discount)` in
/// fixed-point percent units.
fn gather_revenue(c: &mut sgx_sim::Core, db: &TpchDb, line_idx: usize) -> u64 {
    let price = db.lineitem.extendedprice.get(c, line_idx);
    let disc = db.lineitem.discount.get(c, line_idx);
    c.compute(2);
    price as u64 * (100 - disc) as u64
}

/// Q3 step: order the co⋈l join output by orderkey through the external
/// merge sort (`SortRow { key: orderkey, tag: lineitem row id }`), so
/// the revenue aggregation can run as a streaming per-group fold.
/// Shared with [`crate::service`]'s stepped plan.
pub(crate) fn q3_sort_step(
    machine: &mut Machine,
    cfg: &QueryConfig,
    j2: &JoinStats,
) -> (SimVec<SortRow>, f64) {
    let start = machine.wall_cycles();
    let scope = machine.phase("sort");
    let jt2 = materialized_output(j2);
    let (input, _) = sort_input_from_join(machine, &cfg.cores, jt2, &j2.output_runs, &|t| {
        SortRow { key: u64::from(t.r_payload), tag: t.s_payload }
    });
    let (sorted, _) = external_merge_sort(machine, &cfg.cores, &input, input.len());
    drop(scope);
    (sorted, machine.wall_cycles() - start)
}

/// Q3 step: fold the orderkey-sorted join output into per-order revenue
/// groups. Emits `SortRow { key: !revenue, tag: orderkey }` (bitwise
/// complement, so an ascending sort yields revenue-descending order with
/// orderkey-ascending ties) and returns `(groups, group_count, cycles)`.
pub(crate) fn q3_agg_step(
    machine: &mut Machine,
    db: &TpchDb,
    sorted: &SimVec<SortRow>,
) -> (SimVec<SortRow>, usize, f64) {
    let start = machine.wall_cycles();
    let scope = machine.phase("agg revenue");
    let mut groups = machine.alloc::<SortRow>(sorted.len());
    let mut glen = 0usize;
    machine.run(|c| {
        let mut writer = groups.stream_writer(0);
        let mut cur: Option<u64> = None;
        let mut acc = 0u64;
        sorted.read_stream(c, 0..sorted.len(), |c, _, row| {
            let rev = gather_revenue(c, db, row.tag as usize);
            c.compute(1);
            match cur {
                Some(k) if k == row.key => acc += rev,
                Some(k) => {
                    writer.push(c, SortRow { key: !acc, tag: k as u32 });
                    glen += 1;
                    cur = Some(row.key);
                    acc = rev;
                }
                None => {
                    cur = Some(row.key);
                    acc = rev;
                }
            }
        });
        if let Some(k) = cur {
            writer.push(c, SortRow { key: !acc, tag: k as u32 });
            glen += 1;
        }
    });
    drop(scope);
    (groups, glen, machine.wall_cycles() - start)
}

/// Q3 step: order the revenue groups (external sort again — group count
/// is data-dependent) and stream out the top [`Q3_TOP_K`].
pub(crate) fn q3_topk_step(
    machine: &mut Machine,
    cfg: &QueryConfig,
    groups: &SimVec<SortRow>,
    glen: usize,
) -> (Vec<(u32, u64)>, f64) {
    let start = machine.wall_cycles();
    let scope = machine.phase("top-k");
    let (ordered, _) = external_merge_sort(machine, &cfg.cores, groups, glen);
    let mut top = Vec::with_capacity(Q3_TOP_K.min(glen));
    machine.run(|c| {
        ordered.read_stream(c, 0..Q3_TOP_K.min(glen), |c, _, row| {
            c.compute(1);
            top.push((row.tag, !row.key));
        });
    });
    drop(scope);
    (top, machine.wall_cycles() - start)
}

/// Q10 step: grouped revenue over the ⋈nation join output — group id is
/// the nation row (== nationkey), revenue gathered per lineitem row id.
/// The radix-histogram pattern of §4.2, so `cfg.optimized` batches the
/// counter updates exactly like [`crate::aggregate::group_count`].
pub(crate) fn q10_agg_step(
    machine: &mut Machine,
    db: &TpchDb,
    cfg: &QueryConfig,
    j3: &JoinStats,
) -> (Vec<u64>, f64) {
    let start = machine.wall_cycles();
    let scope = machine.phase("agg revenue");
    let jt3 = materialized_output(j3);
    let agg = group_sum_tuples(
        machine,
        &cfg.cores,
        jt3,
        &j3.output_runs,
        32,
        cfg.optimized,
        &|c, tup| (tup.r_payload as usize, gather_revenue(c, db, tup.s_payload as usize)),
    );
    drop(scope);
    (agg.sums, machine.wall_cycles() - start)
}

/// Q10 step: order the (at most 32) per-nation sums by revenue
/// descending, dropping empty groups.
pub(crate) fn q10_order_step(
    machine: &mut Machine,
    cfg: &QueryConfig,
    sums: &[u64],
) -> (Vec<(u32, u64)>, f64) {
    let start = machine.wall_cycles();
    let scope = machine.phase("order groups");
    let mut groups = machine.alloc::<SortRow>(sums.len());
    let mut glen = 0usize;
    machine.run(|c| {
        let mut writer = groups.stream_writer(0);
        for (g, &s) in sums.iter().enumerate() {
            c.compute(1);
            if s > 0 {
                writer.push(c, SortRow { key: !s, tag: g as u32 });
                glen += 1;
            }
        }
    });
    let (ordered, _) = external_merge_sort(machine, &cfg.cores, &groups, glen);
    let mut out = Vec::with_capacity(glen);
    machine.run(|c| {
        ordered.read_stream(c, 0..glen, |c, _, row| {
            c.compute(1);
            out.push((row.tag, !row.key));
        });
    });
    drop(scope);
    (out, machine.wall_cycles() - start)
}

/// TPC-H Q3 (simplified): `count(*)` of
/// customer(BUILDING) ⋈ orders(o_orderdate < 1995-03-15)
/// ⋈ lineitem(l_shipdate > 1995-03-15).
pub fn q3(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let cutoff = date(1995, 3, 15);
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    // Each plan operator runs under a profile scope named like its `ops`
    // entry, so `--profile` yields a per-operator cycle breakdown.
    let scope = machine.phase("sel customer");
    let (cust, t) = select_rows(
        machine,
        cores,
        &[&db.customer.mktsegment],
        &db.customer.custkey,
        Payload::RowIndex,
        &|i| db.customer.mktsegment.peek(i) == SEG_BUILDING,
    );
    drop(scope);
    ops.push(("sel customer", t));

    let scope = machine.phase("sel orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderdate],
        &db.orders.custkey,
        Payload::Col(&db.orders.orderkey),
        &|i| db.orders.orderdate.peek(i) < cutoff,
    );
    drop(scope);
    ops.push(("sel orders", t));

    let scope = machine.phase("join c⋈o");
    let j1 = join(machine, &cust, &orders, cfg, false);
    drop(scope);
    ops.push(("join c⋈o", j1.wall_cycles));
    let jt1 = materialized_output(&j1);
    let scope = machine.phase("reshape");
    let (co, t) = retuple(machine, cores, jt1, &j1.output_runs, &|t| Row {
        key: t.s_payload,
        payload: t.s_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipdate],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| db.lineitem.shipdate.peek(i) > cutoff,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join co⋈l");
    let j2 = join(machine, &co, &line, cfg, false);
    drop(scope);
    ops.push(("join co⋈l", j2.wall_cycles));

    let (sorted, t) = q3_sort_step(machine, cfg, &j2);
    ops.push(("sort", t));
    let (groups, glen, t) = q3_agg_step(machine, db, &sorted);
    ops.push(("agg revenue", t));
    let (grouped, t) = q3_topk_step(machine, cfg, &groups, glen);
    ops.push(("top-k", t));

    QueryStats { count: j2.matches, grouped, wall_cycles: machine.wall_cycles() - start, ops }
}

/// TPC-H Q10 (simplified): `count(*)` of
/// customer ⋈ orders(one quarter) ⋈ lineitem(R) ⋈ nation.
pub fn q10(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("scan customer");
    let (cust, t) = select_rows(
        machine,
        cores,
        &[&db.customer.custkey],
        &db.customer.custkey,
        Payload::Col(&db.customer.nationkey),
        &|_| true,
    );
    drop(scope);
    ops.push(("scan customer", t));

    let scope = machine.phase("sel orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderdate],
        &db.orders.custkey,
        Payload::Col(&db.orders.orderkey),
        &|i| {
            let d = db.orders.orderdate.peek(i);
            d >= lo && d < hi
        },
    );
    drop(scope);
    ops.push(("sel orders", t));

    let scope = machine.phase("join c⋈o");
    let j1 = join(machine, &cust, &orders, cfg, false);
    drop(scope);
    ops.push(("join c⋈o", j1.wall_cycles));
    let jt1 = materialized_output(&j1);
    // key: orderkey, payload: the customer's nationkey.
    let scope = machine.phase("reshape");
    let (co, t) = retuple(machine, cores, jt1, &j1.output_runs, &|t| Row {
        key: t.s_payload,
        payload: t.r_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.returnflag],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| db.lineitem.returnflag.peek(i) == FLAG_R,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join co⋈l");
    let j2 = join(machine, &co, &line, cfg, false);
    drop(scope);
    ops.push(("join co⋈l", j2.wall_cycles));
    let jt2 = materialized_output(&j2);
    // key: nationkey carried from the customer side.
    let scope = machine.phase("reshape");
    let (col, t) = retuple(machine, cores, jt2, &j2.output_runs, &|t| Row {
        key: t.r_payload,
        payload: t.s_payload,
    });
    drop(scope);
    ops.push(("reshape", t));

    let scope = machine.phase("scan nation");
    let (nation, t) = select_rows(
        machine,
        cores,
        &[&db.nation.nationkey],
        &db.nation.nationkey,
        Payload::RowIndex,
        &|_| true,
    );
    drop(scope);
    ops.push(("scan nation", t));

    let scope = machine.phase("join ⋈n");
    let j3 = join(machine, &nation, &col, cfg, false);
    drop(scope);
    ops.push(("join ⋈n", j3.wall_cycles));

    let (sums, t) = q10_agg_step(machine, db, cfg, &j3);
    ops.push(("agg revenue", t));
    let (grouped, t) = q10_order_step(machine, cfg, &sums);
    ops.push(("order groups", t));

    QueryStats { count: j3.matches, grouped, wall_cycles: machine.wall_cycles() - start, ops }
}

/// Q12 lineitem predicate (shared with the reference count).
pub fn q12_line_pred(db: &TpchDb, i: usize) -> bool {
    let mode = db.lineitem.shipmode.peek(i);
    (mode == MODE_MAIL || mode == MODE_SHIP)
        && db.lineitem.commitdate.peek(i) < db.lineitem.receiptdate.peek(i)
        && db.lineitem.shipdate.peek(i) < db.lineitem.commitdate.peek(i)
        && db.lineitem.receiptdate.peek(i) >= date(1994, 1, 1)
        && db.lineitem.receiptdate.peek(i) < date(1995, 1, 1)
}

/// TPC-H Q12 (simplified): `count(*)` of orders ⋈ lineitem(MAIL/SHIP,
/// consistent dates, received in 1994).
pub fn q12(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("scan orders");
    let (orders, t) = select_rows(
        machine,
        cores,
        &[&db.orders.orderkey],
        &db.orders.orderkey,
        Payload::RowIndex,
        &|_| true,
    );
    drop(scope);
    ops.push(("scan orders", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[
            &db.lineitem.shipmode,
            &db.lineitem.commitdate,
            &db.lineitem.receiptdate,
            &db.lineitem.shipdate,
        ],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| q12_line_pred(db, i),
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join o⋈l");
    let j = join(machine, &orders, &line, cfg, true);
    drop(scope);
    ops.push(("join o⋈l", j.wall_cycles));

    QueryStats {
        count: j.matches,
        grouped: Vec::new(),
        wall_cycles: machine.wall_cycles() - start,
        ops,
    }
}

/// Q19's three disjuncts: `(brand, container class, quantity range,
/// max size)`. Containers are encoded in decades: SM = 0..5, MED = 10..15,
/// LG = 20..25.
const Q19_DISJUNCTS: [(i32, i32, (i32, i32), i32); 3] =
    [(1, 0, (1, 11), 5), (12, 10, (10, 20), 10), (13, 20, (20, 30), 15)];

/// Part-side pre-filter for Q19 (union over disjuncts).
pub fn q19_part_pred(db: &TpchDb, i: usize) -> bool {
    let brand = db.part.brand.peek(i);
    let cont = db.part.container.peek(i);
    let size = db.part.size.peek(i);
    Q19_DISJUNCTS.iter().any(|&(b, c0, _, smax)| {
        brand == b && (c0..c0 + 5).contains(&cont) && (1..=smax).contains(&size)
    })
}

/// Lineitem-side pre-filter for Q19.
pub fn q19_line_pred(db: &TpchDb, i: usize) -> bool {
    let mode = db.lineitem.shipmode.peek(i);
    (mode == MODE_AIR || mode == MODE_AIR_REG)
        && db.lineitem.shipinstruct.peek(i) == INSTRUCT_DELIVER_IN_PERSON
        && (1..=30).contains(&db.lineitem.quantity.peek(i))
}

/// The full joint predicate evaluated after the join (both sides' columns).
pub fn q19_joint_pred(db: &TpchDb, part_idx: usize, line_idx: usize) -> bool {
    let brand = db.part.brand.peek(part_idx);
    let cont = db.part.container.peek(part_idx);
    let size = db.part.size.peek(part_idx);
    let qty = db.lineitem.quantity.peek(line_idx);
    Q19_DISJUNCTS.iter().any(|&(b, c0, (qlo, qhi), smax)| {
        brand == b
            && (c0..c0 + 5).contains(&cont)
            && (1..=smax).contains(&size)
            && (qlo..=qhi).contains(&qty)
    })
}

/// TPC-H Q19 (simplified): `count(*)` of part ⋈ lineitem under the
/// disjunctive brand/container/quantity predicate, evaluated with
/// pre-filters on both inputs and the exact joint predicate on the join
/// result (late materialization: the post-join pass fetches the original
/// columns by row id).
pub fn q19(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let cores = &cfg.cores;
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    let scope = machine.phase("sel part");
    let (part, t) = select_rows(
        machine,
        cores,
        &[&db.part.brand, &db.part.container, &db.part.size],
        &db.part.partkey,
        Payload::RowIndex,
        &|i| q19_part_pred(db, i),
    );
    drop(scope);
    ops.push(("sel part", t));

    let scope = machine.phase("sel lineitem");
    let (line, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipmode, &db.lineitem.shipinstruct, &db.lineitem.quantity],
        &db.lineitem.partkey,
        Payload::RowIndex,
        &|i| q19_line_pred(db, i),
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("join p⋈l");
    let j = join(machine, &part, &line, cfg, false);
    drop(scope);
    ops.push(("join p⋈l", j.wall_cycles));
    let jt = materialized_output(&j);

    // Post-join disjunct evaluation: gather the part attributes (random
    // reads by row id) and the lineitem quantity for every surviving pair.
    let mut count = 0u64;
    let scope = machine.phase("post filter");
    let t = for_each_join_tuple(machine, cores, jt, &j.output_runs, |c, tup| {
        let (pi, li) = (tup.r_payload as usize, tup.s_payload as usize);
        let _ = db.part.brand.get(c, pi);
        let _ = db.lineitem.quantity.get(c, li);
        c.compute(8);
        if q19_joint_pred(db, pi, li) {
            count += 1;
        }
    });
    drop(scope);
    ops.push(("post filter", t));

    QueryStats { count, grouped: Vec::new(), wall_cycles: machine.wall_cycles() - start, ops }
}

/// TPC-H Q1-style pricing summary (reproduction extension): scan LINEITEM
/// with the shipdate predicate and aggregate `count(*)` grouped by
/// `(returnflag, shipmode)` — the aggregation operator the paper's
/// simplification elides. Returns the per-group counts alongside the
/// timing; the group id is `returnflag * 8 + shipmode` (32 radix groups).
pub fn q1_pricing_summary(
    machine: &mut Machine,
    db: &TpchDb,
    cfg: &QueryConfig,
) -> (QueryStats, Vec<u64>) {
    let cores = &cfg.cores;
    let cutoff = date(1998, 9, 2);
    let start = machine.wall_cycles();
    machine.ecall();
    let mut ops = Vec::new();

    // Materialize group ids for qualifying rows: key = group id.
    let n = db.lineitem_len();
    let mut group_col = machine.alloc::<i32>(n);
    for i in 0..n {
        group_col.poke(i, db.lineitem.returnflag.peek(i) * 8 + db.lineitem.shipmode.peek(i));
    }
    let scope = machine.phase("sel lineitem");
    let (rows, t) = select_rows(
        machine,
        cores,
        &[&db.lineitem.shipdate],
        &group_col,
        Payload::RowIndex,
        &|i| db.lineitem.shipdate.peek(i) <= cutoff,
    );
    drop(scope);
    ops.push(("sel lineitem", t));

    let scope = machine.phase("group count");
    let agg = crate::aggregate::group_count(machine, cores, &rows, 32, cfg.optimized);
    drop(scope);
    ops.push(("group count", agg.cycles));

    let total: u64 = agg.counts.iter().sum();
    (
        QueryStats {
            count: total,
            grouped: Vec::new(),
            wall_cycles: machine.wall_cycles() - start,
            ops,
        },
        agg.counts,
    )
}

/// TPC-H Q6-style forecasting revenue query (reproduction extension): a
/// pure scan — no join — counting lineitems shipped in 1994 with a
/// discount of 5–7 % and quantity below 24. End to end it demonstrates the
/// paper's §6 observation that "scan & selection performance is very
/// similar across settings".
pub fn q6_forecast_revenue(machine: &mut Machine, db: &TpchDb, cfg: &QueryConfig) -> QueryStats {
    let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
    let start = machine.wall_cycles();
    machine.ecall();
    let scope = machine.phase("sel lineitem");
    let (rows, t) = select_rows(
        machine,
        &cfg.cores,
        &[&db.lineitem.shipdate, &db.lineitem.discount, &db.lineitem.quantity],
        &db.lineitem.orderkey,
        Payload::RowIndex,
        &|i| {
            let d = db.lineitem.shipdate.peek(i);
            d >= lo
                && d < hi
                && (5..=7).contains(&db.lineitem.discount.peek(i))
                && db.lineitem.quantity.peek(i) < 24
        },
    );
    drop(scope);
    QueryStats {
        count: rows.len() as u64,
        grouped: Vec::new(),
        wall_cycles: machine.wall_cycles() - start,
        ops: vec![("sel lineitem", t)],
    }
}

/// Uncharged reference for [`q6_forecast_revenue`].
pub fn reference_q6(db: &TpchDb) -> u64 {
    let (lo, hi) = (date(1994, 1, 1), date(1995, 1, 1));
    (0..db.lineitem_len())
        .filter(|&i| {
            let d = db.lineitem.shipdate.peek(i);
            d >= lo
                && d < hi
                && (5..=7).contains(&db.lineitem.discount.peek(i))
                && db.lineitem.quantity.peek(i) < 24
        })
        .count() as u64
}

/// Uncharged reference for [`q1_pricing_summary`]'s per-group counts.
pub fn reference_q1(db: &TpchDb) -> Vec<u64> {
    let cutoff = date(1998, 9, 2);
    let mut counts = vec![0u64; 32];
    for i in 0..db.lineitem_len() {
        if db.lineitem.shipdate.peek(i) <= cutoff {
            let g = db.lineitem.returnflag.peek(i) * 8 + db.lineitem.shipmode.peek(i);
            counts[g as usize] += 1;
        }
    }
    counts
}

/// Uncharged reference counts for all four queries (tests).
pub fn reference_count(db: &TpchDb, q: Query) -> u64 {
    use std::collections::{BTreeMap, BTreeSet};
    match q {
        Query::Q3 => {
            let cutoff = date(1995, 3, 15);
            let building: BTreeSet<i32> = (0..db.customer.custkey.len())
                .filter(|&i| db.customer.mktsegment.peek(i) == SEG_BUILDING)
                .map(|i| db.customer.custkey.peek(i))
                .collect();
            let orders: BTreeSet<i32> = (0..db.orders.orderkey.len())
                .filter(|&i| {
                    db.orders.orderdate.peek(i) < cutoff
                        && building.contains(&db.orders.custkey.peek(i))
                })
                .map(|i| db.orders.orderkey.peek(i))
                .collect();
            (0..db.lineitem_len())
                .filter(|&i| {
                    db.lineitem.shipdate.peek(i) > cutoff
                        && orders.contains(&db.lineitem.orderkey.peek(i))
                })
                .count() as u64
        }
        Query::Q10 => {
            let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
            let nation_of_cust: BTreeMap<i32, i32> = (0..db.customer.custkey.len())
                .map(|i| (db.customer.custkey.peek(i), db.customer.nationkey.peek(i)))
                .collect();
            let orders: BTreeSet<i32> = (0..db.orders.orderkey.len())
                .filter(|&i| {
                    let d = db.orders.orderdate.peek(i);
                    d >= lo
                        && d < hi
                        && nation_of_cust.contains_key(&db.orders.custkey.peek(i))
                })
                .map(|i| db.orders.orderkey.peek(i))
                .collect();
            (0..db.lineitem_len())
                .filter(|&i| {
                    db.lineitem.returnflag.peek(i) == FLAG_R
                        && orders.contains(&db.lineitem.orderkey.peek(i))
                })
                .count() as u64
        }
        Query::Q12 => (0..db.lineitem_len()).filter(|&i| q12_line_pred(db, i)).count() as u64,
        Query::Q19 => (0..db.lineitem_len())
            .filter(|&i| {
                q19_line_pred(db, i)
                    && q19_joint_pred(db, db.lineitem.partkey.peek(i) as usize - 1, i)
            })
            .count() as u64,
    }
}

/// Uncharged reference for Q3's real output: the top-[`Q3_TOP_K`]
/// `(orderkey, revenue)` pairs, revenue descending with orderkey
/// breaking ties ascending.
pub fn reference_q3_topk(db: &TpchDb) -> Vec<(u32, u64)> {
    use std::collections::{BTreeMap, BTreeSet};
    let cutoff = date(1995, 3, 15);
    let building: BTreeSet<i32> = (0..db.customer.custkey.len())
        .filter(|&i| db.customer.mktsegment.peek(i) == SEG_BUILDING)
        .map(|i| db.customer.custkey.peek(i))
        .collect();
    let orders: BTreeSet<i32> = (0..db.orders.orderkey.len())
        .filter(|&i| {
            db.orders.orderdate.peek(i) < cutoff && building.contains(&db.orders.custkey.peek(i))
        })
        .map(|i| db.orders.orderkey.peek(i))
        .collect();
    let mut rev: BTreeMap<u32, u64> = BTreeMap::new();
    for i in 0..db.lineitem_len() {
        let ok = db.lineitem.orderkey.peek(i);
        if db.lineitem.shipdate.peek(i) > cutoff && orders.contains(&ok) {
            let r = db.lineitem.extendedprice.peek(i) as u64
                * (100 - db.lineitem.discount.peek(i)) as u64;
            *rev.entry(ok as u32).or_insert(0) += r;
        }
    }
    let mut out: Vec<(u32, u64)> = rev.into_iter().collect();
    out.sort_by_key(|&(ok, r)| (std::cmp::Reverse(r), ok));
    out.truncate(Q3_TOP_K);
    out
}

/// Uncharged reference for Q10's real output: per-nation revenue,
/// descending, empty nations dropped, nationkey breaking ties ascending.
pub fn reference_q10_revenue(db: &TpchDb) -> Vec<(u32, u64)> {
    use std::collections::BTreeMap;
    let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
    let nation_of_cust: BTreeMap<i32, i32> = (0..db.customer.custkey.len())
        .map(|i| (db.customer.custkey.peek(i), db.customer.nationkey.peek(i)))
        .collect();
    let nation_of_order: BTreeMap<i32, i32> = (0..db.orders.orderkey.len())
        .filter_map(|i| {
            let d = db.orders.orderdate.peek(i);
            if d >= lo && d < hi {
                nation_of_cust
                    .get(&db.orders.custkey.peek(i))
                    .map(|&n| (db.orders.orderkey.peek(i), n))
            } else {
                None
            }
        })
        .collect();
    let mut rev: BTreeMap<u32, u64> = BTreeMap::new();
    for i in 0..db.lineitem_len() {
        if db.lineitem.returnflag.peek(i) != FLAG_R {
            continue;
        }
        if let Some(&n) = nation_of_order.get(&db.lineitem.orderkey.peek(i)) {
            let r = db.lineitem.extendedprice.peek(i) as u64
                * (100 - db.lineitem.discount.peek(i)) as u64;
            *rev.entry(n as u32).or_insert(0) += r;
        }
    }
    let mut out: Vec<(u32, u64)> = rev.into_iter().filter(|&(_, r)| r > 0).collect();
    out.sort_by_key(|&(n, r)| (std::cmp::Reverse(r), n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;


    fn setup(sf: f64) -> (Machine, TpchDb) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let db = generate(&mut m, sf, 42);
        (m, db)
    }

    #[test]
    fn all_queries_match_reference_counts() {
        let (mut m, db) = setup(0.005);
        for q in Query::all() {
            let stats = run_query(&mut m, &db, q, &QueryConfig::new(4));
            let expected = reference_count(&db, q);
            assert_eq!(stats.count, expected, "{} count", q.label());
            assert!(stats.wall_cycles > 0.0);
            if q != Query::Q19 {
                // Q19's disjunctive predicate is legitimately ultra
                // selective (a handful of rows per unit scale factor).
                assert!(expected > 0, "{} reference should be non-trivial", q.label());
            }
        }
    }

    #[test]
    fn q3_and_q10_produce_verified_ordered_outputs() {
        let (mut m, db) = setup(0.005);
        for threads in [1usize, 4] {
            for optimized in [false, true] {
                let cfg = QueryConfig::new(threads).with_optimization(optimized);
                let s3 = q3(&mut m, &db, &cfg);
                assert_eq!(
                    s3.grouped,
                    reference_q3_topk(&db),
                    "Q3 top-k, threads={threads} optimized={optimized}"
                );
                assert!(!s3.grouped.is_empty() && s3.grouped.len() <= Q3_TOP_K);
                assert!(s3.grouped.windows(2).all(|w| w[0].1 >= w[1].1), "revenue descending");
                let s10 = q10(&mut m, &db, &cfg);
                assert_eq!(
                    s10.grouped,
                    reference_q10_revenue(&db),
                    "Q10 per-nation revenue, threads={threads} optimized={optimized}"
                );
                assert!(!s10.grouped.is_empty() && s10.grouped.len() <= 25);
                assert!(s10.grouped.windows(2).all(|w| w[0].1 >= w[1].1), "revenue descending");
            }
        }
    }

    #[test]
    fn q19_returns_rows_at_larger_scale() {
        let (mut m, db) = setup(0.08);
        let stats = run_query(&mut m, &db, Query::Q19, &QueryConfig::new(8));
        assert_eq!(stats.count, reference_count(&db, Query::Q19));
        assert!(stats.count > 0, "Q19 should match some rows at SF 0.08");
    }

    #[test]
    fn optimization_does_not_change_results() {
        let (mut m, db) = setup(0.005);
        for q in Query::all() {
            let plain = run_query(&mut m, &db, q, &QueryConfig::new(4));
            let opt = run_query(&mut m, &db, q, &QueryConfig::new(4).with_optimization(true));
            assert_eq!(plain.count, opt.count, "{}", q.label());
            assert_eq!(plain.grouped, opt.grouped, "{} ordered output", q.label());
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let (mut m, db) = setup(0.003);
        for q in Query::all() {
            let one = run_query(&mut m, &db, q, &QueryConfig::new(1));
            let many = run_query(&mut m, &db, q, &QueryConfig::new(8));
            assert_eq!(one.count, many.count, "{}", q.label());
            assert_eq!(one.grouped, many.grouped, "{} ordered output", q.label());
            assert!(
                many.wall_cycles < one.wall_cycles,
                "{} should speed up with threads",
                q.label()
            );
        }
    }

    #[test]
    fn enclave_overhead_shrinks_with_optimization() {
        // Fig 17: the optimization reduces the enclave-vs-native gap.
        let run = |setting: Setting, optimized: bool| {
            let mut m = Machine::new(scaled_profile(), setting);
            let db = generate(&mut m, 0.01, 42);
            let mut total = 0.0;
            for q in Query::all() {
                total +=
                    run_query(&mut m, &db, q, &QueryConfig::new(8).with_optimization(optimized))
                        .wall_cycles;
            }
            total
        };
        let native = run(Setting::PlainCpu, false);
        let sgx_plain = run(Setting::SgxDataInEnclave, false);
        let sgx_opt = run(Setting::SgxDataInEnclave, true);
        assert!(sgx_plain > native, "queries should cost more in the enclave");
        assert!(sgx_opt < sgx_plain, "optimization should help in the enclave");
        let gap_plain = sgx_plain / native - 1.0;
        let gap_opt = sgx_opt / native - 1.0;
        assert!(
            gap_opt < gap_plain,
            "optimized gap {gap_opt:.3} should undercut plain gap {gap_plain:.3}"
        );
    }

    #[test]
    fn q6_extension_matches_reference_and_scans_at_parity() {
        let (mut m, db) = setup(0.01);
        let stats = q6_forecast_revenue(&mut m, &db, &QueryConfig::new(8));
        assert_eq!(stats.count, reference_q6(&db));
        assert!(stats.count > 0);
        // Pure-scan query: the enclave overhead stays in single digits.
        // (SF large enough that the fixed ECALL cost does not dominate.)
        let run = |setting: Setting| {
            let mut m = Machine::new(scaled_profile(), setting);
            let db = generate(&mut m, 0.08, 42);
            m.reset_wall();
            q6_forecast_revenue(&mut m, &db, &QueryConfig::new(8)).wall_cycles
        };
        let native = run(Setting::PlainCpu);
        let sgx = run(Setting::SgxDataInEnclave);
        let overhead = sgx / native - 1.0;
        assert!(
            overhead < 0.12,
            "scan-only query should be near parity, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn q1_extension_matches_reference() {
        let (mut m, db) = setup(0.005);
        for optimized in [false, true] {
            let (stats, counts) = q1_pricing_summary(
                &mut m,
                &db,
                &QueryConfig::new(4).with_optimization(optimized),
            );
            assert_eq!(counts, reference_q1(&db), "optimized={optimized}");
            assert_eq!(stats.count, counts.iter().sum::<u64>());
            // returnflag 0..3 x shipmode 0..7 => only ids < 24 populated.
            assert!(counts[24..].iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn query_ops_breakdown_present() {
        let (mut m, db) = setup(0.003);
        let stats = q3(&mut m, &db, &QueryConfig::new(2));
        let names: Vec<&str> = stats.ops.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"sel customer"));
        assert!(names.contains(&"join c⋈o"));
        let op_sum: f64 = stats.ops.iter().map(|(_, c)| c).sum();
        assert!(op_sum <= stats.wall_cycles * 1.01);
    }
}
