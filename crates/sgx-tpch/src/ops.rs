//! Materializing query operators (§6).
//!
//! "In order to simplify the analysis of operator runtimes, there is no
//! pipelining in our implementation; i.e., each operator fully
//! materializes its output. This scheme is also used in existing DBMSs
//! such as MonetDB." Selections scan the predicate columns vectorized and
//! materialize `Row{key, payload}` tables; join results are reshaped into
//! the next join's input with a charged reshape pass.

use sgx_joins::{JoinTuple, Row};
use sgx_sim::{Core, Machine, SimVec};

/// What the selection writes into the payload column of its output rows.
pub enum Payload<'a> {
    /// The source row index (late materialization handle).
    RowIndex,
    /// The value of another column.
    Col(&'a SimVec<i32>),
}

/// Charged sequential zero-fill of the first `n` slots (counter-array
/// reset before an aggregation).
pub fn charged_zero_fill<T: Copy + Default>(c: &mut Core<'_>, v: &mut SimVec<T>, n: usize) {
    let mut w = v.stream_writer(0);
    for _ in 0..n {
        w.push(c, T::default());
    }
}

/// 64-aligned worker chunk of `0..n`.
pub(crate) fn chunk(n: usize, t: usize, w: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(t).div_ceil(64) * 64;
    let start = (w * per).min(n);
    start..((w + 1) * per).min(n)
}

/// Vectorized filter + materialize: scans `scanned` columns (charged),
/// evaluates `pred` per row, and writes `Row { key: key_col[i], payload }`
/// for every match. Returns the output table and the operator's wall
/// cycles.
pub fn select_rows(
    machine: &mut Machine,
    cores: &[usize],
    scanned: &[&SimVec<i32>],
    key_col: &SimVec<i32>,
    payload: Payload<'_>,
    pred: &dyn Fn(usize) -> bool,
) -> (SimVec<Row>, f64) {
    let n = key_col.len();
    let t = cores.len();
    let start_wall = machine.wall_cycles();

    // Pass 1: scan predicate columns, count matches per worker.
    let mut counts = vec![0usize; t];
    machine.parallel(cores, |c| {
        let w = c.worker();
        let range = chunk(n, t, w);
        for col in scanned {
            // One vector compare per 64-byte line of each column.
            col.read_stream_vec(c, range.clone(), |c, _, _| c.vec_compute(1));
        }
        counts[w] = range.filter(|&i| pred(i)).count();
    });
    let total: usize = counts.iter().sum();
    let mut offsets = vec![0usize; t];
    let mut acc = 0usize;
    for w in 0..t {
        offsets[w] = acc;
        acc += counts[w];
    }

    // Pass 2: re-scan, gather key (and payload column), compress-store the
    // matching rows.
    let mut out = machine.alloc::<Row>(total);
    machine.parallel(cores, |c| {
        let w = c.worker();
        let range = chunk(n, t, w);
        let mut writer = out.stream_writer(offsets[w]);
        if let Payload::Col(pcol) = &payload {
            pcol.read_stream_vec(c, range.clone(), |c, _, _| c.vec_compute(1));
        }
        key_col.read_stream_vec(c, range, |c, base, keys| {
            c.vec_compute(2);
            for (k, &key) in keys.iter().enumerate() {
                let i = base + k;
                if pred(i) {
                    let payload = match &payload {
                        Payload::RowIndex => i as u32,
                        Payload::Col(pcol) => pcol.peek(i) as u32,
                    };
                    writer.push(c, Row { key: key as u32, payload });
                }
            }
        });
    });
    (out, machine.wall_cycles() - start_wall)
}

/// Stream every valid tuple of a materialized join result (its dense
/// `runs`) through `f`, distributing runs across workers.
pub fn for_each_join_tuple(
    machine: &mut Machine,
    cores: &[usize],
    jt: &SimVec<JoinTuple>,
    runs: &[std::ops::Range<usize>],
    mut f: impl FnMut(&mut Core<'_>, JoinTuple),
) -> f64 {
    let t = cores.len();
    let start_wall = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        for run in runs.iter().skip(w).step_by(t) {
            jt.read_stream(c, run.clone(), |c, _, tup| f(c, tup));
        }
    });
    machine.wall_cycles() - start_wall
}

/// Reshape a materialized join result into the next join's input table:
/// one `Row` per join tuple, via `f`. Returns the table and wall cycles.
pub fn retuple(
    machine: &mut Machine,
    cores: &[usize],
    jt: &SimVec<JoinTuple>,
    runs: &[std::ops::Range<usize>],
    f: &dyn Fn(JoinTuple) -> Row,
) -> (SimVec<Row>, f64) {
    let t = cores.len();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = machine.alloc::<Row>(total);
    // Output offset of each run (runs are processed round-robin but each
    // run's output slot range is fixed by the prefix sum).
    let mut run_offsets = Vec::with_capacity(runs.len());
    let mut acc = 0usize;
    for r in runs {
        run_offsets.push(acc);
        acc += r.len();
    }
    let start_wall = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        for (ri, run) in runs.iter().enumerate().skip(w).step_by(t) {
            let mut writer = out.stream_writer(run_offsets[ri]);
            jt.read_stream(c, run.clone(), |c, _, tup| {
                c.compute(2);
                writer.push(c, f(tup));
            });
        }
    });
    let cycles = machine.wall_cycles() - start_wall;
    (out, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine() -> Machine {
        Machine::new(scaled_profile(), Setting::PlainCpu)
    }

    #[test]
    fn select_rows_filters_correctly() {
        let mut m = machine();
        let mut key = m.alloc::<i32>(10_000);
        let mut val = m.alloc::<i32>(10_000);
        for i in 0..10_000 {
            key.poke(i, i as i32 + 1);
            val.poke(i, (i % 10) as i32);
        }
        let (out, cycles) = select_rows(
            &mut m,
            &[0, 1, 2, 3],
            &[&val],
            &key,
            Payload::RowIndex,
            &|i| val.peek(i) < 3,
        );
        assert_eq!(out.len(), 3000);
        assert!(cycles > 0.0);
        for k in 0..out.len() {
            let row = out.peek(k);
            assert!(val.peek(row.payload as usize) < 3);
            assert_eq!(row.key as usize, row.payload as usize + 1);
        }
    }

    #[test]
    fn select_rows_with_column_payload() {
        let mut m = machine();
        let mut key = m.alloc::<i32>(1000);
        let mut pay = m.alloc::<i32>(1000);
        for i in 0..1000 {
            key.poke(i, i as i32);
            pay.poke(i, i as i32 * 2);
        }
        let (out, _) =
            select_rows(&mut m, &[0, 1], &[&key], &key, Payload::Col(&pay), &|i| i % 2 == 0);
        assert_eq!(out.len(), 500);
        assert!(out.as_slice_untracked().iter().all(|r| r.payload == r.key * 2));
    }

    #[test]
    fn select_all_and_none() {
        let mut m = machine();
        let mut key = m.alloc::<i32>(100);
        for i in 0..100 {
            key.poke(i, i as i32);
        }
        let (all, _) = select_rows(&mut m, &[0], &[&key], &key, Payload::RowIndex, &|_| true);
        assert_eq!(all.len(), 100);
        let (none, _) = select_rows(&mut m, &[0], &[&key], &key, Payload::RowIndex, &|_| false);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn retuple_reshapes_runs() {
        let mut m = machine();
        let mut jt = m.alloc::<JoinTuple>(100);
        for i in 0..100 {
            jt.poke(i, JoinTuple { r_payload: i as u32, s_payload: 1000 + i as u32 });
        }
        // Two valid runs with a gap between.
        let runs = vec![0..30, 50..100];
        let (rows, cycles) = retuple(&mut m, &[0, 1, 2], &jt, &runs, &|t| Row {
            key: t.s_payload,
            payload: t.r_payload,
        });
        assert_eq!(rows.len(), 80);
        assert!(cycles > 0.0);
        // Order within runs is preserved; run 0 comes first.
        assert_eq!(rows.peek(0).key, 1000);
        assert_eq!(rows.peek(30).key, 1050);
        assert!(rows.as_slice_untracked().iter().all(|r| r.key == r.payload + 1000));
    }

    #[test]
    fn for_each_join_tuple_visits_all_runs() {
        let mut m = machine();
        let mut jt = m.alloc::<JoinTuple>(64);
        for i in 0..64 {
            jt.poke(i, JoinTuple { r_payload: i as u32, s_payload: 0 });
        }
        let runs = vec![0..10, 20..25, 60..64];
        let mut seen = Vec::new();
        for_each_join_tuple(&mut m, &[0, 1], &jt, &runs, |_, t| seen.push(t.r_payload));
        seen.sort_unstable();
        let expected: Vec<u32> =
            (0..10).chain(20..25).chain(60..64).collect();
        assert_eq!(seen, expected);
    }
}
