//! # sgx-tpch — TPC-H subset generator and materializing query engine
//!
//! Implements §6 of the paper: TPC-H queries Q3, Q10, Q12 and Q19 as
//! scan/join/count plans with full operator materialization ("as in
//! MonetDB"), over an integer-encoded TPC-H subset generated at an
//! arbitrary scale factor. The joins are the RHO implementations from
//! `sgx-joins`, so the §4.2 optimization can be toggled per query — the
//! experiment behind Fig 17.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod gen;
pub mod ops;
pub mod queries;
pub mod service;

pub use aggregate::{group_count, reference_group_count, GroupCounts};
pub use gen::{date, generate, TpchDb};
pub use queries::{
    q1_pricing_summary, q6_forecast_revenue, reference_count, run_query, Query, QueryConfig,
    QueryStats,
};
pub use service::{cost_estimate, ServiceJob, StepReport};
