//! # sgx-tpch — TPC-H subset generator and materializing query engine
//!
//! Implements §6 of the paper: TPC-H queries Q3, Q10, Q12 and Q19 as
//! scan/join plans with full operator materialization ("as in
//! MonetDB"), over an integer-encoded TPC-H subset generated at an
//! arbitrary scale factor. The joins are the RHO implementations from
//! `sgx-joins`, so the §4.2 optimization can be toggled per query — the
//! experiment behind Fig 17. Beyond the paper's `count(*)` cut-off,
//! Q3/Q10 run real grouped + ordered tails through the operator zoo of
//! ROADMAP item 3: external merge sort ([`sort`]), dictionary/RLE
//! compression ([`compress`]), and the sealed storage data path
//! ([`storage`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod compress;
pub mod gen;
pub mod ops;
pub mod queries;
pub mod service;
pub mod sort;
pub mod storage;

pub use aggregate::{
    group_count, group_mask, group_sum_tuples, reference_group_count, GroupCounts, GroupSums,
};
pub use compress::{DictColumn, RleColumn};
pub use gen::{date, generate, TpchDb};
pub use queries::{
    q1_pricing_summary, q6_forecast_revenue, reference_count, reference_q10_revenue,
    reference_q3_topk, run_query, Query, QueryConfig, QueryStats, Q3_TOP_K,
};
pub use service::{cost_estimate, ServiceJob, StepReport, ESTIMATE_SPREAD_TOLERANCE};
pub use sort::{external_merge_sort, reference_sort, SortRow, SortStats};
pub use storage::{
    clustered_column, reference_storage_query, reference_unseal, seal_column, storage_path_query,
    unseal, SealedColumn, StorageFormat, StoragePathStats, UnsealedColumn,
};
