//! External merge sort under EPC pressure (ROADMAP item 3).
//!
//! The paper's queries stop at `count(*)` (§6), so nothing in the
//! original suite ever orders data. Real analytical plans do — and an
//! enclave sort is exactly where the EPC working-set budget bites: runs
//! must be formed at a size the effective enclave working set can hold,
//! spilled, and merged back with charged reloads. Everything flows
//! through the existing EPC/MEE cost model: run formation streams the
//! input (charged reads), sorts in the working-set-sized buffer (charged
//! compares), spills sorted runs to a scratch table (charged stream
//! writes — MEE-priced when the scratch lives in the EPC), and the k-way
//! merge reloads every run through incremental stream readers (charged)
//! while writing the final order (charged).
//!
//! Output is verified against an uncharged `sort_unstable` oracle
//! ([`reference_sort`], plus the lockstep proptests in
//! `tests/proptest_operators.rs`).

use sgx_joins::JoinTuple;
use sgx_sim::{Machine, SimVec};

/// A 16-byte sort record: 64-bit key plus a 32-bit tie-breaking tag
/// (row id, group id, …). Records are ordered by `(key, tag)`, so the
/// sort is a deterministic total order whenever tags are distinct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortRow {
    /// Primary sort key.
    pub key: u64,
    /// Secondary key / payload handle.
    pub tag: u32,
}

/// Shape of one external sort execution.
#[derive(Debug, Clone)]
pub struct SortStats {
    /// Wall cycles of the whole sort (formation + spill + merge).
    pub cycles: f64,
    /// Number of sorted runs formed (and merged).
    pub runs: usize,
    /// Bytes spilled to the scratch table (== reloaded by the merge).
    pub spilled_bytes: usize,
}

/// Elements per run: half the effective enclave working set (we budget
/// the L3 because the EPC itself is large on SGXv2 — what limits run
/// size is how much of the buffer stays cheap to touch while sorting).
fn run_elems(machine: &Machine) -> usize {
    let budget = machine.cfg().l3.size / 2;
    (budget / std::mem::size_of::<SortRow>()).next_multiple_of(64).max(64)
}

/// Sort the first `len` elements of `input` by `(key, tag)` ascending,
/// returning the sorted table and the sort's cost shape. Run contents
/// and the merged output are independent of `cores` (workers form
/// disjoint runs; the merge is one charged pass), so results are
/// byte-identical across thread counts.
pub fn external_merge_sort(
    machine: &mut Machine,
    cores: &[usize],
    input: &SimVec<SortRow>,
    len: usize,
) -> (SimVec<SortRow>, SortStats) {
    let n = len.min(input.len());
    let start = machine.wall_cycles();
    if n == 0 {
        let out = machine.alloc::<SortRow>(0);
        return (out, SortStats { cycles: machine.wall_cycles() - start, runs: 0, spilled_bytes: 0 });
    }
    let per_run = run_elems(machine);
    let k = n.div_ceil(per_run);
    let t = cores.len().max(1);

    // Run formation: worker w forms runs w, w+t, … Each run is streamed
    // in (charged), sorted in the working-set buffer (charged compares:
    // ~log2(run) per element), and spilled to its fixed scratch slot
    // (charged stream writes).
    let mut scratch = machine.alloc::<SortRow>(n);
    machine.parallel(cores, |c| {
        let w = c.worker();
        for r in (w..k).step_by(t) {
            let lo = r * per_run;
            let hi = ((r + 1) * per_run).min(n);
            let cmp_per_elem = (usize::BITS - (hi - lo).leading_zeros()) as u64;
            let mut buf: Vec<SortRow> = Vec::with_capacity(hi - lo);
            input.read_stream(c, lo..hi, |c, _, row| {
                c.compute(cmp_per_elem);
                buf.push(row);
            });
            buf.sort_unstable_by_key(|row| (row.key, row.tag));
            let mut writer = scratch.stream_writer(lo);
            for row in buf {
                writer.push(c, row);
            }
        }
    });

    // k-way merge: reload every run through an incremental stream reader
    // and emit the global order (~log2(k) compares per output element via
    // a tournament over the run heads).
    let mut out = machine.alloc::<SortRow>(n);
    machine.run(|c| {
        let mut readers: Vec<_> = (0..k)
            .map(|r| scratch.stream_reader(r * per_run..((r + 1) * per_run).min(n)))
            .collect();
        let mut heads: Vec<Option<SortRow>> = Vec::with_capacity(k);
        for reader in readers.iter_mut() {
            heads.push(reader.next(c));
        }
        let cmp_per_elem = (usize::BITS - (k.max(2) - 1).leading_zeros()) as u64;
        let mut writer = out.stream_writer(0);
        loop {
            let mut best: Option<(SortRow, usize)> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(v) = head {
                    let better = match best {
                        None => true,
                        Some((b, bi)) => (v.key, v.tag, i) < (b.key, b.tag, bi),
                    };
                    if better {
                        best = Some((*v, i));
                    }
                }
            }
            let Some((v, i)) = best else { break };
            c.compute(cmp_per_elem);
            writer.push(c, v);
            heads[i] = readers[i].next(c);
        }
    });
    let stats = SortStats {
        cycles: machine.wall_cycles() - start,
        runs: k,
        spilled_bytes: n * std::mem::size_of::<SortRow>(),
    };
    (out, stats)
}

/// Reshape a materialized join result into a sort input table: one
/// [`SortRow`] per join tuple via `f` (the sort-side analogue of
/// [`crate::ops::retuple`]). Returns the table and its wall cycles.
pub(crate) fn sort_input_from_join(
    machine: &mut Machine,
    cores: &[usize],
    jt: &SimVec<JoinTuple>,
    runs: &[std::ops::Range<usize>],
    f: &dyn Fn(JoinTuple) -> SortRow,
) -> (SimVec<SortRow>, f64) {
    let t = cores.len();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = machine.alloc::<SortRow>(total);
    let mut run_offsets = Vec::with_capacity(runs.len());
    let mut acc = 0usize;
    for r in runs {
        run_offsets.push(acc);
        acc += r.len();
    }
    let start_wall = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        for (ri, run) in runs.iter().enumerate().skip(w).step_by(t) {
            let mut writer = out.stream_writer(run_offsets[ri]);
            jt.read_stream(c, run.clone(), |c, _, tup| {
                c.compute(2);
                writer.push(c, f(tup));
            });
        }
    });
    let cycles = machine.wall_cycles() - start_wall;
    (out, cycles)
}

/// Uncharged reference sort for verification.
pub fn reference_sort(input: &SimVec<SortRow>, len: usize) -> Vec<SortRow> {
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    let mut v = input.as_slice_untracked()[..len.min(input.len())].to_vec();
    v.sort_unstable_by_key(|row| (row.key, row.tag));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::xeon_gold_6326;
    use sgx_sim::Setting;

    fn rows(m: &mut Machine, n: usize) -> SimVec<SortRow> {
        let mut v = m.alloc::<SortRow>(n);
        let mut x = 0x5EEDu64 | 1;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.poke(i, SortRow { key: x >> 32, tag: i as u32 });
        }
        v
    }

    #[test]
    fn multi_run_sort_matches_reference_across_threads() {
        // 1/4096-scale machine: tiny L3, so even 10k records need many runs.
        let mut m = Machine::new(xeon_gold_6326().scaled(4096), Setting::SgxDataInEnclave);
        let v = rows(&mut m, 10_000);
        let expect = reference_sort(&v, v.len());
        for threads in [1usize, 4] {
            let (sorted, stats) =
                external_merge_sort(&mut m, &(0..threads).collect::<Vec<_>>(), &v, v.len());
            assert!(stats.runs > 2, "scaled machine must force an external sort, got {} runs", stats.runs);
            assert_eq!(stats.spilled_bytes, 10_000 * std::mem::size_of::<SortRow>());
            // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
            assert_eq!(sorted.as_slice_untracked(), expect.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn single_run_and_empty_inputs_sort() {
        let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
        let v = rows(&mut m, 500);
        let (sorted, stats) = external_merge_sort(&mut m, &[0], &v, v.len());
        assert_eq!(stats.runs, 1);
        // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
        assert_eq!(sorted.as_slice_untracked(), reference_sort(&v, 500).as_slice());
        let empty = m.alloc::<SortRow>(0);
        let (out, stats) = external_merge_sort(&mut m, &[0], &empty, 0);
        assert_eq!(out.len(), 0);
        assert_eq!(stats.runs, 0);
    }

    #[test]
    fn prefix_sort_respects_len() {
        let mut m = Machine::new(xeon_gold_6326().scaled(16), Setting::PlainCpu);
        let v = rows(&mut m, 1000);
        let (sorted, _) = external_merge_sort(&mut m, &[0, 1], &v, 300);
        assert_eq!(sorted.len(), 300);
        // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
        assert_eq!(sorted.as_slice_untracked(), reference_sort(&v, 300).as_slice());
    }

    #[test]
    fn enclave_sort_costs_more_than_native() {
        let run = |setting: Setting| {
            let mut m = Machine::new(xeon_gold_6326().scaled(4096), setting);
            let v = rows(&mut m, 20_000);
            m.reset_wall();
            external_merge_sort(&mut m, &[0, 1], &v, v.len()).1.cycles
        };
        let native = run(Setting::PlainCpu);
        let sgx = run(Setting::SgxDataInEnclave);
        assert!(sgx > native, "spill/reload through the MEE must cost more in the enclave");
    }
}
