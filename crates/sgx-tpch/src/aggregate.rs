//! Grouped aggregation operator (reproduction extension).
//!
//! The paper simplifies its queries by replacing the final aggregation
//! with `count(*)` (§6). This module adds the operator the paper elides: a
//! parallel array-based group-by-count over a `Row` table, in naive and
//! unroll-optimized variants — the group-counter update is exactly the
//! radix-histogram pattern of §4.2, so the same enclave penalty (and the
//! same repair) applies to aggregation.

use crate::ops::charged_zero_fill;
use sgx_joins::{JoinTuple, Row};
use sgx_sim::{Core, Machine, SimVec};

/// Checked radix mask for a power-of-two group domain. One shared
/// helper so the operator and its reference oracle can never disagree:
/// the old per-site `groups as u32 - 1` silently truncated for
/// `groups > 2^32` (the cast wrapped before the subtraction).
pub fn group_mask(groups: usize) -> u32 {
    assert!(groups.is_power_of_two(), "group domain must be a power of two");
    debug_assert!(
        groups - 1 <= u32::MAX as usize,
        "group domain {groups} exceeds the u32 key space"
    );
    (groups - 1) as u32
}

/// Result of a grouped count.
#[derive(Debug, Clone)]
pub struct GroupCounts {
    /// `counts[g]` = number of rows whose `key % groups == g`… more
    /// precisely, whose `key & (groups-1)` equals `g` (groups are a power
    /// of two, as radix group ids).
    pub counts: Vec<u64>,
    /// Wall cycles of the aggregation.
    pub cycles: f64,
}

/// Parallel grouped count over `rows`: group id = `key & (groups - 1)`.
/// Each worker accumulates a private counter array (the standard
/// contention-free plan), then worker arrays are reduced.
pub fn group_count(
    machine: &mut Machine,
    cores: &[usize],
    rows: &SimVec<Row>,
    groups: usize,
    optimized: bool,
) -> GroupCounts {
    let mask = group_mask(groups);
    let t = cores.len();
    let mut locals: Vec<SimVec<u64>> = (0..t).map(|_| machine.alloc::<u64>(groups)).collect();
    let start = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        charged_zero_fill(c, &mut locals[w], groups);
        let per = rows.len().div_ceil(t);
        let range = (w * per).min(rows.len())..((w + 1) * per).min(rows.len());
        if optimized {
            let mut batch = [0usize; 8];
            let mut fill = 0usize;
            rows.read_stream(c, range, |c, _, row| {
                c.compute(2);
                batch[fill] = (row.key & mask) as usize;
                fill += 1;
                if fill == 8 {
                    c.group(|c| {
                        for &g in &batch {
                            locals[w].rmw(c, g, |e| *e += 1);
                        }
                    });
                    fill = 0;
                }
            });
            c.group(|c| {
                for &g in &batch[..fill] {
                    locals[w].rmw(c, g, |e| *e += 1);
                }
            });
        } else {
            rows.read_stream(c, range, |c, _, row| {
                c.compute(2);
                locals[w].rmw(c, (row.key & mask) as usize, |e| *e += 1);
            });
        }
    });
    // Reduction: worker 0 merges the private arrays (small, streaming).
    let mut counts = vec![0u64; groups];
    machine.run(|c| {
        for local in &locals {
            local.read_stream(c, 0..groups, |c, g, v| {
                c.compute(1);
                counts[g] += v;
            });
        }
    });
    GroupCounts { counts, cycles: machine.wall_cycles() - start }
}

/// Uncharged reference grouping for verification.
pub fn reference_group_count(rows: &SimVec<Row>, groups: usize) -> Vec<u64> {
    let mask = group_mask(groups);
    let mut counts = vec![0u64; groups];
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    for r in rows.as_slice_untracked() {
        counts[(r.key & mask) as usize] += 1;
    }
    counts
}

/// Result of a grouped sum over join output.
#[derive(Debug, Clone)]
pub struct GroupSums {
    /// `sums[g]` = Σ value over tuples whose group id is `g`.
    pub sums: Vec<u64>,
    /// Wall cycles of the aggregation.
    pub cycles: f64,
}

/// Parallel grouped sum over a materialized join result: `val` maps each
/// tuple to `(group, value)` (doing any charged gathers it needs), and
/// workers accumulate into private counter arrays before a streamed
/// reduction — the same §4.2 histogram pattern as [`group_count`], so the
/// same enclave penalty and the same unroll repair apply.
pub fn group_sum_tuples(
    machine: &mut Machine,
    cores: &[usize],
    jt: &SimVec<JoinTuple>,
    runs: &[std::ops::Range<usize>],
    groups: usize,
    optimized: bool,
    val: &dyn Fn(&mut Core, JoinTuple) -> (usize, u64),
) -> GroupSums {
    let mask = group_mask(groups) as usize;
    let t = cores.len();
    let mut locals: Vec<SimVec<u64>> = (0..t).map(|_| machine.alloc::<u64>(groups)).collect();
    let start = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        charged_zero_fill(c, &mut locals[w], groups);
        for run in runs.iter().skip(w).step_by(t) {
            if optimized {
                let mut batch = [(0usize, 0u64); 8];
                let mut fill = 0usize;
                jt.read_stream(c, run.clone(), |c, _, tup| {
                    c.compute(2);
                    let (g, v) = val(c, tup);
                    batch[fill] = (g & mask, v);
                    fill += 1;
                    if fill == 8 {
                        c.group(|c| {
                            for &(g, v) in &batch {
                                locals[w].rmw(c, g, |e| *e += v);
                            }
                        });
                        fill = 0;
                    }
                });
                c.group(|c| {
                    for &(g, v) in &batch[..fill] {
                        locals[w].rmw(c, g, |e| *e += v);
                    }
                });
            } else {
                jt.read_stream(c, run.clone(), |c, _, tup| {
                    c.compute(2);
                    let (g, v) = val(c, tup);
                    locals[w].rmw(c, g & mask, |e| *e += v);
                });
            }
        }
    });
    let mut sums = vec![0u64; groups];
    machine.run(|c| {
        for local in &locals {
            local.read_stream(c, 0..groups, |c, g, v| {
                c.compute(1);
                sums[g] += v;
            });
        }
    });
    GroupSums { sums, cycles: machine.wall_cycles() - start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    fn rows(m: &mut Machine, n: usize) -> SimVec<Row> {
        let mut v = m.alloc::<Row>(n);
        for i in 0..n {
            v.poke(i, Row { key: (i as u32).wrapping_mul(2654435761), payload: i as u32 });
        }
        v
    }

    #[test]
    fn counts_match_reference() {
        let mut m = machine(Setting::PlainCpu);
        let r = rows(&mut m, 50_000);
        for groups in [8usize, 64, 1024] {
            for optimized in [false, true] {
                for threads in [1usize, 4, 16] {
                    let g = group_count(
                        &mut m,
                        &(0..threads).collect::<Vec<_>>(),
                        &r,
                        groups,
                        optimized,
                    );
                    assert_eq!(
                        g.counts,
                        reference_group_count(&r, groups),
                        "groups={groups} optimized={optimized} threads={threads}"
                    );
                    assert_eq!(g.counts.iter().sum::<u64>(), 50_000);
                }
            }
        }
    }

    #[test]
    fn aggregation_shows_the_section_4_2_effect() {
        // The group-counter loop is the histogram pattern: naive collapses
        // in the enclave, unrolling recovers it.
        let run = |setting: Setting, optimized: bool| {
            let mut m = machine(setting);
            let r = rows(&mut m, 400_000);
            group_count(&mut m, &[0], &r, 4096, optimized).cycles
        };
        let native = run(Setting::PlainCpu, false);
        let naive = run(Setting::SgxDataInEnclave, false);
        let opt = run(Setting::SgxDataInEnclave, true);
        assert!(naive > 2.0 * native, "naive group-by collapses: {:.2}x", naive / native);
        assert!(opt < 1.45 * native, "unrolled group-by recovers: {:.2}x", opt / native);
    }

    #[test]
    fn grouped_sums_match_reference() {
        let mut m = machine(Setting::PlainCpu);
        let n = 20_000;
        let mut jt = m.alloc::<JoinTuple>(n);
        for i in 0..n {
            let k = (i as u32).wrapping_mul(2654435761);
            jt.poke(i, JoinTuple { r_payload: k, s_payload: (i as u32) % 97 });
        }
        let runs = vec![0..7000usize, 7000..7000, 7000..n];
        let groups = 64usize;
        let mut expect = vec![0u64; groups];
        for i in 0..n {
            let t = jt.peek(i);
            expect[(t.r_payload & group_mask(groups)) as usize] += u64::from(t.s_payload);
        }
        for optimized in [false, true] {
            for threads in [1usize, 4] {
                let g = group_sum_tuples(
                    &mut m,
                    &(0..threads).collect::<Vec<_>>(),
                    &jt,
                    &runs,
                    groups,
                    optimized,
                    &|c, tup| {
                        c.compute(1);
                        (tup.r_payload as usize, u64::from(tup.s_payload))
                    },
                );
                assert_eq!(g.sums, expect, "optimized={optimized} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_groups() {
        let mut m = machine(Setting::PlainCpu);
        let r = rows(&mut m, 10);
        group_count(&mut m, &[0], &r, 12, false);
    }
}
