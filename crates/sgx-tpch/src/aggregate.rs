//! Grouped aggregation operator (reproduction extension).
//!
//! The paper simplifies its queries by replacing the final aggregation
//! with `count(*)` (§6). This module adds the operator the paper elides: a
//! parallel array-based group-by-count over a `Row` table, in naive and
//! unroll-optimized variants — the group-counter update is exactly the
//! radix-histogram pattern of §4.2, so the same enclave penalty (and the
//! same repair) applies to aggregation.

use crate::ops::charged_zero_fill;
use sgx_joins::Row;
use sgx_sim::{Machine, SimVec};

/// Result of a grouped count.
#[derive(Debug, Clone)]
pub struct GroupCounts {
    /// `counts[g]` = number of rows whose `key % groups == g`… more
    /// precisely, whose `key & (groups-1)` equals `g` (groups are a power
    /// of two, as radix group ids).
    pub counts: Vec<u64>,
    /// Wall cycles of the aggregation.
    pub cycles: f64,
}

/// Parallel grouped count over `rows`: group id = `key & (groups - 1)`.
/// Each worker accumulates a private counter array (the standard
/// contention-free plan), then worker arrays are reduced.
pub fn group_count(
    machine: &mut Machine,
    cores: &[usize],
    rows: &SimVec<Row>,
    groups: usize,
    optimized: bool,
) -> GroupCounts {
    assert!(groups.is_power_of_two(), "group domain must be a power of two");
    let t = cores.len();
    let mask = groups as u32 - 1;
    let mut locals: Vec<SimVec<u64>> = (0..t).map(|_| machine.alloc::<u64>(groups)).collect();
    let start = machine.wall_cycles();
    machine.parallel(cores, |c| {
        let w = c.worker();
        charged_zero_fill(c, &mut locals[w], groups);
        let per = rows.len().div_ceil(t);
        let range = (w * per).min(rows.len())..((w + 1) * per).min(rows.len());
        if optimized {
            let mut batch = [0usize; 8];
            let mut fill = 0usize;
            rows.read_stream(c, range, |c, _, row| {
                c.compute(2);
                batch[fill] = (row.key & mask) as usize;
                fill += 1;
                if fill == 8 {
                    c.group(|c| {
                        for &g in &batch {
                            locals[w].rmw(c, g, |e| *e += 1);
                        }
                    });
                    fill = 0;
                }
            });
            c.group(|c| {
                for &g in &batch[..fill] {
                    locals[w].rmw(c, g, |e| *e += 1);
                }
            });
        } else {
            rows.read_stream(c, range, |c, _, row| {
                c.compute(2);
                locals[w].rmw(c, (row.key & mask) as usize, |e| *e += 1);
            });
        }
    });
    // Reduction: worker 0 merges the private arrays (small, streaming).
    let mut counts = vec![0u64; groups];
    machine.run(|c| {
        for local in &locals {
            local.read_stream(c, 0..groups, |c, g, v| {
                c.compute(1);
                counts[g] += v;
            });
        }
    });
    GroupCounts { counts, cycles: machine.wall_cycles() - start }
}

/// Uncharged reference grouping for verification.
pub fn reference_group_count(rows: &SimVec<Row>, groups: usize) -> Vec<u64> {
    let mask = groups as u32 - 1;
    let mut counts = vec![0u64; groups];
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    for r in rows.as_slice_untracked() {
        counts[(r.key & mask) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn machine(setting: Setting) -> Machine {
        Machine::new(scaled_profile(), setting)
    }

    fn rows(m: &mut Machine, n: usize) -> SimVec<Row> {
        let mut v = m.alloc::<Row>(n);
        for i in 0..n {
            v.poke(i, Row { key: (i as u32).wrapping_mul(2654435761), payload: i as u32 });
        }
        v
    }

    #[test]
    fn counts_match_reference() {
        let mut m = machine(Setting::PlainCpu);
        let r = rows(&mut m, 50_000);
        for groups in [8usize, 64, 1024] {
            for optimized in [false, true] {
                for threads in [1usize, 4, 16] {
                    let g = group_count(
                        &mut m,
                        &(0..threads).collect::<Vec<_>>(),
                        &r,
                        groups,
                        optimized,
                    );
                    assert_eq!(
                        g.counts,
                        reference_group_count(&r, groups),
                        "groups={groups} optimized={optimized} threads={threads}"
                    );
                    assert_eq!(g.counts.iter().sum::<u64>(), 50_000);
                }
            }
        }
    }

    #[test]
    fn aggregation_shows_the_section_4_2_effect() {
        // The group-counter loop is the histogram pattern: naive collapses
        // in the enclave, unrolling recovers it.
        let run = |setting: Setting, optimized: bool| {
            let mut m = machine(setting);
            let r = rows(&mut m, 400_000);
            group_count(&mut m, &[0], &r, 4096, optimized).cycles
        };
        let native = run(Setting::PlainCpu, false);
        let naive = run(Setting::SgxDataInEnclave, false);
        let opt = run(Setting::SgxDataInEnclave, true);
        assert!(naive > 2.0 * native, "naive group-by collapses: {:.2}x", naive / native);
        assert!(opt < 1.45 * native, "unrolled group-by recovers: {:.2}x", opt / native);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_groups() {
        let mut m = machine(Setting::PlainCpu);
        let r = rows(&mut m, 10);
        group_count(&mut m, &[0], &r, 12, false);
    }
}
