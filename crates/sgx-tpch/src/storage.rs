//! Secure storage data path: sealed blocks decrypted, filtered, and
//! aggregated inside the enclave (reproduction extension).
//!
//! The scenario follows the confidential-analytics pattern of *Securing
//! the Storage Data Path with SGX Enclaves* and *Stress-SGX*
//! (PAPERS.md): a column lives at rest as AES-GCM-sealed 4 KB blocks in
//! untrusted memory; the enclave streams the ciphertext in (charged
//! loads), pays the modeled GCM decrypt cost per cache line plus a
//! per-block setup charge ([`sgx_sim::config::SealConfig`]), rebuilds
//! the column — plain, dictionary- or RLE-encoded — inside the EPC
//! (charged stream writes), then filters and group-aggregates it.
//! Compression composes with sealing: an encoded column means fewer
//! sealed bytes to decrypt *and* fewer MEE-priced lines to scan.
//!
//! Sealing itself happens uncharged on the data owner's machine; the
//! "ciphertext" is the encoded payload XORed with a deterministic
//! keystream — the simulator models the *cost* of AES-GCM, not its
//! cryptography, but the byte-level round trip keeps the decode path
//! honest (tests recover the exact column from sealed bytes only).

use crate::aggregate::group_mask;
use crate::compress::{DictColumn, RleColumn};
use crate::ops::{charged_zero_fill, chunk};
use sgx_sim::{Machine, Region, Setting, SimVec};

/// On-disk layout of a sealed column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFormat {
    /// Raw little-endian i32 rows.
    Plain,
    /// Dictionary header + 16-bit codes ([`DictColumn`]).
    Dict,
    /// Run header + (value, length) arrays ([`RleColumn`]).
    Rle,
}

impl StorageFormat {
    /// Stable label for figures and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            StorageFormat::Plain => "plain",
            StorageFormat::Dict => "dict",
            StorageFormat::Rle => "rle",
        }
    }
}

/// A column at rest: sealed bytes in untrusted DRAM (ciphertext needs
/// no EPC protection in either setting) plus the layout metadata the
/// reader needs to interpret the plaintext.
pub struct SealedColumn {
    format: StorageFormat,
    sealed: SimVec<u8>,
    rows: usize,
}

/// The column after in-enclave unsealing, in its storage encoding.
pub enum UnsealedColumn {
    /// Decoded plain column.
    Plain(SimVec<i32>),
    /// Dictionary-encoded column (scanned without full decompression).
    Dict(DictColumn),
    /// RLE column (scanned run-at-a-time).
    Rle(RleColumn),
}

/// Cost and result shape of one storage-path query.
#[derive(Debug, Clone)]
pub struct StoragePathStats {
    /// Bytes of sealed payload streamed and decrypted.
    pub sealed_bytes: usize,
    /// Rows in the column.
    pub rows: usize,
    /// Wall cycles of the unseal (stream-in + GCM + rebuild).
    pub decrypt_cycles: f64,
    /// Wall cycles of the filter scan.
    pub scan_cycles: f64,
    /// Wall cycles of the grouped aggregation.
    pub agg_cycles: f64,
    /// Wall cycles of the whole path.
    pub total_cycles: f64,
    /// Rows passing the filter.
    pub matches: u64,
    /// Sum of matching values.
    pub sum: i64,
    /// Grouped count of matching rows by `value & (groups - 1)`.
    pub groups: Vec<u64>,
}

/// Deterministic keystream byte for sealed-payload position `i`.
fn keystream(i: usize) -> u8 {
    let x = (i as u64 / 8).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xA5A5);
    let x = (x ^ (x >> 29)).wrapping_mul(0xBF58476D1CE4E5B9);
    (x >> ((i % 8) * 8)) as u8
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Seal `values` in `format` (uncharged — the data owner seals outside
/// the measured machine). The ciphertext lands in untrusted DRAM on
/// node 0.
pub fn seal_column(machine: &mut Machine, values: &[i32], format: StorageFormat) -> SealedColumn {
    let mut payload = Vec::new();
    match format {
        StorageFormat::Plain => {
            for &v in values {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        StorageFormat::Dict => {
            let mut rank = std::collections::BTreeMap::new();
            for &v in values {
                rank.entry(v).or_insert(0u16);
            }
            assert!(rank.len() <= usize::from(u16::MAX) + 1, "dictionary overflows 16-bit codes");
            for (i, code) in rank.values_mut().enumerate() {
                *code = i as u16;
            }
            push_u32(&mut payload, rank.len() as u32);
            for &v in rank.keys() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            for v in values {
                payload.extend_from_slice(&rank[v].to_le_bytes());
            }
        }
        StorageFormat::Rle => {
            let mut runs: Vec<(i32, u32)> = Vec::new();
            for &v in values {
                match runs.last_mut() {
                    Some((last, l)) if *last == v && *l < u32::MAX => *l += 1,
                    _ => runs.push((v, 1)),
                }
            }
            push_u32(&mut payload, runs.len() as u32);
            for &(v, _) in &runs {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            for &(_, l) in &runs {
                push_u32(&mut payload, l);
            }
        }
    }
    let mut sealed = machine.alloc_on::<u8>(payload.len(), Region::Untrusted(0));
    for (i, &b) in payload.iter().enumerate() {
        sealed.poke(i, b ^ keystream(i));
    }
    SealedColumn { format, sealed, rows: values.len() }
}

impl SealedColumn {
    /// Layout of the sealed payload.
    pub fn format(&self) -> StorageFormat {
        self.format
    }

    /// Rows the column decodes to.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes at rest (what the enclave must stream and decrypt).
    pub fn sealed_bytes(&self) -> usize {
        self.sealed.len()
    }
}

/// Decrypt and rebuild a sealed column inside the enclave. Workers
/// decrypt disjoint blocks round-robin (charged ciphertext loads plus
/// the GCM line + per-block setup charges); the decoded structures are
/// then written back through charged stream writers. Returns the
/// unsealed column and the unseal's wall cycles. Results are
/// byte-identical across `cores` arrangements.
pub fn unseal(machine: &mut Machine, cores: &[usize], col: &SealedColumn) -> (UnsealedColumn, f64) {
    let seal_cfg = machine.cfg().seal;
    let bytes = col.sealed.len();
    let blocks = bytes.div_ceil(seal_cfg.block_bytes).max(1);
    let t = cores.len().max(1);
    let start = machine.wall_cycles();

    // Phase 1: stream ciphertext out of untrusted DRAM and pay the GCM
    // decrypt model, collecting plaintext host-side for the rebuild.
    let mut plain = vec![0u8; bytes];
    {
        let scope = machine.phase("decrypt");
        machine.parallel(cores, |c| {
            let w = c.worker();
            for b in (w..blocks).step_by(t) {
                let lo = b * seal_cfg.block_bytes;
                let hi = ((b + 1) * seal_cfg.block_bytes).min(bytes);
                if lo >= hi {
                    continue;
                }
                c.charge(seal_cfg.gcm_block_setup_cycles);
                col.sealed.read_stream_vec(c, lo..hi, |c, at, line| {
                    c.charge(seal_cfg.gcm_cycles_per_line);
                    for (j, &cipher) in line.iter().enumerate() {
                        plain[at + j] = cipher ^ keystream(at + j);
                    }
                });
            }
        });
        drop(scope);
    }

    // Phase 2: rebuild the column in the EPC through charged writes.
    let scope = machine.phase("rebuild");
    let out = match col.format {
        StorageFormat::Plain => {
            let mut v = machine.alloc::<i32>(col.rows);
            machine.parallel(cores, |c| {
                let r = chunk(col.rows, t, c.worker());
                let mut writer = v.stream_writer(r.start);
                for i in r {
                    c.compute(1);
                    writer.push(c, read_u32(&plain, i * 4) as i32);
                }
            });
            UnsealedColumn::Plain(v)
        }
        StorageFormat::Dict => {
            let dict_len = read_u32(&plain, 0) as usize;
            let codes_at = 4 + dict_len * 4;
            let mut dict = machine.alloc::<i32>(dict_len);
            let mut codes = machine.alloc::<u16>(col.rows);
            machine.run(|c| {
                let mut writer = dict.stream_writer(0);
                for i in 0..dict_len {
                    c.compute(1);
                    writer.push(c, read_u32(&plain, 4 + i * 4) as i32);
                }
            });
            machine.parallel(cores, |c| {
                let r = chunk(col.rows, t, c.worker());
                let mut writer = codes.stream_writer(r.start);
                for i in r {
                    c.compute(1);
                    let at = codes_at + i * 2;
                    writer.push(c, u16::from_le_bytes([plain[at], plain[at + 1]]));
                }
            });
            UnsealedColumn::Dict(DictColumn::from_parts(codes, dict))
        }
        StorageFormat::Rle => {
            let runs = read_u32(&plain, 0) as usize;
            let lengths_at = 4 + runs * 4;
            let mut values = machine.alloc::<i32>(runs);
            let mut lengths = machine.alloc::<u32>(runs);
            machine.run(|c| {
                let mut vw = values.stream_writer(0);
                let mut lw = lengths.stream_writer(0);
                for i in 0..runs {
                    c.compute(2);
                    vw.push(c, read_u32(&plain, 4 + i * 4) as i32);
                    lw.push(c, read_u32(&plain, lengths_at + i * 4));
                }
            });
            UnsealedColumn::Rle(RleColumn::from_parts(values, lengths, col.rows))
        }
    };
    drop(scope);
    (out, machine.wall_cycles() - start)
}

/// The full storage-path query: unseal, filter (`value >= threshold`,
/// counting matches and summing matching values), then group-count the
/// matches by `value & (groups - 1)` — the same §4.2 histogram pattern
/// the enclave punishes. Enclave-vs-native comes from the machine's
/// [`Setting`].
pub fn storage_path_query(
    machine: &mut Machine,
    cores: &[usize],
    col: &SealedColumn,
    threshold: i32,
    groups: usize,
) -> StoragePathStats {
    let mask = group_mask(groups);
    let t = cores.len().max(1);
    let start = machine.wall_cycles();
    let (unsealed, decrypt_cycles) = unseal(machine, cores, col);

    // Filter scan: per-worker host accumulators, merged after the
    // barrier (worker order is fixed, so the merge is deterministic).
    let scan_start = machine.wall_cycles();
    let mut match_slots = vec![0u64; t];
    let mut sum_slots = vec![0i64; t];
    {
        let scope = machine.phase("scan");
        match &unsealed {
            UnsealedColumn::Plain(v) => drop(machine.parallel(cores, |c| {
                let w = c.worker();
                v.read_stream(c, chunk(col.rows, t, w), |c, _, x| {
                    c.compute(1);
                    c.branch(0.5);
                    if x >= threshold {
                        match_slots[w] += 1;
                        sum_slots[w] += i64::from(x);
                    }
                });
            })),
            UnsealedColumn::Dict(d) => drop(machine.parallel(cores, |c| {
                let w = c.worker();
                d.scan(c, chunk(col.rows, t, w), &mut |c, _, x| {
                    c.branch(0.5);
                    if x >= threshold {
                        match_slots[w] += 1;
                        sum_slots[w] += i64::from(x);
                    }
                });
            })),
            // Runs are variable-length, so the RLE scan is one charged
            // pass — it touches so few lines that parallelism is moot.
            UnsealedColumn::Rle(r) => machine.run(|c| {
                r.scan_runs(c, &mut |c, x, l| {
                    c.branch(0.5);
                    if x >= threshold {
                        match_slots[0] += u64::from(l);
                        sum_slots[0] += i64::from(x) * i64::from(l);
                    }
                });
            }),
        }
        drop(scope);
    }
    let scan_cycles = machine.wall_cycles() - scan_start;
    let matches: u64 = match_slots.iter().sum();
    let sum: i64 = sum_slots.iter().sum();

    // Grouped count of matching rows: private charged counter arrays +
    // streamed reduction (the aggregate.rs plan).
    let agg_start = machine.wall_cycles();
    let mut locals: Vec<SimVec<u64>> = (0..t).map(|_| machine.alloc::<u64>(groups)).collect();
    {
        let scope = machine.phase("aggregate");
        match &unsealed {
            UnsealedColumn::Plain(v) => drop(machine.parallel(cores, |c| {
                let w = c.worker();
                charged_zero_fill(c, &mut locals[w], groups);
                v.read_stream(c, chunk(col.rows, t, w), |c, _, x| {
                    c.compute(1);
                    c.branch(0.5);
                    if x >= threshold {
                        locals[w].rmw(c, (x as u32 & mask) as usize, |e| *e += 1);
                    }
                });
            })),
            UnsealedColumn::Dict(d) => drop(machine.parallel(cores, |c| {
                let w = c.worker();
                charged_zero_fill(c, &mut locals[w], groups);
                d.scan(c, chunk(col.rows, t, w), &mut |c, _, x| {
                    c.branch(0.5);
                    if x >= threshold {
                        locals[w].rmw(c, (x as u32 & mask) as usize, |e| *e += 1);
                    }
                });
            })),
            UnsealedColumn::Rle(r) => machine.run(|c| {
                charged_zero_fill(c, &mut locals[0], groups);
                r.scan_runs(c, &mut |c, x, l| {
                    c.branch(0.5);
                    if x >= threshold {
                        locals[0].rmw(c, (x as u32 & mask) as usize, |e| *e += u64::from(l));
                    }
                });
            }),
        }
        drop(scope);
    }
    let mut grouped = vec![0u64; groups];
    machine.run(|c| {
        for local in &locals {
            local.read_stream(c, 0..groups, |c, g, v| {
                c.compute(1);
                grouped[g] += v;
            });
        }
    });
    let agg_cycles = machine.wall_cycles() - agg_start;

    StoragePathStats {
        sealed_bytes: col.sealed_bytes(),
        rows: col.rows,
        decrypt_cycles,
        scan_cycles,
        agg_cycles,
        total_cycles: machine.wall_cycles() - start,
        matches,
        sum,
        groups: grouped,
    }
}

/// Uncharged oracle: decode a sealed column from its bytes alone.
pub fn reference_unseal(col: &SealedColumn) -> Vec<i32> {
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    let cipher = col.sealed.as_slice_untracked();
    let plain: Vec<u8> = cipher.iter().enumerate().map(|(i, &b)| b ^ keystream(i)).collect();
    match col.format {
        StorageFormat::Plain => {
            (0..col.rows).map(|i| read_u32(&plain, i * 4) as i32).collect()
        }
        StorageFormat::Dict => {
            let dict_len = read_u32(&plain, 0) as usize;
            let dict: Vec<i32> = (0..dict_len).map(|i| read_u32(&plain, 4 + i * 4) as i32).collect();
            let codes_at = 4 + dict_len * 4;
            (0..col.rows)
                .map(|i| {
                    let at = codes_at + i * 2;
                    dict[usize::from(u16::from_le_bytes([plain[at], plain[at + 1]]))]
                })
                .collect()
        }
        StorageFormat::Rle => {
            let runs = read_u32(&plain, 0) as usize;
            let lengths_at = 4 + runs * 4;
            let mut out = Vec::with_capacity(col.rows);
            for i in 0..runs {
                let v = read_u32(&plain, 4 + i * 4) as i32;
                let l = read_u32(&plain, lengths_at + i * 4);
                out.extend(std::iter::repeat_n(v, l as usize));
            }
            out
        }
    }
}

/// Uncharged oracle for the whole query: `(matches, sum, grouped)`.
pub fn reference_storage_query(
    values: &[i32],
    threshold: i32,
    groups: usize,
) -> (u64, i64, Vec<u64>) {
    let mask = group_mask(groups);
    let mut matches = 0u64;
    let mut sum = 0i64;
    let mut grouped = vec![0u64; groups];
    for &x in values {
        if x >= threshold {
            matches += 1;
            sum += i64::from(x);
            grouped[(x as u32 & mask) as usize] += 1;
        }
    }
    (matches, sum, grouped)
}

/// One deterministic clustered column for experiments and benches:
/// short runs of small values, so both encodings actually compress.
pub fn clustered_column(n: usize, seed: u64) -> Vec<i32> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = ((x >> 33) % 256) as i32;
        let run = 1 + ((x >> 17) % 8) as usize;
        for _ in 0..run.min(n - out.len()) {
            out.push(v);
        }
    }
    out
}

/// Convenience for the machine setting a storage-path series measures.
pub fn setting_label(setting: Setting) -> &'static str {
    match setting {
        Setting::PlainCpu => "Plain CPU",
        _ => "SGX",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{reference_dict_decode, reference_rle_decode};
    use sgx_sim::config::xeon_gold_6326;

    const FORMATS: [StorageFormat; 3] =
        [StorageFormat::Plain, StorageFormat::Dict, StorageFormat::Rle];

    #[test]
    fn unseal_recovers_the_exact_column_in_every_format() {
        let vals = clustered_column(30_000, 0x5EA1);
        for format in FORMATS {
            let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::SgxDataInEnclave);
            let sealed = seal_column(&mut m, &vals, format);
            assert_eq!(reference_unseal(&sealed), vals, "{}", format.label());
            let (unsealed, cycles) = unseal(&mut m, &[0, 1, 2], &sealed);
            assert!(cycles > 0.0);
            let decoded = match &unsealed {
                // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
                UnsealedColumn::Plain(v) => v.as_slice_untracked().to_vec(),
                UnsealedColumn::Dict(d) => reference_dict_decode(d),
                UnsealedColumn::Rle(r) => reference_rle_decode(r),
            };
            assert_eq!(decoded, vals, "{}", format.label());
        }
    }

    #[test]
    fn query_matches_reference_across_formats_and_threads() {
        let vals = clustered_column(20_000, 0xFACE);
        let (matches, sum, grouped) = reference_storage_query(&vals, 96, 64);
        for format in FORMATS {
            for threads in [1usize, 4] {
                let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::SgxDataInEnclave);
                let sealed = seal_column(&mut m, &vals, format);
                let s = storage_path_query(
                    &mut m,
                    &(0..threads).collect::<Vec<_>>(),
                    &sealed,
                    96,
                    64,
                );
                assert_eq!(s.matches, matches, "{} threads={threads}", format.label());
                assert_eq!(s.sum, sum, "{} threads={threads}", format.label());
                assert_eq!(s.groups, grouped, "{} threads={threads}", format.label());
                assert_eq!(s.rows, vals.len());
                assert!(s.decrypt_cycles > 0.0 && s.scan_cycles > 0.0 && s.agg_cycles > 0.0);
                assert!(s.total_cycles >= s.decrypt_cycles + s.scan_cycles + s.agg_cycles - 1.0);
            }
        }
    }

    #[test]
    fn compression_shrinks_sealed_bytes_and_the_enclave_pays_more() {
        let vals = clustered_column(100_000, 0xBEEF);
        let mut costs = Vec::new();
        for format in FORMATS {
            let run = |setting: Setting| {
                let mut m = Machine::new(xeon_gold_6326().scaled(64), setting);
                let sealed = seal_column(&mut m, &vals, format);
                m.reset_wall();
                let s = storage_path_query(&mut m, &[0, 1], &sealed, 96, 64);
                (s.sealed_bytes, s.total_cycles)
            };
            let (bytes, native) = run(Setting::PlainCpu);
            let (_, sgx) = run(Setting::SgxDataInEnclave);
            assert!(sgx > native, "{}: enclave path must cost more", format.label());
            costs.push((format, bytes, sgx));
        }
        let plain_bytes = costs[0].1;
        assert!(costs[1].1 < plain_bytes, "dict seals fewer bytes");
        assert!(costs[2].1 < costs[1].1, "rle seals fewer bytes than dict");
        assert!(costs[2].2 < costs[0].2, "rle storage path beats plain in the enclave");
    }
}
